"""The sweep engine: plans, executor isolation, cache/resume, oracle parity.

The two acceptance properties of the engine live here:

* a parallel sweep (``jobs=4``) over 48+ configurations is row-for-row
  identical to the serial :meth:`StudyHarness.run_serial` oracle (config keys
  exact, features to 1e-10, synthesized timings bit-equal);
* a killed-then-resumed sweep completes from cache without re-running any
  finished configuration.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time

import numpy as np
import pytest

from repro.modeling.study import FailureRecord, StudyConfiguration, StudyHarness
from repro.study import (
    CorpusCache,
    SweepExecutor,
    build_plan,
    cache_key,
    run_plan,
)
from repro.study import cli as study_cli
from repro.study import corpus_io
from repro.study.plan import spec_from_payload


# ---------------------------------------------------------------------------
# Executor worker functions (module level: must be picklable for the pool)
# ---------------------------------------------------------------------------

def _echo_execute(spec: dict) -> dict:
    return {"row_type": "echo", "value": spec["value"] * 2}


def _flaky_execute(spec: dict) -> dict:
    if spec["value"] == 2:
        raise ValueError("injected failure")
    return {"row_type": "echo", "value": spec["value"] * 2}


def _crashing_execute(spec: dict) -> dict:
    if spec["value"] == 1:
        os._exit(13)
    return {"row_type": "echo", "value": spec["value"] * 2}


def _hanging_execute(spec: dict) -> dict:
    if spec["value"] == 0:
        time.sleep(60.0)
    return {"row_type": "echo", "value": spec["value"] * 2}


def _dict_key(spec: dict) -> dict:
    return spec


# ---------------------------------------------------------------------------
# Generic executor behavior
# ---------------------------------------------------------------------------

class TestSweepExecutor:
    SPECS = [{"value": index} for index in range(6)]

    def test_inline_executes_all(self):
        outcome = SweepExecutor(_echo_execute, jobs=1, key_fn=_dict_key).run(self.SPECS)
        assert [p["value"] for p in outcome.payloads] == [0, 2, 4, 6, 8, 10]
        assert outcome.executed == 6 and not outcome.failures

    def test_inline_isolates_exceptions(self):
        outcome = SweepExecutor(_flaky_execute, jobs=1, key_fn=_dict_key).run(self.SPECS)
        assert outcome.payloads[2] is None
        assert [f.index for f in outcome.failures] == [2]
        assert outcome.failures[0].reason == "error"
        assert outcome.failures[0].error_type == "ValueError"
        assert sum(p is not None for p in outcome.payloads) == 5

    def test_pool_matches_inline_order(self):
        outcome = SweepExecutor(_echo_execute, jobs=3, key_fn=_dict_key).run(self.SPECS)
        assert [p["value"] for p in outcome.payloads] == [0, 2, 4, 6, 8, 10]

    def test_pool_isolates_exceptions(self):
        outcome = SweepExecutor(_flaky_execute, jobs=2, key_fn=_dict_key).run(self.SPECS)
        assert outcome.payloads[2] is None
        assert [f.index for f in outcome.failures] == [2]
        assert outcome.failures[0].reason == "error"
        assert "injected failure" in outcome.failures[0].message

    def test_pool_isolates_worker_crashes(self):
        outcome = SweepExecutor(_crashing_execute, jobs=2, key_fn=_dict_key).run(self.SPECS)
        assert outcome.payloads[1] is None
        failures = {f.index: f for f in outcome.failures}
        assert failures[1].reason == "crash"
        # The dead worker was replaced: every other spec still produced a row.
        assert sum(p is not None for p in outcome.payloads) == 5

    def test_pool_enforces_per_experiment_timeout(self):
        start = time.monotonic()
        outcome = SweepExecutor(_hanging_execute, jobs=2, timeout=1.0, key_fn=_dict_key).run(
            self.SPECS
        )
        elapsed = time.monotonic() - start
        assert elapsed < 30.0, "timed-out worker must be killed, not awaited"
        failures = {f.index: f for f in outcome.failures}
        assert failures[0].reason == "timeout"
        assert sum(p is not None for p in outcome.payloads) == 5

    def test_serial_timeout_enforced_via_one_worker_pool(self):
        # jobs=1 cannot kill an in-process hang, so a timeout-carrying serial
        # run must transparently use a killable one-worker pool.
        outcome = SweepExecutor(_hanging_execute, jobs=1, timeout=1.0, key_fn=_dict_key).run(
            self.SPECS
        )
        failures = {f.index: f for f in outcome.failures}
        assert failures[0].reason == "timeout"
        assert sum(p is not None for p in outcome.payloads) == 5

    def test_cache_short_circuits_resume(self, tmp_path):
        cache = CorpusCache(tmp_path / "cache", token="t0")
        executor = SweepExecutor(_echo_execute, jobs=1, cache=cache, key_fn=_dict_key)
        first = executor.run(self.SPECS)
        assert first.executed == 6 and first.cache_hits == 0
        second = executor.run(self.SPECS, resume=True)
        assert second.executed == 0 and second.cache_hits == 6
        assert second.payloads == first.payloads
        third = executor.run(self.SPECS, resume=False)
        assert third.executed == 6 and third.cache_hits == 0

    def test_failures_are_never_cached(self, tmp_path):
        cache = CorpusCache(tmp_path / "cache", token="t0")
        SweepExecutor(_flaky_execute, jobs=1, cache=cache, key_fn=_dict_key).run(self.SPECS)
        resumed = SweepExecutor(_echo_execute, jobs=1, cache=cache, key_fn=_dict_key).run(
            self.SPECS, resume=True
        )
        # The previously-failed spec re-executes and succeeds this time.
        assert resumed.cache_hits == 5 and resumed.executed == 1
        assert resumed.payloads[2] == {"row_type": "echo", "value": 4}


class TestCorpusCache:
    def test_key_is_order_insensitive_and_content_sensitive(self):
        a = cache_key({"x": 1, "y": 2}, token="t")
        b = cache_key({"y": 2, "x": 1}, token="t")
        assert a == b
        assert cache_key({"x": 1, "y": 3}, token="t") != a
        assert cache_key({"x": 1, "y": 2}, token="other") != a

    def test_corrupt_entries_read_as_misses(self, tmp_path):
        cache = CorpusCache(tmp_path, token="t")
        key = cache.key({"x": 1})
        cache.put(key, {"row_type": "echo", "value": 9})
        assert cache.get(key) == {"row_type": "echo", "value": 9}
        path = cache._path(key)
        path.write_text("{not json")
        assert cache.get(key) is None

    def test_len_and_clear(self, tmp_path):
        cache = CorpusCache(tmp_path, token="t")
        for index in range(3):
            cache.put(cache.key({"x": index}), {"v": index})
        assert len(cache) == 3
        assert cache.clear() == 3
        assert len(cache) == 0


# ---------------------------------------------------------------------------
# Plans
# ---------------------------------------------------------------------------

class TestPlan:
    CONFIG = StudyConfiguration(samples_per_technique=4, seed=7)

    def test_expansion_is_deterministic(self):
        first = build_plan(self.CONFIG)
        second = build_plan(self.CONFIG)
        assert first.specs == second.specs
        assert len(first) == 2 * 3 * 4 + 6 * 5  # host+synthetic rows, compositing matrix

    def test_counts_and_breakdown(self):
        plan = build_plan(self.CONFIG)
        counts = plan.counts()
        assert counts == {"render": 12, "synthetic": 12, "compositing": 30}
        assert sum(plan.breakdown().values()) == len(plan)

    def test_spec_payload_round_trip(self):
        plan = build_plan(self.CONFIG)
        for spec in plan.specs[:5]:
            assert spec_from_payload(spec.key_payload()) == spec

    def test_compositing_can_be_excluded(self):
        plan = build_plan(self.CONFIG, include_compositing=False)
        assert plan.counts()["compositing"] == 0

    def test_full_preset_sweeps_unstructured_at_full_resolution(self):
        # The fragment-sorted sampler removed the unstructured perf cliff, so
        # the full preset now stratifies all four families -- unstructured
        # included -- up to the benchmark's 192^2 ceiling.
        from repro.study.plan import full_configuration

        config = full_configuration()
        assert "volume_unstructured" in config.techniques
        assert config.image_size_range == (64, 192)
        plan = build_plan(config)
        unstructured = [
            spec
            for spec in plan.specs
            if spec.kind == "render" and spec.technique == "volume_unstructured"
        ]
        assert len(unstructured) == config.samples_per_technique
        assert max(spec.image_width for spec in unstructured) > 160

    def test_unstructured_experiment_phases_follow_schema(self):
        # Section 5.8 features roll phases up through the standard schema;
        # every phase the unstructured renderer reports must be registered.
        from repro.rendering.result import PHASE_GROUPS

        config = StudyConfiguration(
            simulations=("kripke",),
            techniques=("volume_unstructured",),
            task_counts=(2,),
            samples_per_technique=1,
            image_size_range=(32, 40),
            cells_per_task_range=(4, 5),
            samples_in_depth=12,
            seed=9,
        )
        record = StudyHarness(config).run_experiment("volume_unstructured", "kripke", 2, 4, 32, 32)
        assert record.technique == "volume_unstructured"
        assert set(record.phase_seconds) <= set(PHASE_GROUPS)
        grouped = {}
        for phase, seconds in record.phase_seconds.items():
            grouped[PHASE_GROUPS[phase]] = grouped.get(PHASE_GROUPS[phase], 0.0) + seconds
        assert sum(grouped.values()) == pytest.approx(record.total_seconds)
        assert record.frame_seconds > 0.0


# ---------------------------------------------------------------------------
# Engine vs serial oracle (the acceptance differential)
# ---------------------------------------------------------------------------

ORACLE_CONFIG = StudyConfiguration(
    samples_per_technique=8,
    task_counts=(1, 2, 4),
    image_size_range=(48, 96),
    cells_per_task_range=(6, 12),
    samples_in_depth=24,
    seed=123,
    compositing_task_counts=(2, 4),
    compositing_pixel_sizes=(32, 48),
    compositing_algorithms=("direct-send", "binary-swap", "radix-k"),
)


@pytest.fixture(scope="module")
def oracle_corpus():
    return StudyHarness(ORACLE_CONFIG).run_serial()


@pytest.fixture(scope="module")
def engine_corpus():
    return StudyHarness(ORACLE_CONFIG).run(jobs=4)


def _config_key(record):
    return (
        record.architecture,
        record.technique,
        record.simulation,
        record.num_tasks,
        record.cells_per_task,
        record.image_width,
        record.image_height,
    )


class TestEngineMatchesOracle:
    def test_sweep_covers_at_least_48_configurations(self, oracle_corpus):
        assert len(oracle_corpus.records) >= 48

    def test_rendering_rows_match(self, oracle_corpus, engine_corpus):
        assert len(engine_corpus.records) == len(oracle_corpus.records)
        for serial, parallel in zip(oracle_corpus.records, engine_corpus.records):
            assert _config_key(serial) == _config_key(parallel)
            serial_features = serial.features.as_dict()
            parallel_features = parallel.features.as_dict()
            for name in serial_features:
                assert serial_features[name] == pytest.approx(parallel_features[name], abs=1e-10)

    def test_synthetic_timings_are_bit_equal(self, oracle_corpus, engine_corpus):
        pairs = [
            (serial, parallel)
            for serial, parallel in zip(oracle_corpus.records, engine_corpus.records)
            if serial.architecture != "cpu-host"
        ]
        assert pairs, "expected synthetic rows in the oracle corpus"
        for serial, parallel in pairs:
            assert serial.phase_seconds == parallel.phase_seconds
            assert serial.build_seconds == parallel.build_seconds
            assert serial.frame_seconds == parallel.frame_seconds

    def test_compositing_rows_match(self, oracle_corpus, engine_corpus):
        assert len(engine_corpus.compositing_records) == len(oracle_corpus.compositing_records)
        for serial, parallel in zip(
            oracle_corpus.compositing_records, engine_corpus.compositing_records
        ):
            assert (serial.algorithm, serial.num_tasks, serial.pixels) == (
                parallel.algorithm,
                parallel.num_tasks,
                parallel.pixels,
            )
            assert serial.average_active_pixels == pytest.approx(
                parallel.average_active_pixels, abs=1e-10
            )
            assert serial.seconds == pytest.approx(parallel.seconds, abs=1e-10)

    def test_no_failures_on_the_happy_path(self, engine_corpus):
        assert engine_corpus.failures == []

    def test_engine_corpus_fits_models(self, engine_corpus):
        fitted = engine_corpus.fit_all_models()
        assert len(fitted) == 6
        assert all(np.isfinite(model.r_squared) for model in fitted.values())


# ---------------------------------------------------------------------------
# Resume and failure semantics at the plan level
# ---------------------------------------------------------------------------

# Synthetic + compositing only (no host rendering): executes in milliseconds.
FAST_CONFIG = StudyConfiguration(
    architectures=("gpu1-k40m",),
    samples_per_technique=6,
    seed=21,
    compositing_task_counts=(2, 4),
    compositing_pixel_sizes=(32,),
)


class TestResumeSemantics:
    def test_killed_sweep_resumes_without_rerunning(self, tmp_path):
        cache = CorpusCache(tmp_path / "cache")
        plan = build_plan(FAST_CONFIG)
        half = len(plan.specs) // 2

        # A sweep killed halfway: only the first half of the plan finished
        # (every finished row is in the cache, nothing else is).
        partial = dataclasses.replace(plan, specs=plan.specs[:half])
        _corpus, report = run_plan(partial, jobs=1, cache=cache, resume=True)
        assert report.executed == half

        # The restarted sweep completes from cache: finished configs are
        # never re-executed, the rest run now.
        corpus, report = run_plan(plan, jobs=1, cache=cache, resume=True)
        assert report.cache_hits == half
        assert report.executed == len(plan.specs) - half
        assert len(corpus.records) + len(corpus.compositing_records) == len(plan.specs)

        # A third run is 100% cache hits (the CI sweep-smoke assertion).
        _corpus, report = run_plan(plan, jobs=1, cache=cache, resume=True)
        assert report.cache_hits == len(plan.specs)
        assert report.executed == 0

    def test_resumed_rows_equal_fresh_rows(self, tmp_path):
        plan = build_plan(FAST_CONFIG)
        fresh, _ = run_plan(plan, jobs=1)
        cache = CorpusCache(tmp_path / "cache")
        run_plan(plan, jobs=1, cache=cache)
        resumed, report = run_plan(plan, jobs=1, cache=cache, resume=True)
        assert report.executed == 0
        for a, b in zip(fresh.records, resumed.records):
            assert _config_key(a) == _config_key(b)
            assert a.phase_seconds == b.phase_seconds

    def test_strict_run_raises_instead_of_shrinking_the_corpus(self):
        # Library entry points keep the pre-engine contract: an experiment
        # failure is loud, never a silently smaller corpus under the fits.
        config = StudyConfiguration(
            architectures=("cpu-host",),
            techniques=("not-a-technique",),
            samples_per_technique=2,
            task_counts=(1,),
            seed=5,
        )
        harness = StudyHarness(config)
        with pytest.raises(RuntimeError, match="experiments failed"):
            harness.run(include_compositing=False)
        corpus = harness.run(include_compositing=False, strict=False)
        assert len(corpus.failures) == 2 and corpus.records == []

    def test_broken_config_records_failure_row(self):
        plan = build_plan(FAST_CONFIG, include_compositing=False)
        specs = list(plan.specs)
        specs[3] = dataclasses.replace(specs[3], technique="does-not-exist")
        broken = dataclasses.replace(plan, specs=specs)
        corpus, report = run_plan(broken, jobs=1)
        assert report.failed == 1
        assert len(corpus.records) == len(specs) - 1
        [failure] = corpus.failures
        assert failure.kind == "synthetic"
        assert failure.reason == "error"
        assert failure.spec["technique"] == "does-not-exist"
        # Failure rows never block fitting the healthy slice of the corpus.
        assert corpus.fit_all_models()


# ---------------------------------------------------------------------------
# Corpus serialization and the CLI
# ---------------------------------------------------------------------------

class TestCorpusIO:
    def test_round_trip_with_failures(self, tmp_path):
        corpus, _ = run_plan(build_plan(FAST_CONFIG), jobs=1)
        corpus.failures.append(
            FailureRecord(
                kind="render", reason="timeout", spec={"technique": "raytrace"}, message="slow"
            )
        )
        path = corpus_io.save_corpus(corpus, tmp_path / "corpus.json")
        loaded = corpus_io.load_corpus(path)
        assert len(loaded.records) == len(corpus.records)
        assert len(loaded.compositing_records) == len(corpus.compositing_records)
        assert len(loaded.failures) == 1
        assert loaded.failures[0].reason == "timeout"
        for a, b in zip(corpus.records, loaded.records):
            assert a == b

    def test_payload_without_failures_section_loads(self):
        corpus = corpus_io.corpus_from_payload({"schema": 1, "records": [], "compositing_records": []})
        assert corpus.failures == []

    def test_merge(self):
        first, _ = run_plan(build_plan(FAST_CONFIG, include_compositing=False), jobs=1)
        second, _ = run_plan(build_plan(FAST_CONFIG), jobs=1)
        merged = corpus_io.merge_corpora([first, second])
        assert len(merged.records) == len(first.records) + len(second.records)
        assert len(merged.compositing_records) == len(second.compositing_records)


class TestCLI:
    ARGS = ["--preset", "default", "--architectures", "gpu1-k40m", "--samples", "4", "--seed", "3"]

    def test_plan_subcommand(self, tmp_path, capsys):
        out = tmp_path / "plan.json"
        assert study_cli.main(["plan", *self.ARGS, "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert len(payload["specs"]) > 0
        assert "plan:" in capsys.readouterr().out

    def test_run_resume_and_require_cached(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        out = str(tmp_path / "corpus.json")
        args = ["run", *self.ARGS, "--no-compositing", "--cache-dir", cache_dir, "--out", out]
        assert study_cli.main(args) == 0
        # Nothing was cached-read on a cold run, so --require-cached fails...
        assert study_cli.main([*args, "--require-cached"]) == 3
        # ...and passes once --resume reuses the rows the cold run wrote.
        assert study_cli.main([*args, "--resume", "--require-cached"]) == 0
        capsys.readouterr()
        corpus = corpus_io.load_corpus(out)
        assert len(corpus.records) == 3 * 4

    def test_resume_without_cache_dir_is_a_usage_error(self, tmp_path, capsys):
        out = str(tmp_path / "corpus.json")
        assert study_cli.main(["run", *self.ARGS, "--resume", "--out", out]) == 2
        assert study_cli.main(["run", *self.ARGS, "--require-cached", "--out", out]) == 2
        assert "--cache-dir" in capsys.readouterr().err

    def test_fit_subcommand(self, tmp_path, capsys):
        out = str(tmp_path / "corpus.json")
        assert study_cli.main(["run", *self.ARGS, "--out", out]) == 0
        assert study_cli.main(["fit", out]) == 0
        assert "R^2" in capsys.readouterr().out

    def test_merge_subcommand(self, tmp_path, capsys):
        a = str(tmp_path / "a.json")
        b = str(tmp_path / "b.json")
        merged = str(tmp_path / "merged.json")
        assert study_cli.main(["run", *self.ARGS, "--no-compositing", "--out", a]) == 0
        assert study_cli.main(["run", *self.ARGS, "--no-compositing", "--out", b]) == 0
        assert study_cli.main(["merge", merged, a, b]) == 0
        capsys.readouterr()
        assert len(corpus_io.load_corpus(merged).records) == 2 * 3 * 4
