"""Tests for the simulated MPI runtime, domain decomposition, and sort-last compositing."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compositing import Compositor, SubImage, composite_pixels
from repro.compositing.algorithms import factor_radices
from repro.compositing.image import from_framebuffer
from repro.rendering.framebuffer import Framebuffer
from repro.runtime import BlockDecomposition, NetworkModel, SimulatedCommunicator, factor_into_blocks


def _random_framebuffers(rng, count, width=17, height=11, alpha=1.0):
    framebuffers = []
    for rank in range(count):
        fb = Framebuffer(width, height)
        mask = rng.random((height, width)) < 0.5
        n = int(mask.sum())
        fb.rgba[mask] = np.column_stack([rng.random((n, 3)), np.full(n, alpha)])
        fb.depth[mask] = rng.random(n) * 5.0 + rank * 0.1
        framebuffers.append(fb)
    return framebuffers


class TestCommunicator:
    def test_send_recv_roundtrip(self):
        world = SimulatedCommunicator(3)
        world.rank(0).send(2, np.arange(4), tag=5)
        received = world.rank(2).recv(0, tag=5)
        assert np.array_equal(received, np.arange(4))

    def test_missing_message_raises(self):
        world = SimulatedCommunicator(2)
        with pytest.raises(RuntimeError):
            world.rank(1).recv(0)

    def test_byte_accounting(self):
        world = SimulatedCommunicator(2)
        payload = np.zeros(100, dtype=np.float64)
        world.rank(0).send(1, payload)
        assert world.total_bytes() == pytest.approx(payload.nbytes)
        assert world.total_messages() == 1
        assert world.estimate_time() > 0.0

    def test_round_accounting_is_critical_path(self):
        network = NetworkModel(latency_seconds=1.0, bandwidth_bytes_per_second=1e12)
        world = SimulatedCommunicator(4, network)
        # Two sends to *different* destinations: fully concurrent, ~1 latency.
        world.rank(0).send(1, np.zeros(10))
        world.rank(2).send(3, np.zeros(10))
        single_round = world.estimate_time()
        world.next_round()
        world.rank(0).send(1, np.zeros(10))
        two_rounds = world.estimate_time()
        assert single_round == pytest.approx(1.0, rel=1e-6)
        assert two_rounds == pytest.approx(2.0, rel=1e-6)

    def test_concurrent_messages_into_one_link_serialize(self):
        network = NetworkModel(latency_seconds=1.0, bandwidth_bytes_per_second=1e12)
        world = SimulatedCommunicator(3, network)
        # Both sends land on rank 1's ingress link: they serialize, ~2 latencies.
        world.rank(0).send(1, np.zeros(10))
        world.rank(2).send(1, np.zeros(10))
        assert world.estimate_time() == pytest.approx(2.0, rel=1e-6)

    def test_ingress_contention_flag_restores_egress_only_model(self):
        network = NetworkModel(
            latency_seconds=1.0, bandwidth_bytes_per_second=1e12, ingress_contention=False
        )
        world = SimulatedCommunicator(3, network)
        world.rank(0).send(1, np.zeros(10))
        world.rank(2).send(1, np.zeros(10))
        # Legacy model only weighs the send side: the fan-in is free.
        assert world.estimate_time() == pytest.approx(1.0, rel=1e-6)

    def test_gather(self):
        world = SimulatedCommunicator(3)
        results = []
        for rank in (1, 2, 0):
            results.append(world.rank(rank).gather(rank * 10, root=0))
        gathered = [r for r in results if r is not None][0]
        assert gathered == [0, 10, 20]

    def test_invalid_ranks(self):
        world = SimulatedCommunicator(2)
        with pytest.raises(IndexError):
            world.rank(5)
        with pytest.raises(IndexError):
            world.rank(0).send(7, 1)
        with pytest.raises(ValueError):
            SimulatedCommunicator(0)


class TestCommunicatorAccounting:
    """estimate_time vs a hand-computed round log, and accounting isolation."""

    def test_estimate_time_matches_hand_computed_round_log(self):
        latency, bandwidth = 2e-3, 1e6
        network = NetworkModel(latency_seconds=latency, bandwidth_bytes_per_second=bandwidth)
        world = SimulatedCommunicator(4, network)
        # Round 0: rank 0 sends 8000 B in two messages; rank 1 sends 4000 B in one.
        world.rank(0).send(1, np.zeros(500))   # 4000 B
        world.rank(0).send(2, np.zeros(500))   # 4000 B
        world.rank(1).send(3, np.zeros(500))   # 4000 B
        world.next_round()
        # Round 1: rank 2 sends 16000 B in one message.
        world.rank(2).send(0, np.zeros(2000))  # 16000 B
        world.next_round()
        # Round 2: empty (contributes nothing).
        round0 = max(2 * latency + 8000 / bandwidth, latency + 4000 / bandwidth)
        round1 = latency + 16000 / bandwidth
        assert world.estimate_time() == pytest.approx(round0 + round1, rel=1e-12)
        # The public round log exposes exactly the per-rank (bytes, messages)
        # terms the estimate is built from.
        totals = world.round_totals()
        assert len(totals) == 3
        assert totals[0][0] == (8000.0, 2)
        assert totals[0][1] == (4000.0, 1)
        assert totals[1][2] == (16000.0, 1)
        assert totals[2] == {}
        recomputed = sum(
            max(
                (network.transfer_seconds(nbytes, messages) for nbytes, messages in log.values()),
                default=0.0,
            )
            for log in totals
        )
        assert recomputed == pytest.approx(world.estimate_time(), rel=1e-12)

    def test_exchange_records_wire_bytes_and_delivers_in_order(self):
        network = NetworkModel(latency_seconds=1.0, bandwidth_bytes_per_second=1e9)
        world = SimulatedCommunicator(3, network)
        payload = np.zeros(10)
        delivered = world.exchange(
            [
                (0, 2, payload, 123.0),   # explicit wire size overrides the estimate
                (1, 2, payload),          # falls back to the payload's 80 B
                (2, 0, payload, 7.0),
            ]
        )
        assert [source for source, _ in delivered[2]] == [0, 1]
        assert delivered[0][0][0] == 2
        totals = world.round_totals()[0]
        assert totals[0] == (123.0, 1)
        assert totals[1] == (80.0, 1)
        assert totals[2] == (7.0, 1)
        with pytest.raises(IndexError):
            world.exchange([(0, 9, payload)])
        with pytest.raises(IndexError):
            world.exchange([(-1, 0, payload)])

    def test_reset_accounting_isolates_composites(self, rng):
        """Reusing one communicator across composites must not leak traffic."""
        network = NetworkModel(latency_seconds=1e-4, bandwidth_bytes_per_second=1e9)
        world = SimulatedCommunicator(2, network)
        world.rank(0).send(1, np.zeros(1000))
        world.next_round()
        first_estimate = world.estimate_time()
        first_bytes = world.total_bytes()
        assert first_estimate > 0.0 and first_bytes == 8000.0
        world.reset_accounting()
        assert world.estimate_time() == 0.0
        assert world.total_bytes() == 0.0
        assert world.total_messages() == 0
        assert world.round_totals() == [{}]
        # A second, smaller composite is accounted from scratch.
        world.rank(1).send(0, np.zeros(10))
        assert world.total_bytes() == 80.0
        assert world.estimate_time() == pytest.approx(network.transfer_seconds(80.0, 1), rel=1e-12)

    def test_compositor_runs_are_isolated(self, rng):
        """Back-to-back composites report identical accounting (fresh comm each)."""
        framebuffers = _random_framebuffers(rng, 4)
        compositor = Compositor("binary-swap")
        first = compositor.composite([fb.copy() for fb in framebuffers], mode="depth")
        second = compositor.composite([fb.copy() for fb in framebuffers], mode="depth")
        assert first.bytes_exchanged == second.bytes_exchanged
        assert first.messages == second.messages
        assert first.network_seconds == pytest.approx(second.network_seconds, rel=1e-12)


class TestDecomposition:
    @given(st.integers(1, 64))
    @settings(max_examples=40, deadline=None)
    def test_factor_into_blocks_product(self, n):
        grid = factor_into_blocks(n)
        assert np.prod(grid) == n
        assert all(g >= 1 for g in grid)

    def test_block_bounds_tile_domain(self):
        decomposition = BlockDecomposition(num_tasks=8, cells_per_task=4)
        total_volume = sum(np.prod(decomposition.block_bounds(rank).extent) for rank in range(8))
        assert total_volume == pytest.approx(np.prod(decomposition.global_bounds.extent))
        assert decomposition.total_cells == 8 * 4**3

    def test_block_grids_cover_global_bounds(self):
        decomposition = BlockDecomposition(num_tasks=4, cells_per_task=3)
        for rank in range(4):
            grid = decomposition.block_grid_for_rank(rank)
            assert decomposition.global_bounds.contains_points(grid.points(), tol=1e-9).all()

    def test_field_continuous_across_blocks(self):
        decomposition = BlockDecomposition(num_tasks=2, cells_per_task=4)
        field = lambda pts: pts[:, 0] + 2 * pts[:, 1]
        grids = [decomposition.block_grid_with_field(rank, "f", field) for rank in range(2)]
        # Shared face points must carry identical values.
        points_a, points_b = grids[0].points(), grids[1].points()
        values_a, values_b = grids[0].point_fields["f"], grids[1].point_fields["f"]
        shared_a = values_a[np.isclose(points_a[:, 0], decomposition.block_bounds(0).high[0])]
        shared_b = values_b[np.isclose(points_b[:, 0], decomposition.block_bounds(1).low[0])]
        assert np.allclose(np.sort(shared_a), np.sort(shared_b))

    def test_neighbors_symmetric(self):
        decomposition = BlockDecomposition(num_tasks=8, cells_per_task=2)
        for rank in range(8):
            for neighbor in decomposition.neighbor_ranks(rank):
                assert rank in decomposition.neighbor_ranks(neighbor)

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockDecomposition(num_tasks=0, cells_per_task=4)
        with pytest.raises(ValueError):
            BlockDecomposition(num_tasks=4, cells_per_task=4, block_grid=(1, 1, 3))
        with pytest.raises(IndexError):
            BlockDecomposition(num_tasks=2, cells_per_task=2).block_index(5)


class TestCompositePixels:
    def test_depth_mode_picks_nearer(self):
        rgba, depth = composite_pixels(
            np.array([[1.0, 0, 0, 1]]), np.array([2.0]), np.array([[0, 1.0, 0, 1]]), np.array([1.0]), "depth"
        )
        assert rgba[0, 1] == 1.0
        assert depth[0] == 1.0

    def test_over_mode_blends(self):
        rgba, depth = composite_pixels(
            np.array([[1.0, 0, 0, 0.5]]), np.array([0.0]), np.array([[0, 1.0, 0, 1.0]]), np.array([1.0]), "over"
        )
        assert rgba[0, 3] == pytest.approx(1.0)
        assert depth[0] == 0.0
        assert rgba[0, 0] > 0 and rgba[0, 1] > 0

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            composite_pixels(np.zeros((1, 4)), np.zeros(1), np.zeros((1, 4)), np.zeros(1), "nope")

    def test_subimage_roundtrip(self, rng):
        fb = _random_framebuffers(rng, 1)[0]
        sub = from_framebuffer(fb)
        assert sub.active_pixels() == fb.active_pixels()
        back = sub.to_framebuffer()
        assert np.allclose(back.rgba, fb.rgba)
        assert np.allclose(back.depth, fb.depth)

    def test_subimage_validation(self):
        with pytest.raises(ValueError):
            SubImage(np.zeros((3, 4)), np.zeros(3), 2, 2)


class TestCompositor:
    @pytest.mark.parametrize("algorithm", ["direct-send", "binary-swap", "radix-k"])
    @pytest.mark.parametrize("tasks", [1, 2, 3, 4, 5, 8, 12])
    def test_depth_matches_serial_reference(self, rng, algorithm, tasks):
        framebuffers = _random_framebuffers(rng, tasks)
        result = Compositor(algorithm).composite([fb.copy() for fb in framebuffers], mode="depth")
        reference = Compositor.serial_reference(framebuffers, mode="depth")
        assert np.allclose(result.framebuffer.rgba, reference.rgba)
        assert np.allclose(result.framebuffer.depth, reference.depth)

    @pytest.mark.parametrize("algorithm", ["direct-send", "binary-swap", "radix-k"])
    @pytest.mark.parametrize("tasks", [2, 3, 5, 7, 8, 16])
    def test_over_matches_serial_reference(self, rng, algorithm, tasks):
        framebuffers = _random_framebuffers(rng, tasks, alpha=0.6)
        visibility = list(rng.permutation(tasks).astype(float))
        result = Compositor(algorithm).composite(
            [fb.copy() for fb in framebuffers], mode="over", visibility_order=visibility
        )
        reference = Compositor.serial_reference(framebuffers, mode="over", visibility_order=visibility)
        assert np.allclose(result.framebuffer.rgba, reference.rgba, atol=1e-9)

    def test_algorithms_agree_with_each_other(self, rng):
        framebuffers = _random_framebuffers(rng, 6, alpha=0.5)
        visibility = list(np.arange(6, dtype=float))
        images = []
        for algorithm in ("direct-send", "binary-swap", "radix-k"):
            result = Compositor(algorithm).composite(
                [fb.copy() for fb in framebuffers], mode="over", visibility_order=visibility
            )
            images.append(result.framebuffer.rgba)
        assert np.allclose(images[0], images[1], atol=1e-9)
        assert np.allclose(images[0], images[2], atol=1e-9)

    def test_result_accounting(self, rng):
        framebuffers = _random_framebuffers(rng, 4)
        result = Compositor("radix-k").composite(framebuffers, mode="depth")
        assert result.bytes_exchanged > 0
        assert result.messages > 0
        assert result.merge_operations > 0
        assert result.network_seconds > 0
        assert result.total_seconds >= result.local_seconds
        assert result.num_tasks == 4
        assert result.average_active_pixels > 0

    def test_more_pixels_more_bytes(self, rng):
        small = Compositor("radix-k").composite(_random_framebuffers(rng, 4, width=8, height=8), mode="depth")
        large = Compositor("radix-k").composite(_random_framebuffers(rng, 4, width=32, height=32), mode="depth")
        assert large.bytes_exchanged > small.bytes_exchanged

    def test_validation(self, rng):
        framebuffers = _random_framebuffers(rng, 2)
        with pytest.raises(ValueError):
            Compositor("nope")
        with pytest.raises(ValueError):
            Compositor().composite([], mode="depth")
        with pytest.raises(ValueError):
            Compositor().composite(framebuffers, mode="over")
        with pytest.raises(ValueError):
            Compositor().composite(framebuffers, mode="over", visibility_order=[0.0])
        with pytest.raises(ValueError):
            Compositor().composite(framebuffers, mode="nope")

    def test_factor_radices(self):
        for n in (1, 2, 3, 4, 6, 8, 12, 16, 30):
            assert int(np.prod(factor_radices(n))) == n
        with pytest.raises(ValueError):
            factor_radices(0)

    def test_single_task_identity(self, rng):
        framebuffers = _random_framebuffers(rng, 1)
        result = Compositor("binary-swap").composite([framebuffers[0].copy()], mode="depth")
        assert np.allclose(result.framebuffer.rgba, framebuffers[0].rgba)
