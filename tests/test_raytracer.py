"""Tests for the BVH builders, traversal kernels, shading, and the ray-tracing pipeline."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Camera, TriangleMesh
from repro.rendering.raytracer import RayTracer, RayTracerConfig, Workload, build_bvh
from repro.rendering.raytracer.shading import hemisphere_samples, occlusion_to_ambient
from repro.rendering.raytracer.traversal import (
    any_hit,
    brute_force_closest_hit,
    closest_hit,
    moller_trumbore,
    ray_aabb_intersect,
)
from repro.rendering.scene import Light, Material, Scene


def _random_triangle_soup(rng, count: int) -> TriangleMesh:
    vertices = rng.random((count * 3, 3))
    triangles = np.arange(count * 3).reshape(count, 3)
    return TriangleMesh(vertices, triangles, rng.random(count * 3))


class TestBVH:
    @pytest.mark.parametrize("method", ["lbvh", "sah"])
    def test_containment_invariant(self, small_surface, method):
        bvh = build_bvh(small_surface, leaf_size=4, method=method)
        assert bvh.validate(small_surface)

    @pytest.mark.parametrize("method", ["lbvh", "sah"])
    def test_random_soup_containment(self, rng, method):
        mesh = _random_triangle_soup(rng, 50)
        bvh = build_bvh(mesh, leaf_size=2, method=method)
        assert bvh.validate(mesh)
        assert bvh.num_primitives == 50

    def test_leaf_size_respected(self, small_surface):
        bvh = build_bvh(small_surface, leaf_size=2)
        leaves = bvh.primitive_count[bvh.primitive_count > 0]
        assert leaves.max() <= 2

    def test_single_triangle(self):
        mesh = TriangleMesh(np.eye(3), np.array([[0, 1, 2]]))
        bvh = build_bvh(mesh)
        assert bvh.num_nodes == 1
        assert bvh.is_leaf(0)

    def test_invalid_inputs(self, small_surface):
        with pytest.raises(ValueError):
            build_bvh(TriangleMesh(np.zeros((0, 3)), np.zeros((0, 3), dtype=np.int64)))
        with pytest.raises(ValueError):
            build_bvh(small_surface, leaf_size=0)
        with pytest.raises(ValueError):
            build_bvh(small_surface, method="nope")

    def test_sah_not_deeper_than_worst_case(self, small_surface):
        bvh = build_bvh(small_surface, method="sah")
        assert bvh.max_depth() <= small_surface.num_triangles


class TestIntersection:
    def test_moller_trumbore_hit_and_miss(self):
        v0, v1, v2 = np.array([0.0, 0.0, 0.0]), np.array([1.0, 0.0, 0.0]), np.array([0.0, 1.0, 0.0])
        origin = np.array([[0.25, 0.25, 1.0], [2.0, 2.0, 1.0]])
        direction = np.array([[0.0, 0.0, -1.0], [0.0, 0.0, -1.0]])
        hit, t, u, v = moller_trumbore(origin, direction, v0, v1, v2)
        assert hit.tolist() == [True, False]
        assert t[0] == pytest.approx(1.0)
        assert u[0] + v[0] <= 1.0

    def test_moller_trumbore_parallel_ray(self):
        v0, v1, v2 = np.zeros(3), np.array([1.0, 0.0, 0.0]), np.array([0.0, 1.0, 0.0])
        hit, t, _, _ = moller_trumbore(
            np.array([[0.0, 0.0, 1.0]]), np.array([[1.0, 0.0, 0.0]]), v0, v1, v2
        )
        assert not hit[0]
        assert np.isinf(t[0])

    def test_ray_aabb(self):
        origins = np.array([[0.0, 0.0, -5.0], [5.0, 5.0, -5.0]])
        inv_dirs = 1.0 / np.array([[1e-12, 1e-12, 1.0], [1e-12, 1e-12, 1.0]])
        hit = ray_aabb_intersect(
            origins, inv_dirs, np.zeros(3) - 1.0, np.zeros(3) + 1.0, np.zeros(2), np.full(2, np.inf)
        )
        assert hit.tolist() == [True, False]

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_bvh_matches_brute_force(self, small_surface, small_camera, seed):
        rng = np.random.default_rng(seed)
        pixel_ids = rng.integers(0, small_camera.width * small_camera.height, size=40)
        origins, directions = small_camera.generate_rays(pixel_ids)
        bvh = build_bvh(small_surface)
        fast = closest_hit(bvh, small_surface, origins, directions)
        slow = brute_force_closest_hit(small_surface, origins, directions)
        assert np.array_equal(fast.hit_mask, slow.hit_mask)
        assert np.allclose(fast.t[fast.hit_mask], slow.t[slow.hit_mask], rtol=1e-9)

    def test_any_hit_consistent_with_closest_hit(self, small_surface, small_camera):
        origins, directions = small_camera.generate_rays()
        bvh = build_bvh(small_surface)
        record = closest_hit(bvh, small_surface, origins, directions)
        occluded = any_hit(bvh, small_surface, origins, directions)
        assert np.array_equal(occluded, record.hit_mask)

    def test_any_hit_distance_limit(self, small_surface, small_camera):
        origins, directions = small_camera.generate_rays()
        bvh = build_bvh(small_surface)
        none_occluded = any_hit(bvh, small_surface, origins, directions, t_max=1e-6)
        assert not none_occluded.any()

    def test_nodes_visited_positive_for_hits(self, small_surface, small_camera):
        origins, directions = small_camera.generate_rays()
        bvh = build_bvh(small_surface)
        record = closest_hit(bvh, small_surface, origins, directions)
        assert np.all(record.nodes_visited[record.hit_mask] >= 1)


class TestShading:
    def test_hemisphere_samples_in_hemisphere(self, rng):
        normals = rng.standard_normal((20, 3))
        normals /= np.linalg.norm(normals, axis=1, keepdims=True)
        samples = hemisphere_samples(normals, 8, rng)
        assert samples.shape == (160, 3)
        dots = np.einsum("ij,ij->i", samples.reshape(20, 8, 3).reshape(-1, 3), np.repeat(normals, 8, axis=0))
        assert np.all(dots > -1e-9)
        assert np.allclose(np.linalg.norm(samples, axis=1), 1.0)

    def test_hemisphere_samples_validation(self, rng):
        with pytest.raises(ValueError):
            hemisphere_samples(np.ones((2, 3)), 0, rng)

    def test_occlusion_to_ambient(self):
        occluded = np.array([True, True, False, False, False, False, False, False])
        ambient = occlusion_to_ambient(occluded, 4)
        assert ambient.tolist() == [0.5, 1.0]

    def test_scene_defaults(self, small_surface):
        scene = Scene(small_surface)
        assert len(scene.lights) == 1
        assert scene.scalar_range is not None
        colors = scene.vertex_colors()
        assert colors.shape == (small_surface.num_vertices, 3)
        assert colors.min() >= 0.0 and colors.max() <= 1.0

    def test_light_and_material_validation(self):
        with pytest.raises(ValueError):
            Light(np.zeros(2))
        with pytest.raises(ValueError):
            Light(np.zeros(3), intensity=100.0)
        assert Material().shininess > 0


class TestPipeline:
    @pytest.mark.parametrize("workload", [Workload.INTERSECTION_ONLY, Workload.SHADING, Workload.FULL])
    def test_workloads_render(self, small_scene, small_camera, workload):
        tracer = RayTracer(small_scene, RayTracerConfig(workload=workload, ao_samples=2))
        result = tracer.render(small_camera)
        assert result.technique == "raytrace"
        assert result.features.objects == small_scene.num_triangles
        assert 0 < result.features.active_pixels <= small_camera.width * small_camera.height
        assert result.framebuffer.active_pixels() > 0
        assert "trace" in result.phase_seconds
        assert result.total_seconds > 0

    def test_full_workload_adds_phases(self, small_scene, small_camera):
        tracer = RayTracer(small_scene, RayTracerConfig(workload=Workload.FULL, ao_samples=2))
        result = tracer.render(small_camera)
        assert "ambient_occlusion" in result.phase_seconds
        assert "shadows" in result.phase_seconds
        assert "compaction" in result.phase_seconds

    def test_bvh_cached_across_renders(self, small_scene, small_camera):
        tracer = RayTracer(small_scene, RayTracerConfig(workload=Workload.SHADING))
        first = tracer.render(small_camera)
        second = tracer.render(small_camera)
        assert first.phase_seconds["bvh_build"] == second.phase_seconds["bvh_build"]
        assert second.seconds_excluding("bvh_build") < second.total_seconds

    def test_shading_images_differ_from_depth_images(self, small_scene, small_camera):
        flat = RayTracer(small_scene, RayTracerConfig(workload=Workload.INTERSECTION_ONLY)).render(small_camera)
        shaded = RayTracer(small_scene, RayTracerConfig(workload=Workload.SHADING)).render(small_camera)
        assert not np.allclose(flat.framebuffer.rgba, shaded.framebuffer.rgba)

    def test_supersampling_covers_same_pixels(self, small_scene, small_camera):
        plain = RayTracer(small_scene, RayTracerConfig(workload=Workload.SHADING, supersample=1)).render(small_camera)
        anti = RayTracer(small_scene, RayTracerConfig(workload=Workload.SHADING, supersample=4)).render(small_camera)
        # Anti-aliasing may add boundary pixels but should not lose interior coverage.
        assert anti.features.active_pixels >= 0.9 * plain.features.active_pixels

    def test_reflections_option(self, small_scene, small_camera):
        config = RayTracerConfig(workload=Workload.SHADING, reflections=True)
        result = RayTracer(small_scene, config).render(small_camera)
        assert "reflections" in result.phase_seconds

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RayTracerConfig(supersample=3)
        with pytest.raises(ValueError):
            RayTracerConfig(ao_samples=0)
        assert RayTracerConfig(workload=2).workload is Workload.SHADING

    def test_empty_scene_hits_nothing(self, small_camera):
        # A distant tiny triangle that the camera does not see.
        mesh = TriangleMesh(np.eye(3) * 1e-6 + 1e6, np.array([[0, 1, 2]]))
        result = RayTracer(Scene(mesh), RayTracerConfig(workload=Workload.SHADING)).render(small_camera)
        assert result.features.active_pixels == 0
