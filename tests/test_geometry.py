"""Tests for the geometry substrate: meshes, AABBs, transforms, extraction filters."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    AABB,
    Camera,
    RectilinearGrid,
    StructuredGrid,
    TriangleMesh,
    UniformGrid,
    UnstructuredHexMesh,
    UnstructuredTetMesh,
    aabb_union,
    external_faces,
    hex_to_tets,
    isosurface_marching_tets,
    make_named_dataset,
    quad_to_triangles,
    tetrahedralize_uniform_grid,
    triangle_aabbs,
)
from repro.geometry.aabb import points_aabb
from repro.geometry.transforms import look_at_matrix, perspective_matrix, project_points


class TestAABB:
    def test_properties(self):
        box = AABB(np.zeros(3), np.array([1.0, 2.0, 3.0]))
        assert box.extent.tolist() == [1.0, 2.0, 3.0]
        assert box.center.tolist() == [0.5, 1.0, 1.5]
        assert box.surface_area == pytest.approx(2 * (1 * 2 + 2 * 3 + 3 * 1))
        assert box.diagonal == pytest.approx(np.sqrt(14.0))
        assert box.is_valid()

    def test_contains_and_union(self):
        a = AABB(np.zeros(3), np.ones(3))
        b = AABB(np.ones(3) * 2, np.ones(3) * 3)
        union = a.union(b)
        assert union.contains_points(np.array([[0.5, 0.5, 0.5], [2.5, 2.5, 2.5]])).all()
        assert not a.contains_points(np.array([[1.5, 0.5, 0.5]]))[0]
        assert aabb_union([a, b]).extent.tolist() == union.extent.tolist()

    def test_expanded(self):
        box = AABB(np.zeros(3), np.ones(3)).expanded(0.5)
        assert box.low.tolist() == [-0.5, -0.5, -0.5]

    def test_validation(self):
        with pytest.raises(ValueError):
            AABB(np.zeros(2), np.zeros(2))
        with pytest.raises(ValueError):
            aabb_union([])
        with pytest.raises(ValueError):
            points_aabb(np.zeros((0, 3)))

    def test_triangle_aabbs_contain_corners(self, rng):
        vertices = rng.random((30, 3))
        triangles = rng.integers(0, 30, size=(20, 3))
        lows, highs = triangle_aabbs(vertices, triangles)
        corners = vertices[triangles]
        assert np.all(corners >= lows[:, None, :] - 1e-12)
        assert np.all(corners <= highs[:, None, :] + 1e-12)


class TestGrids:
    def test_uniform_grid_counts_and_bounds(self):
        grid = UniformGrid((3, 4, 5), origin=(1, 2, 3), spacing=(0.5, 1.0, 2.0))
        assert grid.num_points == 3 * 4 * 5
        assert grid.num_cells == 2 * 3 * 4
        assert grid.bounds.low.tolist() == [1, 2, 3]
        assert grid.bounds.high.tolist() == [1 + 1.0, 2 + 3.0, 3 + 8.0]
        assert grid.points().shape == (grid.num_points, 3)
        assert grid.cell_centers().shape == (grid.num_cells, 3)

    def test_uniform_grid_validation(self):
        with pytest.raises(ValueError):
            UniformGrid((1, 2, 2))
        with pytest.raises(ValueError):
            UniformGrid((2, 2, 2), spacing=(0, 1, 1))

    def test_field_management(self):
        grid = UniformGrid((3, 3, 3))
        grid.add_point_field("f", np.arange(27))
        grid.add_cell_field("g", np.arange(8))
        assert grid.field("f")[0] == "point"
        assert grid.field("g")[0] == "cell"
        with pytest.raises(ValueError):
            grid.add_point_field("bad", np.arange(5))
        with pytest.raises(KeyError):
            grid.field("missing")

    def test_point_field_as_volume_layout(self):
        grid = UniformGrid((3, 4, 5))
        grid.add_point_field("f", np.arange(grid.num_points, dtype=float))
        volume = grid.point_field_as_volume("f")
        assert volume.shape == (5, 4, 3)
        # x is the fastest-varying index.
        assert volume[0, 0, 1] - volume[0, 0, 0] == 1.0

    def test_rectilinear_grid(self):
        grid = RectilinearGrid(np.array([0.0, 1.0, 3.0]), np.array([0.0, 2.0]), np.array([0.0, 1.0, 2.0]))
        assert grid.num_cells == 2 * 1 * 2
        assert grid.bounds.high.tolist() == [3.0, 2.0, 2.0]
        resampled = grid.to_uniform_resampled()
        assert isinstance(resampled, UniformGrid)
        assert resampled.dims == grid.dims

    def test_rectilinear_validation(self):
        with pytest.raises(ValueError):
            RectilinearGrid(np.array([0.0, -1.0]), np.array([0.0, 1.0]), np.array([0.0, 1.0]))

    def test_structured_grid(self):
        base = UniformGrid((3, 3, 3))
        grid = StructuredGrid((3, 3, 3), base.points())
        assert grid.num_cells == 8
        assert grid.cell_centers().shape == (8, 3)

    def test_hex_connectivity_references_valid_points(self):
        grid = UniformGrid((4, 3, 3))
        connectivity = grid.cell_connectivity()
        assert connectivity.shape == (grid.num_cells, 8)
        assert connectivity.min() >= 0
        assert connectivity.max() < grid.num_points
        # Each hex has 8 distinct corners.
        assert all(len(set(row)) == 8 for row in connectivity.tolist())

    def test_unstructured_hex_from_structured(self):
        grid = UniformGrid((3, 3, 3))
        grid.add_point_field("f", np.arange(27))
        mesh = UnstructuredHexMesh.from_structured(grid)
        assert mesh.num_cells == grid.num_cells
        assert "f" in mesh.point_fields
        with pytest.raises(IndexError):
            UnstructuredHexMesh(mesh.points(), np.full((1, 8), 999))

    def test_tet_mesh_volumes(self):
        grid = UniformGrid((3, 3, 3))
        tets = tetrahedralize_uniform_grid(grid)
        assert isinstance(tets, UnstructuredTetMesh)
        assert tets.num_cells == grid.num_cells * 5
        # The five-tet decomposition exactly fills the grid volume.
        assert np.abs(tets.cell_volumes()).sum() == pytest.approx(np.prod(grid.bounds.extent))


class TestTriangles:
    def test_quad_to_triangles(self):
        quads = np.array([[0, 1, 2, 3]])
        triangles = quad_to_triangles(quads)
        assert triangles.tolist() == [[0, 1, 2], [0, 2, 3]]
        with pytest.raises(ValueError):
            quad_to_triangles(np.array([[0, 1, 2]]))

    def test_external_faces_counts(self):
        grid = UniformGrid((5, 5, 5))
        grid.add_point_field("f", np.arange(grid.num_points, dtype=float))
        surface = external_faces(grid, scalar_field="f")
        # 6 faces x 4x4 quads x 2 triangles.
        assert surface.num_triangles == 6 * 16 * 2
        assert surface.scalars is not None
        assert surface.num_vertices <= grid.num_points

    def test_external_faces_cell_field_averaged(self):
        grid = UniformGrid((4, 4, 4))
        grid.add_cell_field("c", np.arange(grid.num_cells, dtype=float))
        surface = external_faces(grid, scalar_field="c")
        assert surface.scalars is not None
        assert len(surface.scalars) == surface.num_vertices

    def test_triangle_mesh_quantities(self, small_surface):
        normals = small_surface.normals()
        assert np.allclose(np.linalg.norm(normals, axis=1), 1.0, atol=1e-9)
        assert np.all(small_surface.areas() >= 0.0)
        vertex_normals = small_surface.vertex_normals()
        assert vertex_normals.shape == (small_surface.num_vertices, 3)
        centroids = small_surface.centroids()
        assert small_surface.bounds.contains_points(centroids, tol=1e-9).all()

    def test_triangle_mesh_validation(self):
        with pytest.raises(IndexError):
            TriangleMesh(np.zeros((3, 3)), np.array([[0, 1, 5]]))
        with pytest.raises(ValueError):
            TriangleMesh(np.zeros((3, 3)), np.array([[0, 1, 2]]), scalars=np.zeros(2))

    def test_concatenate(self, small_surface):
        combined = small_surface.concatenate(small_surface)
        assert combined.num_triangles == 2 * small_surface.num_triangles
        assert combined.num_vertices == 2 * small_surface.num_vertices


class TestTetrahedra:
    def test_hex_to_tets_field_transfer(self):
        grid = UniformGrid((3, 3, 3))
        grid.add_point_field("p", np.arange(27, dtype=float))
        grid.add_cell_field("c", np.arange(8, dtype=float))
        mesh = UnstructuredHexMesh.from_structured(grid)
        tets = hex_to_tets(mesh)
        assert tets.num_cells == 8 * 5
        assert len(tets.cell_fields["c"]) == tets.num_cells
        assert np.array_equal(tets.point_fields["p"], mesh.point_fields["p"])

    def test_hex_to_tets_parity_validation(self):
        grid = UniformGrid((3, 3, 3))
        mesh = UnstructuredHexMesh.from_structured(grid)
        with pytest.raises(ValueError):
            hex_to_tets(mesh, parity=np.zeros(3, dtype=bool))

    @given(st.integers(2, 4))
    @settings(max_examples=6, deadline=None)
    def test_tetrahedralization_fills_volume(self, n):
        grid = UniformGrid((n + 1, n + 1, n + 1))
        tets = tetrahedralize_uniform_grid(grid)
        assert np.abs(tets.cell_volumes()).sum() == pytest.approx(float(n**3) * (1.0**3))


class TestIsosurface:
    def test_isosurface_on_linear_field_is_planar(self):
        grid = UniformGrid((9, 9, 9), spacing=(1 / 8, 1 / 8, 1 / 8))
        points = grid.points()
        grid.add_point_field("x", points[:, 0])
        surface = isosurface_marching_tets(grid, "x", 0.5)
        assert surface.num_triangles > 0
        # Every generated vertex lies on the x = 0.5 plane.
        assert np.allclose(surface.vertices[:, 0], 0.5, atol=1e-9)

    def test_isosurface_empty_outside_range(self, small_grid):
        surface = isosurface_marching_tets(small_grid, "density", 1e9)
        assert surface.num_triangles == 0

    def test_isosurface_vertices_inside_grid(self, small_grid):
        surface = isosurface_marching_tets(small_grid, "density", 0.5)
        assert small_grid.bounds.contains_points(surface.vertices, tol=1e-9).all()

    def test_isosurface_missing_field(self, small_grid):
        with pytest.raises(KeyError):
            isosurface_marching_tets(small_grid, "nope", 0.5)


class TestCamera:
    def test_rays_normalized_and_through_bounds(self, small_surface):
        camera = Camera.framing_bounds(small_surface.bounds, 32, 32)
        origins, directions = camera.generate_rays()
        assert origins.shape == directions.shape == (32 * 32, 3)
        assert np.allclose(np.linalg.norm(directions, axis=1), 1.0)
        # The central ray should point roughly toward the bounds center.
        center_ray = directions[32 * 16 + 16]
        to_center = small_surface.bounds.center - camera.position
        to_center /= np.linalg.norm(to_center)
        assert np.dot(center_ray, to_center) > 0.95

    def test_world_to_screen_roundtrip_center(self):
        camera = Camera(position=np.array([0.0, 0.0, 5.0]), look_at=np.zeros(3), width=100, height=100)
        screen, w = camera.world_to_screen(np.array([[0.0, 0.0, 0.0]]))
        assert w[0] > 0
        assert screen[0, 0] == pytest.approx(50.0, abs=1e-6)
        assert screen[0, 1] == pytest.approx(50.0, abs=1e-6)

    def test_points_behind_camera_flagged(self):
        camera = Camera(position=np.array([0.0, 0.0, 5.0]), look_at=np.zeros(3))
        _, w = camera.world_to_screen(np.array([[0.0, 0.0, 10.0]]))
        assert w[0] < 0

    def test_depth_along_view_monotonic(self):
        camera = Camera(position=np.array([0.0, 0.0, 5.0]), look_at=np.zeros(3))
        depths = camera.depth_along_view(np.array([[0.0, 0.0, 4.0], [0.0, 0.0, 0.0], [0.0, 0.0, -4.0]]))
        assert depths[0] < depths[1] < depths[2]

    def test_zoom_changes_distance(self, small_surface):
        near = Camera.framing_bounds(small_surface.bounds, 32, 32, zoom=2.0)
        far = Camera.framing_bounds(small_surface.bounds, 32, 32, zoom=0.5)
        center = small_surface.bounds.center
        assert np.linalg.norm(near.position - center) < np.linalg.norm(far.position - center)

    def test_matrix_validation(self):
        with pytest.raises(ValueError):
            perspective_matrix(0.0, 1.0, 0.1, 10.0)
        with pytest.raises(ValueError):
            perspective_matrix(45.0, 1.0, 1.0, 0.5)
        with pytest.raises(ValueError):
            Camera(width=0, height=10)

    def test_look_at_orthonormal(self):
        view = look_at_matrix(np.array([1.0, 2.0, 3.0]), np.zeros(3), np.array([0.0, 1.0, 0.0]))
        rotation = view[:3, :3]
        assert np.allclose(rotation @ rotation.T, np.eye(3), atol=1e-12)

    def test_project_points_zero_w_guard(self):
        matrix = np.zeros((4, 4))
        projected, w = project_points(np.array([[1.0, 1.0, 1.0]]), matrix)
        assert np.all(np.isfinite(projected))


class TestDatasets:
    def test_named_datasets(self):
        for name in ("rm", "enzo", "nek5000", "lead-telluride", "seismic"):
            grid = make_named_dataset(name, (9, 9, 9), seed=1)
            assert grid.num_points == 9**3
            assert len(grid.point_fields) == 1
        with pytest.raises(KeyError):
            make_named_dataset("unknown", (9, 9, 9))

    def test_dataset_deterministic(self):
        a = make_named_dataset("enzo", (9, 9, 9), seed=5)
        b = make_named_dataset("enzo", (9, 9, 9), seed=5)
        field = next(iter(a.point_fields))
        assert np.array_equal(a.point_fields[field], b.point_fields[field])

    def test_dataset_seed_changes_field(self):
        a = make_named_dataset("rm", (9, 9, 9), seed=1)
        b = make_named_dataset("rm", (9, 9, 9), seed=2)
        assert not np.array_equal(a.point_fields["density"], b.point_fields["density"])
