"""Tests for the performance-modeling core: regression, CV, features, models, machines."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machines import ArchitectureSpec, KernelCostModel, get_architecture, list_architectures
from repro.machines.costmodel import synthesize_render_time
from repro.modeling import (
    RasterizationModel,
    RayTracingModel,
    RenderingConfiguration,
    VolumeRenderingModel,
    fit_linear_model,
    k_fold_cross_validation,
    make_model,
    map_configuration_to_features,
)
from repro.modeling.models import CompositingFeatures, CompositingModel, TotalRenderingModel
from repro.modeling.regression import relative_errors
from repro.rendering.result import ObservedFeatures


def _synthetic_features(rng, count, technique="volume"):
    features = []
    for _ in range(count):
        f = ObservedFeatures(
            objects=int(rng.integers(1_000, 100_000)),
            active_pixels=int(rng.integers(1_000, 200_000)),
            cells_spanned=int(rng.integers(8, 64)),
            samples_per_ray=float(rng.uniform(10, 200)),
        )
        if technique == "raster":
            f.visible_objects = int(min(f.active_pixels, f.objects))
            f.pixels_per_triangle = float(rng.uniform(2, 20))
        features.append(f)
    return features


class TestRegression:
    def test_exact_recovery_noise_free(self, rng):
        design = np.column_stack([rng.random(30), rng.random(30), np.ones(30)])
        truth = np.array([2.0, 0.5, 0.1])
        result = fit_linear_model(design, design @ truth, ("a", "b", "c"))
        assert np.allclose(result.coefficients, truth, atol=1e-10)
        assert result.r_squared == pytest.approx(1.0)
        assert result.residual_std == pytest.approx(0.0, abs=1e-10)
        assert result.named_coefficients()["a"] == pytest.approx(2.0)
        assert not result.has_negative_coefficients()

    def test_nonnegative_constraint(self, rng):
        design = np.column_stack([rng.random(40), np.ones(40)])
        response = -design[:, 0] + 1.0  # the unconstrained slope would be negative
        constrained = fit_linear_model(design, response, nonnegative=True)
        assert np.all(constrained.coefficients >= 0.0)
        unconstrained = fit_linear_model(design, response)
        assert unconstrained.coefficients[0] < 0.0

    def test_prediction_and_validation(self, rng):
        design = np.column_stack([rng.random(20), np.ones(20)])
        result = fit_linear_model(design, design @ np.array([1.0, 2.0]))
        assert np.allclose(result.predict(design), design @ np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            result.predict(np.ones((3, 5)))
        with pytest.raises(ValueError):
            fit_linear_model(design[:1], np.ones(1))
        with pytest.raises(ValueError):
            fit_linear_model(design, np.ones(7))

    def test_relative_errors_sign_convention(self):
        errors = relative_errors(np.array([2.0, 2.0]), np.array([1.0, 3.0]))
        assert errors[0] == pytest.approx(0.5)   # under-prediction -> positive
        assert errors[1] == pytest.approx(-0.5)  # over-prediction -> negative

    @given(st.integers(10, 60), st.floats(0.0, 0.2))
    @settings(max_examples=20, deadline=None)
    def test_r_squared_degrades_with_noise(self, n, noise):
        rng = np.random.default_rng(42)
        design = np.column_stack([rng.random(n), np.ones(n)])
        clean = design @ np.array([3.0, 0.5])
        noisy = clean + noise * clean.std() * rng.standard_normal(n) if clean.std() > 0 else clean
        result = fit_linear_model(design, noisy)
        assert 0.0 <= result.r_squared <= 1.0 + 1e-12


class TestCrossValidation:
    def test_perfect_model_perfect_cv(self, rng):
        design = np.column_stack([rng.random(30), np.ones(30)])
        response = design @ np.array([1.5, 0.2])
        summary = k_fold_cross_validation(design, response, k=3, seed=1)
        assert summary.fraction_within(5.0) == pytest.approx(1.0)
        assert summary.average_error_percent < 1e-6
        assert len(summary.errors) == 30
        row = summary.accuracy_row()
        assert row["within_50"] == 100.0

    def test_accuracy_decreases_with_tolerance(self, rng):
        design = np.column_stack([rng.random(40), np.ones(40)])
        response = design @ np.array([1.0, 0.1]) + 0.05 * rng.standard_normal(40)
        summary = k_fold_cross_validation(design, response, k=4, seed=3)
        assert summary.fraction_within(50.0) >= summary.fraction_within(10.0) >= summary.fraction_within(1.0)

    def test_validation_errors(self, rng):
        design = np.ones((4, 1))
        with pytest.raises(ValueError):
            k_fold_cross_validation(design, np.ones(4), k=1)
        with pytest.raises(ValueError):
            k_fold_cross_validation(design, np.ones(4), k=3)

    def test_deterministic_given_seed(self, rng):
        design = np.column_stack([rng.random(30), np.ones(30)])
        response = design @ np.array([1.0, 0.5]) + 0.01 * rng.standard_normal(30)
        a = k_fold_cross_validation(design, response, seed=9)
        b = k_fold_cross_validation(design, response, seed=9)
        assert np.array_equal(a.errors, b.errors)


class TestFeaturesMapping:
    def test_surface_mapping_matches_paper_formulas(self):
        config = RenderingConfiguration("raytrace", "cpu-host", num_tasks=8, cells_per_task=200, image_width=1024, image_height=1024)
        features = map_configuration_to_features(config)
        assert features.objects == 12 * 200 * 200
        expected_ap = 0.55 * 1024 * 1024 / 2.0  # 8 tasks -> cube root 2
        assert features.active_pixels == pytest.approx(expected_ap, abs=1.0)
        assert features.cells_spanned == 200

    def test_raster_mapping_visible_objects(self):
        config = RenderingConfiguration("raster", "cpu-host", num_tasks=1, cells_per_task=50, image_width=256, image_height=256)
        features = map_configuration_to_features(config)
        assert features.visible_objects == min(features.active_pixels, features.objects)
        assert features.pixels_per_triangle == pytest.approx(4.0 * features.active_pixels / features.visible_objects)

    def test_volume_mapping_scales_with_samples(self):
        lo = map_configuration_to_features(
            RenderingConfiguration("volume", "cpu-host", 1, 64, 128, 128, samples_in_depth=500)
        )
        hi = map_configuration_to_features(
            RenderingConfiguration("volume", "cpu-host", 1, 64, 128, 128, samples_in_depth=1000)
        )
        assert hi.samples_per_ray == pytest.approx(2.0 * lo.samples_per_ray)
        assert lo.objects == 64**3

    def test_more_tasks_fewer_active_pixels(self):
        few = map_configuration_to_features(RenderingConfiguration("raytrace", "cpu-host", 1, 100, 512, 512))
        many = map_configuration_to_features(RenderingConfiguration("raytrace", "cpu-host", 64, 100, 512, 512))
        assert many.active_pixels < few.active_pixels

    def test_configuration_validation(self):
        with pytest.raises(ValueError):
            RenderingConfiguration("nope", "cpu-host", 1, 10, 64, 64)
        with pytest.raises(ValueError):
            RenderingConfiguration("raytrace", "cpu-host", 0, 10, 64, 64)
        with pytest.raises(ValueError):
            RenderingConfiguration("raytrace", "cpu-host", 1, 10, 0, 64)


class TestModels:
    def test_volume_model_recovers_planted_coefficients(self, rng):
        features = _synthetic_features(rng, 40)
        truth = np.array([3e-9, 5e-8, 1e-3])
        model = VolumeRenderingModel()
        times = model.design_matrix(features) @ truth
        model.fit(features, times)
        assert model.r_squared > 0.999
        fitted = np.array(list(model.coefficients.values()))
        assert np.allclose(fitted, truth, rtol=1e-3, atol=1e-9)
        prediction = model.predict(features[0])
        assert prediction == pytest.approx(times[0], rel=1e-3)

    def test_raster_model_fit_and_predict(self, rng):
        features = _synthetic_features(rng, 30, technique="raster")
        model = RasterizationModel()
        truth = np.array([2e-8, 4e-9, 5e-4])
        times = model.design_matrix(features) @ truth
        model.fit(features, times + 0.01 * times.std() * rng.standard_normal(len(times)))
        assert model.r_squared > 0.95
        assert np.all(np.array(list(model.coefficients.values())) >= 0.0)

    def test_raytracing_model_build_and_frame(self, rng):
        features = _synthetic_features(rng, 30)
        model = RayTracingModel()
        build_truth = np.array([5e-8, 1e-3])
        frame_truth = np.array([2e-9, 3e-8, 2e-3])
        build_times = model.build_design(features) @ build_truth
        frame_times = model.frame_design(features) @ frame_truth
        model.fit(features, build_times, frame_times)
        total = model.predict(features[0])
        frame_only = model.predict(features[0], include_build=False)
        assert total > frame_only
        assert total == pytest.approx(build_times[0] + frame_times[0], rel=1e-3)
        assert set(model.coefficients) == {
            "c0_objects", "c1_intercept", "c2_ap_log_o", "c3_ap", "c4_intercept",
        }

    def test_compositing_and_total_models(self, rng):
        comp_features = [CompositingFeatures(rng.uniform(1e3, 1e5), int(rng.integers(1e4, 1e6))) for _ in range(25)]
        comp = CompositingModel()
        truth = np.array([2e-8, 5e-8, 1e-3])
        times = comp.design_matrix(comp_features) @ truth
        comp.fit(comp_features, times)
        assert comp.r_squared > 0.999

        volume = VolumeRenderingModel()
        vol_features = _synthetic_features(rng, 20)
        volume.fit(vol_features, volume.design_matrix(vol_features) @ np.array([1e-9, 1e-8, 1e-3]))
        total_model = TotalRenderingModel(volume, comp)
        total = total_model.predict(vol_features[:4], comp_features[0])
        assert total > 0
        with pytest.raises(ValueError):
            total_model.predict([], comp_features[0])

    def test_unfit_model_raises(self):
        with pytest.raises(RuntimeError):
            VolumeRenderingModel().predict(ObservedFeatures())
        with pytest.raises(RuntimeError):
            RayTracingModel().predict(ObservedFeatures())

    def test_make_model_factory(self):
        assert isinstance(make_model("raytrace"), RayTracingModel)
        assert isinstance(make_model("raster"), RasterizationModel)
        assert isinstance(make_model("volume"), VolumeRenderingModel)
        assert isinstance(make_model("compositing"), CompositingModel)
        with pytest.raises(ValueError):
            make_model("nope")


class TestMachines:
    def test_registry_contains_study_devices(self):
        names = list_architectures()
        for expected in ("cpu1-surface", "gpu1-k40m", "gpu2-titan-k20", "mic-phi-ispc"):
            assert expected in names
        assert get_architecture("gpu1-k40m").kind == "gpu"
        with pytest.raises(KeyError):
            get_architecture("nope")

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            ArchitectureSpec("x", "cpu", 0, 1, 1, 1, 1, 1, 1)

    def test_gpu_faster_than_cpu_for_same_features(self):
        features = ObservedFeatures(objects=50_000, active_pixels=500_000, samples_per_ray=100, cells_spanned=128)
        cpu = KernelCostModel("cpu1-surface", seed=1).total("volume_structured", features)
        gpu = KernelCostModel("gpu1-k40m", seed=1).total("volume_structured", features)
        assert gpu < cpu

    def test_ispc_backend_faster_than_openmp_on_phi(self):
        features = ObservedFeatures(objects=100_000, active_pixels=1_000_000)
        openmp = KernelCostModel("mic-phi-openmp", seed=2).total("raytrace", features, include_build=False)
        ispc = KernelCostModel("mic-phi-ispc", seed=2).total("raytrace", features, include_build=False)
        assert ispc < openmp
        assert openmp / ispc > 3.0  # the paper reports 5x-9x speedups

    def test_synthesized_time_scales_with_work(self):
        small = ObservedFeatures(objects=1_000, active_pixels=10_000)
        large = ObservedFeatures(objects=1_000, active_pixels=1_000_000)
        spec = get_architecture("gpu1-k40m")
        rng = np.random.default_rng(0)
        t_small = sum(synthesize_render_time(spec, "raytrace", small, rng).values())
        t_large = sum(synthesize_render_time(spec, "raytrace", large, rng).values())
        assert t_large > t_small

    def test_unknown_technique(self):
        with pytest.raises(ValueError):
            synthesize_render_time("gpu1-k40m", "nope", ObservedFeatures())

    def test_frames_per_second_helper(self):
        features = ObservedFeatures(objects=10_000, active_pixels=100_000)
        fps = KernelCostModel("gpu-titan-black", seed=3).frames_per_second("raytrace", features)
        assert fps > 0
