"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import Camera, isosurface_marching_tets, make_named_dataset, tetrahedralize_uniform_grid
from repro.rendering.scene import Scene


@pytest.fixture(scope="session")
def small_grid():
    """A small uniform grid with a Richtmyer-Meshkov-like density field."""
    return make_named_dataset("rm", (13, 13, 13), seed=11)


@pytest.fixture(scope="session")
def blob_grid():
    """A small uniform grid with an Enzo-like clustered density field."""
    return make_named_dataset("enzo", (13, 13, 13), seed=13)


@pytest.fixture(scope="session")
def small_surface(small_grid):
    """Isosurface triangles extracted from the small grid."""
    surface = isosurface_marching_tets(small_grid, "density", 0.5)
    assert surface.num_triangles > 0
    return surface


@pytest.fixture(scope="session")
def small_scene(small_surface):
    """A renderable scene over the small isosurface."""
    return Scene(small_surface)


@pytest.fixture(scope="session")
def small_camera(small_surface):
    """A 48x48 camera framing the small isosurface."""
    return Camera.framing_bounds(small_surface.bounds, 48, 48)


@pytest.fixture(scope="session")
def small_tets(blob_grid):
    """Tetrahedralization of the blob grid (for unstructured volume rendering)."""
    return tetrahedralize_uniform_grid(blob_grid)


@pytest.fixture
def rng():
    """Deterministic RNG for per-test randomness."""
    return np.random.default_rng(1234)
