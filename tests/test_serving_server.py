"""The HTTP serving tier: sockets, micro-batching, hot reload, determinism."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.modeling.study import StudyConfiguration, StudyHarness
from repro.reporting import ModelSuite
from repro.serving.batching import BatchRequest, MicroBatcher
from repro.serving.client import ServingClient, read_response, request_bytes
from repro.serving.core import ModelHandle, ServingCore, canonical_config
from repro.serving.server import start_server


def _fit_suite(seed: int) -> ModelSuite:
    config = StudyConfiguration(
        architectures=("gpu1-k40m",),
        techniques=("raytrace", "volume"),
        simulations=("kripke",),
        task_counts=(1, 4),
        samples_per_technique=8,
        compositing_task_counts=(2, 4),
        compositing_pixel_sizes=(32, 48, 64),
        seed=seed,
    )
    return ModelSuite.fit_corpus(StudyHarness(config).run())


@pytest.fixture(scope="module")
def models_path(tmp_path_factory):
    return _fit_suite(seed=11).save(tmp_path_factory.mktemp("serving-http") / "models.json")


CONFIG = {"architecture": "gpu1-k40m", "technique": "raytrace", "num_tasks": 4, "cells_per_task": 80}
VOLUME = {"architecture": "gpu1-k40m", "technique": "volume", "num_tasks": 16}


async def _predict_alone(models_path, config, **server_kwargs) -> bytes:
    server = await start_server(models_path, watch=False, **server_kwargs)
    try:
        reader, writer = await asyncio.open_connection(server.host, server.port)
        writer.write(request_bytes("POST", "/predict", config))
        await writer.drain()
        status, body = await read_response(reader)
        assert status == 200
        writer.close()
        return body
    finally:
        await server.close()


class TestPredictEndpoint:
    def test_served_bytes_match_core_results_and_canonical_json(self, models_path):
        async def scenario():
            body = await _predict_alone(models_path, CONFIG)
            payload = json.loads(body)
            core = ServingCore.from_path(models_path, cache_size=0)
            (result,) = core.predict_canonical([canonical_config(CONFIG)])
            [row] = payload["predictions"]
            assert row == {
                "seconds": result[0], "lower": result[1],
                "upper": result[2], "residual_std": result[3],
            }
            assert payload["models_digest"] == core.handle.digest
            assert payload["generation"] == 0
            # The hand-built template is byte-equal to canonical compact JSON.
            assert body == json.dumps(
                payload, sort_keys=True, separators=(",", ":")
            ).encode()

        asyncio.run(scenario())

    def test_envelope_with_sigmas_and_positional_rows(self, models_path):
        async def scenario():
            server = await start_server(models_path, watch=False)
            try:
                client = await ServingClient.connect(server.host, server.port)
                status, payload = await client.predict([CONFIG, VOLUME], sigmas=3.0)
                assert status == 200
                assert len(payload["predictions"]) == 2
                core = ServingCore.from_path(models_path, cache_size=0)
                results = core.predict_canonical(
                    [canonical_config(CONFIG), canonical_config(VOLUME)], sigmas=3.0
                )
                for row, result in zip(payload["predictions"], results):
                    assert row["seconds"] == result[0] and row["upper"] == result[2]
                await client.close()
            finally:
                await server.close()

        asyncio.run(scenario())

    def test_pipelined_requests_share_a_batch_and_bytes_match_solo(self, models_path):
        """N pipelined requests -> one flush; every body identical to solo serving."""
        configs = [{**VOLUME, "num_tasks": tasks} for tasks in (2, 4, 8, 16)]

        async def scenario():
            server = await start_server(models_path, watch=False, cache_size=0)
            try:
                reader, writer = await asyncio.open_connection(server.host, server.port)
                writer.write(b"".join(request_bytes("POST", "/predict", c) for c in configs))
                await writer.drain()
                bodies = []
                for _ in configs:
                    status, body = await read_response(reader)
                    assert status == 200
                    bodies.append(body)
                writer.close()
                histogram = server.batcher.stats()["histogram"]
                return bodies, histogram
            finally:
                await server.close()

        bodies, histogram = asyncio.run(scenario())
        assert histogram == {"4": 1}, "the pipelined run must flush as one batch"
        for config, body in zip(configs, bodies):
            solo = asyncio.run(_predict_alone(models_path, config, cache_size=0))
            assert body == solo, "batch composition must not change a single byte"

    def test_no_batching_server_serves_identical_bytes(self, models_path):
        batched = asyncio.run(_predict_alone(models_path, CONFIG, cache_size=0))
        unbatched = asyncio.run(_predict_alone(models_path, CONFIG, cache_size=0, max_batch=1))
        assert batched == unbatched

    def test_batch_threshold_flushes_before_the_window(self, models_path):
        """max_batch=2 with a 10s window: two requests must not wait for the timer."""
        async def scenario():
            server = await start_server(
                models_path, watch=False, max_batch=2, max_delay_us=10_000_000
            )
            try:
                reader, writer = await asyncio.open_connection(server.host, server.port)
                writer.write(
                    request_bytes("POST", "/predict", CONFIG)
                    + request_bytes("POST", "/predict", VOLUME)
                )
                await writer.drain()
                for _ in range(2):
                    status, _ = await asyncio.wait_for(read_response(reader), timeout=5.0)
                    assert status == 200
                writer.close()
            finally:
                await server.close()

        asyncio.run(scenario())

    def test_window_timer_flushes_a_lone_request(self, models_path):
        """A single request under a 20ms window is answered by the timer flush."""
        async def scenario():
            server = await start_server(
                models_path, watch=False, max_batch=1_000_000, max_delay_us=20_000
            )
            try:
                reader, writer = await asyncio.open_connection(server.host, server.port)
                writer.write(request_bytes("POST", "/predict", CONFIG))
                await writer.drain()
                status, _ = await asyncio.wait_for(read_response(reader), timeout=5.0)
                assert status == 200
                writer.close()
            finally:
                await server.close()

        asyncio.run(scenario())


class TestHttpSurface:
    def test_error_statuses(self, models_path):
        async def scenario():
            server = await start_server(models_path, watch=False)
            try:
                client = await ServingClient.connect(server.host, server.port)
                status, payload = await client.request("POST", "/predict", {"technique": "nope"})
                assert status == 400 and payload["error"]["code"] == "invalid-configuration"
                status, payload = await client.predict(
                    {"architecture": "missing", "technique": "raytrace"}
                )
                assert status == 404 and payload["error"]["code"] == "unknown-model"
                assert payload["error"]["available"]
                status, payload = await client.request("GET", "/predict")
                assert status == 405
                status, payload = await client.request("GET", "/nothing-here")
                assert status == 404 and payload["error"]["code"] == "not-found"
                status, payload = await client.request("POST", "/predict", [])
                assert status == 400
                await client.close()
            finally:
                await server.close()

        asyncio.run(scenario())

    def test_unknown_model_does_not_fail_batch_mates(self, models_path):
        """A bad request inside a pipelined batch answers 404; its mates answer 200."""
        async def scenario():
            server = await start_server(models_path, watch=False)
            try:
                reader, writer = await asyncio.open_connection(server.host, server.port)
                writer.write(
                    request_bytes("POST", "/predict", CONFIG)
                    + request_bytes("POST", "/predict", {"architecture": "x", "technique": "volume"})
                    + request_bytes("POST", "/predict", VOLUME)
                )
                await writer.drain()
                statuses = []
                for _ in range(3):
                    status, _ = await read_response(reader)
                    statuses.append(status)
                writer.close()
                assert statuses == [200, 404, 200]
            finally:
                await server.close()

        asyncio.run(scenario())

    def test_stats_and_healthz(self, models_path):
        async def scenario():
            server = await start_server(models_path, watch=False)
            try:
                client = await ServingClient.connect(server.host, server.port)
                await client.predict(CONFIG)
                await client.predict(CONFIG)  # second hit comes from the cache
                stats = await client.stats()
                assert stats["cache"]["hits"] == 1 and stats["cache"]["misses"] == 1
                assert stats["predictions_served"] == 2
                assert stats["requests"]["total"] == 3  # includes this /stats call
                assert stats["models"]["digest"] == server.core.handle.digest
                assert stats["batching"]["batches"] >= 1
                status, health = await client.request("GET", "/healthz")
                assert status == 200 and health["status"] == "ok"
                await client.close()
            finally:
                await server.close()

        asyncio.run(scenario())


class TestHotReload:
    def test_reload_swaps_digest_without_dropping_results(self, models_path, tmp_path):
        models = tmp_path / "models.json"
        models.write_bytes(models_path.read_bytes())

        async def scenario():
            server = await start_server(models, watch=False)
            try:
                client = await ServingClient.connect(server.host, server.port)
                _, before = await client.predict(CONFIG)
                _fit_suite(seed=23).save(models)
                reload_payload = await client.reload()
                assert reload_payload["reloaded"] is True
                _, after = await client.predict(CONFIG)
                assert before["models_digest"] != after["models_digest"]
                assert after["generation"] == 1
                assert server.reloads == 1
                # The new suite is a different fit: the same config now
                # predicts different numbers, served without a restart.
                assert before["predictions"] != after["predictions"]
                await client.close()
            finally:
                await server.close()

        asyncio.run(scenario())

    def test_watcher_reloads_on_its_own(self, models_path, tmp_path):
        models = tmp_path / "models.json"
        models.write_bytes(models_path.read_bytes())

        async def scenario():
            server = await start_server(models, reload_poll_s=0.05)
            try:
                old_digest = server.core.handle.digest
                _fit_suite(seed=29).save(models)
                for _ in range(100):
                    await asyncio.sleep(0.05)
                    if server.core.handle.digest != old_digest:
                        break
                assert server.core.handle.digest != old_digest
                assert server.core.handle.generation == 1
            finally:
                await server.close()

        asyncio.run(scenario())

    def test_invalid_file_keeps_the_old_suite_serving(self, models_path, tmp_path):
        models = tmp_path / "models.json"
        models.write_bytes(models_path.read_bytes())

        async def scenario():
            server = await start_server(models, watch=False)
            try:
                client = await ServingClient.connect(server.host, server.port)
                old_digest = server.core.handle.digest
                models.write_text('{"torn": ')  # a torn mid-write read
                reload_payload = await client.reload()
                assert reload_payload["reloaded"] is False
                assert server.reload_errors == 1
                status, payload = await client.predict(CONFIG)
                assert status == 200 and payload["models_digest"] == old_digest
                await client.close()
            finally:
                await server.close()

        asyncio.run(scenario())

    def test_in_flight_batch_is_stamped_with_the_handle_that_served_it(self, models_path):
        """A queued batch captures one handle at flush: no torn reads mid-batch."""
        core = ServingCore.from_path(models_path, cache_size=0)
        batcher = MicroBatcher(core, max_batch=1_000_000, max_delay_us=10_000_000)
        outcomes: list[tuple[tuple, dict]] = []

        async def scenario():
            batcher.submit(BatchRequest(
                [CONFIG], [canonical_config(CONFIG)], None,
                lambda results, meta: outcomes.append((results[0], meta)), None,
            ))
            batcher.submit(BatchRequest(
                [VOLUME], [canonical_config(VOLUME)], None,
                lambda results, meta: outcomes.append((results[0], meta)), None,
            ))
            # Swap while both requests sit in the pending window.
            swapped = ModelHandle.load(core.handle.path, generation=5)
            core.swap(swapped)
            batcher.flush()

        asyncio.run(scenario())
        assert len(outcomes) == 2
        generations = {meta["generation"] for _, meta in outcomes}
        assert generations == {5}, "one batch, one handle: every response stamped alike"
