"""The serving core: canonical configs, LRU cache, handles, parity, term plans."""

from __future__ import annotations

import gc
import tracemalloc

import numpy as np
import pytest

from repro.modeling.study import StudyConfiguration, StudyCorpus, StudyHarness
from repro.reporting import ModelSuite, Predictor
from repro.serving import LRUCache, ModelHandle, ServingCore, ServingError, canonical_config
from repro.serving.core import RENDER_DEFAULTS


@pytest.fixture(scope="module")
def corpus() -> StudyCorpus:
    config = StudyConfiguration(
        architectures=("cpu-host", "gpu1-k40m"),
        techniques=("raytrace", "volume"),
        simulations=("kripke",),
        task_counts=(1, 4),
        samples_per_technique=8,
        compositing_task_counts=(2, 4),
        compositing_pixel_sizes=(32, 48, 64),
        seed=7,
    )
    return StudyHarness(config).run()


@pytest.fixture(scope="module")
def models_path(corpus, tmp_path_factory):
    suite = ModelSuite.fit_corpus(corpus)
    return suite.save(tmp_path_factory.mktemp("serving") / "models.json")


@pytest.fixture()
def core(models_path) -> ServingCore:
    return ServingCore.from_path(models_path)


CONFIGS = [
    {"architecture": "gpu1-k40m", "technique": "raytrace", "num_tasks": 4, "cells_per_task": 120},
    {"architecture": "cpu-host", "technique": "volume", "num_tasks": 16, "image_width": 512,
     "image_height": 512},
    {"architecture": "gpu1-k40m", "technique": "volume", "num_tasks": 64},
    {"architecture": "-", "technique": "compositing", "average_active_pixels": 640.0, "pixels": 4096},
    {"architecture": "gpu1-k40m", "technique": "raytrace", "num_tasks": 4, "cells_per_task": 120,
     "include_build": False},
]


class TestCanonicalConfig:
    def test_defaults_fill_and_extras_are_ignored(self):
        sparse = canonical_config({"architecture": "a", "technique": "raytrace", "note": "hi"})
        explicit = canonical_config({"architecture": "a", "technique": "raytrace", **RENDER_DEFAULTS})
        assert sparse == explicit
        assert sparse[0] == "render"

    def test_int_vs_float_spellings_canonicalize_identically(self):
        a = canonical_config({"architecture": "a", "technique": "volume", "num_tasks": 8})
        b = canonical_config({"architecture": "a", "technique": "volume", "num_tasks": 8.0})
        assert a == b

    def test_unknown_technique_is_rejected(self):
        with pytest.raises(ServingError) as excinfo:
            canonical_config({"architecture": "a", "technique": "splatting"})
        assert excinfo.value.code == "invalid-configuration"
        assert "splatting" in str(excinfo.value)

    def test_missing_architecture_is_rejected(self):
        with pytest.raises(ServingError):
            canonical_config({"technique": "raytrace"})

    def test_non_positive_counts_are_rejected(self):
        with pytest.raises(ServingError):
            canonical_config({"architecture": "a", "technique": "volume", "num_tasks": 0})

    def test_compositing_requires_its_inputs(self):
        with pytest.raises(ServingError) as excinfo:
            canonical_config({"technique": "compositing"})
        assert "average_active_pixels" in str(excinfo.value)

    def test_non_object_configuration_is_rejected(self):
        with pytest.raises(ServingError):
            canonical_config(["architecture", "a"])


class TestLRUCache:
    def test_counts_hits_and_misses(self):
        cache = LRUCache(4)
        assert cache.get("k") is None
        cache.put("k", (1.0,))
        assert cache.get("k") == (1.0,)
        assert cache.stats() == {"size": 1, "maxsize": 4, "hits": 1, "misses": 1, "evictions": 0}

    def test_evicts_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a" to MRU
        cache.put("c", 3)  # evicts "b", the LRU entry
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.evictions == 1

    def test_zero_maxsize_disables_caching(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0


class TestServingCoreParity:
    def test_rows_are_bit_identical_to_the_predictor(self, core, models_path):
        rows, meta = core.predict_rows(CONFIGS, sigmas=2.0)
        predictor = Predictor.load(models_path)
        for config, row in zip(CONFIGS, rows):
            canon = canonical_config(config)
            if canon[0] == "compositing":
                batch = predictor.predict_compositing(canon[1], canon[2], sigmas=2.0)
            else:
                batch = predictor.predict_configurations(
                    canon[1], canon[2], num_tasks=canon[3], cells_per_task=canon[4],
                    image_width=canon[5], image_height=canon[6], samples_in_depth=canon[7],
                    include_build=canon[8], sigmas=2.0,
                )
            assert row["seconds"] == float(batch.seconds[0])
            assert row["lower"] == float(batch.lower[0])
            assert row["upper"] == float(batch.upper[0])
            assert row["residual_std"] == float(batch.residual_std)
        assert meta["models_digest"] == core.handle.digest

    def test_results_ignore_batch_composition_and_order(self, core):
        together = core.predict_canonical([canonical_config(c) for c in CONFIGS])
        alone = [core.predict_canonical([canonical_config(c)])[0] for c in CONFIGS]
        assert together == alone
        reversed_batch = core.predict_canonical([canonical_config(c) for c in reversed(CONFIGS)])
        assert list(reversed(reversed_batch)) == together

    def test_rows_echo_the_input_configuration(self, core):
        rows, _ = core.predict_rows([{**CONFIGS[0], "annotation": "keep-me"}])
        assert rows[0]["annotation"] == "keep-me"
        assert rows[0]["num_tasks"] == CONFIGS[0]["num_tasks"]

    def test_unknown_model_raises_a_structured_error(self, core):
        with pytest.raises(ServingError) as excinfo:
            core.predict_rows([{"architecture": "nope", "technique": "raytrace"}])
        error = excinfo.value
        assert error.code == "unknown-model"
        payload = error.payload()["error"]
        assert payload["architecture"] == "nope"
        assert ["gpu1-k40m", "raytrace"] in payload["available"]
        assert payload["models_digest"] == core.handle.digest


class TestServingCoreCache:
    def test_repeat_queries_hit_the_cache_with_identical_results(self, core):
        first = core.predict_canonical([canonical_config(c) for c in CONFIGS])
        second = core.predict_canonical([canonical_config(c) for c in CONFIGS])
        assert first == second
        assert core.cache.hits == len(CONFIGS)

    def test_sigmas_is_part_of_the_cache_key(self, core):
        canon = [canonical_config(CONFIGS[0])]
        core.predict_canonical(canon, sigmas=2.0)
        core.predict_canonical(canon, sigmas=3.0)
        assert core.cache.hits == 0 and core.cache.misses == 2

    def test_swapping_the_handle_invalidates_by_construction(self, core, models_path):
        canon = [canonical_config(CONFIGS[0])]
        before = core.predict_canonical(canon)
        swapped = ModelHandle.load(models_path, generation=1)
        object.__setattr__(swapped, "digest", "different-digest")
        core.swap(swapped)
        after = core.predict_canonical(canon)
        assert before == after  # same underlying suite, so same numbers ...
        assert core.cache.hits == 0 and core.cache.misses == 2  # ... but no stale hit

    def test_eviction_churn_never_serves_wrong_results(self, models_path):
        core = ServingCore.from_path(models_path, cache_size=8)
        expected = {}
        for tasks in range(1, 33):
            config = {"architecture": "gpu1-k40m", "technique": "volume", "num_tasks": tasks}
            expected[tasks] = core.predict_canonical([canonical_config(config)])[0]
        for tasks in (32, 1, 17, 8, 25, 2):  # mix of cached and long-evicted
            config = {"architecture": "gpu1-k40m", "technique": "volume", "num_tasks": tasks}
            assert core.predict_canonical([canonical_config(config)])[0] == expected[tasks]
        assert len(core.cache) <= 8
        assert core.cache.evictions >= 24


class TestTermPlans:
    def test_plans_are_cached_per_shape(self, models_path):
        predictor = Predictor.load(models_path)
        entry = predictor.suite.get("gpu1-k40m", "raytrace")
        plan = predictor.term_plan(entry, include_build=True)
        assert predictor.term_plan(entry, include_build=True) is plan
        assert predictor.term_plan(entry, include_build=False) is not plan

    def test_raytrace_plan_combines_variances_in_quadrature(self, models_path):
        predictor = Predictor.load(models_path)
        entry = predictor.suite.get("gpu1-k40m", "raytrace")
        with_build = predictor.term_plan(entry, include_build=True)
        frame_only = predictor.term_plan(entry, include_build=False)
        model = entry.model
        assert frame_only.residual_std == float(model.frame_fit.residual_std)
        assert with_build.residual_std == pytest.approx(
            float(np.sqrt(model.frame_fit.residual_std**2 + model.build_fit.residual_std**2))
        )

    def test_repeated_predictions_do_not_grow_per_call_state(self, models_path):
        predictor = Predictor.load(models_path)

        def query() -> None:
            predictor.predict_configurations(
                "gpu1-k40m", "raytrace", num_tasks=8, cells_per_task=100,
                image_width=1024, image_height=1024,
            )
            predictor.predict_compositing(512.0, 4096)

        for _ in range(5):  # warm every plan and lazy import
            query()
        plans = dict(predictor._plans)
        gc.collect()
        tracemalloc.start()
        baseline, _ = tracemalloc.get_traced_memory()
        for _ in range(50):
            query()
        gc.collect()
        grown, _ = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert predictor._plans == plans  # no new structure per call
        # 50 calls may leave transient float artifacts, but nothing that scales
        # per call: well under one retained result batch per query.
        assert grown - baseline < 64_000
