"""Fragment-sorted unstructured sampler: geometry precompute + differential tests.

The fast path of :class:`UnstructuredVolumeRenderer` rasterizes each tet's
projected silhouette to pixel columns, intersects every column with the tet's
inward face planes to get an analytic slot span, and resolves fragment
collisions with a combined sort + segmented argmin.  Its contract is to
reproduce the seed brute-force sampler (kept as ``render_reference``)
*bit for bit*; these tests pin that contract on conforming meshes, degenerate
geometry (slivers, sub-pixel and sub-slot tets), randomized tet soups on both
devices, and across ``pair_chunk`` values.
"""

from __future__ import annotations

import inspect

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dpp.device import use_device
from repro.geometry import (
    Camera,
    make_named_dataset,
    tet_face_adjacency,
    tet_face_planes,
    tetrahedralize_uniform_grid,
)
from repro.geometry.mesh import UnstructuredTetMesh
from repro.geometry.tetra import TET_FACES
from repro.rendering import UnstructuredVolumeConfig, UnstructuredVolumeRenderer

UNIT_TET = np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]])


def _random_tet_soup(seed: int) -> UnstructuredTetMesh:
    """A small random mesh of overlapping tets (not conforming on purpose)."""
    rng = np.random.default_rng(seed)
    num_points = int(rng.integers(8, 16))
    points = rng.uniform(-1.0, 1.0, size=(num_points, 3))
    num_tets = int(rng.integers(3, 10))
    connectivity = np.array(
        [rng.choice(num_points, size=4, replace=False) for _ in range(num_tets)], dtype=np.int64
    )
    mesh = UnstructuredTetMesh(points, connectivity)
    mesh.add_point_field("scalar", rng.uniform(0.0, 1.0, size=num_points))
    return mesh


def _assert_images_match(renderer: UnstructuredVolumeRenderer, camera: Camera) -> None:
    fast = renderer.render(camera)
    slow = renderer.render_reference(camera)
    assert np.allclose(fast.framebuffer.rgba, slow.framebuffer.rgba, atol=1e-10, rtol=0.0)
    assert np.array_equal(fast.framebuffer.depth, slow.framebuffer.depth)


class TestTetFacePlanes:
    def test_planes_are_inward_unit_normals(self):
        planes, heights = tet_face_planes(UNIT_TET[None])
        assert planes.shape == (1, 4, 4) and heights.shape == (1, 4)
        assert np.allclose(np.linalg.norm(planes[0, :, :3], axis=1), 1.0)
        centroid = UNIT_TET.mean(axis=0)
        assert np.all(planes[0, :, :3] @ centroid + planes[0, :, 3] > 0.0)

    def test_face_vertices_lie_on_their_plane(self):
        planes, _ = tet_face_planes(UNIT_TET[None])
        for face in range(4):
            for corner in TET_FACES[face]:
                distance = planes[0, face, :3] @ UNIT_TET[corner] + planes[0, face, 3]
                assert abs(distance) < 1e-12

    def test_heights_are_opposite_vertex_clearances(self):
        planes, heights = tet_face_planes(UNIT_TET[None])
        for face in range(4):
            clearance = planes[0, face, :3] @ UNIT_TET[face] + planes[0, face, 3]
            assert clearance == pytest.approx(heights[0, face])
            assert heights[0, face] > 0.0

    def test_degenerate_tet_yields_near_zero_heights(self):
        flat = UNIT_TET.copy()
        flat[3] = [0.3, 0.3, 0.0]  # coplanar with the base triangle
        planes, heights = tet_face_planes(flat[None])
        assert np.all(np.isfinite(planes)) and np.all(np.isfinite(heights))
        assert np.all(heights[0] < 1e-12)

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            tet_face_planes(UNIT_TET)  # missing the leading tet axis


class TestTetFaceAdjacency:
    def test_single_tet_is_all_boundary(self):
        adjacency = tet_face_adjacency(np.array([[0, 1, 2, 3]]))
        assert np.array_equal(adjacency, np.full((1, 4), -1))

    def test_conforming_grid_adjacency_is_symmetric(self):
        grid = make_named_dataset("enzo", (4, 4, 4), seed=5)
        tets = tetrahedralize_uniform_grid(grid)
        adjacency = tet_face_adjacency(tets.connectivity)
        num_tets = len(tets.connectivity)
        assert adjacency.shape == (num_tets, 4)
        interior = adjacency >= 0
        assert np.count_nonzero(interior) > 0
        # Symmetry: if u is across a face of t, then t is across a face of u.
        t_of = np.repeat(np.arange(num_tets), 4)[interior.ravel()]
        u_of = adjacency.ravel()[interior.ravel()]
        assert np.all(np.any(adjacency[u_of] == t_of[:, None], axis=1))

    def test_five_tet_cell_has_interior_faces(self):
        # A single hex decomposes into five tets whose center tet touches the
        # other four; the parity scheme makes the decomposition conforming.
        grid = make_named_dataset("enzo", (2, 2, 2), seed=5)
        tets = tetrahedralize_uniform_grid(grid)
        adjacency = tet_face_adjacency(tets.connectivity)
        assert np.count_nonzero(adjacency >= 0) == 8  # center tet <-> 4 corners

    def test_non_manifold_mesh_raises(self):
        connectivity = np.array([[0, 1, 2, 3], [0, 1, 2, 4], [0, 1, 2, 5]])
        with pytest.raises(ValueError):
            tet_face_adjacency(connectivity)

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            tet_face_adjacency(np.array([0, 1, 2, 3]))


class TestFragmentDifferential:
    def test_pool_scene_is_bit_identical(self, small_tets):
        camera = Camera.framing_bounds(small_tets.bounds, 48, 48, zoom=1.2)
        config = UnstructuredVolumeConfig(samples_in_depth=60, num_passes=4)
        renderer = UnstructuredVolumeRenderer(small_tets, "density", config=config)
        fast = renderer.render(camera)
        slow = renderer.render_reference(camera)
        # Stronger than the 1e-10 acceptance gate: the exact refilter makes
        # the fast path reproduce the reference image bit for bit.
        assert np.array_equal(fast.framebuffer.rgba, slow.framebuffer.rgba)

    def test_output_invariant_to_pair_chunk(self, small_tets):
        camera = Camera.framing_bounds(small_tets.bounds, 40, 40, zoom=1.2)
        images = {}
        for chunk in (500, 4_000_000):
            config = UnstructuredVolumeConfig(samples_in_depth=48, num_passes=2, pair_chunk=chunk)
            renderer = UnstructuredVolumeRenderer(small_tets, "density", config=config)
            images[chunk] = (
                renderer.render(camera).framebuffer.rgba,
                renderer.render_reference(camera).framebuffer.rgba,
            )
        assert np.array_equal(images[500][0], images[4_000_000][0])
        assert np.array_equal(images[500][1], images[4_000_000][1])

    def test_sliver_tets_match_reference(self):
        # Flat (zero-determinant) and near-flat sliver tets alongside a
        # regular one: the degenerate mask and the conservative span must
        # agree with the brute-force enumeration.
        points = np.array(
            [
                [0.0, 0.0, 0.0],
                [1.0, 0.0, 0.0],
                [0.0, 1.0, 0.0],
                [0.0, 0.0, 1.0],
                [0.4, 0.4, 0.0],  # exactly coplanar with the base
                [0.6, 0.2, 1e-9],  # sliver: barely off the base plane
                [0.2, 0.6, 0.5],
            ]
        )
        connectivity = np.array([[0, 1, 2, 3], [0, 1, 2, 4], [0, 1, 2, 5], [1, 2, 5, 6]])
        mesh = UnstructuredTetMesh(points, connectivity)
        mesh.add_point_field("scalar", np.linspace(0.1, 1.0, len(points)))
        config = UnstructuredVolumeConfig(samples_in_depth=32, num_passes=2)
        renderer = UnstructuredVolumeRenderer(mesh, "scalar", config=config)
        camera = Camera.framing_bounds(mesh.bounds, 32, 32, zoom=1.2)
        _assert_images_match(renderer, camera)

    def test_sub_pixel_and_sub_slot_tets_leave_no_holes(self, small_tets):
        # Zoomed far out, every tet is smaller than a pixel; with few depth
        # slots every tet is also thinner than a slot.  The fast path must
        # keep the one-candidate-per-column hole-avoidance guarantee and
        # still match the reference exactly.
        camera = Camera.framing_bounds(small_tets.bounds, 24, 24, zoom=0.12)
        config = UnstructuredVolumeConfig(samples_in_depth=4, num_passes=2)
        renderer = UnstructuredVolumeRenderer(small_tets, "density", config=config)
        fast = renderer.render(camera)
        slow = renderer.render_reference(camera)
        assert fast.features.active_pixels > 0
        assert np.array_equal(fast.framebuffer.rgba, slow.framebuffer.rgba)

    def test_conforming_mesh_columns_have_no_gaps(self):
        # On a conforming tetrahedralized box (adjacency-verified) with a
        # constant field, the filled depth slots of every pixel column must
        # form one contiguous run: shared faces hand samples over without
        # cracks, the hole-avoidance property the -1e-9 tolerance guards.
        grid = make_named_dataset("enzo", (6, 6, 6), seed=7)
        tets = tetrahedralize_uniform_grid(grid)
        assert np.count_nonzero(tet_face_adjacency(tets.connectivity) >= 0) > 0
        tets.add_point_field("one", np.ones(len(tets.points())))
        config = UnstructuredVolumeConfig(samples_in_depth=24)
        renderer = UnstructuredVolumeRenderer(tets, "one", config=config)
        camera = Camera.framing_bounds(tets.bounds, 24, 24, zoom=1.1)
        prepared = renderer._prepare(camera)
        num_pixels = camera.width * camera.height
        sample_scalar = np.full((num_pixels, config.samples_in_depth), np.nan)
        renderer._sample_pass(
            camera,
            prepared.screen_vertices,
            prepared.tet_scalars,
            prepared.face_planes,
            prepared.face_heights,
            0,
            config.samples_in_depth,
            sample_scalar,
            np.ones(num_pixels, dtype=bool),
        )
        filled = ~np.isnan(sample_scalar)
        covered = filled.any(axis=1)
        assert np.count_nonzero(covered) > 0
        rising_edges = np.count_nonzero(np.diff(filled[covered].astype(np.int8), axis=1) == 1, axis=1)
        starts_filled = filled[covered, 0].astype(np.int64)
        assert np.all(rising_edges + starts_filled == 1)

    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 10_000), passes=st.integers(1, 3))
    def test_random_tet_soups_match_reference(self, seed, passes):
        mesh = _random_tet_soup(seed)
        config = UnstructuredVolumeConfig(samples_in_depth=20, num_passes=passes, pair_chunk=300)
        renderer = UnstructuredVolumeRenderer(mesh, "scalar", config=config)
        camera = Camera.framing_bounds(mesh.bounds, 16, 16, zoom=1.2)
        for device in ("vectorized", "serial"):
            with use_device(device):
                _assert_images_match(renderer, camera)

    def test_devices_agree_bit_for_bit(self, small_tets):
        camera = Camera.framing_bounds(small_tets.bounds, 20, 20, zoom=1.2)
        config = UnstructuredVolumeConfig(samples_in_depth=24, num_passes=2)
        renderer = UnstructuredVolumeRenderer(small_tets, "density", config=config)
        fast = renderer.render(camera)
        with use_device("serial"):
            serial = renderer.render(camera)
        assert np.array_equal(fast.framebuffer.rgba, serial.framebuffer.rgba)

    def test_sample_chunk_requires_image_width(self):
        # The seed signature defaulted image_width to 0, silently aliasing
        # every row onto the first (py * 0 + px); it is now keyword-only and
        # required.
        parameter = inspect.signature(UnstructuredVolumeRenderer._sample_chunk).parameters[
            "image_width"
        ]
        assert parameter.kind is inspect.Parameter.KEYWORD_ONLY
        assert parameter.default is inspect.Parameter.empty
