"""Integration tests: the study harness, calibration, and feasibility analyses end to end."""

from __future__ import annotations

import numpy as np
import pytest

from repro.machines import KernelCostModel
from repro.modeling import RenderingConfiguration, map_configuration_to_features
from repro.modeling.calibration import MachineCalibration, validate_large_scale_prediction
from repro.modeling.feasibility import images_within_budget, raytracing_vs_rasterization
from repro.modeling.models import RayTracingModel
from repro.modeling.study import StudyConfiguration, StudyHarness


@pytest.fixture(scope="module")
def small_corpus():
    """A reduced-size study sweep shared by every test in this module."""
    config = StudyConfiguration(
        samples_per_technique=8,
        task_counts=(1, 2, 4),
        image_size_range=(48, 112),
        cells_per_task_range=(8, 16),
        samples_in_depth=40,
        seed=99,
    )
    return StudyHarness(config).run()


@pytest.fixture(scope="module")
def fitted_models(small_corpus):
    return small_corpus.fit_all_models()


class TestStudyHarness:
    def test_corpus_covers_architectures_and_techniques(self, small_corpus):
        assert set(small_corpus.architectures()) == {"cpu-host", "gpu1-k40m"}
        assert set(small_corpus.techniques()) == {"raytrace", "raster", "volume"}
        assert len(small_corpus.records) == 2 * 3 * 8
        assert len(small_corpus.compositing_records) > 0

    def test_records_have_positive_times_and_features(self, small_corpus):
        for record in small_corpus.records:
            assert record.total_seconds > 0
            assert record.features.objects > 0
            assert record.features.active_pixels >= 0
            assert record.pixels == record.image_width * record.image_height

    def test_model_fits_reasonable(self, fitted_models):
        assert len(fitted_models) == 6
        r_squared = {key: model.r_squared for key, model in fitted_models.items()}
        # Most fits should explain the bulk of the variance (paper: 5 of 6 above 0.94).
        assert sum(value > 0.8 for value in r_squared.values()) >= 4
        for model in fitted_models.values():
            for value in model.coefficients.values():
                assert value >= 0.0

    def test_cross_validation_accuracy(self, small_corpus):
        summary = small_corpus.cross_validate("gpu1-k40m", "volume", k=3, seed=5)
        row = summary.accuracy_row()
        assert row["within_50"] >= 75.0
        assert row["average_percent"] < 60.0

    def test_compositing_model_fit(self, small_corpus):
        model = small_corpus.fit_compositing_model()
        assert np.isfinite(model.r_squared)
        summary = small_corpus.cross_validate_compositing(k=3, seed=5)
        assert len(summary.errors) == len(small_corpus.compositing_records)

    def test_select_filters(self, small_corpus):
        subset = small_corpus.select(architecture="cpu-host", technique="raster")
        assert all(r.architecture == "cpu-host" and r.technique == "raster" for r in subset)
        with pytest.raises(ValueError):
            small_corpus.fit_model("cpu-host", "unknown-technique")

    def test_gpu_records_use_paper_scale_configurations(self, small_corpus):
        for record in small_corpus.select("gpu1-k40m"):
            assert record.image_width >= 512
            assert record.cells_per_task >= 128
        for record in small_corpus.select("cpu-host"):
            assert record.image_width <= 160

    def test_compositing_sweep_trends(self, small_corpus):
        records = small_corpus.compositing_records
        by_pixels = {}
        for record in records:
            by_pixels.setdefault(record.num_tasks, []).append((record.pixels, record.seconds))
        # Within a task count, more pixels should generally cost more time.
        for entries in by_pixels.values():
            entries.sort()
            assert entries[-1][1] > entries[0][1] * 0.5


class TestMappingValidation:
    def test_mapping_predictions_conservative(self, small_corpus, fitted_models):
        """Mapped (upper-bound) inputs should predict at least ~the observed-input prediction."""
        checked = 0
        for technique in ("raster", "volume"):
            model = fitted_models[("cpu-host", technique)]
            for record in small_corpus.select("cpu-host", technique)[:4]:
                config = RenderingConfiguration(
                    technique=technique,
                    architecture="cpu-host",
                    num_tasks=record.num_tasks,
                    cells_per_task=record.cells_per_task,
                    image_width=record.image_width,
                    image_height=record.image_height,
                    samples_in_depth=200,
                )
                mapped = model.predict(map_configuration_to_features(config))
                observed = model.predict(record.features)
                assert mapped > 0.25 * observed
                checked += 1
        assert checked > 0


class TestCalibrationAndFeasibility:
    def test_titan_style_calibration(self):
        calibration = MachineCalibration("gpu2-titan-k20", calibration_samples=8, seed=31).calibrate("raytrace")
        assert calibration.sample_points == 8
        config = RenderingConfiguration("raytrace", "gpu2-titan-k20", 1024, 128, 1024, 1024)
        features = map_configuration_to_features(config)
        measured = KernelCostModel("gpu2-titan-k20", seed=7).total("raytrace", features, include_build=False)
        row = validate_large_scale_prediction(calibration, config, measured)
        assert row["predicted_seconds"] > 0
        assert abs(row["difference_percent"]) < 400.0

    def test_images_within_budget_monotone_in_image_size(self, fitted_models):
        points = images_within_budget(
            fitted_models, budget_seconds=60.0, image_sizes=np.array([512, 1024, 2048, 4096])
        )
        assert len(points) == len(fitted_models) * 4
        for (architecture, technique) in fitted_models:
            series = [p.images_in_budget for p in points if p.architecture == architecture and p.technique == technique]
            # Larger images never allow more renders (non-strict monotone decrease).
            assert all(a >= b for a, b in zip(series, series[1:]))
            assert all(p >= 0 for p in series)

    def test_raytracing_vs_rasterization_shape(self, fitted_models):
        heat = raytracing_vs_rasterization(
            fitted_models[("gpu1-k40m", "raytrace")],
            fitted_models[("gpu1-k40m", "raster")],
            "gpu1-k40m",
            image_sizes=np.array([384, 1024, 2048, 4096]),
            data_sizes=np.array([100, 300, 500]),
        )
        ratio = heat["ratio"]
        assert ratio.shape == (3, 4)
        assert np.all(ratio > 0)
        # Ray tracing gains as data grows (moving down a column).
        assert np.all(ratio[-1, :] >= ratio[0, :])
        # Rasterization gains as the image grows (moving right along a row).
        assert np.all(ratio[:, 0] >= ratio[:, -1])
        # The paper's headline: RT wins at small image / big data, rasterization
        # wins at large image / small data.
        assert ratio[-1, 0] > 1.0
        assert ratio[0, -1] < 1.0
