"""Golden paths of the Section 5.7/5.9 analyses: feasibility curves and calibration.

The feasibility tests pin the Figure 14 budget arithmetic and the Figure 15
ratio grid to hand-computed values via models with chosen coefficients; the
calibration tests run the small-sample Titan-style workflow end to end.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.machines import KernelCostModel
from repro.modeling import RenderingConfiguration, map_configuration_to_features
from repro.modeling.calibration import MachineCalibration, validate_large_scale_prediction
from repro.modeling.feasibility import images_within_budget, raytracing_vs_rasterization
from repro.modeling.models import (
    CompositingModel,
    RasterizationModel,
    RayTracingModel,
    VolumeRenderingModel,
)
from repro.modeling.regression import LinearRegressionResult


def _fit(coefficients, term_names, residual_std=0.01) -> LinearRegressionResult:
    return LinearRegressionResult(
        coefficients=np.asarray(coefficients, dtype=np.float64),
        r_squared=0.99,
        residual_std=residual_std,
        num_observations=12,
        term_names=term_names,
    )


def _hand_raytracer(build=(1e-6, 0.01), frame=(0.0, 1e-6, 0.02)) -> RayTracingModel:
    model = RayTracingModel()
    model.build_fit = _fit(build, RayTracingModel.build_term_names)
    model.frame_fit = _fit(frame, RayTracingModel.frame_term_names)
    return model


def _hand_volume(coefficients=(1e-9, 2e-8, 0.005)) -> VolumeRenderingModel:
    model = VolumeRenderingModel()
    model.fit_result = _fit(coefficients, VolumeRenderingModel.term_names)
    return model


def _hand_raster(coefficients=(1e-7, 3e-7, 0.001)) -> RasterizationModel:
    model = RasterizationModel()
    model.fit_result = _fit(coefficients, RasterizationModel.term_names)
    return model


def _hand_compositing(coefficients=(1e-7, 1e-8, 0.002)) -> CompositingModel:
    model = CompositingModel()
    model.fit_result = _fit(coefficients, CompositingModel.term_names)
    return model


class TestImagesWithinBudget:
    """Figure 14: the budget curves, pinned to hand-computed arithmetic."""

    def test_raytracer_counts_match_hand_computation(self):
        model = _hand_raytracer()
        points = images_within_budget(
            {("archA", "raytrace"): model},
            budget_seconds=60.0,
            num_tasks=32,
            cells_per_task=200,
            image_sizes=np.array([1024, 2048]),
        )
        assert [p.image_size for p in points] == [1024, 2048]
        for point in points:
            config = RenderingConfiguration(
                technique="raytrace",
                architecture="archA",
                num_tasks=32,
                cells_per_task=200,
                image_width=point.image_size,
                image_height=point.image_size,
            )
            features = map_configuration_to_features(config)
            # frame = c3 * AP + c4 (the log-term coefficient is zero);
            # build = c0 * O + c1, paid once and subtracted from the budget.
            frame = 1e-6 * features.active_pixels + 0.02
            build = 1e-6 * features.objects + 0.01
            assert point.seconds_per_image == pytest.approx(frame, rel=1e-12)
            assert point.images_in_budget == int((60.0 - build) // frame)

    def test_counts_shrink_with_image_size_and_respect_build_amortization(self):
        model = _hand_raytracer()
        points = images_within_budget(
            {("archA", "raytrace"): model},
            budget_seconds=60.0,
            image_sizes=np.array([1024, 1536, 2048, 3072, 4096]),
        )
        counts = [p.images_in_budget for p in points]
        assert all(a >= b for a, b in zip(counts, counts[1:]))
        assert counts[0] > 0

    def test_build_larger_than_budget_yields_zero_images(self):
        model = _hand_raytracer(build=(1e-6, 120.0))  # 2-minute fixed build
        [point] = images_within_budget(
            {("archA", "raytrace"): model}, budget_seconds=60.0, image_sizes=np.array([1024])
        )
        assert point.images_in_budget == 0

    def test_compositing_model_adds_per_frame_cost(self):
        model = _hand_volume()
        without = images_within_budget(
            {("archA", "volume"): model}, budget_seconds=60.0, image_sizes=np.array([1024])
        )
        with_comp = images_within_budget(
            {("archA", "volume"): model},
            budget_seconds=60.0,
            image_sizes=np.array([1024]),
            compositing_model=_hand_compositing(),
        )
        assert with_comp[0].seconds_per_image > without[0].seconds_per_image
        assert with_comp[0].images_in_budget <= without[0].images_in_budget

    def test_every_fitted_model_contributes_a_curve(self):
        models = {
            ("archA", "raytrace"): _hand_raytracer(),
            ("archA", "volume"): _hand_volume(),
            ("archB", "raster"): _hand_raster(),
        }
        points = images_within_budget(models, image_sizes=np.array([1024, 2048]))
        assert len(points) == len(models) * 2
        assert {(p.architecture, p.technique) for p in points} == set(models)

    def test_budget_point_as_dict_round_trips_through_json(self):
        import json

        [point] = images_within_budget(
            {("archA", "volume"): _hand_volume()}, image_sizes=np.array([1024])
        )
        payload = json.loads(json.dumps(point.as_dict()))
        assert payload["architecture"] == "archA"
        assert payload["images_in_budget"] == point.images_in_budget


class TestRaytracingVsRasterization:
    """Figure 15: the ratio grid, pinned cell-by-cell to the two models."""

    def test_grid_shape_and_hand_computed_cell(self):
        raytracer = _hand_raytracer()
        raster = _hand_raster()
        image_sizes = np.array([512, 1024, 2048])
        data_sizes = np.array([100, 300])
        heat = raytracing_vs_rasterization(
            raytracer, raster, "archA", num_tasks=32, num_renderings=100,
            image_sizes=image_sizes, data_sizes=data_sizes,
        )
        assert heat["ratio"].shape == (2, 3)
        row, column = 1, 2  # 300^3 cells at 2048^2
        rt_config = RenderingConfiguration(
            technique="raytrace", architecture="archA", num_tasks=32,
            cells_per_task=300, image_width=2048, image_height=2048,
        )
        rast_config = RenderingConfiguration(
            technique="raster", architecture="archA", num_tasks=32,
            cells_per_task=300, image_width=2048, image_height=2048,
        )
        rt_features = map_configuration_to_features(rt_config)
        rast_features = map_configuration_to_features(rast_config)
        rt_total = (
            raytracer.predict(rt_features) - raytracer.predict(rt_features, include_build=False)
        ) + 100 * raytracer.predict(rt_features, include_build=False)
        rast_total = 100 * raster.predict(rast_features)
        assert heat["ratio"][row, column] == pytest.approx(rast_total / rt_total, rel=1e-12)

    def test_amortised_build_favors_ray_tracing_as_renderings_grow(self):
        raytracer = _hand_raytracer(build=(1e-5, 1.0))
        raster = _hand_raster()
        kwargs = dict(image_sizes=np.array([1024]), data_sizes=np.array([200]))
        few = raytracing_vs_rasterization(raytracer, raster, "archA", num_renderings=1, **kwargs)
        many = raytracing_vs_rasterization(raytracer, raster, "archA", num_renderings=1000, **kwargs)
        assert many["ratio"][0, 0] > few["ratio"][0, 0]

    def test_axes_are_returned_as_given(self):
        heat = raytracing_vs_rasterization(
            _hand_raytracer(), _hand_raster(), "archA",
            image_sizes=np.array([384, 768]), data_sizes=np.array([100, 200, 400]),
        )
        assert np.array_equal(heat["image_sizes"], [384, 768])
        assert np.array_equal(heat["data_sizes"], [100, 200, 400])


class TestMachineCalibration:
    """The Section 5.7 workflow: small-sample calibration, large-scale prediction."""

    @pytest.fixture(scope="class")
    def calibration(self):
        calibrator = MachineCalibration(
            "gpu1-k40m", simulation="cloverleaf", calibration_samples=6, seed=5, task_counts=(1, 2)
        )
        return calibrator.calibrate("raster")

    def test_calibration_fits_from_the_small_sample(self, calibration):
        assert calibration.architecture == "gpu1-k40m"
        assert calibration.technique == "raster"
        assert calibration.sample_points == 6
        assert calibration.model.r_squared > 0.0

    def test_prediction_goes_through_the_mapping(self, calibration):
        config = RenderingConfiguration(
            technique="raster", architecture="gpu1-k40m", num_tasks=1024,
            cells_per_task=252, image_width=2048, image_height=2048,
        )
        predicted = calibration.predict_configuration(config)
        features = map_configuration_to_features(config)
        assert predicted == pytest.approx(calibration.model.predict(features), rel=1e-12)
        assert predicted > 0.0

    def test_validate_large_scale_prediction_row(self, calibration):
        config = RenderingConfiguration(
            technique="raster", architecture="gpu1-k40m", num_tasks=1024,
            cells_per_task=252, image_width=2048, image_height=2048,
        )
        oracle = KernelCostModel("gpu1-k40m", seed=314)
        features = map_configuration_to_features(config)
        measured = oracle.total("raster", features, include_build=False)
        row = validate_large_scale_prediction(calibration, config, measured)
        assert set(row) == {"actual_seconds", "predicted_seconds", "difference_percent", "sample_points"}
        assert row["actual_seconds"] == pytest.approx(measured)
        assert row["sample_points"] == 6.0
        expected = 100.0 * (row["predicted_seconds"] - measured) / measured
        assert row["difference_percent"] == pytest.approx(expected, rel=1e-9)

    def test_repeated_calibration_is_deterministic_and_isolated(self):
        calibrator = MachineCalibration(
            "gpu1-k40m", simulation="kripke", calibration_samples=6, seed=11, task_counts=(1, 2)
        )
        first = calibrator.calibrate("raster")
        # The stored configuration is never mutated by a calibrate call ...
        assert calibrator._harness.config.techniques == ("raytrace", "raster", "volume")
        second = calibrator.calibrate("raster")
        # ... so synthetic-architecture refits reproduce coefficients exactly.
        assert np.array_equal(
            first.model.fit_result.coefficients, second.model.fit_result.coefficients
        )
