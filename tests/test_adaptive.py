"""The adaptive planner: determinism, ranking oracle, dedup, trajectory ledger.

The acceptance properties of uncertainty-driven sweep planning live here:

* selection is a pure function of ``(corpus digest, candidate config, seed)``
  -- two invocations produce byte-identical batch payloads;
* the interval-width ranking matches a hand-computed three-candidate oracle
  (wide slice > narrow slice, unknown slice above both);
* a selected spec's corpus key never already exists in the corpus (rows or
  failures), so the adaptive loop cannot re-spend budget;
* a two-round synthetic run's ledger shows monotone non-increasing mean
  interval width and disjoint per-round selections.

Everything runs on synthetic architectures (bit-deterministic rows), so the
assertions are exact, not statistical.
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path

import numpy as np
import pytest

from repro.modeling.models import VolumeRenderingModel
from repro.modeling.regression import LinearRegressionResult
from repro.reporting.predictor import Predictor
from repro.reporting.suite import FittedModel, ModelSuite
from repro.study.adaptive import (
    candidate_plan,
    run_adaptive_rounds,
    score_candidates,
    select_batch,
    selection_token,
)
from repro.study.corpus_io import corpus_digest
from repro.study.executor import run_plan
from repro.study.plan import (
    ExperimentSpec,
    build_plan,
    corpus_spec_keys,
    smoke_configuration,
    spec_corpus_key,
    spec_from_payload,
)
from repro.study.trajectory import (
    append_trajectory_rows,
    format_markdown,
    load_trajectory,
    trajectory_row,
)


def _synthetic_config(seed: int = 2016, architectures=("gpu1-k40m",), samples: int = 8):
    """A smoke-sized, synthetic-only (bit-deterministic) study configuration."""
    return replace(
        smoke_configuration(seed),
        architectures=architectures,
        techniques=("raytrace",),
        samples_per_technique=samples,
    )


def _synthetic_corpus(config):
    corpus, report = run_plan(build_plan(config, include_compositing=False))
    assert report.failed == 0
    return corpus


@pytest.fixture(scope="module")
def base_config():
    return _synthetic_config()


@pytest.fixture(scope="module")
def base_corpus(base_config):
    return _synthetic_corpus(base_config)


def _volume_entry(architecture: str, residual_std: float) -> FittedModel:
    """A hand-built volume fit: zero slopes, intercept 5.0, chosen residual std.

    Predictions are a flat 5.0 s, far above any plausible half-width, so no
    interval is clipped at zero and every width is exactly
    ``2 * sigmas * residual_std`` -- hand-computable.
    """
    model = VolumeRenderingModel()
    model.fit_result = LinearRegressionResult(
        coefficients=np.array([0.0, 0.0, 5.0]),
        r_squared=1.0,
        residual_std=residual_std,
        num_observations=10,
        term_names=VolumeRenderingModel.term_names,
    )
    return FittedModel(architecture, "volume", model, num_rows=10)


def _volume_spec(architecture: str) -> ExperimentSpec:
    return ExperimentSpec(
        kind="synthetic",
        base_seed=2016,
        architecture=architecture,
        technique="volume",
        simulation="kripke",
        num_tasks=4,
        cells_per_task=8,
        image_width=64,
        image_height=64,
        synthetic_samples_in_depth=24,
    )


class TestRankingOracle:
    """Interval-width ranking against a hand-computed three-candidate oracle."""

    def test_hand_computed_widths_and_order(self):
        suite = ModelSuite()
        suite.entries[("arch-wide", "volume")] = _volume_entry("arch-wide", 0.5)
        suite.entries[("arch-narrow", "volume")] = _volume_entry("arch-narrow", 0.1)
        specs = [
            _volume_spec("arch-narrow"),
            _volume_spec("arch-wide"),
            _volume_spec("arch-unknown"),
        ]
        scored = score_candidates(specs, suite, sigmas=2.0)
        # Unknown slice = maximal uncertainty, then wide (2*2*0.5), then narrow.
        assert [c.spec.architecture for c in scored] == [
            "arch-unknown",
            "arch-wide",
            "arch-narrow",
        ]
        assert not scored[0].known
        assert scored[1].width == pytest.approx(2.0)  # 2 sigmas * 0.5 * 2
        assert scored[2].width == pytest.approx(0.4)  # 2 sigmas * 0.1 * 2

    def test_widths_scale_with_sigmas(self):
        suite = ModelSuite()
        suite.entries[("arch-wide", "volume")] = _volume_entry("arch-wide", 0.5)
        scored = score_candidates([_volume_spec("arch-wide")], suite, sigmas=1.0)
        assert scored[0].width == pytest.approx(1.0)

    def test_unknown_slice_scores_inf_via_predictor(self):
        suite = ModelSuite()
        suite.entries[("arch-wide", "volume")] = _volume_entry("arch-wide", 0.5)
        widths = Predictor(suite).interval_widths_for_specs(
            [_volume_spec("arch-unknown").key_payload(), _volume_spec("arch-wide").key_payload()]
        )
        assert np.isinf(widths[0])
        assert np.isfinite(widths[1])


class TestDeterminism:
    """Selection is a pure function of (corpus digest, config, seed)."""

    def test_same_inputs_byte_identical_payload(self, base_corpus, base_config):
        one = select_batch(base_corpus, base_config, batch_size=4)
        two = select_batch(base_corpus, base_config, batch_size=4)
        assert json.dumps(one.to_payload(), sort_keys=True) == json.dumps(
            two.to_payload(), sort_keys=True
        )

    def test_seed_changes_candidates(self, base_corpus, base_config):
        digest = corpus_digest(base_corpus)
        assert selection_token(digest, base_config, 1) != selection_token(digest, base_config, 2)
        one = candidate_plan(base_config, selection_token(digest, base_config, 1))
        two = candidate_plan(base_config, selection_token(digest, base_config, 2))
        assert [s.key_payload() for s in one.specs] != [s.key_payload() for s in two.specs]

    def test_corpus_digest_changes_candidates(self, base_config):
        token_a = selection_token("a" * 64, base_config, 2016)
        token_b = selection_token("b" * 64, base_config, 2016)
        one = candidate_plan(base_config, token_a)
        two = candidate_plan(base_config, token_b)
        assert [s.key_payload() for s in one.specs] != [s.key_payload() for s in two.specs]

    def test_candidate_matrix_is_expanded(self, base_config, base_corpus):
        token = selection_token(corpus_digest(base_corpus), base_config, 2016)
        plan = candidate_plan(base_config, token, expand=4, include_compositing=False)
        static = build_plan(base_config, include_compositing=False)
        assert len(plan.specs) == 4 * len(static.specs)


class TestDedup:
    """A selected spec's key never already exists in the corpus."""

    def test_selected_keys_disjoint_from_corpus(self, base_corpus, base_config):
        selection = select_batch(base_corpus, base_config, batch_size=8)
        existing = corpus_spec_keys(base_corpus)
        for candidate in selection.candidates:
            assert spec_corpus_key(candidate.spec) not in existing

    def test_corpus_candidates_are_deduplicated(self, base_corpus, base_config):
        # Feed the corpus's own specs back as candidates: all must dedup away.
        static = build_plan(base_config, include_compositing=False)
        selection = select_batch(
            base_corpus, base_config, batch_size=8, candidates=list(static.specs)
        )
        assert selection.candidates == []
        assert selection.selected == []
        assert selection.deduplicated == len(static.specs)

    def test_failure_rows_count_as_spent(self, base_corpus, base_config):
        static = build_plan(base_config, include_compositing=False)
        spent = static.specs[0]
        corpus = replace_failures(base_corpus, spent)
        selection = select_batch(corpus, base_config, batch_size=8, candidates=[spent])
        assert selection.candidates == []
        assert selection.deduplicated == 1

    def test_corpus_spec_keys_cover_rows_and_failures(self, base_corpus, base_config):
        keys = corpus_spec_keys(base_corpus)
        assert len(keys) == len(base_corpus.records)
        static = build_plan(base_config, include_compositing=False)
        for spec in static.specs:
            assert spec_corpus_key(spec) in keys


def replace_failures(corpus, spec):
    """A shallow corpus copy with ``spec`` recorded as a failure row."""
    from repro.modeling.study import FailureRecord, StudyCorpus

    return StudyCorpus(
        records=list(corpus.records),
        compositing_records=list(corpus.compositing_records),
        failures=list(corpus.failures)
        + [FailureRecord(kind=spec.kind, spec=spec.key_payload(), reason="error")],
    )


class TestAdaptiveRounds:
    """The multi-round driver: monotone ledger, disjoint selections."""

    @pytest.fixture(scope="class")
    def run(self):
        seed_config = replace(
            smoke_configuration(2016),
            architectures=("cpu-i7-4770k",),
            techniques=("raytrace",),
            samples_per_technique=8,
        )
        corpus = _synthetic_corpus(seed_config)
        adaptive_config = replace(
            seed_config,
            architectures=("cpu-i7-4770k", "gpu1-k40m", "gpu2-titan-k20"),
        )
        return run_adaptive_rounds(
            corpus,
            adaptive_config,
            rounds=2,
            batch_size=8,
            seed=2016,
            expand=2,
            include_compositing=False,
        )

    def test_two_rounds_executed(self, run):
        assert len(run.rounds) == 2
        assert run.executed == 16
        assert run.failures == 0
        assert len(run.corpus.records) == 8 + 16

    def test_mean_interval_width_monotone_non_increasing(self, run):
        means = [row["mean_interval_width"] for row in run.trajectory_rows()]
        assert len(means) == 3
        assert all(isinstance(m, float) for m in means)
        assert all(b <= a for a, b in zip(means, means[1:]))

    def test_rounds_select_disjoint_specs(self, run):
        first = {spec_corpus_key(c.spec) for c in run.rounds[0].selection.selected}
        second = {spec_corpus_key(c.spec) for c in run.rounds[1].selection.selected}
        assert first and second
        assert first.isdisjoint(second)

    def test_unknown_slices_rank_first(self, run):
        # Round 0 has two unfit architectures; every selected spec is one of them.
        selected = run.rounds[0].selection.selected
        assert all(not c.known for c in selected)
        assert {c.spec.architecture for c in selected} <= {"gpu1-k40m", "gpu2-titan-k20"}

    def test_trajectory_rows_record_selected_keys(self, run):
        rows = run.trajectory_rows()
        assert [len(row["selected"]) for row in rows] == [8, 8, 0]
        assert rows[0]["unknown_candidates"] > rows[1]["unknown_candidates"]


class TestTrajectoryLedger:
    """BENCH_learning.json round-trip, append, schema guard, markdown."""

    def _row(self, base_corpus, base_config, round_index=0):
        suite = ModelSuite.fit_corpus(base_corpus)
        selection = select_batch(base_corpus, base_config, batch_size=2, suite=suite)
        return trajectory_row(base_corpus, suite, selection, round_index=round_index)

    def test_append_and_round_trip(self, tmp_path, base_corpus, base_config):
        path = tmp_path / "BENCH_learning.json"
        row = self._row(base_corpus, base_config)
        append_trajectory_rows(path, [row])
        append_trajectory_rows(path, [self._row(base_corpus, base_config, round_index=1)])
        payload = load_trajectory(path)
        assert payload["schema"] == 1
        assert [r["round"] for r in payload["rows"]] == [0, 1]
        # The written row is JSON-clean and survives a byte round-trip.
        assert json.loads(json.dumps(row)) == payload["rows"][0]
        assert payload["rows"][0]["corpus_size"]["total"] == len(base_corpus.records)

    def test_missing_file_is_empty_ledger(self, tmp_path):
        payload = load_trajectory(tmp_path / "absent.json")
        assert payload == {"schema": 1, "rows": []}

    def test_newer_schema_refused(self, tmp_path):
        path = tmp_path / "BENCH_learning.json"
        path.write_text(json.dumps({"schema": 99, "rows": []}))
        with pytest.raises(ValueError, match="newer"):
            load_trajectory(path)

    def test_markdown_table(self, tmp_path, base_corpus, base_config):
        path = tmp_path / "BENCH_learning.json"
        payload = append_trajectory_rows(path, [self._row(base_corpus, base_config)])
        text = format_markdown(payload)
        assert "Adaptive learning curve" in text
        assert f"| 0 | {len(base_corpus.records)} |" in text


class TestSpecFromPayloadStrict:
    """Unknown payload keys raise (schema drift), or warn under lenient=True."""

    def test_round_trip_still_exact(self, base_config):
        spec = build_plan(base_config, include_compositing=False).specs[0]
        assert spec_from_payload(spec.key_payload()) == spec

    def test_unknown_key_raises(self, base_config):
        payload = build_plan(base_config, include_compositing=False).specs[0].key_payload()
        payload["mystery_knob"] = 3
        with pytest.raises(ValueError, match="mystery_knob"):
            spec_from_payload(payload)

    def test_lenient_warns_and_drops(self, base_config):
        payload = build_plan(base_config, include_compositing=False).specs[0].key_payload()
        payload["mystery_knob"] = 3
        with pytest.warns(UserWarning, match="mystery_knob"):
            spec = spec_from_payload(payload, lenient=True)
        assert spec == build_plan(base_config, include_compositing=False).specs[0]


class TestAdaptiveCli:
    """plan --adaptive / run --adaptive through the real entry point."""

    def _write_corpus(self, tmp_path, config):
        from repro.study.corpus_io import save_corpus

        corpus = _synthetic_corpus(config)
        path = tmp_path / "corpus.json"
        save_corpus(corpus, path)
        return path

    def _cli(self, *argv):
        from repro.study.cli import main

        return main(list(argv))

    def test_plan_adaptive_writes_deterministic_batch(self, tmp_path, capsys):
        config_args = [
            "--preset",
            "smoke",
            "--architectures",
            "gpu1-k40m",
            "--techniques",
            "raytrace",
            "--samples",
            "8",
            "--no-compositing",
        ]
        corpus_path = self._write_corpus(tmp_path, _synthetic_config())
        out_one = tmp_path / "batch1.json"
        out_two = tmp_path / "batch2.json"
        for out in (out_one, out_two):
            code = self._cli(
                "plan",
                *config_args,
                "--adaptive",
                "--corpus",
                str(corpus_path),
                "--batch-size",
                "3",
                "--out",
                str(out),
            )
            assert code == 0
        assert out_one.read_bytes() == out_two.read_bytes()
        payload = json.loads(out_one.read_text())
        assert len(payload["selected"]) == 3
        existing = {
            tuple(key) for key in map(spec_corpus_key, (s["spec"] for s in payload["selected"]))
        }
        assert len(existing) == 3

    def test_plan_adaptive_requires_corpus(self, capsys):
        assert self._cli("plan", "--adaptive") == 2

    def test_plan_adaptive_exhausted_pool_exit_code(self, tmp_path, monkeypatch):
        # Dedup exhaustion cannot be staged through flags (the candidate draw
        # is re-derived from the corpus digest), so stub the candidate matrix
        # empty and assert the CLI surfaces the dedicated exit code.
        import repro.study.adaptive as adaptive_module
        from repro.study.cli import EXIT_NO_CANDIDATES
        from repro.study.plan import SweepPlan

        corpus_path = self._write_corpus(tmp_path, _synthetic_config())
        monkeypatch.setattr(
            adaptive_module,
            "candidate_plan",
            lambda config, token, expand=1, include_compositing=True: SweepPlan(config=config),
        )
        code = self._cli(
            "plan",
            "--preset",
            "smoke",
            "--architectures",
            "gpu1-k40m",
            "--techniques",
            "raytrace",
            "--samples",
            "8",
            "--no-compositing",
            "--adaptive",
            "--corpus",
            str(corpus_path),
        )
        assert code == EXIT_NO_CANDIDATES

    def test_run_adaptive_appends_ledger(self, tmp_path):
        corpus_path = self._write_corpus(
            tmp_path,
            replace(
                smoke_configuration(2016),
                architectures=("cpu-i7-4770k",),
                techniques=("raytrace",),
                samples_per_technique=8,
            ),
        )
        ledger = tmp_path / "BENCH_learning.json"
        code = self._cli(
            "run",
            "--preset",
            "smoke",
            "--architectures",
            "cpu-i7-4770k,gpu1-k40m,gpu2-titan-k20",
            "--techniques",
            "raytrace",
            "--samples",
            "8",
            "--no-compositing",
            "--adaptive",
            "--corpus",
            str(corpus_path),
            "--rounds",
            "2",
            "--batch-size",
            "8",
            "--expand",
            "2",
            "--out",
            str(tmp_path / "grown.json"),
            "--learning-out",
            str(ledger),
        )
        assert code == 0
        rows = load_trajectory(ledger)["rows"]
        means = [row["mean_interval_width"] for row in rows]
        assert len(means) == 3
        assert all(b <= a for a, b in zip(means, means[1:]))


class TestCheckedInLedger:
    """The repository's BENCH_learning.json satisfies the acceptance criteria."""

    def test_monotone_non_increasing_over_two_rounds(self):
        path = Path(__file__).resolve().parents[1] / "BENCH_learning.json"
        payload = load_trajectory(path)
        rows = payload["rows"]
        assert len(rows) >= 3  # two executed rounds + the final refit row
        means = [row["mean_interval_width"] for row in rows]
        assert all(isinstance(m, float) for m in means)
        assert all(b <= a for a, b in zip(means, means[1:]))
        selected = [frozenset(tuple(key) for key in row["selected"]) for row in rows]
        assert selected[0].isdisjoint(selected[1])
