"""Thousand-rank streaming compositing: differential and contract tests.

The cohort scheduler (``Compositor.composite_streaming``) is a pure
reordering of the dense run-length engine's merge operations, so its contract
splits at the oracle boundary:

* **at or below 256 ranks** the dense engine still fits and the streamed
  result must be *byte-identical* to ``engine="runlength"`` and within
  ``1e-10`` of ``composite_reference``;
* **above 256 ranks** no dense oracle exists, so correctness is pinned by
  cohort-size invariance: any two ``max_live_ranks`` budgets must produce
  byte-identical images, identical merge counts, and identical network
  accounting.

Also covered here: the ``_LiveLedger`` memory contract
(``peak_live_images <= max_live_ranks + 1``), the radix-schedule validation
error (library + CLI exit code 8), the scale scenarios (uniform / AMR proxy /
camera orbit), the contention-aware round accounting, and the extrapolated
GPU architecture profiles.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compositing import (
    Compositor,
    RadixFactorError,
    SCENARIOS,
    scene_factory,
    validate_radices,
)
from repro.compositing.runimage import RunImage
from repro.machines.archspec import get_architecture
from repro.modeling.features import contention_features_from_result
from repro.rendering.rays import CameraPath
from repro.rendering.framebuffer import Framebuffer
from repro.simulations import create_proxy
from repro.simulations.amr import AmrProxy
from repro.study import cli as study_cli

ALGORITHMS = ("direct-send", "binary-swap", "radix-k")


def _random_framebuffers(rng, count, width=11, height=7, alpha=1.0, fill=0.5):
    framebuffers = []
    for rank in range(count):
        framebuffer = Framebuffer(width, height)
        mask = rng.random((height, width)) < fill
        covered = int(mask.sum())
        framebuffer.rgba[mask] = np.column_stack([rng.random((covered, 3)), np.full(covered, alpha)])
        framebuffer.depth[mask] = rng.random(covered) * 5.0 + rank * 0.01
        framebuffers.append(framebuffer)
    return framebuffers


def _stream(algorithm, scenario, tasks, size, max_live, mode="depth", seed=2016):
    factory = scene_factory(scenario, tasks, size, size, mode=mode, seed=seed)
    return Compositor(algorithm).composite_streaming(
        factory, tasks, size, size, mode=mode, max_live_ranks=max_live
    )


class TestDenseOracle:
    """Below 256 ranks the streamed result must equal the dense engines."""

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("tasks", (1, 2, 5, 13, 16, 31))
    def test_cohort_engine_is_byte_identical_to_runlength(self, rng, algorithm, tasks):
        framebuffers = _random_framebuffers(rng, tasks)
        dense = Compositor(algorithm).composite([fb.copy() for fb in framebuffers], mode="depth")
        cohort = Compositor(algorithm).composite(
            [fb.copy() for fb in framebuffers], mode="depth", engine="cohort"
        )
        assert cohort.framebuffer.rgba.tobytes() == dense.framebuffer.rgba.tobytes()
        assert cohort.framebuffer.depth.tobytes() == dense.framebuffer.depth.tobytes()
        assert cohort.merge_operations == dense.merge_operations
        assert cohort.network_seconds == pytest.approx(dense.network_seconds)
        assert cohort.engine == "cohort"

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("tasks", (3, 8, 12))
    def test_cohort_engine_matches_reference_in_over_mode(self, rng, algorithm, tasks):
        framebuffers = _random_framebuffers(rng, tasks, alpha=0.6)
        visibility = list(rng.permutation(tasks).astype(float))
        cohort = Compositor(algorithm).composite(
            [fb.copy() for fb in framebuffers],
            mode="over",
            visibility_order=visibility,
            engine="cohort",
        )
        reference = Compositor(algorithm).composite(
            [fb.copy() for fb in framebuffers],
            mode="over",
            visibility_order=visibility,
            engine="reference",
        )
        assert np.allclose(
            cohort.framebuffer.rgba, reference.framebuffer.rgba, atol=1e-10, rtol=0.0
        )

    @settings(max_examples=20, deadline=None)
    @given(
        tasks=st.integers(min_value=1, max_value=40),
        algorithm=st.sampled_from(ALGORITHMS),
        mode=st.sampled_from(("depth", "over")),
        max_live=st.sampled_from((1, 3, 8, 256)),
    )
    def test_streamed_scene_matches_dense_drivers(self, tasks, algorithm, mode, max_live):
        """Randomized: any cohort budget reproduces the dense result exactly."""
        factory = scene_factory("uniform", tasks, 16, 16, mode=mode, seed=99)
        streamed = Compositor(algorithm).composite_streaming(
            factory, tasks, 16, 16, mode=mode, max_live_ranks=max_live
        )
        dense = Compositor(algorithm).composite_streaming(
            factory, tasks, 16, 16, mode=mode, max_live_ranks=256
        )
        assert streamed.framebuffer.rgba.tobytes() == dense.framebuffer.rgba.tobytes()
        assert streamed.merge_operations == dense.merge_operations
        assert streamed.network_seconds == pytest.approx(dense.network_seconds)
        assert streamed.peak_live_images <= max_live + 1


class TestCohortInvariance:
    """Above the oracle boundary: invariance across cohort budgets."""

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize(
        ("tasks", "scenario"), ((521, "uniform"), (1024, "amr"), (769, "camera-orbit"))
    )
    def test_budget_invariance_and_ledger_contract(self, algorithm, tasks, scenario):
        small = _stream(algorithm, scenario, tasks, 24, max_live=32)
        large = _stream(algorithm, scenario, tasks, 24, max_live=300)
        assert small.framebuffer.rgba.tobytes() == large.framebuffer.rgba.tobytes()
        assert small.framebuffer.depth.tobytes() == large.framebuffer.depth.tobytes()
        assert small.merge_operations == large.merge_operations
        assert small.network_seconds == pytest.approx(large.network_seconds)
        assert small.peak_live_images <= 32 + 1
        assert large.peak_live_images <= 300 + 1
        assert small.cohorts > large.cohorts

    @settings(max_examples=5, deadline=None)
    @given(
        tasks=st.integers(min_value=257, max_value=4096),
        algorithm=st.sampled_from(ALGORITHMS),
    )
    def test_randomized_rank_counts_are_budget_invariant(self, tasks, algorithm):
        """Randomized up to 4,096 ranks, including primes (radix prefix m=0)."""
        small = _stream(algorithm, "uniform", tasks, 12, max_live=48, seed=5)
        large = _stream(algorithm, "uniform", tasks, 12, max_live=256, seed=5)
        assert small.framebuffer.rgba.tobytes() == large.framebuffer.rgba.tobytes()
        assert small.merge_operations == large.merge_operations
        assert small.network_seconds == pytest.approx(large.network_seconds)

    def test_round_summary_shape(self):
        result = _stream("binary-swap", "uniform", 300, 16, max_live=64)
        assert result.round_summary, "streamed composites must carry a round log"
        for entry in result.round_summary:
            assert set(entry) == {"bytes", "messages", "active_links", "busiest_link_seconds"}
            assert entry["busiest_link_seconds"] >= 0.0
        total = sum(entry["busiest_link_seconds"] for entry in result.round_summary)
        assert result.network_seconds == pytest.approx(total)

    def test_contention_features_flatten_the_round_log(self):
        result = _stream("radix-k", "uniform", 300, 16, max_live=64)
        features = contention_features_from_result(result)
        assert features["rounds"] == float(len(result.round_summary))
        assert features["network_seconds"] == pytest.approx(result.network_seconds)
        assert 0.0 < features["contention_share"] <= 1.0
        assert features["busiest_round_seconds"] == pytest.approx(
            max(entry["busiest_link_seconds"] for entry in result.round_summary)
        )


class TestRadixValidation:
    """Invalid radix schedules fail fast with a structured error."""

    def test_validate_radices_accepts_exact_product(self):
        validate_radices(12, (3, 4))

    def test_validate_radices_rejects_mismatched_product(self):
        with pytest.raises(RadixFactorError) as excinfo:
            validate_radices(12, (3, 5))
        error = excinfo.value
        assert error.size == 12
        assert error.radices == (3, 5)
        assert error.product == 15
        payload = error.as_dict()
        assert payload["error"] == "radix-factorization"
        assert json.dumps(payload)  # structured and serializable

    def test_compositor_rejects_radices_for_other_algorithms(self):
        with pytest.raises(ValueError):
            Compositor("binary-swap", radices=[2, 2])

    def test_compositor_validates_radices_at_composite_time(self, rng):
        framebuffers = _random_framebuffers(rng, 6)
        with pytest.raises(RadixFactorError):
            Compositor("radix-k", radices=[2, 2]).composite(framebuffers, mode="depth")

    def test_cli_exits_with_radix_schedule_code(self, capsys):
        code = study_cli.main(
            [
                "plan",
                "--radices",
                "3,3",
                "--compositing-tasks",
                "8",
                "--compositing-algorithms",
                "radix-k",
            ]
        )
        assert code == study_cli.EXIT_RADIX_SCHEDULE == 8
        payload = json.loads(capsys.readouterr().out)
        assert payload["error"] == "radix-factorization"
        assert payload["size"] == 8

    def test_cli_accepts_valid_schedule(self, capsys):
        code = study_cli.main(
            [
                "plan",
                "--radices",
                "2,4",
                "--compositing-tasks",
                "8",
                "--compositing-algorithms",
                "radix-k",
            ]
        )
        assert code == 0
        capsys.readouterr()


class TestScenarios:
    """The scale scene families: deterministic, sorted, correctly shaped."""

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_factories_are_deterministic_runimages(self, name):
        first = scene_factory(name, 64, 16, 16, mode="depth", seed=3)
        second = scene_factory(name, 64, 16, 16, mode="depth", seed=3)
        image_a, image_b = first(7), second(7)
        assert isinstance(image_a, RunImage)
        assert image_a.num_pixels == 256
        assert np.array_equal(image_a.pixels, image_b.pixels)
        assert np.array_equal(image_a.rgba, image_b.rgba)
        pixels = image_a.pixels
        assert np.all(np.diff(pixels) > 0), "active pixels must be sorted and unique"

    def test_amr_scene_coverage_follows_refinement_levels(self):
        proxy = AmrProxy(8, seed=11)
        levels = proxy.rank_levels(256)
        coverage = proxy.rank_coverage(256, base_coverage=0.02)
        assert levels.shape == (256,)
        assert levels.min() >= 0 and levels.max() <= proxy.max_level
        assert np.all(coverage <= 0.9)
        assert coverage[levels.argmax()] >= coverage[levels.argmin()]

    def test_amr_proxy_registered(self):
        proxy = create_proxy("amr", 8)
        assert proxy.primary_field == "density"

    def test_camera_path_orbit_preserves_distance(self):
        template_factory = scene_factory("camera-orbit", 8, 8, 8)
        assert template_factory(0) is not None
        from repro.rendering.rays import Camera

        camera = Camera(
            position=np.array([0.5, 0.5, 2.2]),
            look_at=np.array([0.5, 0.5, 0.5]),
            up=np.array([0.0, 1.0, 0.0]),
        )
        path = CameraPath(camera, num_frames=12, elevation=0.0)
        radius = np.linalg.norm(camera.position - camera.look_at)
        for frame in (0, 3, 7, 11):
            orbited = path.camera_at(frame)
            assert np.linalg.norm(orbited.position - orbited.look_at) == pytest.approx(
                radius, rel=1e-6
            )
            assert np.allclose(orbited.look_at, camera.look_at)

    def test_camera_orbit_scene_varies_with_frame(self):
        still = scene_factory("camera-orbit", 32, 16, 16, frame=0)
        moved = scene_factory("camera-orbit", 32, 16, 16, frame=15)
        different = any(
            not np.array_equal(still(rank).pixels, moved(rank).pixels) for rank in range(32)
        )
        assert different, "orbiting the camera must change at least one rank's footprint"


class TestArchitectureProfiles:
    """The extrapolated modern-GPU rows of the Table 15 architecture set."""

    @pytest.mark.parametrize("name", ("gpu-p100", "gpu-v100", "gpu-a100"))
    def test_profiles_are_registered_gpus(self, name):
        spec = get_architecture(name)
        assert spec.kind == "gpu"
        assert spec.sample_rate > get_architecture("gpu1-k40m").sample_rate

    def test_profiles_scale_monotonically(self):
        p100, v100, a100 = (
            get_architecture(name) for name in ("gpu-p100", "gpu-v100", "gpu-a100")
        )
        for rate in ("build_rate", "traversal_rate", "sample_rate", "cell_rate"):
            assert getattr(p100, rate) < getattr(v100, rate) < getattr(a100, rate)
