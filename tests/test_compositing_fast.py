"""Differential and property tests for the run-length compositing data path.

The contract under test mirrors ``render_reference`` from the volume
renderers: the fast engine (run-length ``RunImage`` sub-images, batched
exchanges, dpp-routed merges) must stay within ``atol=1e-10`` of the dense
per-run reference drivers (``composite_reference``) and of a single serial
visibility-ordered fold, for every algorithm, both modes, and arbitrary rank
counts -- including non-powers-of-two and primes.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compositing import Compositor, composite_reference, run_image_from_framebuffer
from repro.compositing.algorithms import _pixel_partition, factor_radices
from repro.compositing.image import composite_pixels, from_framebuffer
from repro.compositing.merge import merge_fragments, merge_groups, merge_sorted_pair
from repro.compositing.runimage import (
    RunImage,
    active_mask,
    expand_runs,
    runs_from_pixels,
)
from repro.rendering.framebuffer import Framebuffer
from repro.runtime.communicator import SimulatedCommunicator

ALGORITHMS = ("direct-send", "binary-swap", "radix-k")

#: Rank counts covering the interesting regimes: identity, powers of two,
#: non-powers-of-two (binary-swap's fold phase), and primes (radix-k's
#: degenerate factorisation).
RANK_COUNTS = (1, 2, 3, 4, 5, 7, 8, 11, 12, 13, 16)


def _random_framebuffers(rng, count, width=13, height=9, alpha=1.0, fill=0.5):
    framebuffers = []
    for rank in range(count):
        framebuffer = Framebuffer(width, height)
        mask = rng.random((height, width)) < fill
        covered = int(mask.sum())
        framebuffer.rgba[mask] = np.column_stack([rng.random((covered, 3)), np.full(covered, alpha)])
        framebuffer.depth[mask] = rng.random(covered) * 5.0 + rank * 0.01
        framebuffers.append(framebuffer)
    return framebuffers


class TestDifferential:
    """Fast engine vs composite_reference vs serial fold (satellite 1)."""

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("tasks", RANK_COUNTS)
    def test_depth_mode_matches_reference(self, rng, algorithm, tasks):
        framebuffers = _random_framebuffers(rng, tasks)
        fast = Compositor(algorithm).composite([fb.copy() for fb in framebuffers], mode="depth")
        reference = Compositor(algorithm).composite(
            [fb.copy() for fb in framebuffers], mode="depth", engine="reference"
        )
        assert np.allclose(fast.framebuffer.rgba, reference.framebuffer.rgba, atol=1e-10, rtol=0.0)
        assert np.array_equal(fast.framebuffer.depth, reference.framebuffer.depth)

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("tasks", RANK_COUNTS)
    def test_over_mode_matches_reference(self, rng, algorithm, tasks):
        framebuffers = _random_framebuffers(rng, tasks, alpha=0.6)
        visibility = list(rng.permutation(tasks).astype(float))
        fast = Compositor(algorithm).composite(
            [fb.copy() for fb in framebuffers], mode="over", visibility_order=visibility
        )
        reference = Compositor(algorithm).composite(
            [fb.copy() for fb in framebuffers],
            mode="over",
            visibility_order=visibility,
            engine="reference",
        )
        assert np.allclose(fast.framebuffer.rgba, reference.framebuffer.rgba, atol=1e-10, rtol=0.0)
        assert np.allclose(fast.framebuffer.depth, reference.framebuffer.depth, atol=1e-10, rtol=0.0)

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("tasks", (3, 5, 8, 13))
    def test_over_mode_matches_serial_fold(self, rng, algorithm, tasks):
        """The fast engine agrees with one serial visibility-ordered fold."""
        framebuffers = _random_framebuffers(rng, tasks, alpha=0.5)
        visibility = list(rng.permutation(tasks).astype(float))
        fast = Compositor(algorithm).composite(
            [fb.copy() for fb in framebuffers], mode="over", visibility_order=visibility
        )
        serial = Compositor.serial_reference(framebuffers, mode="over", visibility_order=visibility)
        assert np.allclose(fast.framebuffer.rgba, serial.rgba, atol=1e-10, rtol=0.0)

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("tasks", (4, 7, 12))
    def test_depth_mode_matches_serial_fold(self, rng, algorithm, tasks):
        framebuffers = _random_framebuffers(rng, tasks)
        fast = Compositor(algorithm).composite([fb.copy() for fb in framebuffers], mode="depth")
        serial = Compositor.serial_reference(framebuffers, mode="depth")
        assert np.allclose(fast.framebuffer.rgba, serial.rgba, atol=1e-10, rtol=0.0)
        assert np.array_equal(fast.framebuffer.depth, serial.depth)

    @given(tasks=st.integers(1, 17), seed=st.integers(0, 2**16))
    @settings(max_examples=20, deadline=None)
    def test_randomized_rank_counts(self, tasks, seed):
        """Hypothesis-driven P (prime, composite, or 1) on both modes."""
        rng = np.random.default_rng(seed)
        framebuffers = _random_framebuffers(rng, tasks, width=11, height=6, alpha=0.7)
        visibility = list(rng.permutation(tasks).astype(float))
        for algorithm in ALGORITHMS:
            fast = Compositor(algorithm).composite(
                [fb.copy() for fb in framebuffers], mode="over", visibility_order=visibility
            )
            reference = Compositor(algorithm).composite(
                [fb.copy() for fb in framebuffers],
                mode="over",
                visibility_order=visibility,
                engine="reference",
            )
            assert np.allclose(fast.framebuffer.rgba, reference.framebuffer.rgba, atol=1e-10, rtol=0.0)

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("mode", ("depth", "over"))
    def test_zero_active_pixel_sub_images(self, algorithm, mode):
        """Fully empty ranks must compose without error (satellite 2)."""
        tasks = 5
        framebuffers = [Framebuffer(8, 6) for _ in range(tasks)]
        kwargs = {"mode": mode}
        if mode == "over":
            kwargs["visibility_order"] = list(np.arange(tasks, dtype=float))
        fast = Compositor(algorithm).composite([fb.copy() for fb in framebuffers], **kwargs)
        reference = Compositor(algorithm).composite(
            [fb.copy() for fb in framebuffers], engine="reference", **kwargs
        )
        assert fast.average_active_pixels == 0.0
        assert fast.merge_operations == 0
        assert np.allclose(fast.framebuffer.rgba, reference.framebuffer.rgba, atol=1e-10, rtol=0.0)

    def test_reference_dispatcher_validates(self, rng):
        framebuffers = _random_framebuffers(rng, 2)
        images = [from_framebuffer(fb) for fb in framebuffers]
        with pytest.raises(ValueError):
            composite_reference("nope", images, SimulatedCommunicator(2), "depth")

    def test_engine_validation(self, rng):
        framebuffers = _random_framebuffers(rng, 2)
        with pytest.raises(ValueError):
            Compositor().composite(framebuffers, mode="depth", engine="warp-drive")


class TestProperties:
    """factor_radices and _pixel_partition properties (satellite 2)."""

    @given(size=st.integers(2, 512))
    @settings(max_examples=80, deadline=None)
    def test_factor_radices_product_and_bounds(self, size):
        radices = factor_radices(size)
        assert int(np.prod(radices)) == size
        assert all(radix >= 2 for radix in radices)

    @given(prime=st.sampled_from((2, 3, 5, 7, 11, 13, 17, 19, 23, 97, 251)))
    @settings(max_examples=20, deadline=None)
    def test_factor_radices_stable_for_primes(self, prime):
        if prime <= 4:
            assert int(np.prod(factor_radices(prime))) == prime
        else:
            assert factor_radices(prime) == [prime]

    def test_factor_radices_identity_and_validation(self):
        assert factor_radices(1) == [1]
        with pytest.raises(ValueError):
            factor_radices(0)

    @given(num_pixels=st.integers(0, 300), parts=st.integers(1, 64))
    @settings(max_examples=80, deadline=None)
    def test_pixel_partition_tiles_the_range(self, num_pixels, parts):
        partition = _pixel_partition(num_pixels, parts)
        assert len(partition) == parts
        cursor = 0
        for start, stop in partition:
            assert start == cursor
            assert stop >= start
            cursor = stop
        assert cursor == num_pixels
        if parts > num_pixels:
            # More parts than pixels: some runs must be empty, none negative.
            assert sum(1 for start, stop in partition if start == stop) >= parts - num_pixels


class TestRunImage:
    def test_runs_round_trip(self, rng):
        pixels = np.sort(rng.choice(200, size=60, replace=False))
        offsets, lengths = runs_from_pixels(pixels)
        assert np.array_equal(expand_runs(offsets, lengths), pixels)
        assert lengths.sum() == len(pixels)
        assert (lengths >= 1).all()
        # Runs are maximal: consecutive runs never touch.
        assert ((offsets[1:] - (offsets[:-1] + lengths[:-1])) > 0).all()

    def test_from_framebuffer_modes(self, rng):
        framebuffer = Framebuffer(10, 8)
        mask = rng.random((8, 10)) < 0.4
        covered = int(mask.sum())
        framebuffer.rgba[mask] = np.column_stack([rng.random((covered, 3)), np.full(covered, 0.8)])
        framebuffer.depth[mask] = rng.random(covered)
        for mode in ("depth", "over"):
            image = run_image_from_framebuffer(framebuffer, mode, key=3)
            assert image.active_pixels == covered
            assert image.active_pixels == int(np.count_nonzero(active_mask(
                framebuffer.rgba, framebuffer.depth, mode)))
            assert np.array_equal(np.sort(image.pixels), image.pixels)
            assert image.run_lengths.sum() == covered
        over_image = run_image_from_framebuffer(framebuffer, "over", key=3)
        assert np.all(over_image.depth == 3.0)

    def test_inline_and_dpp_compaction_agree(self, rng):
        framebuffer = Framebuffer(9, 7)
        mask = rng.random((7, 9)) < 0.5
        covered = int(mask.sum())
        framebuffer.rgba[mask] = np.column_stack([rng.random((covered, 3)), np.ones(covered)])
        framebuffer.depth[mask] = rng.random(covered)
        inline = run_image_from_framebuffer(framebuffer, "depth", compact="inline")
        dpp = run_image_from_framebuffer(framebuffer, "depth", compact="dpp")
        assert np.array_equal(inline.pixels, dpp.pixels)
        assert np.array_equal(inline.rgba, dpp.rgba)
        assert np.array_equal(inline.depth, dpp.depth)
        with pytest.raises(ValueError):
            run_image_from_framebuffer(framebuffer, "depth", compact="nope")

    def test_piece_message_clips_runs_and_charges_wire_bytes(self):
        # One image with runs [2, 5) and [8, 11); cut at pixel 4.
        pixels = np.array([2, 3, 4, 8, 9, 10])
        rgba = np.tile([0.5, 0.5, 0.5, 1.0], (6, 1))
        depth = np.arange(6, dtype=float)
        image = RunImage.from_arrays(pixels, rgba, depth, width=12, height=1)
        assert image.num_runs == 2
        payload, nbytes = image.piece_message(3, 9)
        piece_pixels, piece_rgba, piece_depth, key = payload
        assert np.array_equal(piece_pixels, [3, 4, 8])
        assert piece_rgba.shape == (3, 4) and piece_depth.shape == (3,)
        # Two clipped runs ([3,5) and [8,9)): 64 header + 2*16 runs + 3*40 payload.
        assert nbytes == 64.0 + 32.0 + 120.0
        empty_payload, empty_bytes = image.piece_message(5, 8)
        assert len(empty_payload[0]) == 0 and empty_bytes == 64.0
        # over-mode payload omits the depth plane and charges 32 B/pixel.
        over_payload, over_bytes = image.piece_message(3, 9, with_depth=False)
        assert over_payload[2] is None
        assert over_bytes == 64.0 + 32.0 + 96.0

    def test_piece_table_matches_piece_message(self, rng):
        pixels = np.sort(rng.choice(100, size=40, replace=False))
        image = RunImage.from_arrays(
            pixels, rng.random((40, 4)), rng.random(40), width=100, height=1
        )
        edges = np.array([0, 17, 40, 41, 90, 100])
        table = image.piece_table(edges)
        for index in range(len(edges) - 1):
            payload, nbytes = image.piece_message(int(edges[index]), int(edges[index + 1]))
            assert np.array_equal(table[index][0][0], payload[0])
            assert table[index][1] == nbytes

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            RunImage(4, 4, np.arange(3), np.zeros((2, 4)), np.zeros(3))
        with pytest.raises(ValueError):
            RunImage(4, 4, np.arange(3), np.zeros((3, 4)), np.zeros(2))


class TestMergeKernels:
    def test_merge_sorted_pair_matches_composite_pixels(self, rng):
        """Union merge on overlapping streams equals the dense pairwise merge."""
        num_pixels = 64
        for mode in ("depth", "over"):
            dense = []
            streams = []
            for key in range(2):
                rgba = np.zeros((num_pixels, 4))
                depth = np.full(num_pixels, np.inf if mode == "depth" else float(key))
                mask = rng.random(num_pixels) < 0.6
                covered = int(mask.sum())
                rgba[mask] = np.column_stack([rng.random((covered, 3)), np.full(covered, 0.7)])
                if mode == "depth":
                    depth[mask] = rng.random(covered)
                    pixels = np.flatnonzero(np.isfinite(depth))
                else:
                    pixels = np.flatnonzero(rgba[:, 3] > 0)
                dense.append((rgba, depth))
                keys = np.full(len(pixels), key, dtype=np.int64)
                streams.append(
                    (
                        pixels,
                        rgba[pixels],
                        depth[pixels] if mode == "depth" else None,
                        keys if mode == "depth" else None,
                    )
                )
            (out_pix, out_rgba, _, _), _ = merge_sorted_pair(streams[0], streams[1], mode)
            expected_rgba, expected_depth = composite_pixels(
                dense[0][0], dense[0][1], dense[1][0], dense[1][1], mode
            )
            for position, pixel in enumerate(out_pix):
                assert np.allclose(out_rgba[position], expected_rgba[pixel], atol=1e-10)

    def test_merge_sorted_pair_empty_sides(self):
        empty = (np.empty(0, dtype=np.int64), np.empty((0, 4)), np.empty(0), np.empty(0, np.int64))
        stream = (np.array([1, 2]), np.ones((2, 4)), np.zeros(2), np.zeros(2, np.int64))
        merged, ops = merge_sorted_pair(empty, stream, "depth")
        assert ops == 0 and np.array_equal(merged[0], [1, 2])
        merged, ops = merge_sorted_pair(stream, empty, "depth")
        assert ops == 0 and np.array_equal(merged[0], [1, 2])

    def test_merge_fragments_depth_selects_nearest_with_key_ties(self):
        pixels = np.array([4, 4, 4, 9, 9])
        keys = np.array([2, 0, 1, 1, 0])
        rgba = np.arange(20, dtype=float).reshape(5, 4)
        depth = np.array([1.0, 3.0, 1.0, 2.0, 2.0])
        out_pix, out_rgba, out_depth, ops = merge_fragments(pixels, keys, rgba, depth, "depth")
        assert np.array_equal(out_pix, [4, 9])
        assert ops == 3
        # Pixel 4: min depth 1.0 shared by keys 1 and 2 -> key 1 wins.
        assert np.array_equal(out_rgba[0], rgba[2])
        # Pixel 9: tie at depth 2.0 -> key 0 wins.
        assert np.array_equal(out_rgba[1], rgba[4])
        assert np.array_equal(out_depth, [1.0, 2.0])

    def test_merge_fragments_implicit_keys_match_explicit(self, rng):
        """keys=None (key-ordered concatenation) equals explicit keys."""
        pixels = np.concatenate([np.sort(rng.choice(50, 20, replace=False)) for _ in range(3)])
        keys = np.repeat(np.arange(3), 20)
        rgba = rng.random((60, 4))
        depth = rng.random(60)
        explicit = merge_fragments(pixels, keys, rgba, depth, "depth")
        implicit = merge_fragments(pixels, None, rgba, depth, "depth")
        for left, right in zip(explicit, implicit):
            assert np.array_equal(np.asarray(left), np.asarray(right))

    def test_merge_fragments_empty_and_validation(self):
        out = merge_fragments(np.empty(0, np.int64), None, np.empty((0, 4)), None, "over")
        assert len(out[0]) == 0 and out[3] == 0
        with pytest.raises(ValueError):
            merge_fragments(np.array([1]), None, np.ones((1, 4)), np.ones(1), "nope")

    def test_merge_groups_bands_do_not_leak(self, rng):
        """Fragments of one group never appear in another group's result."""
        num_pixels = 32
        groups = []
        for group_id in (0, 2, 5):
            sets = []
            for key in range(2):
                pixels = np.sort(rng.choice(num_pixels, 10, replace=False))
                sets.append((key, pixels, rng.random((10, 4)), rng.random(10)))
            groups.append((group_id, sets))
        resolved, _ = merge_groups(groups, num_pixels, "depth")
        assert set(resolved) == {0, 2, 5}
        for group_id, (pixels, rgba, depth) in resolved.items():
            assert len(pixels) and pixels.min() >= 0 and pixels.max() < num_pixels
            assert len(rgba) == len(pixels) == len(depth)


class TestAccountingSemantics:
    def test_runlength_engine_exchanges_fewer_bytes(self, rng):
        """Run-length wire encoding beats dense slabs on sparse images."""
        framebuffers = _random_framebuffers(rng, 6, fill=0.3)
        fast = Compositor("radix-k").composite([fb.copy() for fb in framebuffers], mode="depth")
        reference = Compositor("radix-k").composite(
            [fb.copy() for fb in framebuffers], mode="depth", engine="reference"
        )
        assert fast.bytes_exchanged < reference.bytes_exchanged
        assert fast.engine == "runlength" and reference.engine == "reference"

    def test_average_active_pixels_is_mode_aware(self, rng):
        """Over-mode avg(AP) counts alpha-carrying pixels, not the whole plane."""
        framebuffers = _random_framebuffers(rng, 4, alpha=0.5, fill=0.25)
        visibility = list(np.arange(4, dtype=float))
        result = Compositor("radix-k").composite(
            framebuffers, mode="over", visibility_order=visibility
        )
        expected = float(np.mean([
            int(np.count_nonzero(fb.rgba.reshape(-1, 4)[:, 3] > 0)) for fb in framebuffers
        ]))
        assert result.average_active_pixels == pytest.approx(expected)
        assert result.average_active_pixels < framebuffers[0].num_pixels
