"""Tests for color tables, framebuffers, the rasterizer, volume renderers, and baselines."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Camera, tetrahedralize_uniform_grid
from repro.geometry.mesh import UniformGrid
from repro.rendering import (
    ColorTable,
    Framebuffer,
    Rasterizer,
    RasterizerConfig,
    RayTracer,
    RayTracerConfig,
    Scene,
    StructuredVolumeConfig,
    StructuredVolumeRenderer,
    TransferFunction,
    UnstructuredVolumeConfig,
    UnstructuredVolumeRenderer,
    Workload,
    normalize_scalars,
)
from repro.rendering.baselines import (
    ConnectivityRayCaster,
    ProjectedTetrahedraRenderer,
    SpecializedRayTracer,
    VisItStyleSampler,
)


class TestColor:
    def test_normalize_scalars(self):
        normalized = normalize_scalars(np.array([0.0, 5.0, 10.0]))
        assert normalized.tolist() == [0.0, 0.5, 1.0]
        assert np.all(normalize_scalars(np.array([3.0, 3.0])) == 0.5)
        clamped = normalize_scalars(np.array([-1.0, 11.0]), 0.0, 10.0)
        assert clamped.tolist() == [0.0, 1.0]

    def test_color_table_lookup(self):
        table = ColorTable("cool-to-warm", samples=16)
        colors = table.map(np.array([0.0, 0.5, 1.0]))
        assert colors.shape == (3, 3)
        assert np.all((colors >= 0.0) & (colors <= 1.0))
        # End points should differ for a diverging table.
        assert not np.allclose(colors[0], colors[2])

    def test_color_table_validation(self):
        with pytest.raises(KeyError):
            ColorTable("nope")
        with pytest.raises(ValueError):
            ColorTable(samples=1)
        assert "rainbow" in ColorTable.available()

    def test_transfer_function_opacity_correction(self):
        tf = TransferFunction(scalar_range=(0.0, 1.0), unit_distance=1.0)
        raw = tf.opacity(np.array([1.0]))
        corrected_small_step = tf.opacity(np.array([1.0]), step_length=0.1)
        assert corrected_small_step[0] < raw[0]
        rgb, alpha = tf.sample(np.array([0.0, 1.0]), step_length=0.5)
        assert rgb.shape == (2, 3)
        assert alpha[0] <= alpha[1]

    def test_transfer_function_validation(self):
        with pytest.raises(ValueError):
            TransferFunction(opacity_points=[(0.0, 0.1)])
        with pytest.raises(ValueError):
            TransferFunction(unit_distance=0.0)


class TestFramebuffer:
    def test_clear_and_active_pixels(self):
        fb = Framebuffer(4, 3)
        assert fb.active_pixels() == 0
        fb.write_pixels(np.array([0, 5]), np.array([[1, 0, 0, 1], [0, 1, 0, 1]], dtype=float), np.array([1.0, 2.0]))
        assert fb.active_pixels() == 2
        fb.clear()
        assert fb.active_pixels() == 0

    def test_depth_composite_prefers_nearer(self):
        a, b = Framebuffer(2, 1), Framebuffer(2, 1)
        a.write_pixels(np.array([0]), np.array([[1.0, 0, 0, 1]]), np.array([1.0]))
        b.write_pixels(np.array([0]), np.array([[0, 1.0, 0, 1]]), np.array([2.0]))
        merged = a.depth_composite(b)
        assert merged.rgba[0, 0, 0] == 1.0
        assert merged.depth[0, 0] == 1.0

    def test_blend_over(self):
        front, back = Framebuffer(1, 1), Framebuffer(1, 1)
        front.rgba[0, 0] = [1.0, 0.0, 0.0, 0.5]
        back.rgba[0, 0] = [0.0, 1.0, 0.0, 1.0]
        blended = front.blend_over(back)
        assert blended.rgba[0, 0, 0] == pytest.approx(0.5)
        assert blended.rgba[0, 0, 3] == pytest.approx(1.0)

    def test_to_rgb8_range(self):
        fb = Framebuffer(2, 2)
        fb.rgba[..., :3] = 0.5
        fb.rgba[..., 3] = 1.0
        rgb = fb.to_rgb8()
        assert rgb.dtype == np.uint8
        assert rgb.max() <= 255

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            Framebuffer(0, 3)
        with pytest.raises(ValueError):
            Framebuffer(2, 2).blend_over(Framebuffer(3, 3))


class TestRasterizer:
    def test_render_reports_features(self, small_scene, small_camera):
        result = Rasterizer(small_scene).render(small_camera)
        assert result.technique == "raster"
        assert result.features.objects == small_scene.num_triangles
        assert result.features.visible_objects > 0
        assert result.features.pixels_per_triangle > 0
        assert result.features.active_pixels > 0

    def test_raster_and_raytrace_cover_similar_pixels(self, small_scene, small_camera):
        raster = Rasterizer(small_scene).render(small_camera)
        trace = RayTracer(small_scene, RayTracerConfig(workload=Workload.SHADING)).render(small_camera)
        raster_mask = np.isfinite(raster.framebuffer.depth)
        trace_mask = np.isfinite(trace.framebuffer.depth)
        overlap = np.count_nonzero(raster_mask & trace_mask)
        union = np.count_nonzero(raster_mask | trace_mask)
        assert overlap / union > 0.7

    def test_depth_test_keeps_nearest(self, small_camera):
        # Two parallel quads; the nearer (to the camera at +z) must win.
        def quad(z):
            return np.array([[-1, -1, z], [1, -1, z], [1, 1, z], [-1, 1, z]], dtype=float)

        vertices = np.vstack([quad(0.0), quad(1.0)])
        triangles = np.array([[0, 1, 2], [0, 2, 3], [4, 5, 6], [4, 6, 7]])
        scalars = np.array([0.0] * 4 + [1.0] * 4)
        from repro.geometry import TriangleMesh

        mesh = TriangleMesh(vertices, triangles, scalars)
        camera = Camera(position=np.array([0.0, 0.0, 5.0]), look_at=np.zeros(3), width=33, height=33)
        result = Rasterizer(Scene(mesh)).render(camera)
        center_depth = result.framebuffer.depth[16, 16]
        assert np.isfinite(center_depth)
        # The near quad is at z=1 (distance 4); the far quad at z=0 (distance 5).
        near_expected, _ = camera.world_to_screen(np.array([[0.0, 0.0, 1.0]]))
        assert center_depth == pytest.approx(near_expected[0, 2], abs=1e-6)

    def test_empty_mesh(self, small_camera):
        from repro.geometry import TriangleMesh

        empty = TriangleMesh(np.zeros((0, 3)), np.zeros((0, 3), dtype=np.int64))
        result = Rasterizer(Scene(empty)).render(small_camera)
        assert result.features.active_pixels == 0

    def test_chunking_gives_same_image(self, small_scene, small_camera):
        whole = Rasterizer(small_scene, RasterizerConfig(pair_chunk=10_000_000)).render(small_camera)
        chunked = Rasterizer(small_scene, RasterizerConfig(pair_chunk=500)).render(small_camera)
        assert np.allclose(whole.framebuffer.depth, chunked.framebuffer.depth, equal_nan=True)
        assert np.allclose(whole.framebuffer.rgba, chunked.framebuffer.rgba)


class TestStructuredVolume:
    def test_render_features_and_opacity(self, blob_grid):
        camera = Camera.framing_bounds(blob_grid.bounds, 40, 40, zoom=1.2)
        renderer = StructuredVolumeRenderer(blob_grid, "density")
        result = renderer.render(camera)
        assert result.technique == "volume_structured"
        assert result.features.objects == blob_grid.num_cells
        assert result.features.active_pixels > 0
        assert result.features.samples_per_ray > 0
        assert result.features.cells_spanned == max(blob_grid.cell_dims)
        alpha = result.framebuffer.rgba[..., 3]
        assert alpha.max() <= 1.0 + 1e-12
        assert alpha.max() > 0.0

    def test_more_samples_changes_little(self, blob_grid):
        camera = Camera.framing_bounds(blob_grid.bounds, 32, 32, zoom=1.2)
        coarse = StructuredVolumeRenderer(blob_grid, "density", config=StructuredVolumeConfig(samples_in_depth=50)).render(camera)
        fine = StructuredVolumeRenderer(blob_grid, "density", config=StructuredVolumeConfig(samples_in_depth=200)).render(camera)
        mask = np.isfinite(coarse.framebuffer.depth) & np.isfinite(fine.framebuffer.depth)
        assert mask.sum() > 0
        difference = np.abs(coarse.framebuffer.rgba[mask] - fine.framebuffer.rgba[mask]).mean()
        assert difference < 0.12

    def test_early_termination_reduces_samples(self, blob_grid):
        camera = Camera.framing_bounds(blob_grid.bounds, 32, 32, zoom=1.5)
        eager = StructuredVolumeRenderer(
            blob_grid, "density", config=StructuredVolumeConfig(early_termination_alpha=0.3)
        ).render(camera)
        patient = StructuredVolumeRenderer(
            blob_grid, "density", config=StructuredVolumeConfig(early_termination_alpha=1.0)
        ).render(camera)
        assert eager.features.samples_per_ray <= patient.features.samples_per_ray

    def test_camera_outside_sees_nothing(self, blob_grid):
        camera = Camera(
            position=np.array([100.0, 100.0, 100.0]),
            look_at=np.array([200.0, 200.0, 200.0]),
            width=16,
            height=16,
        )
        result = StructuredVolumeRenderer(blob_grid, "density").render(camera)
        assert result.features.active_pixels == 0

    def test_missing_field_raises(self, blob_grid):
        with pytest.raises(KeyError):
            StructuredVolumeRenderer(blob_grid, "nope")

    def test_trilinear_matches_field_at_points(self, blob_grid):
        renderer = StructuredVolumeRenderer(blob_grid, "density")
        points = blob_grid.points()[::37]
        expected = np.asarray(blob_grid.point_fields["density"])[::37]
        assert np.allclose(renderer._trilinear(points), expected, atol=1e-9)


class TestUnstructuredVolume:
    def test_render_and_passes_agree(self, small_tets):
        camera = Camera.framing_bounds(small_tets.bounds, 36, 36, zoom=1.2)
        single = UnstructuredVolumeRenderer(
            small_tets, "density", config=UnstructuredVolumeConfig(samples_in_depth=60, num_passes=1, early_termination_alpha=1.0)
        ).render(camera)
        multi = UnstructuredVolumeRenderer(
            small_tets, "density", config=UnstructuredVolumeConfig(samples_in_depth=60, num_passes=3, early_termination_alpha=1.0)
        ).render(camera)
        assert single.technique == "volume_unstructured"
        assert single.features.active_pixels > 0
        # The multi-pass result must match the single-pass result.
        assert np.allclose(single.framebuffer.rgba, multi.framebuffer.rgba, atol=1e-9)

    def test_phases_reported(self, small_tets):
        camera = Camera.framing_bounds(small_tets.bounds, 24, 24)
        result = UnstructuredVolumeRenderer(
            small_tets, "density", config=UnstructuredVolumeConfig(samples_in_depth=40)
        ).render(camera)
        for phase in ("initialization", "pass_selection", "screen_space", "sampling", "compositing"):
            assert phase in result.phase_seconds

    def test_structured_and_unstructured_roughly_agree(self, blob_grid, small_tets):
        camera = Camera.framing_bounds(blob_grid.bounds, 40, 40, zoom=1.2)
        structured = StructuredVolumeRenderer(
            blob_grid, "density", config=StructuredVolumeConfig(samples_in_depth=80)
        ).render(camera)
        unstructured = UnstructuredVolumeRenderer(
            small_tets, "density", config=UnstructuredVolumeConfig(samples_in_depth=80)
        ).render(camera)
        a = structured.framebuffer.rgba[..., 3].ravel()
        b = unstructured.framebuffer.rgba[..., 3].ravel()
        assert np.corrcoef(a, b)[0, 1] > 0.3

    def test_config_validation(self):
        with pytest.raises(ValueError):
            UnstructuredVolumeConfig(samples_in_depth=0)
        with pytest.raises(ValueError):
            UnstructuredVolumeConfig(num_passes=0)
        with pytest.raises(ValueError):
            UnstructuredVolumeConfig(early_termination_alpha=0.0)

    def test_missing_field_raises(self, small_tets):
        with pytest.raises(KeyError):
            UnstructuredVolumeRenderer(small_tets, "nope")


class TestBaselines:
    def test_specialized_ray_tracer_faster_or_close(self, small_scene, small_camera):
        specialized = SpecializedRayTracer(small_scene)
        rays, seconds = specialized.trace(small_camera)
        assert rays == small_camera.width * small_camera.height
        assert seconds > 0
        assert specialized.rays_per_second(small_camera) > 0

    def test_projected_tetrahedra(self, small_tets, blob_grid):
        camera = Camera.framing_bounds(blob_grid.bounds, 32, 32, zoom=1.2)
        result = ProjectedTetrahedraRenderer(small_tets, "density").render(camera)
        assert result.technique == "havs_proxy"
        assert result.features.active_pixels > 0
        assert "sort" in result.phase_seconds and "rasterize" in result.phase_seconds

    def test_connectivity_ray_caster(self, small_tets, blob_grid):
        camera = Camera.framing_bounds(blob_grid.bounds, 32, 32, zoom=1.2)
        caster = ConnectivityRayCaster(small_tets, "density", samples_in_depth=40)
        result = caster.render(camera)
        assert result.technique == "bunyk_proxy"
        assert caster.preprocess_seconds > 0.0
        assert result.features.active_pixels > 0

    def test_visit_style_sampler(self, small_tets, blob_grid):
        camera = Camera.framing_bounds(blob_grid.bounds, 24, 24, zoom=1.2)
        result = VisItStyleSampler(small_tets, "density", samples_in_depth=40).render(camera)
        assert result.technique == "visit_proxy"
        assert result.features.active_pixels > 0
