"""The reporting subsystem: suite registry, artifacts, predictor, CLI, guard logic."""

from __future__ import annotations

import json
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.modeling.features import (
    RenderingConfiguration,
    feature_arrays,
    map_configuration_batch,
    map_configuration_to_features,
)
from repro.modeling.models import CompositingModel, RayTracingModel
from repro.modeling.regression import LinearRegressionResult
from repro.modeling.study import StudyConfiguration, StudyCorpus, StudyHarness
from repro.reporting import ModelSuite, Predictor, generate_report
from repro.reporting.suite import MODELS_SCHEMA_VERSION, FittedModel, _coefficient_warnings
from repro.study import cli as study_cli
from repro.study.corpus_io import corpus_digest, save_corpus

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "benchmarks"))

from perf_guard import compare_sections  # noqa: E402


@pytest.fixture(scope="module")
def corpus() -> StudyCorpus:
    """A synthesized-only corpus: large enough to cross-validate, instant to build."""
    config = StudyConfiguration(
        architectures=("gpu1-k40m",),
        techniques=("raytrace", "raster", "volume"),
        simulations=("kripke",),
        task_counts=(1, 4),
        samples_per_technique=8,
        compositing_task_counts=(2, 4),
        compositing_pixel_sizes=(32, 48, 64),
        seed=99,
    )
    return StudyHarness(config).run()


@pytest.fixture(scope="module")
def suite(corpus) -> ModelSuite:
    return ModelSuite.fit_corpus(corpus)


class TestModelSuite:
    def test_fits_every_slice_plus_compositing(self, corpus, suite):
        assert sorted(suite.entries) == [
            ("gpu1-k40m", "raster"),
            ("gpu1-k40m", "raytrace"),
            ("gpu1-k40m", "volume"),
        ]
        assert suite.compositing is not None
        assert suite.compositing.num_rows == len(corpus.compositing_records)
        assert not suite.failures
        for entry in suite.entries.values():
            assert entry.model.r_squared > 0.5
            assert entry.crossval_accuracy is not None
            assert entry.crossval_accuracy["within_50"] >= 0.0

    def test_models_view_matches_fit_all_models_keys(self, corpus, suite):
        assert set(suite.models()) == set(corpus.fit_all_models())

    def test_diagnostics_report_every_fit_group(self, suite):
        raytrace = suite.entries[("gpu1-k40m", "raytrace")]
        diagnostics = raytrace.diagnostics()
        assert set(diagnostics) == {"build", "frame"}
        for group in diagnostics.values():
            assert set(group) >= {"r_squared", "residual_std", "coefficients", "negative_terms"}

    def test_negative_coefficients_become_structured_warnings(self):
        model = CompositingModel()
        model.fit_result = LinearRegressionResult(
            coefficients=np.array([1e-6, 2e-9, -0.25]),
            r_squared=0.9,
            residual_std=0.01,
            num_observations=10,
            term_names=CompositingModel.term_names,
        )
        entry = FittedModel("-", "compositing", model, 10)
        warnings = _coefficient_warnings(entry)
        assert warnings == [
            {
                "kind": "negative_coefficient",
                "architecture": "-",
                "technique": "compositing",
                "group": "fit",
                "term": "c2_intercept",
                "value": -0.25,
            }
        ]

    def test_degenerate_slices_become_failures_not_exceptions(self, corpus):
        tiny = StudyCorpus(records=corpus.records[:2], compositing_records=corpus.compositing_records[:2])
        suite = ModelSuite.fit_corpus(tiny)
        assert suite.is_empty()
        assert {f["technique"] for f in suite.failures} >= {"compositing"}
        for failure in suite.failures:
            assert failure["reason"] == "degenerate-fit"
            assert failure["message"]

    def test_get_unknown_key_lists_available(self, suite):
        with pytest.raises(KeyError, match="gpu1-k40m/raytrace"):
            suite.get("nope", "raytrace")

    def test_crossval_skipped_is_recorded(self, corpus):
        small = StudyCorpus(records=corpus.select("gpu1-k40m", "volume")[:4])
        suite = ModelSuite.fit_corpus(small)
        entry = suite.entries[("gpu1-k40m", "volume")]
        assert entry.crossval_accuracy is None
        assert "6 observations" in entry.crossval_skipped
        assert any(w["kind"] == "crossval_skipped" for w in entry.warnings)


class TestSerialization:
    def test_models_json_round_trip_is_exact(self, suite, tmp_path):
        path = suite.save(tmp_path / "models.json")
        payload = json.loads(path.read_text())
        assert payload["schema"] == MODELS_SCHEMA_VERSION
        loaded = ModelSuite.load(path)
        assert sorted(loaded.entries) == sorted(suite.entries)
        for key, entry in suite.entries.items():
            for group, fit in entry.fit_groups().items():
                loaded_fit = loaded.entries[key].fit_groups()[group]
                assert np.array_equal(loaded_fit.coefficients, fit.coefficients)
                assert loaded_fit.residual_std == fit.residual_std
                assert loaded_fit.term_names == fit.term_names
        assert loaded.compositing is not None
        assert loaded.entries[("gpu1-k40m", "raytrace")].crossval_accuracy is not None

    def test_unknown_schema_is_rejected(self, suite, tmp_path):
        payload = suite.to_payload()
        payload["schema"] = 999
        with pytest.raises(ValueError, match="schema"):
            ModelSuite.from_payload(payload)


class TestPredictor:
    def test_in_sample_round_trip_reproduces_predictions(self, corpus, suite, tmp_path):
        """The acceptance criterion: models.json -> Predictor == in-memory model."""
        predictor = Predictor.load(suite.save(tmp_path / "models.json"))
        for (architecture, technique), entry in suite.entries.items():
            rows = corpus.select(architecture, technique)
            features = [row.features for row in rows]
            expected = entry.model.predict_many(features)
            got = predictor.predict_features(architecture, technique, features).seconds
            assert np.max(np.abs(expected - got)) <= 1e-10

    def test_configuration_batch_matches_scalar_path(self, suite):
        predictor = Predictor(suite)
        sizes = np.array([512, 1024, 2048, 2880])
        batch = predictor.predict_configurations(
            "gpu1-k40m", "raytrace", num_tasks=32, cells_per_task=200, image_width=sizes, image_height=sizes
        )
        assert len(batch) == len(sizes)
        model = suite.entries[("gpu1-k40m", "raytrace")].model
        for index, size in enumerate(sizes):
            config = RenderingConfiguration(
                technique="raytrace",
                architecture="gpu1-k40m",
                num_tasks=32,
                cells_per_task=200,
                image_width=int(size),
                image_height=int(size),
            )
            scalar = model.predict(map_configuration_to_features(config))
            assert abs(batch.seconds[index] - scalar) <= 1e-12

    def test_intervals_bound_the_prediction(self, suite):
        predictor = Predictor(suite)
        batch = predictor.predict_configurations(
            "gpu1-k40m", "volume", num_tasks=8, cells_per_task=np.arange(50, 350, 50),
            image_width=1024, image_height=1024, sigmas=3.0,
        )
        assert np.all(batch.lower <= batch.seconds)
        assert np.all(batch.seconds <= batch.upper)
        assert np.all(batch.lower >= 0.0)
        assert np.allclose(batch.upper - batch.seconds, 3.0 * batch.residual_std)
        assert batch.sigmas == 3.0

    def test_raytrace_interval_widens_with_build(self, suite):
        predictor = Predictor(suite)
        with_build = predictor.predict_configurations(
            "gpu1-k40m", "raytrace", 32, 200, 1024, 1024, include_build=True
        )
        without = predictor.predict_configurations(
            "gpu1-k40m", "raytrace", 32, 200, 1024, 1024, include_build=False
        )
        assert with_build.seconds[0] > without.seconds[0]
        assert with_build.residual_std >= without.residual_std

    def test_compositing_predictions(self, suite):
        predictor = Predictor(suite)
        batch = predictor.predict_compositing(np.array([500.0, 1500.0]), np.array([4096, 16384]))
        assert len(batch) == 2
        assert np.all(np.isfinite(batch.seconds))

    def test_as_dict_is_json_ready(self, suite):
        predictor = Predictor(suite)
        batch = predictor.predict_compositing(800.0, 4096)
        payload = batch.as_dict()
        json.dumps(payload)
        assert payload["sigmas"] == 2.0


class TestBatchMapping:
    def test_batch_mapping_matches_scalar_exactly(self):
        rng = np.random.default_rng(7)
        for technique in ("raytrace", "raster", "volume", "volume_unstructured"):
            tasks = rng.integers(1, 1500, 64)
            cells = rng.integers(1, 400, 64)
            width = rng.integers(16, 4096, 64)
            height = rng.integers(16, 4096, 64)
            samples = rng.integers(10, 1500, 64)
            batch = map_configuration_batch(technique, tasks, cells, width, height, samples)
            for i in range(64):
                scalar = map_configuration_to_features(
                    RenderingConfiguration(
                        technique=technique,
                        architecture="x",
                        num_tasks=int(tasks[i]),
                        cells_per_task=int(cells[i]),
                        image_width=int(width[i]),
                        image_height=int(height[i]),
                        samples_in_depth=int(samples[i]),
                    )
                )
                assert batch["objects"][i] == float(scalar.objects)
                assert batch["active_pixels"][i] == float(scalar.active_pixels)
                assert batch["visible_objects"][i] == float(scalar.visible_objects)
                assert batch["pixels_per_triangle"][i] == float(scalar.pixels_per_triangle)
                assert batch["samples_per_ray"][i] == float(scalar.samples_per_ray)
                assert batch["cells_spanned"][i] == float(scalar.cells_spanned)

    def test_batch_mapping_validates_inputs(self):
        with pytest.raises(ValueError, match="unknown technique"):
            map_configuration_batch("nope", 1, 1, 64, 64)
        with pytest.raises(ValueError, match="positive"):
            map_configuration_batch("raytrace", 0, 10, 64, 64)

    def test_term_matrix_rows_equal_term_rows(self, corpus):
        rows = corpus.select("gpu1-k40m", "raster")
        features = [row.features for row in rows]
        arrays = feature_arrays(features)
        from repro.modeling.models import RasterizationModel, VolumeRenderingModel

        raster = RasterizationModel()
        assert np.array_equal(raster.term_matrix(arrays), raster.design_matrix(features))
        volume = VolumeRenderingModel()
        assert np.array_equal(volume.term_matrix(arrays), volume.design_matrix(features))
        raytrace = RayTracingModel()
        assert np.array_equal(raytrace.build_term_matrix(arrays), raytrace.build_design(features))
        assert np.array_equal(raytrace.frame_term_matrix(arrays), raytrace.frame_design(features))


class TestGenerateReport:
    EXPECTED = (
        ["models.json", "report.json", "report.md"]
        + [f"tables/table{n}_{slug}.{ext}" for n, slug in [
            (12, "model_r2"), (13, "crossval_accuracy"), (14, "compositing_accuracy"),
            (15, "large_scale_prediction"), (16, "mapping_validation"), (17, "coefficients"),
        ] for ext in ("json", "md")]
        + [f"figures/fig{n}_{slug}.{ext}" for n, slug in [
            (11, "crossval_error"), (12, "compositing_histogram"), (13, "compositing_crossval"),
            (14, "images_per_budget"), (15, "rt_vs_raster"),
        ] for ext in ("json", "md")]
    )

    def test_emits_every_artifact(self, corpus, tmp_path):
        result = generate_report(corpus, tmp_path / "report")
        emitted = {str(path.relative_to(result.out_dir)) for path in result.paths}
        assert emitted == set(self.EXPECTED)
        assert result.manifest["corpus"]["digest"] == corpus_digest(corpus)
        assert result.manifest["fitted"] == [
            ["gpu1-k40m", "raster"], ["gpu1-k40m", "raytrace"], ["gpu1-k40m", "volume"],
        ]

    def test_regeneration_is_byte_identical(self, corpus, tmp_path):
        first = generate_report(corpus, tmp_path / "one")
        second = generate_report(corpus, tmp_path / "two")
        for path in first.paths:
            relative = path.relative_to(first.out_dir)
            assert path.read_bytes() == (second.out_dir / relative).read_bytes(), relative

    def test_records_carry_their_sampling_depth(self, corpus, tmp_path):
        # Synthetic rows record the full-scale depth; the value survives IO,
        # so Table 16 maps with the depth the experiment actually used.
        from repro.study.corpus_io import load_corpus

        assert all(r.samples_in_depth == 1000 for r in corpus.records)
        reloaded = load_corpus(save_corpus(corpus, tmp_path / "roundtrip.json"))
        assert [r.samples_in_depth for r in reloaded.records] == [
            r.samples_in_depth for r in corpus.records
        ]

    def test_table_payloads_are_machine_checkable(self, corpus, tmp_path):
        result = generate_report(corpus, tmp_path / "report")
        tables = {
            payload["table"]: payload
            for payload in (
                json.loads(path.read_text())
                for path in result.paths
                if path.suffix == ".json" and path.parent.name == "tables"
            )
        }
        assert sorted(tables) == [12, 13, 14, 15, 16, 17]
        assert all(row["r_squared"] <= 1.0 for row in tables[12]["rows"])
        accuracy = tables[13]["rows"][0]["accuracy"]
        assert accuracy is not None and 0.0 <= accuracy["within_50"] <= 100.0
        assert tables[14]["available"] is True
        assert all(abs(r["difference_percent"]) < 1e6 for r in tables[15]["rows"])
        assert tables[16]["rows"] == []  # synthesized-only corpus has no host rows
        for row in tables[17]["rows"]:
            assert row["coefficients"]

    def test_figure_payloads(self, corpus, tmp_path):
        result = generate_report(corpus, tmp_path / "report")
        figures = {
            payload["figure"]: payload
            for payload in (
                json.loads(path.read_text())
                for path in result.paths
                if path.suffix == ".json" and path.parent.name == "figures"
            )
        }
        assert sorted(figures) == [11, 12, 13, 14, 15]
        series = figures[11]["series"]
        assert all(s["available"] for s in series)
        assert len(figures[12]["rows"]) == len(corpus.compositing_records)
        assert figures[13]["available"] is True
        points = figures[14]["points"]
        assert len(points) == 3 * 5  # three models x five image sizes
        for key in {(p["architecture"], p["technique"]) for p in points}:
            counts = [p["images_in_budget"] for p in points if (p["architecture"], p["technique"]) == key]
            assert all(a >= b for a, b in zip(counts, counts[1:]))
        grids = figures[15]["grids"]
        assert len(grids) == 1 and grids[0]["architecture"] == "gpu1-k40m"
        assert len(grids[0]["ratio"]) == len(grids[0]["data_sizes"])

    def test_report_markdown_contains_all_sections(self, corpus, tmp_path):
        result = generate_report(corpus, tmp_path / "report")
        markdown = result.markdown_path.read_text()
        for number in range(12, 18):
            assert f"### Table {number}:" in markdown
        for number in range(11, 16):
            assert f"### Figure {number}:" in markdown
        assert corpus_digest(corpus) in markdown


class TestReportingCLI:
    def _save(self, corpus, tmp_path, name="corpus.json") -> str:
        return str(save_corpus(corpus, tmp_path / name))

    def test_report_subcommand_round_trips(self, corpus, tmp_path, capsys):
        path = self._save(corpus, tmp_path)
        out_dir = tmp_path / "report"
        assert study_cli.main(["report", path, "--out-dir", str(out_dir)]) == 0
        assert (out_dir / "models.json").is_file()
        assert (out_dir / "report.md").is_file()
        assert "renderer models + compositing" in capsys.readouterr().out
        # Second invocation on the same corpus is byte-identical (acceptance).
        second = tmp_path / "report-second"
        assert study_cli.main(["report", path, "--out-dir", str(second)]) == 0
        for path_a in sorted((out_dir).rglob("*")):
            if path_a.is_file():
                path_b = second / path_a.relative_to(out_dir)
                assert path_a.read_bytes() == path_b.read_bytes()

    def test_fit_exits_nonzero_when_every_fit_is_degenerate(self, corpus, tmp_path, capsys):
        tiny = StudyCorpus(records=corpus.records[:2], compositing_records=corpus.compositing_records[:2])
        path = self._save(tiny, tmp_path, "tiny.json")
        assert study_cli.main(["fit", path]) == study_cli.EXIT_ALL_FITS_DEGENERATE
        out = capsys.readouterr().out
        structured = json.loads(out[out.index("{"):])
        assert structured["error"] == "all-fits-degenerate"
        assert structured["failures"]

    def test_report_exits_nonzero_when_every_fit_is_degenerate(self, corpus, tmp_path, capsys):
        tiny = StudyCorpus(records=corpus.records[:1])
        path = self._save(tiny, tmp_path, "tiny.json")
        out_dir = tmp_path / "degenerate-report"
        code = study_cli.main(["report", path, "--out-dir", str(out_dir)])
        assert code == study_cli.EXIT_ALL_FITS_DEGENERATE
        # The artifact tree is still written: failures are data, not crashes.
        assert (out_dir / "report.json").is_file()
        capsys.readouterr()

    def test_fit_happy_path_reports_r_squared(self, corpus, tmp_path, capsys):
        path = self._save(corpus, tmp_path)
        assert study_cli.main(["fit", path, "--crossval"]) == 0
        out = capsys.readouterr().out
        assert "R^2" in out and "within50" in out

    def test_predict_inline_configuration(self, corpus, suite, tmp_path, capsys):
        models = str(suite.save(tmp_path / "models.json"))
        code = study_cli.main(
            [
                "predict", models,
                "--architecture", "gpu1-k40m", "--technique", "raytrace",
                "--num-tasks", "64", "--cells-per-task", "150", "--image-size", "2048",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        [row] = payload["predictions"]
        assert 0.0 <= row["lower"] <= row["seconds"] <= row["upper"]

    def test_predict_batch_file_preserves_input_order(self, suite, tmp_path, capsys):
        models = str(suite.save(tmp_path / "models.json"))
        volume = {"architecture": "gpu1-k40m", "technique": "volume", "image_width": 512, "image_height": 512}
        configs = [
            {**volume, "num_tasks": 8},
            {"architecture": "gpu1-k40m", "technique": "raytrace", "num_tasks": 16},
            {**volume, "num_tasks": 64},
        ]
        configs_path = tmp_path / "configs.json"
        configs_path.write_text(json.dumps(configs))
        out_path = tmp_path / "predictions.json"
        code = study_cli.main(["predict", models, "--configs", str(configs_path), "--out", str(out_path)])
        assert code == 0
        capsys.readouterr()
        payload = json.loads(out_path.read_text())
        assert [row["technique"] for row in payload["predictions"]] == ["volume", "raytrace", "volume"]
        # More tasks shrink a task's screen footprint: same image, less time.
        assert payload["predictions"][2]["seconds"] < payload["predictions"][0]["seconds"]

    def test_predict_compositing_configurations(self, corpus, suite, tmp_path, capsys):
        models = str(suite.save(tmp_path / "models.json"))
        configs = [
            {"architecture": "-", "technique": "compositing", "average_active_pixels": 800.0, "pixels": 4096},
            {"architecture": "gpu1-k40m", "technique": "volume", "num_tasks": 8},
        ]
        configs_path = tmp_path / "configs.json"
        configs_path.write_text(json.dumps(configs))
        assert study_cli.main(["predict", models, "--configs", str(configs_path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        compositing_row, volume_row = payload["predictions"]
        expected = Predictor(suite).predict_compositing(800.0, 4096)
        assert compositing_row["seconds"] == expected.seconds[0]
        assert volume_row["technique"] == "volume"

    def test_predict_compositing_without_inputs_is_a_usage_error(self, suite, tmp_path, capsys):
        models = str(suite.save(tmp_path / "models.json"))
        code = study_cli.main(
            ["predict", models, "--architecture", "-", "--technique", "compositing"]
        )
        assert code == 2
        assert "average_active_pixels" in capsys.readouterr().err

    def test_predict_unknown_model_is_a_structured_error(self, suite, tmp_path, capsys):
        models = str(suite.save(tmp_path / "models.json"))
        code = study_cli.main(
            ["predict", models, "--architecture", "nope", "--technique", "raytrace"]
        )
        assert code == study_cli.EXIT_UNKNOWN_MODEL
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert payload["error"]["code"] == "unknown-model"
        assert payload["error"]["available"], "the error must list the servable slices"
        assert "no fitted model" in captured.err

    def test_predict_requires_a_configuration_source(self, suite, tmp_path, capsys):
        models = str(suite.save(tmp_path / "models.json"))
        assert study_cli.main(["predict", models]) == 2
        assert "--configs" in capsys.readouterr().err


class TestPerfGuardLogic:
    BASELINE = {
        "raytracer": {"current": {"full_96": 0.20}},
        "volume": {"current": {"structured_96": 0.18}},
        "compositing": {"current": {"radix-k_64": 0.16}},
        "serving": {"current": {"smoke_predictions_per_s": 1000.0, "smoke_p99_ms": 50.0}},
    }

    def test_within_tolerance_passes(self):
        measured = {
            "raytracer": {"full_96": 0.15},  # -25% throughput: inside 30%
            "volume": {"structured_96": 0.20},  # improvement
            "compositing": {"radix-k_64": 0.20},  # +25% seconds: inside 30%
        }
        rows = compare_sections(self.BASELINE, measured, tolerance=0.30)
        assert not any(row["regressed"] for row in rows)

    def test_throughput_drop_fails(self):
        rows = compare_sections(self.BASELINE, {"raytracer": {"full_96": 0.10}}, tolerance=0.30)
        [row] = rows
        assert row["regressed"] and row["regression"] == pytest.approx(0.5)

    def test_seconds_rise_fails(self):
        rows = compare_sections(self.BASELINE, {"compositing": {"radix-k_64": 0.30}}, tolerance=0.30)
        [row] = rows
        assert row["regressed"] and row["regression"] == pytest.approx(0.875)

    def test_improvements_never_fail(self):
        measured = {"raytracer": {"full_96": 10.0}, "compositing": {"radix-k_64": 0.001}}
        rows = compare_sections(self.BASELINE, measured, tolerance=0.30)
        assert not any(row["regressed"] for row in rows)
        assert all(row["regression"] < 0.0 for row in rows)

    def test_missing_baseline_key_is_reported_not_failed(self):
        rows = compare_sections(self.BASELINE, {"raytracer": {"brand_new_96": 1.0}}, tolerance=0.30)
        [row] = rows
        assert not row["regressed"] and row["note"] == "no baseline entry"

    def test_serving_section_mixes_directions_per_key(self):
        # Throughput halves (fails); latency improves in the same section (passes).
        measured = {"serving": {"smoke_predictions_per_s": 500.0, "smoke_p99_ms": 40.0}}
        rows = compare_sections(self.BASELINE, measured, tolerance=0.30)
        by_key = {row["key"]: row for row in rows}
        assert by_key["smoke_predictions_per_s"]["regressed"]
        assert by_key["smoke_predictions_per_s"]["regression"] == pytest.approx(0.5)
        assert not by_key["smoke_p99_ms"]["regressed"]
        assert by_key["smoke_p99_ms"]["regression"] == pytest.approx(-0.2)

    def test_serving_latency_rise_fails(self):
        rows = compare_sections(self.BASELINE, {"serving": {"smoke_p99_ms": 80.0}}, tolerance=0.30)
        [row] = rows
        assert row["regressed"] and row["regression"] == pytest.approx(0.6)

    def test_checked_in_bench_record_has_every_smoke_key(self):
        from perf_guard import HIGHER_IS_BETTER, SMOKE_KEYS

        root = Path(__file__).resolve().parents[1]
        record = json.loads((root / "BENCH_render.json").read_text())
        record["serving"] = json.loads((root / "BENCH_serving.json").read_text())["serving"]
        for section, keys in SMOKE_KEYS.items():
            assert section in HIGHER_IS_BETTER
            for key in keys:
                assert key in record[section]["current"], f"{section}/{key}"

    def test_checked_in_serving_record_meets_the_issue_floors(self):
        serving = json.loads(
            (Path(__file__).resolve().parents[1] / "BENCH_serving.json").read_text()
        )["serving"]
        assert serving["load"]["concurrent_configs"] >= 10_000
        assert serving["current"]["speedup_vs_no_batching"] >= 5.0
        assert serving["parity"]["bit_identical"] is True
