"""Edge-case and engine tests for the compacted-frontier traversal kernel.

Everything here is verified differentially against
:func:`repro.rendering.raytracer.traversal.brute_force_closest_hit`, which
shares the Moller-Trumbore kernel with the engine, so the default
``float64`` path must agree exactly on hit selection.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dpp import get_instrumentation, use_device
from repro.dpp.instrument import reset_instrumentation
from repro.geometry import TriangleMesh
from repro.rendering.raytracer import RayTracer, RayTracerConfig, Workload, build_bvh
from repro.rendering.raytracer.traversal import (
    any_hit,
    brute_force_closest_hit,
    closest_hit,
)


@pytest.fixture(autouse=True)
def _clean_instrumentation():
    reset_instrumentation()
    yield
    reset_instrumentation()


def _assert_matches_brute_force(bvh, mesh, origins, directions, exact_triangles=True, **kwargs):
    fast = closest_hit(bvh, mesh, origins, directions, **kwargs)
    slow = brute_force_closest_hit(mesh, origins, directions, **kwargs)
    assert np.array_equal(fast.hit_mask, slow.hit_mask)
    if exact_triangles:
        assert np.array_equal(fast.triangle, slow.triangle)
    hit = fast.hit_mask
    assert np.allclose(fast.t[hit], slow.t[hit], rtol=0.0, atol=1e-6)
    if exact_triangles:
        assert np.allclose(fast.u[hit], slow.u[hit], atol=1e-9)
        assert np.allclose(fast.v[hit], slow.v[hit], atol=1e-9)
    return fast, slow


class TestTraversalEdgeCases:
    def test_identical_triangles_and_t(self, small_surface, small_camera):
        origins, directions = small_camera.generate_rays()
        bvh = build_bvh(small_surface)
        _assert_matches_brute_force(bvh, small_surface, origins, directions)

    def test_any_hit_with_per_ray_t_max(self, small_surface, small_camera):
        origins, directions = small_camera.generate_rays()
        bvh = build_bvh(small_surface)
        reference = closest_hit(bvh, small_surface, origins, directions)
        # Per-ray limits straddling each ray's own hit distance: slightly
        # beyond keeps the hit, slightly short of it removes the hit.
        finite = np.where(np.isfinite(reference.t), reference.t, 1.0)
        beyond = finite * 1.01
        occluded = any_hit(bvh, small_surface, origins, directions, t_max=beyond)
        assert np.array_equal(occluded, reference.hit_mask)
        short = finite * 0.99
        occluded_short = any_hit(bvh, small_surface, origins, directions, t_max=short)
        brute_short = brute_force_closest_hit(
            small_surface, origins, directions, t_max=short
        )
        assert np.array_equal(occluded_short, brute_short.hit_mask)
        assert occluded_short.sum() < occluded.sum()

    def test_rays_with_zero_direction_components(self, small_surface):
        center = small_surface.bounds.center
        lo = small_surface.bounds.low - 1.0
        origins = np.array(
            [
                [center[0], center[1], lo[2]],
                [center[0], lo[1], center[2]],
                [lo[0], center[1], center[2]],
                [center[0], center[1], lo[2]],
                [center[0], center[1], center[2]],
            ]
        )
        directions = np.array(
            [
                [0.0, 0.0, 1.0],  # axis-aligned: two zero components
                [0.0, 1.0, 0.0],
                [1.0, 0.0, 0.0],
                [0.0, 1e-320, 1.0],  # subnormal component exercises _safe_inverse
                [0.0, 0.0, 0.0],  # fully degenerate ray must simply miss
            ]
        )
        bvh = build_bvh(small_surface)
        # Axis-aligned rays through the grid center strike shared vertices
        # exactly, producing equal-t ties between adjacent triangles whose
        # winner legitimately depends on conservative entry culling -- so
        # compare hit masks and distances rather than triangle identity.
        fast, _ = _assert_matches_brute_force(
            bvh, small_surface, origins, directions, exact_triangles=False
        )
        assert not fast.hit_mask[-1]

    def test_rays_originating_inside_leaf_aabbs(self, small_surface, rng):
        # Triangle centroids are interior points of their leaf boxes; rays
        # starting there exercise the negative-near slab clamp.
        centroids = small_surface.centroids()
        pick = rng.integers(0, len(centroids), size=64)
        origins = centroids[pick]
        directions = rng.standard_normal((64, 3))
        directions /= np.linalg.norm(directions, axis=1, keepdims=True)
        bvh = build_bvh(small_surface)
        _assert_matches_brute_force(bvh, small_surface, origins, directions)

    def test_engine_through_serial_device(self, small_surface, small_camera):
        # The frontier engine routes compaction/scatter/argmin through the
        # dpp Device layer, so it must run identically on the serial backend.
        pixel_ids = np.arange(0, small_camera.width * small_camera.height, 37)
        origins, directions = small_camera.generate_rays(pixel_ids)
        bvh = build_bvh(small_surface)
        fast = closest_hit(bvh, small_surface, origins, directions)
        with use_device("serial"):
            serial = closest_hit(bvh, small_surface, origins, directions)
        assert np.array_equal(fast.triangle, serial.triangle)
        assert np.array_equal(fast.t, serial.t)

    def test_traversal_feeds_op_counters(self, small_surface, small_camera):
        origins, directions = small_camera.generate_rays()
        bvh = build_bvh(small_surface)
        instrumentation = get_instrumentation()
        with instrumentation.scope("frontier-test"):
            closest_hit(bvh, small_surface, origins, directions)
        assert instrumentation.invocations("frontier-test") > 0
        assert instrumentation.elements("frontier-test") > 0
        assert instrumentation.bytes_moved("frontier-test") > 0


class TestDeepStacks:
    def _skewed_mesh(self, count: int) -> TriangleMesh:
        """Exponentially spaced triangles force skewed (deep) SAH trees."""
        spacing = 1.5 ** np.arange(count)
        vertices = []
        triangles = []
        for index, x in enumerate(spacing):
            base = index * 3
            vertices.extend(
                [[x, 0.0, 0.0], [x + 0.1, 0.0, 0.0], [x, 0.1, 0.0]]
            )
            triangles.append([base, base + 1, base + 2])
        return TriangleMesh(np.array(vertices), np.array(triangles))

    def test_deep_sah_tree_traversal(self, rng):
        mesh = self._skewed_mesh(96)
        bvh = build_bvh(mesh, leaf_size=1, method="sah")
        # The geometry is constructed so the binned SAH split peels a few
        # primitives off one side per level, far deeper than the balanced
        # log2(n) depth a uniform distribution would give.
        assert bvh.max_depth() >= 14
        origins = rng.uniform(-1.0, 1.0, size=(128, 3))
        origins[:, 2] = 5.0
        directions = np.tile([0.0, 0.0, -1.0], (128, 1))
        # Aim a subset straight at known triangles so hits definitely occur.
        targets = mesh.centroids()[rng.integers(0, mesh.num_triangles, 64)]
        origins[:64, :2] = targets[:, :2]
        _assert_matches_brute_force(bvh, mesh, origins, directions)

    def test_deep_lbvh_tree_traversal(self, rng):
        mesh = self._skewed_mesh(48)
        bvh = build_bvh(mesh, leaf_size=1, method="lbvh")
        origins = rng.uniform(0.0, 2.0, size=(64, 3))
        origins[:, 2] = 3.0
        directions = np.tile([0.0, 0.0, -1.0], (64, 1))
        _assert_matches_brute_force(bvh, mesh, origins, directions)


class TestDenseOverlap:
    def test_colocated_cluster_grows_stack(self, rng):
        # ~1k near-identical triangles make every node box overlap every ray,
        # so the multi-pop tail window expands BFS-style far past the
        # depth-based stack sizing; the engine must widen stacks on demand
        # instead of overflowing into neighboring lanes.
        jitter = rng.normal(scale=1e-3, size=(1024, 3, 3))
        base = np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0]])
        corners = base[None, :, :] + jitter
        vertices = corners.reshape(-1, 3)
        triangles = np.arange(len(vertices)).reshape(-1, 3)
        mesh = TriangleMesh(vertices, triangles)
        bvh = build_bvh(mesh)
        origins = np.tile([0.25, 0.25, 2.0], (600, 1))
        directions = np.tile([0.0, 0.0, -1.0], (600, 1))
        _assert_matches_brute_force(bvh, mesh, origins, directions)


class TestGeometryCacheInvalidation:
    def test_mutated_mesh_recomputes_triangle_soa(self):
        mesh = TriangleMesh(
            np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0]]),
            np.array([[0, 1, 2]]),
        )
        bvh = build_bvh(mesh)
        origins = np.array([[0.25, 0.25, 1.0]])
        directions = np.array([[0.0, 0.0, -1.0]])
        before = closest_hit(bvh, mesh, origins, directions)
        assert before.t[0] == pytest.approx(1.0)
        # Shift the triangle down in place; the documented remedy must reach
        # the BVH's cached triangle SoA as well as the mesh's corner cache.
        mesh.vertices[:, 2] -= 0.5
        mesh.invalidate_caches()
        rebuilt = build_bvh(mesh)
        after = closest_hit(rebuilt, mesh, origins, directions)
        assert after.t[0] == pytest.approx(1.5)
        # Same BVH object queried again also sees the fresh corner expansion.
        stale_check = closest_hit(bvh, mesh, origins, directions)
        assert stale_check.t[0] == pytest.approx(1.5)


class TestRayDtype:
    def test_float32_mode_close_to_float64(self, small_surface, small_camera):
        origins, directions = small_camera.generate_rays()
        bvh = build_bvh(small_surface)
        exact = closest_hit(bvh, small_surface, origins, directions)
        fast = closest_hit(
            bvh, small_surface, origins, directions, dtype=np.float32
        )
        agree = exact.hit_mask == fast.hit_mask
        assert agree.mean() > 0.99
        both = exact.hit_mask & fast.hit_mask
        assert np.allclose(exact.t[both], fast.t[both], rtol=1e-3)

    def test_pipeline_ray_dtype_plumbing(self, small_scene, small_camera):
        config = RayTracerConfig(
            workload=Workload.FULL, ao_samples=2, ray_dtype="float32", seed=3
        )
        result = RayTracer(small_scene, config).render(small_camera)
        assert result.framebuffer.active_pixels() > 0
        reference = RayTracer(
            small_scene,
            RayTracerConfig(workload=Workload.FULL, ao_samples=2, seed=3),
        ).render(small_camera)
        # Reduced precision should not change which pixels are covered.
        assert result.features.active_pixels == reference.features.active_pixels

    def test_invalid_ray_dtype_rejected(self):
        with pytest.raises(ValueError):
            RayTracerConfig(ray_dtype="float16")
