"""Tests for repro.util: Morton codes, timers, RNG helpers, packing utilities."""

from __future__ import annotations

import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util import (
    Timer,
    TimingRegistry,
    default_rng,
    derive_seed,
    format_seconds,
    morton_decode_2d,
    morton_decode_3d,
    morton_encode_2d,
    morton_encode_3d,
    morton_order_points,
    spawn_rngs,
)
from repro.util.packing import chunk_ranges, segment_local_indices


class TestMorton:
    def test_encode_decode_2d_roundtrip_exhaustive_small(self):
        x, y = np.meshgrid(np.arange(32), np.arange(32))
        codes = morton_encode_2d(x.ravel(), y.ravel())
        dx, dy = morton_decode_2d(codes)
        assert np.array_equal(dx, x.ravel())
        assert np.array_equal(dy, y.ravel())

    def test_encode_2d_unique(self):
        x, y = np.meshgrid(np.arange(64), np.arange(64))
        codes = morton_encode_2d(x.ravel(), y.ravel())
        assert len(np.unique(codes)) == 64 * 64

    @given(
        st.lists(st.tuples(st.integers(0, 1023), st.integers(0, 1023), st.integers(0, 1023)), min_size=1, max_size=50)
    )
    @settings(max_examples=50, deadline=None)
    def test_encode_decode_3d_roundtrip_property(self, triples):
        arr = np.array(triples, dtype=np.uint32)
        codes = morton_encode_3d(arr[:, 0], arr[:, 1], arr[:, 2])
        x, y, z = morton_decode_3d(codes)
        assert np.array_equal(x, arr[:, 0])
        assert np.array_equal(y, arr[:, 1])
        assert np.array_equal(z, arr[:, 2])

    def test_morton_order_is_permutation(self, rng):
        points = rng.random((200, 3))
        order = morton_order_points(points)
        assert sorted(order.tolist()) == list(range(200))

    def test_morton_order_spatial_coherence(self, rng):
        """Consecutive points along the curve are closer than random pairs on average."""
        points = rng.random((500, 3))
        order = morton_order_points(points)
        ordered = points[order]
        consecutive = np.linalg.norm(np.diff(ordered, axis=0), axis=1).mean()
        shuffled = points[rng.permutation(500)]
        random_pairs = np.linalg.norm(np.diff(shuffled, axis=0), axis=1).mean()
        assert consecutive < random_pairs

    def test_morton_order_empty_and_degenerate(self):
        assert len(morton_order_points(np.zeros((0, 3)))) == 0
        same = np.ones((5, 3))
        assert sorted(morton_order_points(same).tolist()) == [0, 1, 2, 3, 4]

    def test_morton_order_validates_shape(self):
        with pytest.raises(ValueError):
            morton_order_points(np.zeros((4, 2)))
        with pytest.raises(ValueError):
            morton_order_points(np.zeros((4, 3)), bits=0)


class TestTiming:
    def test_timer_measures_elapsed(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.005

    def test_timer_accumulates(self):
        timer = Timer()
        timer.start()
        timer.stop()
        first = timer.elapsed
        timer.start()
        timer.stop()
        assert timer.elapsed >= first

    def test_timer_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_registry_records_and_aggregates(self):
        registry = TimingRegistry()
        registry.record("render.trace", 0.5)
        registry.record("render.trace", 0.25)
        registry.record("render.shade", 0.1)
        assert registry.total("render.trace") == pytest.approx(0.75)
        assert registry.count("render.trace") == 2
        assert registry.mean("render.trace") == pytest.approx(0.375)
        assert registry.subtotal("render.") == pytest.approx(0.85)

    def test_registry_time_context_manager(self):
        registry = TimingRegistry()
        with registry.time("phase"):
            time.sleep(0.005)
        assert registry.total("phase") > 0.0
        assert registry.count("phase") == 1

    def test_registry_merge(self):
        a, b = TimingRegistry(), TimingRegistry()
        a.record("x", 1.0)
        b.record("x", 2.0)
        b.record("y", 3.0)
        a.merge(b)
        assert a.total("x") == pytest.approx(3.0)
        assert a.total("y") == pytest.approx(3.0)

    def test_registry_rejects_negative(self):
        with pytest.raises(ValueError):
            TimingRegistry().record("x", -1.0)

    def test_format_seconds_units(self):
        assert "ns" in format_seconds(1e-8)
        assert "us" in format_seconds(5e-5)
        assert "ms" in format_seconds(5e-3)
        assert "s" in format_seconds(2.0)
        assert "min" in format_seconds(300.0)


class TestRng:
    def test_derive_seed_deterministic(self):
        assert derive_seed("a", 1) == derive_seed("a", 1)
        assert derive_seed("a", 1) != derive_seed("a", 2)

    def test_default_rng_reproducible(self):
        a = default_rng(42, "x").random(5)
        b = default_rng(42, "x").random(5)
        assert np.array_equal(a, b)

    def test_default_rng_labels_change_stream(self):
        a = default_rng(42, "x").random(5)
        b = default_rng(42, "y").random(5)
        assert not np.array_equal(a, b)

    def test_spawn_rngs_independent(self):
        streams = spawn_rngs(3, 7)
        values = [stream.random(4) for stream in streams]
        assert not np.array_equal(values[0], values[1])
        assert len(streams) == 3

    def test_spawn_rngs_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(-1)


class TestPacking:
    def test_segment_local_indices_basic(self):
        assert segment_local_indices(np.array([3, 0, 2])).tolist() == [0, 1, 2, 0, 1]

    def test_segment_local_indices_empty(self):
        assert len(segment_local_indices(np.array([], dtype=np.int64))) == 0

    @given(st.lists(st.integers(0, 20), min_size=0, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_segment_local_indices_matches_reference(self, counts):
        counts = np.asarray(counts, dtype=np.int64)
        expected = np.concatenate([np.arange(c) for c in counts]) if counts.sum() else np.empty(0, np.int64)
        assert np.array_equal(segment_local_indices(counts), expected)

    def test_segment_local_indices_rejects_negative(self):
        with pytest.raises(ValueError):
            segment_local_indices(np.array([1, -1]))

    @given(st.lists(st.integers(0, 50), min_size=1, max_size=40), st.integers(1, 100))
    @settings(max_examples=50, deadline=None)
    def test_chunk_ranges_cover_and_bound(self, counts, max_total):
        counts = np.asarray(counts, dtype=np.int64)
        ranges = chunk_ranges(counts, max_total)
        # Coverage: ranges tile [0, n) exactly.
        assert ranges[0][0] == 0
        assert ranges[-1][1] == len(counts)
        for (s1, e1), (s2, e2) in zip(ranges, ranges[1:]):
            assert e1 == s2
        # Bound: each chunk's sum fits unless it is a single oversized segment.
        for start, end in ranges:
            total = int(counts[start:end].sum())
            assert total <= max_total or end - start == 1

    def test_chunk_ranges_empty(self):
        assert chunk_ranges(np.array([], dtype=np.int64), 10) == []

    def test_chunk_ranges_invalid_max(self):
        with pytest.raises(ValueError):
            chunk_ranges(np.array([1]), 0)
