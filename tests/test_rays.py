"""Tests for the shared :class:`repro.rendering.rays.RayEmitter` front-end."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry.aabb import AABB, ray_box_intervals
from repro.geometry.transforms import Camera
from repro.rendering.rays import RayEmitter


def _camera(width=16, height=12):
    return Camera(
        position=np.array([0.0, 0.0, 4.0]),
        look_at=np.zeros(3),
        up=np.array([0.0, 1.0, 0.0]),
        fov_y_degrees=45.0,
        width=width,
        height=height,
    )


class TestOrdering:
    def test_morton_order_is_a_permutation_of_raster_order(self):
        camera = _camera()
        morton_ids, morton_origins, morton_dirs = RayEmitter(camera, morton_order=True).emit()
        raster_ids, raster_origins, raster_dirs = RayEmitter(camera, morton_order=False).emit()
        assert np.array_equal(np.sort(morton_ids), np.arange(camera.width * camera.height))
        assert np.array_equal(raster_ids, np.arange(camera.width * camera.height))
        # Same rays, different order: re-sorting by pixel id recovers raster.
        back = np.argsort(morton_ids, kind="stable")
        assert np.allclose(morton_origins[back], raster_origins)
        assert np.allclose(morton_dirs[back], raster_dirs)

    def test_morton_order_is_locality_preserving_at_the_start(self):
        # The first four Morton pixels are the 2x2 block at the origin.
        camera = _camera(width=8, height=8)
        pixel_ids, _, _ = RayEmitter(camera, morton_order=True).emit()
        first_block = {(int(p) % 8, int(p) // 8) for p in pixel_ids[:4]}
        assert first_block == {(0, 0), (1, 0), (0, 1), (1, 1)}

    def test_explicit_pixel_ids_override_ordering(self):
        camera = _camera()
        subset = np.array([5, 3, 40], dtype=np.int64)
        pixel_ids, origins, directions = RayEmitter(camera, morton_order=True).emit(subset)
        assert np.array_equal(pixel_ids, subset)
        assert origins.shape == (3, 3) and directions.shape == (3, 3)


class TestSupersampling:
    def test_four_jittered_rays_per_pixel(self):
        camera = _camera()
        pixel_ids, origins, directions = RayEmitter(camera, supersample=4).emit()
        assert len(pixel_ids) == 4 * camera.width * camera.height
        counts = np.bincount(pixel_ids, minlength=camera.width * camera.height)
        assert (counts == 4).all()
        # Sub-pixel rays of one pixel are distinct (jittered positions).
        rows = np.flatnonzero(pixel_ids == pixel_ids[0])
        assert len(np.unique(directions[rows], axis=0)) == 4

    def test_supersample_averaging_recovers_pixel_center_direction(self):
        """The mean of a pixel's four sub-rays approximates its center ray."""
        camera = _camera()
        pixel_ids, _, directions = RayEmitter(camera, supersample=4).emit()
        _, _, center_dirs = RayEmitter(camera, supersample=1).emit()
        sums = np.zeros((camera.width * camera.height, 3))
        np.add.at(sums, pixel_ids, directions)
        means = sums / 4.0
        means /= np.linalg.norm(means, axis=1, keepdims=True)
        # The four sub-pixel directions straddle the center; their normalized
        # mean lands within a fraction of a pixel's angular footprint.
        assert np.allclose(means, center_dirs, atol=2e-3)

    def test_supersample_grouping_keeps_pixels_contiguous(self):
        camera = _camera()
        pixel_ids, _, _ = RayEmitter(camera, supersample=4).emit()
        # Each pixel's four rays are adjacent in the stream (per-pixel
        # averaging consumes them as one segment).
        boundaries = np.flatnonzero(np.diff(pixel_ids) != 0) + 1
        segments = np.diff(np.concatenate(([0], boundaries, [len(pixel_ids)])))
        assert (segments == 4).all()

    def test_supersample_validation(self):
        with pytest.raises(ValueError):
            RayEmitter(_camera(), supersample=2)
        with pytest.raises(ValueError):
            RayEmitter(_camera(), supersample=4).emit(np.array([0, 1]))


class TestBoundsClipping:
    def test_emit_clipped_matches_manual_slab_test(self):
        camera = _camera()
        bounds = AABB(np.array([-0.6, -0.6, -0.6]), np.array([0.6, 0.6, 0.6]))
        pixel_ids, origins, directions, t_near, t_far = RayEmitter(camera).emit_clipped(bounds)
        all_ids, all_origins, all_dirs = RayEmitter(camera).emit()
        near_all, far_all = ray_box_intervals(all_origins, all_dirs, bounds.low, bounds.high)
        near_all = np.maximum(near_all, 0.0)
        keep = far_all > near_all
        assert np.array_equal(pixel_ids, all_ids[keep])
        assert np.allclose(t_near, near_all[keep])
        assert np.allclose(t_far, far_all[keep])
        assert np.allclose(origins, all_origins[keep])
        assert np.allclose(directions, all_dirs[keep])

    def test_frustum_edge_rays_are_dropped(self):
        """A box covering a screen corner keeps corner rays and drops the rest."""
        camera = _camera(width=24, height=24)
        # Small box far off to one side: only a fraction of rays can hit it.
        bounds = AABB(np.array([1.2, 1.2, -0.2]), np.array([1.8, 1.8, 0.2]))
        pixel_ids, _, _, t_near, t_far = RayEmitter(camera).emit_clipped(bounds)
        assert 0 < len(pixel_ids) < camera.width * camera.height
        assert (t_far > t_near).all()
        assert (t_near >= 0.0).all()
        # The surviving pixels cluster in the image corner the box projects to
        # (up in +y means smaller row index; +x maps to larger column index).
        columns = pixel_ids % camera.width
        rows = pixel_ids // camera.width
        assert columns.min() >= camera.width // 2
        assert rows.max() < camera.height // 2

    def test_box_behind_camera_clips_everything(self):
        camera = _camera()
        bounds = AABB(np.array([-0.5, -0.5, 8.0]), np.array([0.5, 0.5, 9.0]))
        pixel_ids, origins, directions, t_near, t_far = RayEmitter(camera).emit_clipped(bounds)
        assert len(pixel_ids) == 0

    def test_camera_inside_box_keeps_all_rays_from_zero(self):
        camera = _camera()
        bounds = AABB(np.array([-10.0, -10.0, -10.0]), np.array([10.0, 10.0, 10.0]))
        pixel_ids, _, _, t_near, t_far = RayEmitter(camera).emit_clipped(bounds)
        assert len(pixel_ids) == camera.width * camera.height
        assert np.all(t_near == 0.0)  # rays start inside the box
        assert np.all(t_far > 0.0)
