"""Tests for the proxy simulations, the Conduit-like tree, the blueprint, and Strawman."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.geometry.mesh import RectilinearGrid, UniformGrid, UnstructuredHexMesh
from repro.insitu import (
    ConduitNode,
    Strawman,
    StrawmanOptions,
    mesh_to_node,
    node_to_mesh,
    validate_mesh_node,
    write_pgm,
    write_ppm,
)
from repro.insitu.imageio import read_ppm
from repro.rendering.framebuffer import Framebuffer
from repro.simulations import CloverleafProxy, KripkeProxy, LuleshProxy, create_proxy


class TestConduitNode:
    def test_path_creation_and_access(self):
        node = ConduitNode()
        node["state/cycle"] = 7
        node["fields/e/values"] = np.arange(4)
        assert node["state/cycle"] == 7
        assert np.array_equal(node["fields/e/values"], np.arange(4))
        assert node.has_path("fields/e")
        assert not node.has_path("fields/missing")
        assert sorted(node.child_names()) == ["fields", "state"]

    def test_set_copies_and_set_external_references(self):
        node = ConduitNode()
        data = np.arange(5)
        node.fetch("copied").set(data)
        node.fetch("external").set_external(data)
        data[0] = 99
        assert node["copied"][0] == 0
        assert node["external"][0] == 99
        assert node.fetch_existing("external").is_external
        assert not node.fetch_existing("copied").is_external

    def test_leaf_object_conflicts(self):
        node = ConduitNode()
        node["a/b"] = 1
        with pytest.raises(ValueError):
            node.fetch("a").set(5)
        with pytest.raises(ValueError):
            node.fetch("a/b/c")

    def test_append_and_iteration(self):
        actions = ConduitNode()
        first = actions.append()
        first["action"] = "AddPlot"
        second = actions.append()
        second["action"] = "DrawPlots"
        names = [child["action"] for _, child in actions.children()]
        assert names == ["AddPlot", "DrawPlots"]

    def test_total_bytes_and_yaml(self):
        node = ConduitNode()
        node["values"] = np.zeros(10, dtype=np.float64)
        node["label"] = "x"
        assert node.total_bytes() == 80
        rendered = node.to_yaml()
        assert "values" in rendered and "label" in rendered

    def test_fetch_existing_missing(self):
        with pytest.raises(KeyError):
            ConduitNode().fetch_existing("a/b")
        with pytest.raises(KeyError):
            ConduitNode().fetch("")


class TestBlueprint:
    def test_uniform_roundtrip(self):
        grid = UniformGrid((4, 4, 4), origin=(1, 2, 3), spacing=(0.5, 0.5, 0.5))
        grid.add_point_field("f", np.arange(grid.num_points, dtype=float))
        node = mesh_to_node(grid)
        assert validate_mesh_node(node) == []
        back = node_to_mesh(node)
        assert isinstance(back, UniformGrid)
        assert back.dims == grid.dims
        assert np.allclose(back.point_fields["f"], grid.point_fields["f"])

    def test_rectilinear_roundtrip(self):
        grid = RectilinearGrid(np.array([0.0, 1.0, 3.0]), np.array([0.0, 1.0]), np.array([0.0, 2.0]))
        grid.add_cell_field("c", np.arange(grid.num_cells, dtype=float))
        back = node_to_mesh(mesh_to_node(grid))
        assert isinstance(back, RectilinearGrid)
        assert np.allclose(back.x, grid.x)
        assert np.allclose(back.cell_fields["c"], grid.cell_fields["c"])

    def test_unstructured_roundtrip_zero_copy(self):
        grid = UniformGrid((3, 3, 3))
        mesh = UnstructuredHexMesh.from_structured(grid)
        mesh.add_cell_field("e", np.arange(mesh.num_cells, dtype=float))
        node = mesh_to_node(mesh, zero_copy=True)
        # Zero copy: mutating the simulation's array is visible through the node.
        mesh.cell_fields["e"][0] = 123.0
        assert node["fields/e/values"][0] == 123.0
        back = node_to_mesh(node)
        assert isinstance(back, UnstructuredHexMesh)
        assert back.num_cells == mesh.num_cells

    def test_validation_reports_problems(self):
        node = ConduitNode()
        node["coords/type"] = "uniform"
        problems = validate_mesh_node(node)
        assert any("dims" in problem for problem in problems)
        node2 = ConduitNode()
        node2["coords/type"] = "banana"
        assert validate_mesh_node(node2)
        with pytest.raises(ValueError):
            node_to_mesh(node2)


class TestImageIO:
    def test_ppm_roundtrip(self, tmp_path):
        fb = Framebuffer(5, 4)
        fb.rgba[..., :3] = 0.25
        fb.rgba[..., 3] = 1.0
        path = write_ppm(tmp_path / "image.ppm", fb)
        pixels = read_ppm(path)
        assert pixels.shape == (4, 5, 3)
        assert np.all(np.abs(pixels.astype(int) - 64) <= 1)

    def test_pgm_normalization(self, tmp_path):
        path = write_pgm(tmp_path / "depth.pgm", np.array([[0.0, 1.0], [2.0, np.inf]]))
        assert os.path.getsize(path) > 0

    def test_ppm_validation(self, tmp_path):
        with pytest.raises(ValueError):
            write_ppm(tmp_path / "bad.ppm", np.zeros((2, 2), dtype=np.uint8))
        with pytest.raises(ValueError):
            write_pgm(tmp_path / "bad.pgm", np.zeros(3))


class TestProxies:
    @pytest.mark.parametrize("name,cls", [("lulesh", LuleshProxy), ("kripke", KripkeProxy), ("cloverleaf", CloverleafProxy)])
    def test_factory_and_stepping(self, name, cls):
        proxy = create_proxy(name, 6, seed=3)
        assert isinstance(proxy, cls)
        elapsed = proxy.advance(2)
        assert proxy.cycle == 2
        assert proxy.time > 0
        assert elapsed >= 0
        mesh = proxy.mesh()
        assert proxy.primary_field in mesh.point_fields or proxy.primary_field in mesh.cell_fields

    def test_unknown_proxy(self):
        with pytest.raises(KeyError):
            create_proxy("nope", 4)

    def test_lulesh_mesh_moves_and_energy_decays(self):
        proxy = LuleshProxy(6, seed=1)
        initial_points = proxy.mesh().points().copy()
        initial_bounds = proxy.mesh().bounds
        initial_energy = proxy.mesh().cell_fields["e"].max()
        proxy.advance(3)
        assert not np.allclose(proxy.mesh().points(), initial_points)
        assert proxy.mesh().cell_fields["e"].max() < initial_energy
        # Lagrangian motion is a bounded perturbation: the deformed mesh stays
        # within a modestly expanded copy of the original bounds.
        expanded = initial_bounds.expanded(0.2 * initial_bounds.diagonal)
        assert expanded.contains_points(proxy.mesh().points()).all()

    def test_kripke_flux_bounded_and_evolving(self):
        proxy = KripkeProxy(6, num_directions=4, seed=1)
        proxy.advance(1)
        first = proxy.mesh().cell_fields["phi"].copy()
        proxy.advance(1)
        second = proxy.mesh().cell_fields["phi"]
        assert np.all(second >= 0.0) and np.all(second <= 1.0 + 1e-9)
        assert not np.allclose(first, second)

    def test_kripke_validation(self):
        with pytest.raises(ValueError):
            KripkeProxy(6, num_directions=9)
        with pytest.raises(ValueError):
            KripkeProxy(1)

    def test_cloverleaf_mass_roughly_conserved(self):
        proxy = CloverleafProxy(8, seed=1)
        initial = proxy.mesh().cell_fields["density"].sum()
        proxy.advance(5)
        final = proxy.mesh().cell_fields["density"].sum()
        assert final == pytest.approx(initial, rel=0.15)
        assert proxy.mesh().cell_fields["density"].min() > 0.0

    def test_describe_conforms_to_blueprint(self):
        for name in ("lulesh", "kripke", "cloverleaf"):
            proxy = create_proxy(name, 5, seed=2)
            proxy.advance(1)
            node = proxy.describe()
            assert validate_mesh_node(node) == []
            assert node["state/cycle"] == 1


class TestStrawman:
    def _actions(self, variable, renderer, file_name=None, size=48):
        actions = ConduitNode()
        add = actions.append()
        add["action"] = "AddPlot"
        add["var"] = variable
        add["renderer"] = renderer
        draw = actions.append()
        draw["action"] = "DrawPlots"
        if file_name:
            save = actions.append()
            save["action"] = "SaveImage"
            save["fileName"] = file_name
            save["width"] = size
            save["height"] = size
        return actions

    def test_lifecycle_errors(self):
        strawman = Strawman()
        with pytest.raises(RuntimeError):
            strawman.publish(ConduitNode())
        strawman.open(StrawmanOptions(num_ranks=1))
        with pytest.raises(ValueError):
            strawman.publish(ConduitNode())  # not blueprint conforming
        with pytest.raises(RuntimeError):
            strawman.execute(self._actions("e", "raytrace"))

    @pytest.mark.parametrize("renderer", ["raytrace", "raster", "volume"])
    def test_single_rank_render(self, tmp_path, renderer):
        proxy = KripkeProxy(6, seed=4)
        proxy.advance(1)
        strawman = Strawman()
        strawman.open(StrawmanOptions(num_ranks=1, output_directory=str(tmp_path), default_width=40, default_height=40))
        strawman.publish(proxy.describe())
        record = strawman.execute(self._actions(proxy.primary_field, renderer, file_name=f"img_{renderer}"))
        assert record.framebuffer is not None
        assert record.framebuffer.active_pixels() > 0
        assert record.total_seconds > 0
        assert len(record.saved_files) == 1
        assert os.path.exists(record.saved_files[0])
        strawman.close()

    def test_multi_rank_composited_render(self, tmp_path):
        from repro.runtime import BlockDecomposition

        decomposition = BlockDecomposition(num_tasks=4, cells_per_task=5)
        strawman = Strawman()
        strawman.open(StrawmanOptions(num_ranks=4, output_directory=str(tmp_path), default_width=48, default_height=48))
        for rank in range(4):
            grid = decomposition.block_grid_with_field(rank, "f", lambda p: p[:, 0] + p[:, 1])
            strawman.publish(mesh_to_node(grid), rank=rank)
        record = strawman.execute(self._actions("f", "raytrace"))
        assert record.framebuffer.active_pixels() > 0
        assert len(record.results) == 4
        assert record.composite_seconds > 0

    def test_lulesh_surface_render_with_cell_field(self, tmp_path):
        proxy = LuleshProxy(5, seed=4)
        proxy.advance(1)
        strawman = Strawman()
        strawman.open(StrawmanOptions(num_ranks=1, output_directory=str(tmp_path), default_width=32, default_height=32))
        strawman.publish(proxy.describe())
        record = strawman.execute(self._actions("e", "raytrace"))
        assert record.framebuffer.active_pixels() > 0

    def test_unknown_action_and_renderer(self, tmp_path):
        proxy = KripkeProxy(5, seed=4)
        proxy.advance(1)
        strawman = Strawman()
        strawman.open(StrawmanOptions(num_ranks=1, output_directory=str(tmp_path), default_width=24, default_height=24))
        strawman.publish(proxy.describe())
        bad = ConduitNode()
        entry = bad.append()
        entry["action"] = "Explode"
        with pytest.raises(ValueError):
            strawman.execute(bad)
        with pytest.raises(ValueError):
            strawman.execute(self._actions(proxy.primary_field, "unknown-renderer"))

    def test_history_accumulates(self, tmp_path):
        proxy = CloverleafProxy(5, seed=4)
        proxy.advance(1)
        strawman = Strawman()
        strawman.open(StrawmanOptions(num_ranks=1, output_directory=str(tmp_path), default_width=24, default_height=24))
        strawman.publish(proxy.describe())
        strawman.execute(self._actions(proxy.primary_field, "raster"))
        proxy.advance(1)
        strawman.publish(proxy.describe())
        strawman.execute(self._actions(proxy.primary_field, "raster"))
        assert len(strawman.history) == 2
