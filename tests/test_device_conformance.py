"""Device-conformance suite: one contract test per primitive, every device.

Parametrized over ``list_devices()`` at collection time, so any back-end that
registers (and probes available) on this machine -- including the optional
JAX device and any future adapter -- is verified automatically against the
same contract the CPU devices satisfy.  Expected values are computed with
plain numpy, never with another device, so a shared bug cannot hide.

Tolerance policy (DESIGN.md "The device back-end contract"): integer, boolean
and index-valued results must be bit-identical on every device; floating
*accumulations* (``add`` reductions and scans) may reassociate on accelerator
back-ends and are held to 1e-12 relative instead.  Devices named in
``BIT_IDENTICAL_DEVICES`` are held to bit-identity for those too; ``serial``
is not in the set because its left-to-right loop order legitimately differs
from numpy's pairwise summation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dpp import (
    exclusive_scan,
    gather,
    get_device,
    get_instrumentation,
    inclusive_scan,
    list_devices,
    map_field,
    reduce_field,
    reverse_index,
    scatter,
    segmented_argmin,
    stream_compact,
    use_device,
)
from repro.dpp.instrument import reset_instrumentation

DEVICES = list_devices()

#: Devices whose floating accumulations must match numpy bit for bit.
BIT_IDENTICAL_DEVICES = {"vectorized"}

#: Relative tolerance granted to accelerator back-ends on float accumulations.
FLOAT_ACCUMULATION_RTOL = 1e-12


@pytest.fixture(params=DEVICES)
def device_name(request) -> str:
    return request.param


@pytest.fixture(autouse=True)
def _clean_instrumentation():
    reset_instrumentation()
    yield
    reset_instrumentation()


def assert_matches(device_name: str, result, expected, accumulation: bool = False) -> None:
    """Exact equality, except float accumulations on accelerator devices."""
    result = np.asarray(result)
    expected = np.asarray(expected)
    assert result.shape == expected.shape
    exact = (
        not accumulation
        or device_name in BIT_IDENTICAL_DEVICES
        or expected.dtype.kind in "iub"
    )
    if exact:
        assert np.array_equal(result, expected), f"{device_name}: {result} != {expected}"
    else:
        np.testing.assert_allclose(result, expected, rtol=FLOAT_ACCUMULATION_RTOL, atol=0.0)


class TestDeviceContract:
    def test_device_constructible_and_named(self, device_name):
        device = get_device(device_name)
        assert device.name == device_name

    def test_map_runs_functor(self, device_name):
        device = get_device(device_name)
        out = device.map(lambda a, b: a * 2 + b, np.arange(6), np.ones(6))
        assert_matches(device_name, out, np.arange(6) * 2 + 1)

    def test_gather_matches_fancy_indexing(self, device_name, rng):
        values = rng.random((40, 3))
        indices = rng.integers(0, 40, size=25)
        out = gather(values, indices, device=device_name)
        assert_matches(device_name, out, values[indices])

    def test_gather_scalar_payload(self, device_name):
        values = np.arange(10, dtype=np.int64) * 7
        out = gather(values, np.array([9, 0, 4]), device=device_name)
        assert_matches(device_name, out, np.array([63, 0, 28]))

    def test_scatter_unique_indices(self, device_name, rng):
        values = rng.random((12, 4))
        indices = rng.permutation(20)[:12]
        output = np.zeros((20, 4))
        expected = np.zeros((20, 4))
        expected[indices] = values
        returned = scatter(values, indices, output, device=device_name)
        assert returned is output, "scatter must mutate the caller's buffer in place"
        assert_matches(device_name, output, expected)

    def test_scatter_duplicate_indices_last_write_wins(self, device_name):
        values = np.array([10.0, 20.0, 30.0, 40.0])
        indices = np.array([1, 3, 1, 3])
        output = np.full(5, -1.0)
        scatter(values, indices, output, device=device_name)
        assert_matches(device_name, output, np.array([-1.0, 30.0, -1.0, 40.0, -1.0]))

    def test_scatter_empty(self, device_name):
        output = np.full(3, 7.0)
        scatter(np.empty(0), np.empty(0, dtype=np.int64), output, device=device_name)
        assert_matches(device_name, output, np.full(3, 7.0))

    @pytest.mark.parametrize("operator", ["add", "min", "max"])
    def test_reduce_float_and_int(self, device_name, operator, rng):
        for values in (rng.random(33), rng.integers(-50, 50, size=33)):
            expected = {"add": values.sum(axis=0), "min": values.min(axis=0), "max": values.max(axis=0)}
            out = reduce_field(values, operator, device=device_name)
            assert_matches(device_name, out, expected[operator], accumulation=operator == "add")

    def test_reduce_rows(self, device_name, rng):
        values = rng.integers(0, 100, size=(17, 3))
        out = reduce_field(values, "add", device=device_name)
        assert_matches(device_name, out, values.sum(axis=0))

    def test_reduce_empty_contract(self, device_name):
        device = get_device(device_name)
        # Direct Device.reduce callers get the same validated contract as
        # reduce_field callers: zero identity for add, ValueError otherwise.
        assert device.reduce(np.empty(0, dtype=np.float64), "add") == 0.0
        empty_rows = device.reduce(np.empty((0, 3), dtype=np.int64), "add")
        assert_matches(device_name, empty_rows, np.zeros(3, dtype=np.int64))
        for operator in ("min", "max"):
            with pytest.raises(ValueError, match="empty"):
                device.reduce(np.empty(0), operator)
        with pytest.raises(ValueError, match="unknown reduction"):
            device.reduce(np.arange(3), "mul")

    @pytest.mark.parametrize("inclusive", [True, False])
    def test_scan_int_is_exact(self, device_name, inclusive, rng):
        values = rng.integers(-5, 9, size=50)
        out = (inclusive_scan if inclusive else exclusive_scan)(values, device=device_name)
        expected = np.cumsum(values)
        if not inclusive:
            expected = np.concatenate([[0], expected[:-1]])
        assert_matches(device_name, out, expected)

    def test_scan_float_accumulation(self, device_name, rng):
        values = rng.random(64)
        out = inclusive_scan(values, device=device_name)
        assert_matches(device_name, out, np.cumsum(values), accumulation=True)

    def test_scan_empty(self, device_name):
        for inclusive in (True, False):
            out = get_device(device_name).scan(np.empty(0, dtype=np.int64), inclusive)
            assert len(out) == 0

    def test_reverse_index_uses_scan_offsets(self, device_name):
        flags = np.array([True, False, True, True, False, True])
        scanned = np.concatenate([[0], np.cumsum(flags)[:-1]])
        out = reverse_index(scanned, flags, device=device_name)
        assert_matches(device_name, out, np.flatnonzero(flags))

    def test_reverse_index_edge_cases(self, device_name):
        none = reverse_index(np.zeros(4, dtype=np.int64), np.zeros(4, dtype=bool), device=device_name)
        assert len(none) == 0
        every = reverse_index(np.arange(4), np.ones(4, dtype=bool), device=device_name)
        assert_matches(device_name, every, np.arange(4))
        empty = reverse_index(np.empty(0, dtype=np.int64), np.empty(0, dtype=bool), device=device_name)
        assert len(empty) == 0

    def test_segmented_argmin_tiebreak_determinism(self, device_name):
        # Value ties resolve by smallest tiebreak, then by position -- the
        # determinism the ray tracer's winner selection depends on.
        values = np.array([2.0, 2.0, 2.0, 1.0, 1.0, 5.0])
        tiebreak = np.array([7, 3, 3, 9, 9, 0])
        out = segmented_argmin(values, np.array([0, 3, 5]), tiebreak, device=device_name)
        assert_matches(device_name, out, np.array([1, 3, 5]))

    def test_segmented_argmin_all_inf_segment(self, device_name):
        values = np.array([np.inf, np.inf, 1.0])
        out = segmented_argmin(values, np.array([0, 2]), np.array([4, 2, 0]), device=device_name)
        assert_matches(device_name, out, np.array([1, 2]))

    def test_segmented_argmin_matches_serial_sweep(self, device_name, rng):
        values = rng.random(200)
        values[rng.integers(0, 200, 40)] = values[0]  # inject ties
        tiebreak = rng.integers(0, 25, 200)
        starts = np.concatenate([[0], np.unique(rng.integers(1, 200, 12))])
        out = segmented_argmin(values, starts, tiebreak, device=device_name)
        boundaries = np.append(starts, 200)
        expected = [
            min(range(boundaries[s], boundaries[s + 1]), key=lambda i: (values[i], tiebreak[i], i))
            for s in range(len(starts))
        ]
        assert_matches(device_name, out, np.array(expected))

    def test_stream_compact_idiom(self, device_name, rng):
        flags = rng.random(80) < 0.4
        payload = rng.random(80)
        ids = np.arange(80)
        count, (compact_payload, compact_ids) = stream_compact(
            flags, payload, ids, device=device_name
        )
        assert count == int(flags.sum())
        assert_matches(device_name, compact_payload, payload[flags])
        assert_matches(device_name, compact_ids, ids[flags])

    def test_active_device_executes_primitives(self, device_name):
        # The seam every renderer uses: activate, then call without a name.
        instrumentation = get_instrumentation()
        with use_device(device_name), instrumentation.scope(f"conformance.{device_name}"):
            assert get_device().name == device_name
            flags = np.array([False, True, True, False, True])
            count, (kept,) = stream_compact(flags, np.arange(5.0))
            map_field(lambda a: a + 1, kept)
        assert count == 3
        # reduce + scan + reverse_index + 1 gather (stream_compact) + map: all recorded.
        assert instrumentation.invocations(f"conformance.{device_name}") == 5


class TestRendererDifferentialOnDevice:
    """Render through the full stack on each device and diff against numpy.

    Correctness is *inherited*: the renderers are written purely in dpp
    primitives, so agreeing with the ``vectorized`` render on a real scene
    gates every structural primitive at once.  Cheap enough for tier-1 on the
    CPU devices; on accelerator back-ends this is the differential gate the
    CI ``accelerator-smoke`` job relies on.
    """

    @pytest.fixture(scope="class")
    def reference_images(self, small_scene, small_camera):
        from repro.rendering import RayTracer, RayTracerConfig, Workload

        with use_device("vectorized"):
            result = RayTracer(small_scene, RayTracerConfig(workload=Workload.SHADING)).render(
                small_camera
            )
        return result.framebuffer.rgba.copy(), result.framebuffer.depth.copy()

    @pytest.mark.parametrize("device_name_inner", [d for d in DEVICES if d != "serial"])
    def test_raytrace_matches_vectorized(
        self, device_name_inner, small_scene, small_camera, reference_images
    ):
        from repro.rendering import RayTracer, RayTracerConfig, Workload

        with use_device(device_name_inner):
            result = RayTracer(small_scene, RayTracerConfig(workload=Workload.SHADING)).render(
                small_camera
            )
        rgba, depth = reference_images
        np.testing.assert_allclose(result.framebuffer.rgba, rgba, atol=1e-10, rtol=0.0)
        np.testing.assert_allclose(
            result.framebuffer.depth[np.isfinite(depth)],
            depth[np.isfinite(depth)],
            atol=1e-10,
            rtol=0.0,
        )

    @pytest.mark.skipif("jax" not in DEVICES, reason="optional jax back-end not installed")
    def test_structured_volume_matches_vectorized_on_jax(self, small_grid, small_camera):
        from repro.rendering import StructuredVolumeConfig, StructuredVolumeRenderer

        config = StructuredVolumeConfig(samples_in_depth=24)
        with use_device("vectorized"):
            expected = StructuredVolumeRenderer(small_grid, "density", config=config).render(
                small_camera
            )
        with use_device("jax"):
            result = StructuredVolumeRenderer(small_grid, "density", config=config).render(
                small_camera
            )
        np.testing.assert_allclose(
            result.framebuffer.rgba, expected.framebuffer.rgba, atol=1e-10, rtol=0.0
        )
