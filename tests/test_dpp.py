"""Tests for the data-parallel primitives framework."""

from __future__ import annotations

import asyncio
import contextvars
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dpp import (
    DeviceUnavailableError,
    SOAArray,
    device_available,
    exclusive_scan,
    gather,
    get_device,
    get_instrumentation,
    inclusive_scan,
    list_devices,
    map_field,
    reduce_field,
    reverse_index,
    scatter,
    segmented_argmin,
    stream_compact,
    use_device,
)
from repro.dpp.device import DeviceRegistry, SerialDevice, VectorizedDevice
from repro.dpp.instrument import reset_instrumentation


@pytest.fixture(autouse=True)
def _clean_instrumentation():
    reset_instrumentation()
    yield
    reset_instrumentation()


class TestDevices:
    def test_both_devices_registered(self):
        assert "vectorized" in list_devices()
        assert "serial" in list_devices()

    def test_use_device_context(self):
        with use_device("serial") as device:
            assert device.name == "serial"
            assert get_device().name == "serial"
        assert get_device().name == "vectorized"

    def test_unknown_device_raises(self):
        with pytest.raises(KeyError):
            get_device("does-not-exist")

    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=50))
    @settings(max_examples=30, deadline=None)
    def test_serial_matches_vectorized_scan_reduce(self, values):
        array = np.asarray(values, dtype=np.int64)
        vec, ser = get_device("vectorized"), get_device("serial")
        assert np.array_equal(vec.scan(array, True), ser.scan(array, True))
        assert np.array_equal(vec.scan(array, False), ser.scan(array, False))
        for op in ("add", "min", "max"):
            assert vec.reduce(array, op) == ser.reduce(array, op)

    def test_serial_matches_vectorized_gather_scatter(self, rng):
        values = rng.random((20, 3))
        indices = rng.integers(0, 20, size=15)
        vec, ser = get_device("vectorized"), get_device("serial")
        assert np.allclose(vec.gather(values, indices), ser.gather(values, indices))
        out_a, out_b = np.zeros((25, 3)), np.zeros((25, 3))
        unique = rng.permutation(25)[:20]
        vec.scatter(values, unique, out_a)
        ser.scatter(values, unique, out_b)
        assert np.allclose(out_a, out_b)


class TestContextLocalActivation:
    """Regression tests for device activation being context-local.

    The registry used to keep the active device in a process-global slot, so
    two interleaved ``use_device`` blocks (the serving tier's asyncio tasks,
    threaded sweep workers) would clobber and mis-restore each other.
    """

    def test_copied_context_does_not_leak_activation(self):
        # Entering use_device inside a copied context must not change the
        # device observed by the outer (un-copied) context.
        inner_holds = {}

        def _inside():
            manager = use_device("serial")
            manager.__enter__()
            inner_holds["name"] = get_device().name

        contextvars.copy_context().run(_inside)
        assert inner_holds["name"] == "serial"
        assert get_device().name == "vectorized"

    def test_asyncio_tasks_interleave_without_clobbering(self):
        observed = {"a": [], "b": []}

        async def worker(key, name, barrier):
            with use_device(name):
                await barrier.wait()  # both tasks now hold their activation
                observed[key].append(get_device().name)
                await asyncio.sleep(0)  # force another interleave point
                observed[key].append(get_device().name)
            observed[key].append(get_device().name)

        async def main():
            barrier = asyncio.Barrier(2)
            await asyncio.gather(
                worker("a", "serial", barrier), worker("b", "vectorized", barrier)
            )

        asyncio.run(main())
        assert observed["a"] == ["serial", "serial", "vectorized"]
        assert observed["b"] == ["vectorized", "vectorized", "vectorized"]

    def test_threads_have_independent_activation(self):
        start = threading.Barrier(2)
        results = {}

        def worker(name):
            with use_device(name):
                start.wait()  # both threads activated concurrently
                results[name] = get_device().name

        threads = [threading.Thread(target=worker, args=(n,)) for n in ("serial", "vectorized")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert results == {"serial": "serial", "vectorized": "vectorized"}

    def test_nested_activation_restores_in_order(self):
        with use_device("serial"):
            with use_device("vectorized"):
                assert get_device().name == "vectorized"
            assert get_device().name == "serial"
        assert get_device().name == "vectorized"


class _SpyDevice(VectorizedDevice):
    """Vectorized device that counts reverse_index dispatches."""

    name = "spy"

    def __init__(self) -> None:
        self.reverse_index_calls = 0

    def reverse_index(self, scan_result, flags):
        self.reverse_index_calls += 1
        return super().reverse_index(scan_result, flags)


class TestReverseIndexDispatch:
    """Regression tests: reverse_index used to bypass the device seam.

    The old implementation ignored ``scan_result``, recomputed the answer
    with numpy regardless of the active device, and never recorded into the
    instrumentation counters.
    """

    def test_dispatches_to_active_device(self):
        from repro.dpp import register_device
        from repro.dpp.device import _REGISTRY

        spy = _SpyDevice()
        register_device(spy)
        try:
            flags = np.array([True, False, True])
            with use_device("spy"):
                reverse_index(exclusive_scan(flags.astype(np.int64)), flags)
                stream_compact(flags, np.arange(3.0))
            assert spy.reverse_index_calls == 2
        finally:
            _REGISTRY._devices.pop("spy", None)  # keep list_devices() clean for later tests

    def test_uses_the_scan_result_argument(self):
        # A shifted scan must shift the output slots: proof the primitive
        # consumes its input instead of recomputing flatnonzero(flags).
        flags = np.array([True, True, False])
        serial = get_device("serial")
        shifted = serial.reverse_index(np.array([1, 0, 0]), flags)
        assert shifted.tolist() == [1, 0]

    def test_recorded_in_instrumentation(self):
        instrumentation = get_instrumentation()
        flags = np.array([True, False, True, True])
        scanned = exclusive_scan(flags.astype(np.int64))
        with instrumentation.scope("reverse-index-test"):
            reverse_index(scanned, flags)
        assert instrumentation.invocations("reverse-index-test") == 1
        assert instrumentation.elements("reverse-index-test") == len(flags)
        assert instrumentation.bytes_moved("reverse-index-test") > 0


class TestLazyRegistry:
    """Capability-gated (lazy) device registration, on a private registry."""

    @staticmethod
    def _fresh_registry():
        registry = DeviceRegistry()
        registry.register(VectorizedDevice())
        registry.register(SerialDevice())
        return registry

    def test_unavailable_device_hidden_and_raises_with_reason(self):
        registry = self._fresh_registry()
        registry.register_lazy(
            "phi", lambda: VectorizedDevice(), probe=lambda: "no Xeon Phi on this host"
        )
        assert registry.names() == ["serial", "vectorized"]
        assert not registry.available("phi")
        with pytest.raises(DeviceUnavailableError) as excinfo:
            registry.get("phi")
        assert excinfo.value.device_name == "phi"
        assert "no Xeon Phi" in str(excinfo.value)
        # DeviceUnavailableError must stay catchable as KeyError.
        assert isinstance(excinfo.value, KeyError)

    def test_loader_called_once_then_cached(self):
        registry = self._fresh_registry()
        calls = []

        class _Fake(SerialDevice):
            name = "fake"

        def loader():
            calls.append(1)
            return _Fake()

        registry.register_lazy("fake", loader)
        assert "fake" in registry.names()
        assert registry.available("fake")
        first = registry.get("fake")
        second = registry.get("fake")
        assert first is second
        assert len(calls) == 1

    def test_loader_failure_reported_as_unavailable(self):
        registry = self._fresh_registry()

        def broken():
            raise ImportError("half-installed back-end")

        registry.register_lazy("broken", broken)
        with pytest.raises(DeviceUnavailableError, match="failed to load"):
            registry.get("broken")

    def test_misnamed_loader_rejected(self):
        registry = self._fresh_registry()
        registry.register_lazy("misnamed", lambda: SerialDevice())
        with pytest.raises(RuntimeError, match="named"):
            registry.get("misnamed")

    def test_global_jax_entry_consistent(self):
        # Whatever this machine has, list_devices and device_available agree.
        assert device_available("jax") == ("jax" in list_devices())
        if not device_available("jax"):
            with pytest.raises(DeviceUnavailableError, match="jax"):
                get_device("jax")


class TestPrimitives:
    def test_map_field_single_output(self):
        result = map_field(lambda a: a * 2, np.arange(5))
        assert np.array_equal(result, np.arange(5) * 2)

    def test_map_field_multiple_inputs(self):
        result = map_field(lambda a, b: a + b, np.arange(4), np.ones(4))
        assert np.array_equal(result, np.arange(4) + 1)

    def test_map_field_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            map_field(lambda a, b: a, np.arange(3), np.arange(4))

    def test_map_field_requires_input(self):
        with pytest.raises(ValueError):
            map_field(lambda: None)

    def test_gather_basic_and_bounds(self):
        values = np.arange(10) * 10
        assert np.array_equal(gather(values, np.array([3, 1, 3])), [30, 10, 30])
        with pytest.raises(IndexError):
            gather(values, np.array([10]))
        with pytest.raises(ValueError):
            gather(values, np.array([[0, 1]]))

    def test_scatter_basic_and_bounds(self):
        out = np.zeros(5)
        scatter(np.array([1.0, 2.0]), np.array([4, 0]), out)
        assert np.array_equal(out, [2.0, 0.0, 0.0, 0.0, 1.0])
        with pytest.raises(IndexError):
            scatter(np.array([1.0]), np.array([9]), out)
        with pytest.raises(ValueError):
            scatter(np.array([1.0, 2.0]), np.array([0]), out)

    def test_reduce_operators(self):
        values = np.array([3.0, -1.0, 2.0])
        assert reduce_field(values, "add") == pytest.approx(4.0)
        assert reduce_field(values, "min") == pytest.approx(-1.0)
        assert reduce_field(values, "max") == pytest.approx(3.0)

    def test_reduce_empty(self):
        assert reduce_field(np.array([], dtype=np.float64), "add") == 0
        with pytest.raises(ValueError):
            reduce_field(np.array([]), "min")

    def test_reduce_unknown_operator(self):
        with pytest.raises(ValueError):
            reduce_field(np.arange(3), "mul")

    @given(st.lists(st.integers(0, 5), min_size=1, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_scan_exclusive_inclusive_relation(self, values):
        array = np.asarray(values, dtype=np.int64)
        inclusive = inclusive_scan(array)
        exclusive = exclusive_scan(array)
        assert np.array_equal(inclusive, exclusive + array)
        assert exclusive[0] == 0
        assert inclusive[-1] == array.sum()

    def test_reverse_index(self):
        flags = np.array([True, False, True, True, False])
        scanned = exclusive_scan(flags.astype(np.int64))
        assert np.array_equal(reverse_index(scanned, flags), [0, 2, 3])

    def test_reverse_index_length_mismatch(self):
        with pytest.raises(ValueError):
            reverse_index(np.zeros(3), np.zeros(4, dtype=bool))

    @given(st.lists(st.booleans(), min_size=0, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_stream_compact_preserves_order_and_multiset(self, flags):
        flags = np.asarray(flags, dtype=bool)
        payload = np.arange(len(flags))
        count, (survivors,) = stream_compact(flags, payload)
        assert count == int(flags.sum())
        assert np.array_equal(survivors, payload[flags])

    def test_stream_compact_multiple_arrays(self, rng):
        flags = rng.random(30) < 0.5
        a = rng.random(30)
        b = rng.random((30, 3))
        count, (ca, cb) = stream_compact(flags, a, b)
        assert len(ca) == len(cb) == count
        assert np.allclose(ca, a[flags])
        assert np.allclose(cb, b[flags])

    def test_segmented_argmin_basic(self):
        values = np.array([3.0, 1.0, 2.0, 5.0, 4.0])
        starts = np.array([0, 3])
        out = segmented_argmin(values, starts, np.arange(5))
        assert out.tolist() == [1, 4]

    def test_segmented_argmin_tiebreak(self):
        # Equal values resolve to the smallest tiebreak id, then position.
        values = np.array([2.0, 2.0, 2.0, 1.0, 1.0])
        tiebreak = np.array([7, 3, 5, 9, 9])
        out = segmented_argmin(values, np.array([0, 3]), tiebreak)
        assert out.tolist() == [1, 3]

    def test_segmented_argmin_all_inf_segment(self):
        values = np.array([np.inf, np.inf, 1.0])
        out = segmented_argmin(values, np.array([0, 2]), np.array([4, 2, 0]))
        assert out.tolist() == [1, 2]

    def test_segmented_argmin_devices_agree(self, rng):
        values = rng.random(64)
        values[rng.integers(0, 64, 10)] = values[0]  # inject ties
        tiebreak = rng.integers(0, 20, 64)
        bounds = np.unique(rng.integers(1, 64, 6))
        starts = np.concatenate([[0], bounds])
        vec = segmented_argmin(values, starts, tiebreak, device="vectorized")
        ser = segmented_argmin(values, starts, tiebreak, device="serial")
        assert np.array_equal(vec, ser)

    def test_segmented_argmin_validation(self):
        values = np.arange(4.0)
        with pytest.raises(ValueError):
            segmented_argmin(values, np.array([1, 2]), np.arange(4))  # not 0-based
        with pytest.raises(ValueError):
            segmented_argmin(values, np.array([0, 2, 2]), np.arange(4))  # empty segment
        with pytest.raises(ValueError):
            segmented_argmin(values, np.array([0, 4]), np.arange(4))  # past the end
        with pytest.raises(ValueError):
            segmented_argmin(values, np.array([0]), np.arange(3))  # length mismatch
        with pytest.raises(ValueError):
            # NaN has no consistent minimum across devices; masked "no
            # candidate" values must use +inf instead.
            segmented_argmin(np.array([np.nan, 2.0, 1.0]), np.array([0]), np.arange(3))
        assert len(segmented_argmin(np.empty(0), np.empty(0, dtype=np.int64), np.empty(0))) == 0

    def test_instrumentation_records_calls(self):
        instrumentation = get_instrumentation()
        with instrumentation.scope("unit-test"):
            map_field(lambda a: a + 1, np.arange(100))
            gather(np.arange(100), np.arange(50))
        assert instrumentation.invocations("unit-test") == 2
        assert instrumentation.elements("unit-test") == 150
        assert instrumentation.bytes_moved("unit-test") > 0
        assert instrumentation.seconds("unit-test") >= 0.0
        assert "unit-test" in instrumentation.scopes()


class TestSOAArray:
    def test_field_length_validation(self):
        soa = SOAArray({"a": np.arange(4)})
        with pytest.raises(ValueError):
            soa["b"] = np.arange(5)

    def test_select_and_compact(self):
        soa = SOAArray({"a": np.arange(6), "b": np.arange(6) * 2.0})
        picked = soa.select(np.array([5, 0]))
        assert picked["a"].tolist() == [5, 0]
        compacted = soa.compact(np.array([True, False, True, False, False, False]))
        assert compacted["b"].tolist() == [0.0, 4.0]

    def test_compact_length_mismatch(self):
        soa = SOAArray({"a": np.arange(3)})
        with pytest.raises(ValueError):
            soa.compact(np.array([True, False]))

    def test_concatenate(self):
        a = SOAArray({"x": np.arange(3)})
        b = SOAArray({"x": np.arange(2)})
        combined = a.concatenate(b)
        assert len(combined) == 5
        with pytest.raises(ValueError):
            a.concatenate(SOAArray({"y": np.arange(2)}))

    def test_copy_independent(self):
        original = SOAArray({"x": np.arange(3)})
        duplicate = original.copy()
        duplicate["x"][0] = 99
        assert original["x"][0] == 0

    def test_nbytes_and_names(self):
        soa = SOAArray({"a": np.zeros(4), "b": np.zeros((4, 2))})
        assert soa.names == ["a", "b"]
        assert soa.nbytes == 4 * 8 + 8 * 8
