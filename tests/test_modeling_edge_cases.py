"""Edge cases of cross-validation, regression, and feasibility analyses.

Degenerate corpora the sweep engine can now produce at will -- tiny shards,
constant-feature slices, corpora carrying failure rows -- must degrade loudly
(clear ``ValueError``) or gracefully (finite results), never silently corrupt
a fit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.modeling.crossval import k_fold_cross_validation
from repro.modeling.feasibility import images_within_budget, raytracing_vs_rasterization
from repro.modeling.regression import fit_linear_model
from repro.modeling.study import FailureRecord, StudyConfiguration, StudyCorpus, StudyHarness
from repro.study import corpus_io


def _design(n: int, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    design = np.column_stack([np.ones(n), rng.uniform(1.0, 9.0, n)])
    response = design @ np.array([0.5, 2.0]) + rng.normal(0.0, 0.01, n)
    return design, response


class TestCrossValidationEdgeCases:
    def test_single_fold_rejected(self):
        design, response = _design(10)
        with pytest.raises(ValueError, match="at least 2"):
            k_fold_cross_validation(design, response, k=1)

    def test_corpus_smaller_than_folds_rejected(self):
        design, response = _design(5)
        with pytest.raises(ValueError, match="need at least 6 observations"):
            k_fold_cross_validation(design, response, k=3)

    def test_minimum_viable_corpus(self):
        # Exactly 2k observations: every fold trains on k+ rows and predicts.
        design, response = _design(6)
        summary = k_fold_cross_validation(design, response, k=3, seed=1)
        assert len(summary.errors) == 6
        assert summary.num_folds == 3
        assert np.all(np.isfinite(summary.errors))

    def test_constant_feature_column(self):
        # A degenerate (constant) feature column must not poison the folds:
        # lstsq resolves the collinearity with the intercept, predictions and
        # errors stay finite.
        rng = np.random.default_rng(3)
        n = 12
        design = np.column_stack([np.ones(n), np.full(n, 7.0), rng.uniform(1.0, 5.0, n)])
        response = 3.0 * design[:, 2] + rng.normal(0.0, 0.01, n)
        summary = k_fold_cross_validation(design, response, k=3, seed=2)
        assert np.all(np.isfinite(summary.predictions))
        assert np.all(np.isfinite(summary.errors))
        assert summary.fraction_within(25.0) > 0.5

    def test_constant_feature_column_nonnegative(self):
        rng = np.random.default_rng(4)
        n = 12
        design = np.column_stack([np.ones(n), np.zeros(n), rng.uniform(1.0, 5.0, n)])
        response = 3.0 * design[:, 2] + rng.normal(0.0, 0.01, n)
        summary = k_fold_cross_validation(design, response, k=3, seed=2, nonnegative=True)
        assert np.all(np.isfinite(summary.predictions))

    def test_constant_response(self):
        # Zero response variance: R^2 degenerates to 1.0 by convention and
        # held-out errors are ~zero rather than NaN.
        design, _ = _design(9)
        response = np.full(9, 4.0)
        fit = fit_linear_model(design, response)
        assert fit.r_squared == 1.0
        summary = k_fold_cross_validation(design, response, k=3, seed=0)
        assert np.all(np.abs(summary.errors) < 1e-8)


class TestRegressionEdgeCases:
    def test_all_zero_column_nonnegative(self):
        design = np.column_stack([np.ones(8), np.zeros(8)])
        response = np.full(8, 2.0)
        fit = fit_linear_model(design, response, nonnegative=True)
        assert fit.coefficients[0] == pytest.approx(2.0)
        assert np.isfinite(fit.residual_std)

    def test_more_parameters_than_observations_rejected(self):
        with pytest.raises(ValueError, match="need at least"):
            fit_linear_model(np.ones((2, 3)), np.ones(2))


@pytest.fixture(scope="module")
def tiny_models():
    """Synthetic-only corpus (no rendering): fast fitted models for one device."""
    config = StudyConfiguration(architectures=("gpu1-k40m",), samples_per_technique=6, seed=11)
    corpus = StudyHarness(config).run(include_compositing=False)
    return corpus.fit_all_models()


class TestFeasibilityEdgeCases:
    def test_empty_model_dict(self):
        assert images_within_budget({}, budget_seconds=60.0) == []

    def test_zero_budget_never_negative(self, tiny_models):
        points = images_within_budget(
            tiny_models, budget_seconds=0.0, image_sizes=np.array([1024])
        )
        assert points
        assert all(p.images_in_budget >= 0 for p in points)
        assert all(p.seconds_per_image > 0 for p in points)

    def test_single_cell_heat_map(self, tiny_models):
        heat = raytracing_vs_rasterization(
            tiny_models[("gpu1-k40m", "raytrace")],
            tiny_models[("gpu1-k40m", "raster")],
            "gpu1-k40m",
            image_sizes=np.array([1024]),
            data_sizes=np.array([200]),
        )
        assert heat["ratio"].shape == (1, 1)
        assert np.isfinite(heat["ratio"]).all()


class TestFailureRowHandling:
    """The new corpus format's failure rows must never perturb the models."""

    def _corpus_with_failures(self) -> StudyCorpus:
        config = StudyConfiguration(
            architectures=("gpu1-k40m",),
            samples_per_technique=6,
            seed=13,
            compositing_task_counts=(2, 4),
            compositing_pixel_sizes=(32,),
        )
        corpus = StudyHarness(config).run()
        corpus.failures.append(
            FailureRecord(kind="render", reason="crash", spec={"technique": "raytrace"})
        )
        return corpus

    def test_fits_ignore_failures(self):
        corpus = self._corpus_with_failures()
        with_failures = corpus.fit_all_models()
        pristine = StudyCorpus(records=corpus.records, compositing_records=corpus.compositing_records)
        without_failures = pristine.fit_all_models()
        assert with_failures.keys() == without_failures.keys()
        for key in with_failures:
            assert with_failures[key].r_squared == without_failures[key].r_squared

    def test_crossval_ignores_failures(self):
        corpus = self._corpus_with_failures()
        summary = corpus.cross_validate("gpu1-k40m", "volume", k=3, seed=5)
        assert len(summary.errors) == len(corpus.select("gpu1-k40m", "volume"))

    def test_empty_failures_round_trip(self, tmp_path):
        corpus = StudyCorpus()
        loaded = corpus_io.load_corpus(corpus_io.save_corpus(corpus, tmp_path / "empty.json"))
        assert loaded.records == [] and loaded.failures == []

    def test_failure_only_corpus_refuses_to_fit(self, tmp_path):
        corpus = StudyCorpus(failures=[FailureRecord(kind="render", reason="error", spec={})])
        loaded = corpus_io.load_corpus(corpus_io.save_corpus(corpus, tmp_path / "failures.json"))
        assert len(loaded.failures) == 1
        assert loaded.fit_all_models() == {}
        with pytest.raises(ValueError, match="no records"):
            loaded.fit_model("gpu1-k40m", "volume")
        with pytest.raises(ValueError, match="no compositing records"):
            loaded.fit_compositing_model()
