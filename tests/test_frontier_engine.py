"""Tests for the frontier kernel engine and its volume-renderer clients.

The engine itself is exercised with a toy kernel on both devices; the
structured and unstructured volume renderers are verified *golden-image
style* against the pre-refactor monolithic loops they keep in-tree as
``render_reference`` (the volume analogue of the ray tracer's differential
testing against ``brute_force_closest_hit``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dpp import FrontierEngine, FrontierLanes, use_device
from repro.dpp.instrument import get_instrumentation, reset_instrumentation
from repro.geometry import Camera
from repro.geometry.aabb import ray_box_intervals, safe_reciprocal
from repro.rendering import (
    Rasterizer,
    RayEmitter,
    RayTracer,
    Renderer,
    RenderResult,
    Scene,
    StructuredVolumeConfig,
    StructuredVolumeRenderer,
    UnstructuredVolumeConfig,
    UnstructuredVolumeRenderer,
)
from repro.rendering.framebuffer import Framebuffer
from repro.util.morton import morton_encode_2d


@pytest.fixture(autouse=True)
def _clean_instrumentation():
    reset_instrumentation()
    yield
    reset_instrumentation()


class _CountdownKernel:
    """Toy kernel: each lane counts down from its budget, accumulating steps."""

    output_fields = ("total",)

    def __init__(self):
        self.compactions = 0

    def on_compact(self, lanes):
        self.compactions += 1

    def step(self, lanes):
        live = ~lanes.retired
        lanes["remaining"][live] -= 1
        lanes["total"][live] += 1
        return lanes["remaining"] <= 0


class TestFrontierEngine:
    def _run(self, device=None, compact_min=1):
        budgets = np.array([1, 4, 2, 7, 3, 1, 5, 2], dtype=np.int64)
        lanes = FrontierLanes(
            np.arange(len(budgets), dtype=np.int64),
            {"remaining": budgets.copy(), "total": np.zeros(len(budgets), dtype=np.int64)},
        )
        outputs = {"total": np.zeros(len(budgets), dtype=np.int64)}
        kernel = _CountdownKernel()
        engine = FrontierEngine(compact_min=compact_min, device=device)
        steps = engine.run(kernel, lanes, outputs)
        return budgets, outputs, steps, kernel

    def test_outputs_scattered_per_lane(self):
        budgets, outputs, steps, kernel = self._run()
        assert np.array_equal(outputs["total"], budgets)
        assert steps == budgets.max()
        # compact_min=1 forces intermediate compactions, and the hook runs
        # once up front plus once per compaction that left lanes resident.
        assert kernel.compactions >= 2

    def test_serial_device_identical(self):
        _, vec, _, _ = self._run(device="vectorized")
        _, ser, _, _ = self._run(device="serial")
        assert np.array_equal(vec["total"], ser["total"])

    def test_missing_output_field_rejected(self):
        lanes = FrontierLanes(np.arange(2), {"remaining": np.ones(2), "total": np.zeros(2)})
        with pytest.raises(KeyError):
            FrontierEngine().run(_CountdownKernel(), lanes, {})

    def test_max_steps_guard(self):
        class NeverRetires:
            output_fields = ()

            def step(self, lanes):
                return np.zeros(len(lanes), dtype=bool)

        lanes = FrontierLanes(np.arange(3), {"x": np.zeros(3)})
        with pytest.raises(RuntimeError):
            FrontierEngine(max_steps=5).run(NeverRetires(), lanes, {})

    def test_lane_state_validation(self):
        with pytest.raises(ValueError):
            FrontierLanes(np.arange(3), {"bad": np.zeros(2)})
        with pytest.raises(ValueError):
            FrontierLanes(np.zeros((2, 2)), {})
        with pytest.raises(ValueError):
            FrontierEngine(compact_fraction=1.5)
        with pytest.raises(ValueError):
            FrontierEngine(compact_min=0)


class TestSharedSlabInterval:
    def test_safe_reciprocal_keeps_sign(self):
        # The pre-refactor volume copies mapped tiny negative components to a
        # positive huge reciprocal, losing the entry/exit plane ordering.
        recip = safe_reciprocal(np.array([-1e-301, 1e-301, 0.0, -0.0, 2.0]))
        assert recip[0] < 0 < recip[1]
        assert recip[2] > 0 and recip[3] > 0
        assert recip[4] == 0.5

    def test_grazing_ray_interval_regression(self):
        # A ray outside the box in x, drifting toward it at -1e-301: the old
        # sign-lossy reciprocal reports the slab as already exited (negative
        # interval); the sign-correct one reports entry in the far future.
        origins = np.array([[1.5, -0.5, 0.5]])
        directions = np.array([[-1e-301, 1e-301, 0.0]])
        t_near, t_far = ray_box_intervals(origins, directions, np.zeros(3), np.ones(3))
        assert t_near[0] > 0 and t_far[0] >= t_near[0]

    def test_structured_interval_with_tiny_negative_direction(self, blob_grid):
        renderer = StructuredVolumeRenderer(blob_grid, "density")
        bounds = blob_grid.bounds
        origin = bounds.center + np.array([0.0, 0.0, -bounds.extent[2]])
        directions = np.array([[-1e-301, 0.0, 1.0], [1e-301, 0.0, 1.0]])
        origins = np.tile(origin, (2, 1))
        near, far = renderer._ray_box_interval(origins, directions)
        # The two grazing rays are mirror images; their spans must agree.
        assert near[0] == pytest.approx(near[1])
        assert far[0] == pytest.approx(far[1])
        assert far[0] > near[0] >= 0.0

    def test_interval_matches_brute_direction(self, blob_grid):
        renderer = StructuredVolumeRenderer(blob_grid, "density")
        camera = Camera.framing_bounds(blob_grid.bounds, 16, 16)
        origins, directions = camera.generate_rays()
        near, far = renderer._ray_box_interval(origins, directions)
        hit = far > near
        assert hit.any() and (~hit).any()
        assert np.all(near[hit] >= 0.0)


class TestGoldenStructured:
    @pytest.mark.parametrize("zoom", [1.0, 1.6])
    def test_matches_reference_on_rm_scene(self, small_grid, zoom):
        camera = Camera.framing_bounds(small_grid.bounds, 48, 48, zoom=zoom)
        renderer = StructuredVolumeRenderer(small_grid, "density")
        fast = renderer.render(camera)
        slow = renderer.render_reference(camera)
        assert np.allclose(fast.framebuffer.rgba, slow.framebuffer.rgba, atol=1e-10, rtol=0.0)
        assert np.array_equal(fast.framebuffer.depth, slow.framebuffer.depth)
        assert fast.features.active_pixels == slow.features.active_pixels
        assert fast.features.samples_per_ray == pytest.approx(slow.features.samples_per_ray)

    def test_matches_reference_with_aggressive_termination(self, blob_grid):
        camera = Camera.framing_bounds(blob_grid.bounds, 40, 40, zoom=1.3)
        config = StructuredVolumeConfig(early_termination_alpha=0.3, sample_chunk=8)
        renderer = StructuredVolumeRenderer(blob_grid, "density", config=config)
        fast = renderer.render(camera)
        slow = renderer.render_reference(camera)
        assert np.allclose(fast.framebuffer.rgba, slow.framebuffer.rgba, atol=1e-10, rtol=0.0)
        assert np.array_equal(fast.framebuffer.depth, slow.framebuffer.depth)

    def test_sampling_registers_dpp_traffic(self, blob_grid):
        camera = Camera.framing_bounds(blob_grid.bounds, 32, 32, zoom=1.2)
        instrumentation = get_instrumentation()
        StructuredVolumeRenderer(blob_grid, "density").render(camera)
        # The slab kernel routes sample classification through map_field and
        # the engine flush through scatter/stream-compact, so the op-counter
        # choke point finally observes the volume hot path.
        assert instrumentation.invocations("volume.sampling") > 0
        assert instrumentation.elements("volume.sampling") > 0
        assert instrumentation.bytes_moved("volume.sampling") > 0

    def test_engine_through_serial_device(self, blob_grid):
        camera = Camera.framing_bounds(blob_grid.bounds, 24, 24, zoom=1.2)
        renderer = StructuredVolumeRenderer(blob_grid, "density")
        fast = renderer.render(camera)
        with use_device("serial"):
            serial = renderer.render(camera)
        assert np.allclose(fast.framebuffer.rgba, serial.framebuffer.rgba, atol=0.0)
        assert np.array_equal(fast.framebuffer.depth, serial.framebuffer.depth)


class TestGoldenUnstructured:
    @pytest.mark.parametrize("passes", [1, 3])
    def test_matches_reference(self, small_tets, passes):
        camera = Camera.framing_bounds(small_tets.bounds, 36, 36, zoom=1.2)
        config = UnstructuredVolumeConfig(samples_in_depth=60, num_passes=passes)
        renderer = UnstructuredVolumeRenderer(small_tets, "density", config=config)
        fast = renderer.render(camera)
        slow = renderer.render_reference(camera)
        assert np.allclose(fast.framebuffer.rgba, slow.framebuffer.rgba, atol=1e-10, rtol=0.0)
        assert np.array_equal(fast.framebuffer.depth, slow.framebuffer.depth)
        assert fast.features.active_pixels == slow.features.active_pixels
        assert fast.features.samples_per_ray == pytest.approx(slow.features.samples_per_ray)

    def test_early_termination_matches_reference(self, small_tets):
        camera = Camera.framing_bounds(small_tets.bounds, 32, 32, zoom=1.4)
        config = UnstructuredVolumeConfig(
            samples_in_depth=60, num_passes=4, early_termination_alpha=0.2
        )
        renderer = UnstructuredVolumeRenderer(small_tets, "density", config=config)
        fast = renderer.render(camera)
        slow = renderer.render_reference(camera)
        assert np.allclose(fast.framebuffer.rgba, slow.framebuffer.rgba, atol=1e-10, rtol=0.0)

    def test_compositing_registers_dpp_traffic(self, small_tets):
        camera = Camera.framing_bounds(small_tets.bounds, 24, 24, zoom=1.2)
        instrumentation = get_instrumentation()
        config = UnstructuredVolumeConfig(samples_in_depth=40, num_passes=2)
        UnstructuredVolumeRenderer(small_tets, "density", config=config).render(camera)
        assert instrumentation.elements("volume.sampling") > 0
        assert instrumentation.elements("volume.compositing") > 0


class TestRayEmitter:
    def test_morton_order_covers_all_pixels(self):
        camera = Camera(width=16, height=8)
        pixel_ids, origins, directions = RayEmitter(camera, morton_order=True).emit()
        assert sorted(pixel_ids.tolist()) == list(range(16 * 8))
        px = (pixel_ids % 16).astype(np.uint32)
        py = (pixel_ids // 16).astype(np.uint32)
        codes = morton_encode_2d(px, py)
        assert np.all(np.diff(codes) >= 0)
        assert np.allclose(np.linalg.norm(directions, axis=1), 1.0)

    def test_supersample_emits_four_rays_per_pixel(self):
        camera = Camera(width=6, height=4)
        pixel_ids, origins, directions = RayEmitter(camera, supersample=4).emit()
        assert len(pixel_ids) == 4 * 6 * 4
        unique, counts = np.unique(pixel_ids, return_counts=True)
        assert np.all(counts == 4)
        with pytest.raises(ValueError):
            RayEmitter(camera, supersample=4).emit(np.array([0, 1]))

    def test_invalid_supersample_rejected(self):
        with pytest.raises(ValueError):
            RayEmitter(Camera(), supersample=2)

    def test_emit_clipped_matches_interval_helper(self, blob_grid):
        camera = Camera.framing_bounds(blob_grid.bounds, 24, 24)
        pixel_ids, origins, directions, near, far = RayEmitter(camera).emit_clipped(
            blob_grid.bounds
        )
        assert len(pixel_ids) > 0
        assert np.all(far > near) and np.all(near >= 0.0)
        all_o, all_d = camera.generate_rays()
        t_near, t_far = ray_box_intervals(all_o, all_d, blob_grid.bounds.low, blob_grid.bounds.high)
        expected = np.flatnonzero(t_far > np.maximum(t_near, 0.0))
        assert np.array_equal(pixel_ids, expected)


class TestRendererProtocol:
    def test_all_families_satisfy_protocol(self, small_scene, blob_grid, small_tets):
        renderers = [
            RayTracer(small_scene),
            Rasterizer(small_scene),
            StructuredVolumeRenderer(blob_grid, "density"),
            UnstructuredVolumeRenderer(small_tets, "density"),
        ]
        camera = Camera.framing_bounds(blob_grid.bounds, 16, 16)
        for renderer in renderers:
            assert isinstance(renderer, Renderer)
            assert renderer.visibility_depth(camera) > 0.0

    def test_grouped_seconds_covers_every_phase(self, small_scene, small_camera):
        result = RayTracer(small_scene).render(small_camera)
        groups = result.grouped_seconds()
        assert set(groups) == {"setup", "sample", "shade", "composite"}
        assert sum(groups.values()) == pytest.approx(result.total_seconds)

    def test_features_from_result_one_schema(self, small_scene, blob_grid, small_camera):
        from repro.modeling.features import features_from_result

        surface = features_from_result(RayTracer(small_scene).render(small_camera))
        volume = features_from_result(
            StructuredVolumeRenderer(blob_grid, "density").render(small_camera)
        )
        assert set(surface) == set(volume)
        assert surface["technique"] == "raytrace"
        assert volume["technique"] == "volume_structured"


class TestDepthConvention:
    def test_finite_depth_on_miss_rejected(self):
        framebuffer = Framebuffer(4, 4)
        framebuffer.depth[0, 0] = 0.0  # "0.0 for misses" -- the old bug
        with pytest.raises(ValueError, match="depth convention"):
            RenderResult(framebuffer)

    def test_covered_pixel_without_depth_rejected(self):
        framebuffer = Framebuffer(4, 4)
        framebuffer.rgba[1, 1] = [1.0, 0.0, 0.0, 1.0]
        with pytest.raises(ValueError, match="depth convention"):
            RenderResult(framebuffer)

    def test_unregistered_phase_name_rejected(self):
        framebuffer = Framebuffer(2, 2)
        with pytest.raises(ValueError, match="unregistered phase"):
            RenderResult(framebuffer, phase_seconds={"made_up_phase": 1.0})

    def test_conforming_result_accepted(self):
        framebuffer = Framebuffer(2, 2)
        framebuffer.write_pixels(
            np.array([0]), np.array([[1.0, 0.0, 0.0, 1.0]]), np.array([2.0])
        )
        result = RenderResult(framebuffer, phase_seconds={"trace": 0.5, "shade": 0.25})
        assert result.grouped_seconds()["sample"] == 0.5
