"""Session-scoped fixtures shared by every benchmark.

The model-fitting benchmarks (Tables 12-17, Figures 11-15) all need the study
corpus; building it involves dozens of real renders, so it is built once per
pytest session and reused.

The corpus is built by the sweep engine (:func:`repro.study.run_study`), the
same pipeline ``python -m repro.study run`` and the CI ``sweep-smoke`` job
drive.  Two environment variables tune it without touching the benchmarks:

* ``REPRO_STUDY_JOBS``   -- process-pool width (default 1: in-process)
* ``REPRO_STUDY_CACHE``  -- corpus cache directory; with it set, repeated
  benchmark sessions skip every unchanged configuration (the cache key
  includes a digest of the package source, so code changes invalidate it
  automatically).
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from repro.modeling.study import StudyConfiguration
from repro.study import run_study


@pytest.fixture(scope="session")
def study_corpus():
    """The default study corpus (host-measured + synthesized GPU experiments)."""
    config = StudyConfiguration(samples_per_technique=10, seed=2016)
    return run_study(
        config,
        jobs=int(os.environ.get("REPRO_STUDY_JOBS", "1")),
        cache_dir=os.environ.get("REPRO_STUDY_CACHE") or None,
    )


@pytest.fixture(scope="session")
def fitted_models(study_corpus):
    """All six fitted single-node models keyed by (architecture, technique)."""
    return study_corpus.fit_all_models()


@pytest.fixture(scope="session")
def compositing_model(study_corpus):
    """The fitted Eq. 5.5 compositing model."""
    return study_corpus.fit_compositing_model()
