"""Session-scoped fixtures shared by every benchmark.

The model-fitting benchmarks (Tables 12-17, Figures 11-15) all need the study
corpus; building it involves dozens of real renders, so it is built once per
pytest session and reused.

The corpus is built by the sweep engine (:func:`repro.study.run_study`), the
same pipeline ``python -m repro.study run`` and the CI ``sweep-smoke`` job
drive.  Two environment variables tune it without touching the benchmarks:

* ``REPRO_STUDY_JOBS``   -- process-pool width (default 1: in-process)
* ``REPRO_STUDY_CACHE``  -- corpus cache directory; with it set, repeated
  benchmark sessions skip every unchanged configuration (the cache key
  includes a digest of the package source, so code changes invalidate it
  automatically).
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from repro.modeling.study import StudyConfiguration
from repro.study import run_study


@pytest.fixture(scope="session")
def study_corpus():
    """The default study corpus (host-measured + synthesized GPU experiments)."""
    config = StudyConfiguration(samples_per_technique=10, seed=2016)
    return run_study(
        config,
        jobs=int(os.environ.get("REPRO_STUDY_JOBS", "1")),
        cache_dir=os.environ.get("REPRO_STUDY_CACHE") or None,
    )


@pytest.fixture(scope="session")
def model_suite(study_corpus):
    """The fitted-model registry (suite) over the default corpus.

    The table/figure benchmarks consume models through the same
    :class:`~repro.reporting.suite.ModelSuite` the ``report`` CLI and CI
    artifacts use, so a registry regression shows up here too.
    """
    from repro.reporting import ModelSuite

    return ModelSuite.fit_corpus(study_corpus)


@pytest.fixture(scope="session")
def fitted_models(model_suite):
    """All six fitted single-node models keyed by (architecture, technique)."""
    return model_suite.models()


@pytest.fixture(scope="session")
def compositing_model(model_suite):
    """The fitted Eq. 5.5 compositing model."""
    assert model_suite.compositing is not None
    return model_suite.compositing.model
