"""Session-scoped fixtures shared by every benchmark.

The model-fitting benchmarks (Tables 12-17, Figures 11-15) all need the study
corpus; building it involves dozens of real renders, so it is built once per
pytest session and reused.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from repro.modeling.study import StudyConfiguration, StudyHarness


@pytest.fixture(scope="session")
def study_corpus():
    """The default study corpus (host-measured + synthesized GPU experiments)."""
    config = StudyConfiguration(samples_per_technique=10, seed=2016)
    return StudyHarness(config).run()


@pytest.fixture(scope="session")
def fitted_models(study_corpus):
    """All six fitted single-node models keyed by (architecture, technique)."""
    return study_corpus.fit_all_models()


@pytest.fixture(scope="session")
def compositing_model(study_corpus):
    """The fitted Eq. 5.5 compositing model."""
    return study_corpus.fit_compositing_model()
