"""Figure 4: CPU volume rendering run time by phase versus pass count.

For each data set and camera angle the per-phase host-measured run time is
reported for increasing numbers of passes, reproducing the stacked-bar series
of Figure 4.
"""

from __future__ import annotations

from common import print_table, volume_dataset_pool
from repro.geometry import Camera
from repro.rendering import UnstructuredVolumeConfig, UnstructuredVolumeRenderer

PASS_COUNTS = [1, 2, 4, 8]
PHASES = ["initialization", "pass_selection", "screen_space", "sampling", "compositing"]


def test_fig04_volume_cpu_phase_times(benchmark):
    rows = []
    for name, (grid, tets, field) in volume_dataset_pool()[:2]:
        for view, zoom in (("far", 0.8), ("close", 1.4)):
            camera = Camera.framing_bounds(grid.bounds, 64, 64, zoom=zoom)
            for passes in PASS_COUNTS:
                result = UnstructuredVolumeRenderer(
                    tets, field, config=UnstructuredVolumeConfig(samples_in_depth=64, num_passes=passes)
                ).render(camera)
                rows.append(
                    [f"{name}/{view}", passes]
                    + [f"{result.phase_seconds[p]:.3f}" for p in PHASES]
                    + [f"{result.total_seconds:.3f}"]
                )
    print_table("Figure 4: CPU volume rendering time by phase vs passes", ["data/view", "passes"] + PHASES + ["total"], rows)

    name, (grid, tets, field) = volume_dataset_pool()[0]
    camera = Camera.framing_bounds(grid.bounds, 64, 64, zoom=1.4)
    renderer = UnstructuredVolumeRenderer(tets, field, config=UnstructuredVolumeConfig(samples_in_depth=64, num_passes=2))
    benchmark(lambda: renderer.render(camera))
    assert len(rows) == 2 * 2 * len(PASS_COUNTS)
