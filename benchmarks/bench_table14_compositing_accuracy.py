"""Table 14: compositing model accuracy (3-fold cross validation)."""

from __future__ import annotations

from common import print_table


def test_table14_compositing_accuracy(benchmark, study_corpus, compositing_model):
    summary = study_corpus.cross_validate_compositing(k=3, seed=23)
    accuracy = summary.accuracy_row()
    print_table(
        "Table 14: compositing model accuracy",
        ["50%", "25%", "10%", "5%", "avg err %", "R^2 (full fit)"],
        [[
            f"{accuracy['within_50']:.1f}",
            f"{accuracy['within_25']:.1f}",
            f"{accuracy['within_10']:.1f}",
            f"{accuracy['within_5']:.1f}",
            f"{accuracy['average_percent']:.1f}",
            f"{compositing_model.r_squared:.3f}",
        ]],
    )

    benchmark(lambda: study_corpus.fit_compositing_model())
    # The compositing model is the weakest of the set (paper: 29% average error,
    # 88% within 50%); require a broadly similar level of usefulness.
    assert accuracy["within_50"] >= 50.0
    assert accuracy["average_percent"] <= 80.0
