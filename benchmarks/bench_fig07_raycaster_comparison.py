"""Figure 7: DPP volume renderer versus the unstructured (Bunyk-style) ray caster.

Reproduces Figure 7's two view panels.  The expected trend: the DPP sampler is
faster on larger data sets (the connectivity ray caster's per-cell costs are
not amortised), with mixed results on small data.
"""

from __future__ import annotations

from common import print_table, volume_dataset_pool
from repro.geometry import Camera
from repro.rendering import UnstructuredVolumeConfig, UnstructuredVolumeRenderer
from repro.rendering.baselines import ConnectivityRayCaster


def test_fig07_dpp_vs_bunyk(benchmark):
    rows = []
    largest_ratio = None
    pool = volume_dataset_pool()
    for index, (name, (grid, tets, field)) in enumerate(pool):
        for view, zoom in (("far", 0.8), ("close", 1.4)):
            camera = Camera.framing_bounds(grid.bounds, 64, 64, zoom=zoom)
            dpp = UnstructuredVolumeRenderer(
                tets, field, config=UnstructuredVolumeConfig(samples_in_depth=60, num_passes=2)
            ).render(camera)
            caster = ConnectivityRayCaster(tets, field, samples_in_depth=60)
            bunyk = caster.render(camera)
            rows.append(
                [
                    f"{name}/{view}",
                    tets.num_cells,
                    f"{dpp.total_seconds:.3f}",
                    f"{bunyk.total_seconds:.3f}",
                    f"{caster.preprocess_seconds:.3f} (excluded)",
                ]
            )
            if index == len(pool) - 1 and view == "close":
                largest_ratio = bunyk.total_seconds / max(dpp.total_seconds, 1e-12)
    print_table(
        "Figure 7: DPP-VR vs Bunyk-proxy ray caster run times",
        ["data/view", "tets", "DPP-VR", "Ray-Caster", "pre-process"],
        rows,
    )

    name, (grid, tets, field) = pool[0]
    camera = Camera.framing_bounds(grid.bounds, 64, 64, zoom=1.4)
    caster = ConnectivityRayCaster(tets, field, samples_in_depth=60)
    caster.preprocess()
    benchmark(lambda: caster.render(camera))
    assert largest_ratio is not None and largest_ratio > 0
