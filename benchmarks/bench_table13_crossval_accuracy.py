"""Table 13: 3-fold cross-validation accuracy of the six single-node models."""

from __future__ import annotations

from common import print_table


def test_table13_crossval_accuracy(benchmark, study_corpus):
    rows = []
    summaries = {}
    for architecture in ("cpu-host", "gpu1-k40m"):
        for technique in ("raytrace", "volume", "raster"):
            summary = study_corpus.cross_validate(architecture, technique, k=3, seed=17)
            summaries[(architecture, technique)] = summary
            accuracy = summary.accuracy_row()
            rows.append(
                [
                    architecture,
                    technique,
                    f"{accuracy['within_50']:.1f}",
                    f"{accuracy['within_25']:.1f}",
                    f"{accuracy['within_10']:.1f}",
                    f"{accuracy['within_5']:.1f}",
                    f"{accuracy['average_percent']:.1f}",
                ]
            )
    print_table(
        "Table 13: 3-fold cross-validation accuracy (% of predictions within error bands)",
        ["architecture", "technique", "50%", "25%", "10%", "5%", "avg err %"],
        rows,
    )

    benchmark(lambda: study_corpus.cross_validate("gpu1-k40m", "raster", k=3, seed=17))
    # Every model predicts within 50% for the overwhelming majority of held-out
    # points (the paper's worst case was 96%).
    for summary in summaries.values():
        assert summary.accuracy_row()["within_50"] >= 70.0
