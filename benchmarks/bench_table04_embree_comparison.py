"""Table 4: EAVL-style DPP ray tracer versus Embree (Mrays/s on CPUs).

The Embree role is played by the specialised SAH-BVH intersector measured on
the host; the paper reports Embree roughly 2x faster than the DPP tracer on
CPUs.
"""

from __future__ import annotations

from common import print_table, surface_scene_pool, synthetic_rays_per_second
from repro.rendering import RayTracer, RayTracerConfig, Workload
from repro.rendering.baselines import SpecializedRayTracer

CPUS = ["cpu-i7-4770k", "cpu-xeon-e5-2680"]


def test_table04_dpp_vs_embree(benchmark):
    pool = surface_scene_pool()[:4]
    rows = []
    measured_gaps = []
    for entry in pool:
        dpp_result = RayTracer(entry.scene, RayTracerConfig(workload=Workload.INTERSECTION_ONLY)).render(entry.camera)
        dpp_rate = (entry.camera.width * entry.camera.height) / max(dpp_result.phase_seconds["trace"], 1e-12)
        specialized = SpecializedRayTracer(entry.scene)
        rays, seconds = specialized.trace(entry.camera)
        gap = (rays / max(seconds, 1e-12)) / dpp_rate
        measured_gaps.append(gap)
        row = [entry.name, f"{gap:.2f}x"]
        for cpu in CPUS:
            base = synthetic_rays_per_second(cpu, dpp_result.features) / 1e6
            row.extend([f"{base:.1f}", f"{base * max(gap, 1.0):.1f}"])
        rows.append(row)
    headers = ["dataset", "measured gap"] + [f"{cpu} {kind}" for cpu in CPUS for kind in ("EAVL", "Embree")]
    print_table("Table 4: Mrays/s, DPP ray tracer vs Embree-proxy (CPUs)", headers, rows)

    entry = pool[1]
    tracer = RayTracer(entry.scene, RayTracerConfig(workload=Workload.INTERSECTION_ONLY))
    tracer.build_acceleration_structure()
    benchmark(lambda: tracer.render(entry.camera))

    # Gap should be in the vicinity of the paper's ~2x (allow a broad band).
    assert 1.0 <= max(measured_gaps) < 6.0
