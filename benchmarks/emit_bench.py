"""Emit the repo's rendering perf trajectory record (``BENCH_render.json``).

Usage (from the repository root):

    PYTHONPATH=src python -m benchmarks.emit_bench [output.json]

Covers both hot paths of the frontier kernel engine:

* **raytracer** -- the traversal-throughput benchmark (WORKLOAD1-3 at 96^2
  and 192^2 over the rm-family scene subset), verified differentially
  against the brute-force intersector, with the recorded seed-engine
  baseline and speedups.
* **volume** -- the structured and unstructured volume casters at 96^2 and
  192^2 over the Table 6 scene pool, verified against (and timed against)
  the pre-refactor monolithic loops each renderer keeps in-tree as
  ``render_reference``.
* **compositing** -- the run-length sort-last compositing engine at 64-256
  simulated ranks and 256^2 pixels with all three exchange algorithms
  (direct-send, binary-swap, radix-k), verified against and timed against
  the dense per-run drivers kept in-tree as ``composite_reference``.
* **compositing_scale** -- the streaming cohort scheduler at 1,024 and
  4,096 simulated ranks (ranks/s plus the 1k peak traced allocation),
  where the dense engines no longer fit; bit-exactness against the dense
  oracle is pinned by the tier-1 suite rather than re-verified here.

The record supersedes the ray-tracing-only ``BENCH_raytracer.json`` of PR 1.
"""

from __future__ import annotations

import json
import platform
import sys
from pathlib import Path

_BENCH_DIR = Path(__file__).resolve().parent
if str(_BENCH_DIR) not in sys.path:  # allow `python -m benchmarks.emit_bench`
    sys.path.insert(0, str(_BENCH_DIR))

import numpy as np

import bench_compositing_scale as scale_bench
import bench_compositing_throughput as compositing_bench
import bench_table05_backend_comparison as device_bench
import bench_traversal_throughput as raytracer_bench
import bench_volume_throughput as volume_bench


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    output = Path(argv[0]) if argv else _BENCH_DIR.parent / "BENCH_render.json"
    if not output.parent.is_dir():
        print(f"error: output directory {output.parent} does not exist", file=sys.stderr)
        return 2

    # Compositing first: its fast-vs-reference ratio is the most
    # state-sensitive measurement, so take it before the render verifications
    # and sweeps churn the allocator.
    print("verifying the run-length compositing engine against composite_reference ...")
    compositing_bench.verify_compositing_differential()
    print("measuring compositing throughput ...")
    compositing_speedups = compositing_bench.measure_reference_speedups()
    compositing_results = compositing_bench.measure_all()
    print("measuring streaming compositing at scale (1k-4k ranks) ...")
    scale_results = scale_bench.measure_scale_section()
    print("verifying traversal engine against brute force on every pool scene ...")
    raytracer_bench.verify_pool_differential()
    print("verifying volume engines against the pre-refactor reference loops ...")
    volume_bench.verify_volume_differential()
    print("measuring ray-tracing throughput ...")
    raytracer_results = raytracer_bench.measure_all()
    print("measuring volume throughput ...")
    volume_results = volume_bench.measure_all()
    print("measuring DPP device back-ends ...")
    device_results = device_bench.measure_all_devices()

    record = {
        "benchmark": "render_throughput",
        "units": "Mrays/s",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "raytracer": {
            "scenes": "surface_scene_pool()[0:3] (rm family)",
            "seed_baseline": raytracer_bench.SEED_BASELINE_MRAYS,
            "current": {
                key: round(value["mrays_per_s"], 4)
                for key, value in raytracer_results.items()
            },
            "speedup_vs_seed": {
                key: round(value["mrays_per_s"] / raytracer_bench.SEED_BASELINE_MRAYS[key], 2)
                for key, value in raytracer_results.items()
            },
            "detail": {
                key: {"rays": value["rays"], "seconds": round(value["seconds"], 4)}
                for key, value in raytracer_results.items()
            },
        },
        "volume": {
            "scenes": "volume_dataset_pool() (Table 6 pool)",
            "seed_baseline": {
                key: round(value["seed_mrays_per_s"], 4)
                for key, value in volume_results.items()
            },
            "current": {
                key: round(value["mrays_per_s"], 4)
                for key, value in volume_results.items()
            },
            "speedup_vs_seed": {
                key: round(value["speedup_vs_seed"], 2)
                for key, value in volume_results.items()
            },
            "detail": {
                key: {
                    "rays": value["rays"],
                    "seconds": round(value["seconds"], 4),
                    "seed_seconds": round(value["seed_seconds"], 4),
                }
                for key, value in volume_results.items()
            },
        },
        "compositing": {
            "scenes": "synthetic sort-last sub-images (Section 5.8 fill), over mode",
            "units": "seconds per composite at 256^2",
            "current": {
                key: round(value["seconds"], 4) for key, value in compositing_results.items()
            },
            "speedup_vs_reference_64": {
                algorithm: round(entry["speedup"], 2)
                for algorithm, entry in compositing_speedups["per_algorithm"].items()
            },
            "aggregate_speedup_vs_reference_64": round(
                compositing_speedups["aggregate_speedup"], 2
            ),
            "detail": {
                key: {
                    "tasks": value["tasks"],
                    "pixels": value["pixels"],
                    "mpixels_per_s": round(value["mpixels_per_s"], 2),
                    "bytes_exchanged": value["bytes_exchanged"],
                    "messages": value["messages"],
                    "merge_operations": value["merge_operations"],
                    "average_active_pixels": round(value["average_active_pixels"], 1),
                }
                for key, value in compositing_results.items()
            },
        },
        "compositing_scale": {
            "scenes": "scene_factory('uniform'), depth mode, 128^2, cohort engine",
            "units": "ranks/s (peak_memory_bytes: lower is better)",
            "current": scale_results,
        },
        "device_comparison": {
            "scenes": "stream-compaction + segmented_argmin idioms, 200k elements",
            "units": "M elements/s",
            "devices": sorted(device_results),
            "current": {
                f"{name}_{metric}": round(value, 4)
                for name, metrics in device_results.items()
                for metric, value in metrics.items()
            },
            "speedup_vs_serial": {
                name: round(
                    metrics["compaction_mops"]
                    / device_results["serial"]["compaction_mops"],
                    2,
                )
                for name, metrics in device_results.items()
            },
        },
    }
    output.write_text(json.dumps(record, indent=2) + "\n")
    for section in ("raytracer", "volume"):
        print(f"[{section}]")
        for key, value in record[section]["current"].items():
            speedup = record[section]["speedup_vs_seed"][key]
            print(f"  {key:24s} {value:8.4f} Mrays/s  ({speedup}x seed)")
    print("[compositing]")
    for key, value in record["compositing"]["current"].items():
        print(f"  {key:24s} {value:8.4f} s/composite")
    aggregate = record["compositing"]["aggregate_speedup_vs_reference_64"]
    print(f"  aggregate speedup vs composite_reference at 64 ranks: {aggregate}x")
    print("[compositing_scale]")
    for key, value in record["compositing_scale"]["current"].items():
        print(f"  {key:36s} {value:14.2f}")
    print("[device_comparison]")
    for key, value in record["device_comparison"]["current"].items():
        print(f"  {key:36s} {value:10.4f} M elements/s")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
