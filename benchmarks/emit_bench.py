"""Emit the repo's ray-tracing perf trajectory record (``BENCH_raytracer.json``).

Usage (from the repository root):

    PYTHONPATH=src python -m benchmarks.emit_bench [output.json]

Runs the traversal-throughput benchmark (WORKLOAD1-3 at 96^2 and 192^2 over
the rm-family scene subset), verifies the engine differentially against the
brute-force intersector on every pool scene, and writes a JSON record holding
the seed-engine baseline, the current engine's Mrays/s, and the speedups --
so each PR's perf delta on the ray-tracing hot path is tracked in-repo.
"""

from __future__ import annotations

import json
import platform
import sys
from pathlib import Path

_BENCH_DIR = Path(__file__).resolve().parent
if str(_BENCH_DIR) not in sys.path:  # allow `python -m benchmarks.emit_bench`
    sys.path.insert(0, str(_BENCH_DIR))

import numpy as np

from bench_traversal_throughput import (
    SEED_BASELINE_MRAYS,
    measure_all,
    verify_pool_differential,
)


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    output = Path(argv[0]) if argv else _BENCH_DIR.parent / "BENCH_raytracer.json"
    if not output.parent.is_dir():
        print(f"error: output directory {output.parent} does not exist", file=sys.stderr)
        return 2

    print("verifying engine against brute force on every pool scene ...")
    verify_pool_differential()
    print("measuring throughput ...")
    results = measure_all()

    record = {
        "benchmark": "traversal_throughput",
        "units": "Mrays/s",
        "scenes": "surface_scene_pool()[0:3] (rm family)",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "seed_baseline": SEED_BASELINE_MRAYS,
        "current": {key: round(value["mrays_per_s"], 4) for key, value in results.items()},
        "speedup_vs_seed": {
            key: round(value["mrays_per_s"] / SEED_BASELINE_MRAYS[key], 2)
            for key, value in results.items()
        },
        "detail": {
            key: {"rays": value["rays"], "seconds": round(value["seconds"], 4)}
            for key, value in results.items()
        },
    }
    output.write_text(json.dumps(record, indent=2) + "\n")
    for key, value in record["current"].items():
        print(f"  {key:24s} {value:8.4f} Mrays/s  ({record['speedup_vs_seed'][key]}x seed)")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
