"""Figure 12: histogram of image compositing time versus MPI tasks and pixels.

Reproduces the two trends of Figure 12: more pixels cost more time, and (over
the studied task range) more tasks make compositing *faster* because each
task's active-pixel share shrinks.
"""

from __future__ import annotations

import numpy as np

from common import print_table
from repro.modeling.study import StudyConfiguration, StudyHarness


def test_fig12_compositing_histogram(benchmark):
    harness = StudyHarness(StudyConfiguration(seed=7))
    records = harness.run_compositing_sweep(
        task_counts=(2, 4, 8, 16, 32), pixel_sizes=(64, 96, 128, 192), algorithm="radix-k"
    )

    rows = []
    by_tasks: dict[int, list[float]] = {}
    by_pixels: dict[int, list[float]] = {}
    for record in records:
        rows.append([record.num_tasks, record.pixels, int(record.average_active_pixels), f"{record.seconds:.5f}s"])
        by_tasks.setdefault(record.num_tasks, []).append(record.seconds)
        by_pixels.setdefault(record.pixels, []).append(record.seconds)
    print_table("Figure 12: compositing time by tasks and pixels", ["tasks", "pixels", "avg active px", "time"], rows)

    benchmark(lambda: harness.run_compositing_sweep(task_counts=(4,), pixel_sizes=(96,)))

    # Dominant trend: more pixels -> slower.
    pixel_keys = sorted(by_pixels)
    assert np.mean(by_pixels[pixel_keys[-1]]) > np.mean(by_pixels[pixel_keys[0]])
