"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (see the
per-experiment index in DESIGN.md).  The helpers here provide:

* formatted table printing (so ``pytest benchmarks/ --benchmark-only -s``
  shows the same rows/series the paper reports),
* the scaled-down data-set pool used by the Chapter II/III substrate tables,
* synthetic per-device throughput estimation via the observed features of a
  real host render plus :class:`repro.machines.costmodel.KernelCostModel`
  (the hardware substitution documented in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry import Camera, isosurface_marching_tets, make_named_dataset, tetrahedralize_uniform_grid
from repro.geometry.triangles import TriangleMesh
from repro.machines import KernelCostModel
from repro.rendering import RayTracer, RayTracerConfig, Scene, Workload
from repro.rendering.result import ObservedFeatures

__all__ = [
    "print_table",
    "DatasetScene",
    "surface_scene_pool",
    "volume_dataset_pool",
    "synthetic_fps",
    "synthetic_rays_per_second",
    "observed_surface_features",
]

#: Image size used by the Chapter II/III substrate benchmarks (the paper uses
#: 1080p / 1024^2; the reproduction scales down but reports full-scale numbers
#: through the cost model).
BENCH_IMAGE_SIZE = 96

#: Larger image size used by the traversal-throughput trajectory benchmarks
#: (`bench_traversal_throughput.py`), within reach since the
#: compacted-frontier traversal engine landed.
BENCH_IMAGE_SIZE_LARGE = 192

#: Full-scale pixel count the synthetic throughput numbers are quoted at.
FULL_SCALE_PIXELS = 1920 * 1080


def print_table(title: str, headers: list[str], rows: list[list[object]]) -> None:
    """Print a fixed-width table (benchmarks run with ``-s`` to show it)."""
    widths = [max(len(str(header)), *(len(str(row[i])) for row in rows)) if rows else len(str(header))
              for i, header in enumerate(headers)]
    line = "  ".join(str(header).ljust(width) for header, width in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(cell).ljust(width) for cell, width in zip(row, widths)))


@dataclass
class DatasetScene:
    """One entry of the study's data-set pool: a named triangle scene."""

    name: str
    scene: Scene
    camera: Camera

    @property
    def num_triangles(self) -> int:
        return self.scene.num_triangles


def _isosurface_scene(dataset: str, dims: int, isovalue: float, seed: int) -> DatasetScene:
    grid = make_named_dataset(dataset, (dims, dims, dims), seed=seed)
    field = next(iter(grid.point_fields))
    surface = isosurface_marching_tets(grid, field, isovalue)
    if surface.num_triangles == 0:
        values = np.asarray(grid.point_fields[field])
        surface = isosurface_marching_tets(grid, field, float(np.median(values)))
    scene = Scene(surface)
    camera = Camera.framing_bounds(surface.bounds, BENCH_IMAGE_SIZE, BENCH_IMAGE_SIZE)
    return DatasetScene(f"{dataset}-{dims}", scene, camera)


_SCENE_POOL: list[DatasetScene] | None = None
_VOLUME_POOL: list[tuple[str, object]] | None = None


def surface_scene_pool() -> list[DatasetScene]:
    """Scaled-down stand-ins for the RM / LT / Seismic / model scenes (cached)."""
    global _SCENE_POOL
    if _SCENE_POOL is None:
        _SCENE_POOL = [
            _isosurface_scene("rm", 25, 0.5, seed=3),
            _isosurface_scene("rm", 19, 0.5, seed=3),
            _isosurface_scene("rm", 15, 0.5, seed=3),
            _isosurface_scene("lead-telluride", 17, 0.4, seed=5),
            _isosurface_scene("seismic", 17, 0.6, seed=7),
            _isosurface_scene("enzo", 15, 0.4, seed=9),
        ]
    return _SCENE_POOL


def volume_dataset_pool() -> list[tuple[str, object]]:
    """Scaled-down Enzo / Nek5000 tetrahedral data sets (cached)."""
    global _VOLUME_POOL
    if _VOLUME_POOL is None:
        _VOLUME_POOL = []
        for name, dims, seed in (("enzo", 13, 1), ("enzo", 17, 1), ("nek5000", 15, 2), ("enzo", 21, 1)):
            grid = make_named_dataset(name, (dims, dims, dims), seed=seed)
            field = next(iter(grid.point_fields))
            tets = tetrahedralize_uniform_grid(grid)
            _VOLUME_POOL.append((f"{name}-{dims}", (grid, tets, field)))
    return _VOLUME_POOL


def observed_surface_features(entry: DatasetScene) -> ObservedFeatures:
    """Observed model inputs from one real (host) shaded render of the scene."""
    tracer = RayTracer(entry.scene, RayTracerConfig(workload=Workload.SHADING))
    result = tracer.render(entry.camera)
    return result.features


def _scaled_features(features: ObservedFeatures, scale_objects: float) -> ObservedFeatures:
    """Scale observed features up to full-scale image/object counts."""
    pixel_scale = FULL_SCALE_PIXELS / float(BENCH_IMAGE_SIZE * BENCH_IMAGE_SIZE)
    return ObservedFeatures(
        objects=int(features.objects * scale_objects),
        active_pixels=int(features.active_pixels * pixel_scale),
        visible_objects=int(features.visible_objects * scale_objects) if features.visible_objects else 0,
        pixels_per_triangle=features.pixels_per_triangle,
        samples_per_ray=features.samples_per_ray,
        cells_spanned=features.cells_spanned,
    )


def synthetic_fps(architecture: str, features: ObservedFeatures, technique: str = "raytrace",
                  object_scale: float = 100.0, include_build: bool = False, seed: int = 1) -> float:
    """Frames per second the named device would achieve at full scale.

    The observed features of a reduced-scale host render are scaled to the
    paper's image/object sizes and pushed through the device's synthetic cost
    model -- this is how the Chapter II/III tables are regenerated without
    the original hardware.
    """
    scaled = _scaled_features(features, object_scale)
    model = KernelCostModel(architecture, seed=seed)
    return model.frames_per_second(technique, scaled, include_build=include_build)


def synthetic_rays_per_second(architecture: str, features: ObservedFeatures,
                              object_scale: float = 100.0, seed: int = 1) -> float:
    """Primary rays per second (WORKLOAD1) for the named device at full scale."""
    scaled = _scaled_features(features, object_scale)
    model = KernelCostModel(architecture, seed=seed)
    phases = model.phases("raytrace", scaled, include_build=False)
    return scaled.active_pixels / max(phases["trace"], 1e-12)
