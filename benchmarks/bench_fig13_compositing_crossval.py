"""Figure 13: cross-validation error of the compositing model.

Reports the held-out error distribution binned by image resolution,
reproducing Figure 13's qualitative message: the compositing model
under-performs at low resolutions and is usable at higher ones.
"""

from __future__ import annotations

import numpy as np

from common import print_table


def test_fig13_compositing_crossval_error(benchmark, study_corpus):
    summary = study_corpus.cross_validate_compositing(k=3, seed=29)
    pixels = np.array([record.pixels for record in study_corpus.compositing_records])
    errors = np.abs(summary.errors) * 100.0

    # Bin by resolution (the CV summary preserves record order through shuffling,
    # so re-derive the binning from the prediction magnitudes instead).
    order = np.argsort(summary.predictions)
    thirds = np.array_split(order, 3)
    rows = []
    for label, indices in zip(("small predictions", "medium predictions", "large predictions"), thirds):
        rows.append([label, f"{np.mean(errors[indices]):.1f}%", f"{np.max(errors[indices]):.1f}%"])
    print_table("Figure 13: compositing cross-validation error by predicted-time band", ["band", "mean |err|", "max |err|"], rows)
    print(f"resolutions in corpus: {sorted(set(pixels.tolist()))}")

    benchmark(lambda: study_corpus.cross_validate_compositing(k=3, seed=29))
    assert len(summary.errors) == len(study_corpus.compositing_records)
