"""Figure 15: ray tracing versus rasterization heat map.

Predicts the cost of 100 renderings for both techniques over a grid of image
sizes and data sizes (32 tasks, GPU architecture) and prints the ratio matrix.
Values above one mean ray tracing is faster.  The paper's headline shape: ray
tracing wins decisively at small images with large geometry; rasterization
wins modestly at large images.
"""

from __future__ import annotations

import numpy as np

from common import print_table
from repro.modeling.feasibility import raytracing_vs_rasterization

IMAGE_SIZES = np.array([384, 768, 1152, 1920, 2688, 4096])
DATA_SIZES = np.array([100, 200, 300, 400, 500])


def test_fig15_raytracing_vs_rasterization(benchmark, fitted_models):
    heat = raytracing_vs_rasterization(
        fitted_models[("gpu1-k40m", "raytrace")],
        fitted_models[("gpu1-k40m", "raster")],
        "gpu1-k40m",
        num_tasks=32,
        num_renderings=100,
        image_sizes=IMAGE_SIZES,
        data_sizes=DATA_SIZES,
    )
    ratio = heat["ratio"]
    rows = [
        [f"{cells}^3"] + [f"{ratio[row, column]:.2f}" for column in range(len(IMAGE_SIZES))]
        for row, cells in enumerate(DATA_SIZES)
    ]
    print_table(
        "Figure 15: rasterization time / ray-tracing time (100 renderings, 32 tasks, GPU)",
        ["data size"] + [f"{size}^2" for size in IMAGE_SIZES],
        rows,
    )

    benchmark(
        lambda: raytracing_vs_rasterization(
            fitted_models[("gpu1-k40m", "raytrace")],
            fitted_models[("gpu1-k40m", "raster")],
            "gpu1-k40m",
            image_sizes=IMAGE_SIZES[:2],
            data_sizes=DATA_SIZES[:2],
        )
    )
    # Headline shape: ray tracing wins at small image + large data,
    # rasterization wins at large image + small data.
    assert ratio[-1, 0] > 1.0
    assert ratio[0, -1] < 1.0
    # Monotone trends along both axes.
    assert np.all(np.diff(ratio, axis=0).mean(axis=1) >= -0.05)
    assert np.all(np.diff(ratio, axis=1).mean(axis=0) <= 0.05)
