"""Table 1: ray tracing frames per second with shading (WORKLOAD2).

Rows are data sets, columns are devices.  The host render supplies observed
model inputs; per-device FPS at full scale comes from the synthetic cost
model (see DESIGN.md for the hardware substitution).
"""

from __future__ import annotations

from common import observed_surface_features, print_table, surface_scene_pool, synthetic_fps

DEVICES = ["gpu-titan-black", "gpu-k40-maverick", "gpu-750ti", "gpu-620m", "cpu-i7-4770k", "cpu-xeon-e5-2680"]


def test_table01_raytracing_shading_fps(benchmark):
    pool = surface_scene_pool()
    features = {entry.name: observed_surface_features(entry) for entry in pool}

    rows = []
    for entry in pool:
        fps = [f"{synthetic_fps(device, features[entry.name], 'raytrace'):.1f}" for device in DEVICES]
        rows.append([entry.name, entry.num_triangles] + fps)
    print_table("Table 1: ray tracing FPS with shading (WORKLOAD2)", ["dataset", "triangles"] + DEVICES, rows)

    # Benchmark the host-measured shaded render of the largest scene.
    from repro.rendering import RayTracer, RayTracerConfig, Workload

    entry = pool[0]
    tracer = RayTracer(entry.scene, RayTracerConfig(workload=Workload.SHADING))
    tracer.build_acceleration_structure()
    benchmark(lambda: tracer.render(entry.camera))

    # Sanity: GPUs outrun CPUs, and FPS drops as triangle count grows (per device).
    big, small = features[pool[0].name], features[pool[2].name]
    assert synthetic_fps("gpu-titan-black", big) > synthetic_fps("cpu-i7-4770k", big)
    assert synthetic_fps("gpu-titan-black", small) >= synthetic_fps("gpu-titan-black", big) * 0.8
