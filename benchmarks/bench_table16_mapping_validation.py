"""Table 16: validating the mapping from rendering configurations to model inputs.

For a handful of host experiments, compares the mapped (a-priori) model inputs
against the observed inputs and the resulting predicted times against the
measured times -- the three groupings of the paper's Table 16.
"""

from __future__ import annotations

from common import print_table
from repro.modeling import RenderingConfiguration, map_configuration_to_features
from repro.modeling.models import RayTracingModel


def test_table16_mapping_validation(benchmark, study_corpus, fitted_models):
    rows = []
    ratios = []
    picked = []
    for technique in ("volume", "raytrace", "raster"):
        picked.extend(study_corpus.select("cpu-host", technique)[:2])
    for index, record in enumerate(picked):
        model = fitted_models[("cpu-host", record.technique)]
        config = RenderingConfiguration(
            technique=record.technique,
            architecture="cpu-host",
            num_tasks=record.num_tasks,
            cells_per_task=record.cells_per_task,
            image_width=record.image_width,
            image_height=record.image_height,
            samples_in_depth=200,
        )
        mapped = map_configuration_to_features(config)
        if isinstance(model, RayTracingModel):
            predicted_mapping = model.predict(mapped)
            predicted_observed = model.predict(record.features)
        else:
            predicted_mapping = model.predict(mapped)
            predicted_observed = model.predict(record.features)
        actual = record.total_seconds
        ratios.append(predicted_mapping / max(actual, 1e-12))
        rows.append(
            [
                index,
                record.technique,
                f"{record.cells_per_task}^3",
                f"{record.image_width}^2",
                record.num_tasks,
                f"O {mapped.objects} / {record.features.objects}",
                f"AP {mapped.active_pixels} / {record.features.active_pixels}",
                f"{predicted_mapping:.3f}s",
                f"{predicted_observed:.3f}s",
                f"{actual:.3f}s",
            ]
        )
    print_table(
        "Table 16: mapping validation (predicted-from-mapping vs predicted-from-observed vs actual)",
        ["test", "technique", "mesh", "image", "tasks", "objects (map/obs)", "active px (map/obs)", "mapping", "experiment", "actual"],
        rows,
    )

    benchmark(lambda: map_configuration_to_features(
        RenderingConfiguration("volume", "cpu-host", 8, 160, 1024, 1024)
    ))
    # Mapping-based predictions stay within an order of magnitude of reality
    # and skew conservative more often than not.
    assert all(0.1 < ratio < 20.0 for ratio in ratios)
