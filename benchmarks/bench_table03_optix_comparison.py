"""Table 3: EAVL-style DPP ray tracer versus OptiX Prime (Mrays/s on GPUs).

The OptiX role is played by the specialised SAH-BVH ray tracer; the observed
host-side throughput advantage of the specialised intersector is applied on
top of the per-GPU synthetic throughput of the DPP tracer, reproducing the
2-4x gap the paper reports on Kepler GPUs.
"""

from __future__ import annotations

from common import observed_surface_features, print_table, surface_scene_pool, synthetic_rays_per_second
from repro.rendering import RayTracer, RayTracerConfig, Workload
from repro.rendering.baselines import SpecializedRayTracer

GPUS = ["gpu-titan-black", "gpu-k40-maverick", "gpu-750ti", "gpu-620m"]


def test_table03_dpp_vs_optix(benchmark):
    pool = surface_scene_pool()[:4]
    rows = []
    gaps = []
    for entry in pool:
        dpp = RayTracer(entry.scene, RayTracerConfig(workload=Workload.INTERSECTION_ONLY))
        dpp_result = dpp.render(entry.camera)
        dpp_rate = (entry.camera.width * entry.camera.height) / max(dpp_result.phase_seconds["trace"], 1e-12)
        specialized = SpecializedRayTracer(entry.scene)
        rays, seconds = specialized.trace(entry.camera)
        specialized_rate = rays / max(seconds, 1e-12)
        gap = max(specialized_rate / dpp_rate, 1.0)
        gaps.append(gap)
        row = [entry.name]
        for gpu in GPUS:
            base = synthetic_rays_per_second(gpu, dpp_result.features) / 1e6
            row.extend([f"{base:.1f}", f"{base * gap:.1f}"])
        rows.append(row)
    headers = ["dataset"] + [f"{gpu} {kind}" for gpu in GPUS for kind in ("EAVL", "OptiX")]
    print_table("Table 3: Mrays/s, DPP ray tracer vs OptiX-proxy (GPUs)", headers, rows)

    entry = pool[0]
    specialized = SpecializedRayTracer(entry.scene)
    specialized.build()
    benchmark(lambda: specialized.trace(entry.camera))

    # The specialised intersector should be at least as fast as the DPP one.
    assert min(gaps) >= 1.0
