"""Benchmark harness package.

Making this a package lets the perf-trajectory emitter run as a module:
``PYTHONPATH=src python -m benchmarks.emit_bench``.  The individual
``bench_*.py`` files remain runnable through pytest (they import helpers from
``common`` via the ``conftest.py`` path hook).
"""
