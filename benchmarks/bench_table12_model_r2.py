"""Table 12: R-squared values of the six single-node performance models."""

from __future__ import annotations

from common import print_table


def test_table12_model_r_squared(benchmark, study_corpus, fitted_models):
    rows = []
    for technique in ("raytrace", "volume", "raster"):
        row = [technique]
        for architecture in ("cpu-host", "gpu1-k40m"):
            row.append(f"{fitted_models[(architecture, technique)].r_squared:.4f}")
        rows.append(row)
    print_table("Table 12: model R^2 by technique and architecture", ["technique", "CPU (host)", "GPU1 (synthetic)"], rows)

    benchmark(lambda: study_corpus.fit_model("gpu1-k40m", "volume"))
    # Most models capture the bulk of the variance (paper: 5 of 6 above 0.94).
    values = [fitted_models[key].r_squared for key in fitted_models]
    assert sum(v > 0.9 for v in values) >= 4
    assert all(v > 0.5 for v in values)
