"""Smoke perf-regression guard against the checked-in BENCH records.

Re-measures a CI-sized subset of the render-throughput trajectory (the 96^2
workloads, the structured volume caster, and 64-rank compositing, from
``BENCH_render.json``) plus the prediction-serving tier's smoke load (from
``BENCH_serving.json``) and fails when any number regresses by more than the
tolerance (default 30%) against the records' ``current`` sections:

    python -m benchmarks.perf_guard [--tolerance 0.30] [--against BENCH_render.json]
                                    [--against-serving BENCH_serving.json]

Throughput sections (``raytracer``, ``volume``, Mrays/s) regress *down*;
the ``compositing`` section (seconds per composite) regresses *up*.  The
``compositing_scale`` and ``serving`` sections mix directions per key -- predictions/sec falls, p99
latency rises -- so :data:`HIGHER_IS_BETTER` values are either a bool for a
whole section or a per-key dict.  The comparison logic
(:func:`compare_sections`) is pure and unit-tested; only ``measure_smoke``
touches wall clocks.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

_BENCH_DIR = Path(__file__).resolve().parent
if str(_BENCH_DIR) not in sys.path:  # allow `python -m benchmarks.perf_guard`
    sys.path.insert(0, str(_BENCH_DIR))

__all__ = ["SMOKE_KEYS", "HIGHER_IS_BETTER", "compare_sections", "measure_smoke", "main"]

#: The CI-sized measurement subset: one image size / rank count per section.
SMOKE_KEYS = {
    "raytracer": ("intersection_only_96", "shading_96", "full_96"),
    "volume": ("structured_96", "unstructured_96"),
    "compositing": ("direct-send_64", "binary-swap_64", "radix-k_64"),
    "compositing_scale": (
        "binary-swap_1024_ranks_per_s",
        "radix-k_1024_ranks_per_s",
        "binary-swap_4096_ranks_per_s",
        "binary-swap_1024_peak_memory_bytes",
    ),
    "serving": ("smoke_predictions_per_s", "smoke_p99_ms"),
    # Only the vectorized device is guarded: serial throughput is a
    # reference measurement, and optional back-ends (jax) are absent from
    # most CI runners.
    "device_comparison": ("vectorized_compaction_mops", "vectorized_segmented_argmin_mops"),
}

#: Regression direction: a bool for a whole section, or a per-key dict when a
#: section mixes directions (serving throughput falls, latency rises).
HIGHER_IS_BETTER = {
    "raytracer": True,
    "volume": True,
    "compositing": False,
    "compositing_scale": {
        "binary-swap_1024_ranks_per_s": True,
        "radix-k_1024_ranks_per_s": True,
        "binary-swap_4096_ranks_per_s": True,
        "binary-swap_1024_peak_memory_bytes": False,
    },
    "serving": {"smoke_predictions_per_s": True, "smoke_p99_ms": False},
    "device_comparison": True,
}


def compare_sections(
    baseline: dict, measured: dict[str, dict[str, float]], tolerance: float
) -> list[dict]:
    """Compare measured smoke numbers against a BENCH record; pure function.

    ``baseline`` is the parsed ``BENCH_render.json``; ``measured`` maps
    section name to ``{key: value}``.  Returns one row per measured key with
    ``regression`` (fractional, positive = worse) and ``regressed`` (True when
    the regression exceeds ``tolerance``).  Keys absent from the baseline are
    reported with ``regressed=False`` and a note -- a freshly added benchmark
    must not fail the guard before the record is regenerated.
    """
    rows = []
    for section, values in measured.items():
        direction = HIGHER_IS_BETTER[section]
        current = baseline.get(section, {}).get("current", {})
        for key, value in values.items():
            higher_better = direction if isinstance(direction, bool) else direction[key]
            if key not in current:
                rows.append(
                    {
                        "section": section,
                        "key": key,
                        "baseline": None,
                        "measured": value,
                        "regression": 0.0,
                        "regressed": False,
                        "note": "no baseline entry",
                    }
                )
                continue
            base = float(current[key])
            if higher_better:
                regression = (base - value) / base
            else:
                regression = (value - base) / base
            rows.append(
                {
                    "section": section,
                    "key": key,
                    "baseline": base,
                    "measured": value,
                    "regression": regression,
                    "regressed": regression > tolerance,
                    "note": "",
                }
            )
    return rows


def measure_smoke() -> dict[str, dict[str, float]]:
    """Measure the smoke subset (the only wall-clock-touching function here)."""
    import bench_compositing_throughput as compositing_bench
    import bench_traversal_throughput as raytracer_bench
    import bench_volume_throughput as volume_bench
    from common import surface_scene_pool
    from repro.rendering import Workload

    import bench_serving_throughput as serving_bench

    pool = surface_scene_pool()[raytracer_bench.POOL_SLICE]
    workloads = {
        "intersection_only_96": Workload.INTERSECTION_ONLY,
        "shading_96": Workload.SHADING,
        "full_96": Workload.FULL,
    }
    measured: dict[str, dict[str, float]] = {"raytracer": {}, "volume": {}, "compositing": {}}
    for key in SMOKE_KEYS["raytracer"]:
        measured["raytracer"][key] = raytracer_bench.measure_workload(workloads[key], 96, pool)[
            "mrays_per_s"
        ]
    for key in SMOKE_KEYS["volume"]:
        kind = key.rsplit("_", 1)[0]
        measured["volume"][key] = volume_bench.measure_family(kind, 96)["mrays_per_s"]
    for key in SMOKE_KEYS["compositing"]:
        algorithm, tasks = key.rsplit("_", 1)
        measured["compositing"][key] = compositing_bench.measure_algorithm(
            algorithm, int(tasks), 256
        )["seconds"]
    import bench_compositing_scale as scale_bench

    measured["compositing_scale"] = dict(scale_bench.measure_scale_section())
    measured["serving"] = dict(serving_bench.measure_smoke_serving())
    import bench_table05_backend_comparison as device_bench

    vectorized = device_bench.measure_device("vectorized")
    measured["device_comparison"] = {
        f"vectorized_{metric}": value for metric, value in vectorized.items()
    }
    return measured


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m benchmarks.perf_guard",
        description="Fail when smoke benchmark numbers regress against BENCH_render.json.",
    )
    parser.add_argument(
        "--against", default=str(_BENCH_DIR.parent / "BENCH_render.json"), help="baseline record"
    )
    parser.add_argument(
        "--against-serving",
        default=str(_BENCH_DIR.parent / "BENCH_serving.json"),
        help="serving-tier baseline record",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.30, help="allowed fractional regression (default 0.30)"
    )
    args = parser.parse_args(argv)

    with open(args.against, encoding="utf-8") as handle:
        baseline = json.load(handle)
    serving_record = Path(args.against_serving)
    if serving_record.exists():
        with open(serving_record, encoding="utf-8") as handle:
            baseline["serving"] = json.load(handle).get("serving", {})
    print(f"measuring smoke subset ({sum(len(keys) for keys in SMOKE_KEYS.values())} keys) ...")
    measured = measure_smoke()
    rows = compare_sections(baseline, measured, args.tolerance)

    failures = 0
    for row in rows:
        base = "-" if row["baseline"] is None else f"{row['baseline']:.4f}"
        status = "FAIL" if row["regressed"] else "ok"
        if row["regressed"]:
            failures += 1
        print(
            f"  {status:4s} {row['section']:12s} {row['key']:22s} "
            f"baseline={base:>10s} measured={row['measured']:.4f} "
            f"regression={row['regression'] * 100.0:+.1f}% {row['note']}"
        )
    if failures:
        print(
            f"perf guard: {failures} key(s) regressed more than "
            f"{args.tolerance * 100.0:.0f}% vs {args.against}",
            file=sys.stderr,
        )
        return 1
    print(f"perf guard ok (tolerance {args.tolerance * 100.0:.0f}%)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
