"""Table 11: simulation burden from in situ visualization.

Runs each proxy app for a few cycles with a Strawman rendering action every
cycle and reports the average visualization and simulation seconds per cycle,
reproducing Table 11's structure (different renderers per code, volume
rendering being the most expensive).
"""

from __future__ import annotations

from common import print_table
from repro.insitu import ConduitNode, Strawman, StrawmanOptions
from repro.simulations import create_proxy

CONFIGS = [
    ("cloverleaf", 12, "raytrace"),
    ("kripke", 12, "raster"),
    ("lulesh", 10, "volume"),
]
CYCLES = 3


def _actions(variable: str, renderer: str) -> ConduitNode:
    actions = ConduitNode()
    add = actions.append()
    add["action"] = "AddPlot"
    add["var"] = variable
    add["renderer"] = renderer
    draw = actions.append()
    draw["action"] = "DrawPlots"
    return actions


def test_table11_simulation_burden(benchmark, tmp_path):
    rows = []
    burdens = {}
    for name, cells, renderer in CONFIGS:
        proxy = create_proxy(name, cells, seed=5)
        strawman = Strawman()
        strawman.open(StrawmanOptions(num_ranks=1, output_directory=str(tmp_path), default_width=64, default_height=64))
        sim_seconds = 0.0
        vis_seconds = 0.0
        for _ in range(CYCLES):
            sim_seconds += proxy.advance(1)
            strawman.publish(proxy.describe())
            record = strawman.execute(_actions(proxy.primary_field, renderer))
            vis_seconds += record.total_seconds
        strawman.close()
        burdens[name] = (vis_seconds / CYCLES, sim_seconds / CYCLES)
        rows.append([f"{name} ({renderer})", f"{vis_seconds / CYCLES:.3f}s", f"{sim_seconds / CYCLES:.3f}s"])
    print_table("Table 11: average seconds per cycle, visualization vs simulation", ["code (renderer)", "vis", "sim"], rows)

    proxy = create_proxy("kripke", 12, seed=5)
    benchmark(lambda: proxy.advance(1))
    # Volume rendering imposes the largest burden of the three, as in Table 11.
    assert burdens["lulesh"][0] >= max(burdens["cloverleaf"][0], burdens["kripke"][0]) * 0.5
