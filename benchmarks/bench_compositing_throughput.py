"""Sort-last compositing throughput: run-length engine vs the dense reference.

Companion to ``bench_traversal_throughput.py`` / ``bench_volume_throughput.py``
for the compositing side of the perf trajectory.  It drives all three
exchange algorithms (direct-send, binary-swap, radix-k) over synthetic
sort-last sub-images at 64-256 simulated ranks and 256^2 pixels in ``"over"``
mode (the Eq. 5.5 corpus configuration), against the **dense per-run
reference drivers** kept in-tree as ``composite_reference``.  Because the
baseline is the actual pre-refactor code measured on the same machine and
images, the reported speedups are load-independent.

Per-rank fill follows the Section 5.8 mapping (``0.55 / P^(1/3)`` of the
pixels, a contiguous screen block per rank), so the run-length engine's
advantage reflects exactly the sparsity a weak-scaled sort-last render
produces.

Run explicitly (the ``perf`` marker keeps it out of tier-1):

    PYTHONPATH=src python -m pytest benchmarks/bench_compositing_throughput.py -m perf -s

emit the JSON trajectory record (raytracer + volume + compositing sections):

    PYTHONPATH=src python -m benchmarks.emit_bench

or run the CI smoke check (4 ranks at 64^2, differential only):

    PYTHONPATH=src python -m benchmarks.bench_compositing_throughput --smoke
"""

from __future__ import annotations

import sys
import time

import numpy as np
import pytest

from repro.compositing import Compositor
from repro.rendering.framebuffer import Framebuffer

#: Image size of the throughput measurements (the acceptance configuration).
COMPOSITING_IMAGE_SIZE = 256

#: Simulated rank counts of the trajectory record.
COMPOSITING_RANK_COUNTS = (64, 128, 256)

#: Rank count at which the reference engine is also measured (it is too slow
#: to time at every scale) and the speedup floor is asserted.
REFERENCE_RANK_COUNT = 64

#: Acceptance floor: the run-length engine must be at least this much faster
#: than ``composite_reference`` aggregated over the three algorithms at
#: 64 ranks / 256^2.
SPEEDUP_FLOOR_64 = 3.0

ALGORITHMS = ("direct-send", "binary-swap", "radix-k")

#: Fraction of the image each rank's block covers at one task (Section 5.8).
CAMERA_FILL_FRACTION = 0.55


def synthetic_sub_images(tasks: int, size: int, seed: int = 2016) -> list[Framebuffer]:
    """Per-rank sort-last framebuffers with mapping-consistent active blocks."""
    rng = np.random.default_rng(seed)
    fill = CAMERA_FILL_FRACTION / tasks ** (1.0 / 3.0)
    active = max(int(fill * size * size), 1)
    side = max(int(np.sqrt(active)), 1)
    framebuffers = []
    for _ in range(tasks):
        framebuffer = Framebuffer(size, size)
        x0 = int(rng.integers(0, max(size - side, 1)))
        y0 = int(rng.integers(0, max(size - side, 1)))
        block = (slice(y0, min(y0 + side, size)), slice(x0, min(x0 + side, size)))
        shape = framebuffer.rgba[block][..., 0].shape
        framebuffer.rgba[block] = np.concatenate(
            [rng.random(shape + (3,)), np.full(shape + (1,), 0.7)], axis=-1
        )
        framebuffer.depth[block] = rng.random(shape) * 10.0
        framebuffers.append(framebuffer)
    return framebuffers


def _composite(algorithm: str, framebuffers: list[Framebuffer], engine: str):
    visibility = list(np.arange(len(framebuffers), dtype=np.float64))
    return Compositor(algorithm).composite(
        framebuffers, mode="over", visibility_order=visibility, engine=engine
    )


def measure_algorithm(algorithm: str, tasks: int, size: int, repeats: int = 3) -> dict:
    """Best-of-``repeats`` wall clock for the run-length engine (plus traffic)."""
    framebuffers = synthetic_sub_images(tasks, size)
    result = _composite(algorithm, framebuffers, "runlength")  # warm
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        result = _composite(algorithm, framebuffers, "runlength")
        best = min(best, time.perf_counter() - start)
    return {
        "seconds": best,
        "pixels": size * size,
        "tasks": tasks,
        "mpixels_per_s": size * size / best / 1e6,
        "bytes_exchanged": result.bytes_exchanged,
        "messages": result.messages,
        "merge_operations": result.merge_operations,
        "average_active_pixels": result.average_active_pixels,
    }


def measure_reference_speedups(size: int = COMPOSITING_IMAGE_SIZE, repeats: int = 5) -> dict:
    """Best-of-``repeats`` fast vs reference at the floor scale.

    Each engine is timed in its own block (warm run + gc fence first) so the
    fast path's measurements do not inherit allocator churn from the
    reference's ~130 MB of dense sub-image copies per composite.
    """
    import gc

    framebuffers = synthetic_sub_images(REFERENCE_RANK_COUNT, size)
    record: dict = {"per_algorithm": {}}
    total_fast = total_reference = 0.0
    for algorithm in ALGORITHMS:
        fast = _composite(algorithm, framebuffers, "runlength")
        gc.collect()
        fast_times = []
        for _ in range(repeats):
            start = time.perf_counter()
            fast = _composite(algorithm, framebuffers, "runlength")
            fast_times.append(time.perf_counter() - start)
        reference = _composite(algorithm, framebuffers, "reference")
        gc.collect()
        reference_times = []
        for _ in range(repeats):
            start = time.perf_counter()
            reference = _composite(algorithm, framebuffers, "reference")
            reference_times.append(time.perf_counter() - start)
        assert np.allclose(
            fast.framebuffer.rgba, reference.framebuffer.rgba, atol=1e-10, rtol=0.0
        ), f"{algorithm}: run-length engine diverged from composite_reference"
        best_fast, best_reference = min(fast_times), min(reference_times)
        total_fast += best_fast
        total_reference += best_reference
        record["per_algorithm"][algorithm] = {
            "fast_seconds": best_fast,
            "reference_seconds": best_reference,
            "speedup": best_reference / best_fast,
        }
    record["aggregate_speedup"] = total_reference / total_fast
    record["fast_seconds"] = total_fast
    record["reference_seconds"] = total_reference
    return record


def measure_all() -> dict:
    """The compositing trajectory record: all algorithms at 64-256 ranks."""
    results = {}
    for tasks in COMPOSITING_RANK_COUNTS:
        for algorithm in ALGORITHMS:
            results[f"{algorithm}_{tasks}"] = measure_algorithm(
                algorithm, tasks, COMPOSITING_IMAGE_SIZE
            )
    return results


def verify_compositing_differential(tasks: int = 12, size: int = 48) -> None:
    """Run-length engine must match the dense reference in both modes."""
    rng = np.random.default_rng(7)
    for algorithm in ALGORITHMS:
        framebuffers = synthetic_sub_images(tasks, size, seed=11)
        fast = _composite(algorithm, framebuffers, "runlength")
        slow = _composite(algorithm, framebuffers, "reference")
        assert np.allclose(fast.framebuffer.rgba, slow.framebuffer.rgba, atol=1e-10, rtol=0.0)
        # Depth (z-buffer) mode on scattered-coverage images.
        depth_buffers = []
        for rank in range(tasks):
            framebuffer = Framebuffer(size, size)
            mask = rng.random((size, size)) < 0.4
            count = int(mask.sum())
            framebuffer.rgba[mask] = np.column_stack([rng.random((count, 3)), np.ones(count)])
            framebuffer.depth[mask] = rng.random(count) * 5.0
            depth_buffers.append(framebuffer)
        fast = Compositor(algorithm).composite(depth_buffers, mode="depth")
        slow = Compositor(algorithm).composite(depth_buffers, mode="depth", engine="reference")
        assert np.allclose(fast.framebuffer.rgba, slow.framebuffer.rgba, atol=1e-10, rtol=0.0)
        assert np.array_equal(fast.framebuffer.depth, slow.framebuffer.depth)


def smoke(tasks: int = 4, size: int = 64) -> None:
    """CI smoke: exercise the fast path and differential contract cheaply."""
    verify_compositing_differential(tasks=tasks, size=size)
    for algorithm in ALGORITHMS:
        result = _composite(algorithm, synthetic_sub_images(tasks, size), "runlength")
        assert result.bytes_exchanged > 0 and result.messages > 0
    print(f"compositing smoke ok ({tasks} ranks at {size}^2, all algorithms within 1e-10)")


@pytest.mark.perf
def test_compositing_throughput():
    from common import print_table

    verify_compositing_differential()
    speedups = measure_reference_speedups()
    results = measure_all()
    rows = [
        [
            key,
            record["tasks"],
            f"{record['seconds']:.3f}",
            f"{record['mpixels_per_s']:.2f}",
            f"{record['bytes_exchanged'] / 1e6:.1f}",
            record["messages"],
        ]
        for key, record in results.items()
    ]
    print_table(
        "Compositing throughput (run-length engine, over mode, 256^2)",
        ["configuration", "ranks", "seconds", "Mpix/s", "MB exchanged", "messages"],
        rows,
    )
    speedup_rows = [
        [algorithm, f"{entry['fast_seconds']:.3f}", f"{entry['reference_seconds']:.3f}",
         f"{entry['speedup']:.2f}x"]
        for algorithm, entry in speedups["per_algorithm"].items()
    ]
    speedup_rows.append(
        ["aggregate", f"{speedups['fast_seconds']:.3f}", f"{speedups['reference_seconds']:.3f}",
         f"{speedups['aggregate_speedup']:.2f}x"]
    )
    print_table(
        f"Run-length engine vs composite_reference ({REFERENCE_RANK_COUNT} ranks, 256^2)",
        ["algorithm", "fast s", "reference s", "speedup"],
        speedup_rows,
    )
    assert speedups["aggregate_speedup"] >= SPEEDUP_FLOOR_64


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "--smoke":
        smoke()
        return 0
    print("differential check ...")
    verify_compositing_differential()
    print("measuring speedups vs composite_reference ...")
    speedups = measure_reference_speedups()
    for algorithm, entry in speedups["per_algorithm"].items():
        print(f"  {algorithm:12s} {entry['speedup']:.2f}x")
    print(f"  aggregate    {speedups['aggregate_speedup']:.2f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
