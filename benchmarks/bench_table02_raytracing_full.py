"""Table 2: ray tracing frames per second with all features (WORKLOAD3).

The full workload adds ambient occlusion, shadows, anti-aliasing, and stream
compaction; the paper reports roughly a 4-6x slowdown relative to plain
shading.  The benchmark measures that ratio on the host renderer and reports
per-device full-scale FPS through the cost model scaled by the same ratio.
"""

from __future__ import annotations

from common import observed_surface_features, print_table, surface_scene_pool, synthetic_fps
from repro.rendering import RayTracer, RayTracerConfig, Workload

DEVICES = ["cpu-xeon-e5-2680", "gpu-titan-black"]


def test_table02_raytracing_full_fps(benchmark):
    pool = surface_scene_pool()[:4]
    rows = []
    ratios = []
    for entry in pool:
        shaded = RayTracer(entry.scene, RayTracerConfig(workload=Workload.SHADING)).render(entry.camera)
        full = RayTracer(entry.scene, RayTracerConfig(workload=Workload.FULL)).render(entry.camera)
        ratio = full.seconds_excluding("bvh_build") / max(shaded.seconds_excluding("bvh_build"), 1e-12)
        ratios.append(ratio)
        fps = [f"{synthetic_fps(device, shaded.features, 'raytrace') / ratio:.1f}" for device in DEVICES]
        rows.append([entry.name, entry.num_triangles, f"{ratio:.2f}x"] + fps)
    print_table(
        "Table 2: ray tracing FPS with the full workload (WORKLOAD3)",
        ["dataset", "triangles", "full/shaded cost"] + DEVICES,
        rows,
    )

    entry = pool[-1]
    tracer = RayTracer(entry.scene, RayTracerConfig(workload=Workload.FULL, ao_samples=2))
    tracer.build_acceleration_structure()
    benchmark(lambda: tracer.render(entry.camera))

    # The full workload must cost more than plain shading (paper: ~4-6x).
    assert min(ratios) > 1.5
