"""Table 10: lines of code needed to instrument the three proxy apps.

Counts the lines of the three integration steps (data description, action
description, Strawman API calls) in the shipped in situ example, per proxy
app, mirroring how the paper counts integration code.
"""

from __future__ import annotations

from pathlib import Path

from common import print_table
from repro.insitu import ConduitNode, Strawman, StrawmanOptions
from repro.insitu.blueprint import mesh_to_node
from repro.simulations import create_proxy

EXAMPLE = Path(__file__).resolve().parent.parent / "examples" / "insitu_proxy_simulation.py"


def _count_section(text: str, marker: str) -> int:
    """Count non-blank code lines between ``# <marker>`` and the next section marker."""
    lines = text.splitlines()
    counting = False
    count = 0
    for line in lines:
        stripped = line.strip()
        if stripped.startswith(f"# [{marker}]"):
            counting = True
            continue
        if counting and stripped.startswith("# ["):
            break
        if counting and stripped and not stripped.startswith("#"):
            count += 1
    return count


def test_table10_integration_lines_of_code(benchmark):
    text = EXAMPLE.read_text()
    rows = []
    for proxy_name in ("lulesh", "kripke", "cloverleaf"):
        data_loc = _count_section(text, f"{proxy_name}-data")
        rows.append(
            [
                proxy_name,
                data_loc if data_loc else _count_section(text, "data-description"),
                _count_section(text, "action-description"),
                _count_section(text, "strawman-api"),
            ]
        )
    print_table(
        "Table 10: lines of code to instrument the proxy apps",
        ["proxy app", "data description", "action description", "Strawman API calls"],
        rows,
    )

    # Benchmark the cheapest integration path: describing a mesh as a node tree.
    proxy = create_proxy("kripke", 8, seed=1)
    proxy.advance(1)
    benchmark(lambda: mesh_to_node(proxy.mesh()))

    # All three integrations stay small (tens of lines), as in the paper.
    for row in rows:
        assert 0 < row[2] <= 30 and 0 < row[3] <= 15
