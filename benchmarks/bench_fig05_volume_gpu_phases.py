"""Figure 5: GPU volume rendering run time by phase versus pass count.

The GPU (K40m-class) times are synthesized from the observed features of the
corresponding host render, split across phases in proportion to the measured
phase structure -- reproducing the qualitative Figure 5 series (GPU times are
roughly an order of magnitude below the CPU times of Figure 4, with
compositing relatively more expensive).
"""

from __future__ import annotations

from common import print_table, volume_dataset_pool
from repro.geometry import Camera
from repro.machines import KernelCostModel
from repro.rendering import UnstructuredVolumeConfig, UnstructuredVolumeRenderer

PASS_COUNTS = [2, 4, 8]
PHASES = ["pass_selection", "screen_space", "sampling", "compositing"]


def test_fig05_volume_gpu_phase_times(benchmark):
    gpu = KernelCostModel("gpu1-k40m", seed=3)
    rows = []
    cpu_totals, gpu_totals = [], []
    for name, (grid, tets, field) in volume_dataset_pool()[:2]:
        for view, zoom in (("far", 0.8), ("close", 1.4)):
            camera = Camera.framing_bounds(grid.bounds, 64, 64, zoom=zoom)
            for passes in PASS_COUNTS:
                result = UnstructuredVolumeRenderer(
                    tets, field, config=UnstructuredVolumeConfig(samples_in_depth=64, num_passes=passes)
                ).render(camera)
                gpu_total = gpu.total("volume_unstructured", result.features)
                cpu_totals.append(result.total_seconds)
                gpu_totals.append(gpu_total)
                shares = {p: result.phase_seconds[p] / max(result.total_seconds, 1e-12) for p in PHASES}
                rows.append(
                    [f"{name}/{view}", passes]
                    + [f"{gpu_total * shares[p]:.5f}" for p in PHASES]
                    + [f"{gpu_total:.5f}"]
                )
    print_table("Figure 5: GPU volume rendering time by phase vs passes (synthetic)", ["data/view", "passes"] + PHASES + ["total"], rows)

    benchmark(lambda: gpu.total("volume_unstructured", result.features))
    # GPU totals sit well below the CPU totals for the same configurations.
    assert sum(gpu_totals) < 0.5 * sum(cpu_totals)
