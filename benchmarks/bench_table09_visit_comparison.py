"""Table 9: DPP volume renderer versus the VisIt-style sampling renderer (per-phase times).

Both renderers run in "serial" conditions on the host; the table reports the
screen-space (SS), sampling (S), compositing (C), and total (TOT) columns of
the paper's Table 9 for each data set and view.
"""

from __future__ import annotations

from common import print_table, volume_dataset_pool
from repro.geometry import Camera
from repro.rendering import UnstructuredVolumeConfig, UnstructuredVolumeRenderer
from repro.rendering.baselines import VisItStyleSampler


def test_table09_dpp_vs_visit(benchmark):
    rows = []
    dpp_wins_large = None
    for index, (name, (grid, tets, field)) in enumerate(volume_dataset_pool()):
        for view, zoom in (("far", 0.8), ("close", 1.4)):
            camera = Camera.framing_bounds(grid.bounds, 64, 64, zoom=zoom)
            dpp = UnstructuredVolumeRenderer(
                tets, field, config=UnstructuredVolumeConfig(samples_in_depth=60, num_passes=1)
            ).render(camera)
            visit = VisItStyleSampler(tets, field, samples_in_depth=60).render(camera)
            for label, result in (("VisIt", visit), ("DPP-VR", dpp)):
                rows.append(
                    [
                        f"{name}/{view}",
                        label,
                        f"{result.phase_seconds.get('screen_space', 0.0):.3f}",
                        f"{result.phase_seconds.get('sampling', 0.0):.3f}",
                        f"{result.phase_seconds.get('compositing', 0.0):.3f}",
                        f"{result.total_seconds:.3f}",
                    ]
                )
            if index == len(volume_dataset_pool()) - 1 and view == "far":
                dpp_wins_large = dpp.total_seconds <= visit.total_seconds * 1.5
    print_table("Table 9: volume rendering vs the VisIt-style sampler", ["data & view", "SW", "SS", "S", "C", "TOT"], rows)

    name, (grid, tets, field) = volume_dataset_pool()[0]
    camera = Camera.framing_bounds(grid.bounds, 64, 64, zoom=1.4)
    renderer = UnstructuredVolumeRenderer(tets, field, config=UnstructuredVolumeConfig(samples_in_depth=60))
    benchmark(lambda: renderer.render(camera))
    # On the largest data set the DPP renderer should be at least competitive.
    assert dpp_wins_large
