"""Volume-renderer throughput: frontier engine vs the pre-refactor loops.

Companion to ``bench_traversal_throughput.py`` for the volume side of the
perf trajectory: it measures the structured and unstructured (tet) volume
renderers over the Table 6 scene pool at 96^2 and 192^2, against the
**pre-refactor monolithic loops** that each renderer keeps in-tree as its
differential reference (``render_reference``).  Because the baseline is the
actual pre-refactor code measured on the same machine and scenes, the
reported speedups are load-independent.

Run explicitly (the ``perf`` marker keeps it out of tier-1):

    PYTHONPATH=src python -m pytest benchmarks/bench_volume_throughput.py -m perf -s

or emit the JSON trajectory record (raytracer + volume sections):

    PYTHONPATH=src python -m benchmarks.emit_bench
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from common import BENCH_IMAGE_SIZE, BENCH_IMAGE_SIZE_LARGE, print_table, volume_dataset_pool
from repro.geometry import Camera
from repro.rendering import (
    StructuredVolumeRenderer,
    UnstructuredVolumeConfig,
    UnstructuredVolumeRenderer,
)

#: Acceptance floor: the frontier-ported structured caster must be at least
#: this much faster than the pre-refactor loop at the classic substrate size.
STRUCTURED_SPEEDUP_FLOOR_96 = 2.0

#: Acceptance floor for the fragment-sorted unstructured sampler against the
#: brute-force 3D-box enumeration it replaced, at both measured sizes.
UNSTRUCTURED_SPEEDUP_FLOOR = 3.0

#: Passes used for the unstructured measurements (early ray termination
#: between passes is where engine compaction pays off).
UNSTRUCTURED_PASSES = 4


def _structured_cases(size: int):
    for name, (grid, _tets, field) in volume_dataset_pool():
        camera = Camera.framing_bounds(grid.bounds, size, size)
        yield name, StructuredVolumeRenderer(grid, field), camera


def _unstructured_cases(size: int):
    config = UnstructuredVolumeConfig(num_passes=UNSTRUCTURED_PASSES)
    for name, (grid, tets, field) in volume_dataset_pool():
        camera = Camera.framing_bounds(grid.bounds, size, size)
        yield name, UnstructuredVolumeRenderer(tets, field, config=config), camera


def measure_family(kind: str, size: int, repeats: int = 3) -> dict:
    """Best-of-``repeats`` aggregate throughput of one renderer family.

    Returns rays (pixels cast) per second for the frontier path and for the
    in-tree pre-refactor reference loop, plus their ratio.
    """
    cases = list(_structured_cases(size) if kind == "structured" else _unstructured_cases(size))
    if kind == "unstructured":
        repeats = 1  # the tet sampler is slow; one pass per path suffices
    rays = sum(camera.width * camera.height for _, _, camera in cases)
    # Warm allocator/page-cache state so neither path pays the cold start.
    _, warm_renderer, warm_camera = cases[0]
    warm_renderer.render(warm_camera)
    warm_renderer.render_reference(warm_camera)
    best_current = best_reference = float("inf")
    for _ in range(repeats):
        elapsed = 0.0
        for _, renderer, camera in cases:
            start = time.perf_counter()
            renderer.render(camera)
            elapsed += time.perf_counter() - start
        best_current = min(best_current, elapsed)
        elapsed = 0.0
        for _, renderer, camera in cases:
            start = time.perf_counter()
            renderer.render_reference(camera)
            elapsed += time.perf_counter() - start
        best_reference = min(best_reference, elapsed)
    return {
        "rays": int(rays),
        "seconds": best_current,
        "mrays_per_s": rays / best_current / 1e6,
        "seed_seconds": best_reference,
        "seed_mrays_per_s": rays / best_reference / 1e6,
        "speedup_vs_seed": best_reference / best_current,
    }


def measure_all() -> dict:
    """The volume trajectory record: both families at 96^2 and 192^2."""
    results = {}
    for size in (BENCH_IMAGE_SIZE, BENCH_IMAGE_SIZE_LARGE):
        for kind in ("structured", "unstructured"):
            results[f"{kind}_{size}"] = measure_family(kind, size)
    return results


def verify_volume_differential(size: int = 64) -> None:
    """Frontier-ported renderers must match the pre-refactor loops."""
    for _, renderer, _camera in _structured_cases(size):
        camera = Camera.framing_bounds(renderer.grid.bounds, size, size)
        fast = renderer.render(camera)
        slow = renderer.render_reference(camera)
        assert np.allclose(fast.framebuffer.rgba, slow.framebuffer.rgba, atol=1e-10, rtol=0.0)
        assert np.array_equal(fast.framebuffer.depth, slow.framebuffer.depth)
    for _, renderer, _camera in _unstructured_cases(size):
        camera = Camera.framing_bounds(renderer.mesh.bounds, size, size)
        fast = renderer.render(camera)
        slow = renderer.render_reference(camera)
        assert np.allclose(fast.framebuffer.rgba, slow.framebuffer.rgba, atol=1e-10, rtol=0.0)


@pytest.mark.perf
def test_volume_throughput():
    verify_volume_differential()
    results = measure_all()
    rows = [
        [key, record["rays"], f"{record['seconds']:.3f}", f"{record['mrays_per_s']:.4f}",
         f"{record['seed_mrays_per_s']:.4f}", f"{record['speedup_vs_seed']:.2f}x"]
        for key, record in results.items()
    ]
    print_table(
        "Volume throughput (frontier engine vs pre-refactor loops)",
        ["configuration", "rays", "seconds", "Mrays/s", "seed Mrays/s", "speedup"],
        rows,
    )
    assert results[f"structured_{BENCH_IMAGE_SIZE}"]["speedup_vs_seed"] >= STRUCTURED_SPEEDUP_FLOOR_96
    # The fragment-sorted sampler enumerates pixel columns + analytic spans
    # instead of the full 3D screen boxes, so it must clear the floor at both
    # sizes (the 3D/2D candidate ratio on the pool is 7-10x).
    for size in (BENCH_IMAGE_SIZE, BENCH_IMAGE_SIZE_LARGE):
        assert results[f"unstructured_{size}"]["speedup_vs_seed"] >= UNSTRUCTURED_SPEEDUP_FLOOR
