"""Table 8: strong scaling of the volume renderer (1-24 threads).

The reproduction cannot spawn real OpenMP threads, so thread counts are
modeled: raw time is the measured single-"thread" host render divided by the
thread count times a parallel efficiency that degrades gently (matching the
paper's observation that total time grows ~50% from 1 to 24 threads).  The
table reports raw and total (threads x raw) time exactly as Table 8 does.
"""

from __future__ import annotations

from common import print_table, volume_dataset_pool
from repro.geometry import Camera
from repro.rendering import UnstructuredVolumeConfig, UnstructuredVolumeRenderer

THREADS = [1, 2, 4, 8, 16, 24]


def _efficiency(threads: int) -> float:
    """Parallel efficiency model matching the paper's ~50% total-time growth at 24 threads."""
    return 1.0 / (1.0 + 0.022 * (threads - 1))


def test_table08_volume_strong_scaling(benchmark):
    name, (grid, tets, field) = volume_dataset_pool()[1]
    camera = Camera.framing_bounds(grid.bounds, 72, 72, zoom=1.2)
    renderer = UnstructuredVolumeRenderer(tets, field, config=UnstructuredVolumeConfig(samples_in_depth=60))
    single = renderer.render(camera).total_seconds

    rows = []
    totals = []
    for threads in THREADS:
        raw = single / (threads * _efficiency(threads))
        total = raw * threads
        totals.append(total)
        rows.append([threads, f"{raw:.4f}s", f"{total:.4f}s"])
    print_table(f"Table 8: strong scaling of the volume renderer ({name})", ["threads", "raw time", "total time"], rows)

    benchmark(lambda: renderer.render(camera))
    # Total time grows but by well under 2x (paper: ~1.4x at 24 threads).
    assert totals[-1] > totals[0]
    assert totals[-1] < 2.0 * totals[0]
