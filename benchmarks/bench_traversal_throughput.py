"""Traversal-engine throughput: Mrays/s for WORKLOAD1-3 at 96^2 and 192^2.

This benchmark starts the repo's perf trajectory for the ray-tracing hot
path: it measures end-to-end render throughput (excluding the one-time BVH
build) of the compacted-frontier traversal engine over the rm-family scenes
of the benchmark pool, at the classic substrate size (96^2) and the larger
size (192^2) the engine made practical, and compares against the recorded
seed-engine baseline.

Run explicitly (the ``perf`` marker keeps it out of tier-1):

    PYTHONPATH=src python -m pytest benchmarks/bench_traversal_throughput.py -m perf -s

or emit the JSON trajectory record:

    PYTHONPATH=src python -m benchmarks.emit_bench
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from common import BENCH_IMAGE_SIZE, BENCH_IMAGE_SIZE_LARGE, print_table, surface_scene_pool
from repro.geometry import Camera
from repro.rendering import RayTracer, RayTracerConfig, Workload
from repro.rendering.raytracer.traversal import brute_force_closest_hit, closest_hit

#: Seed-engine baseline (Mrays/s) measured with the pre-frontier `_traverse`
#: on the same scene subset, machine, and ray accounting as `measure_all`.
#: Recorded once at the start of this perf trajectory (PR 1) so every later
#: run can report its speedup against the original seed kernel.
SEED_BASELINE_MRAYS = {
    "intersection_only_96": 0.0466,
    "shading_96": 0.0458,
    "full_96": 0.0351,
    "intersection_only_192": 0.0731,
    "shading_192": 0.0746,
    "full_192": 0.0429,
}

#: Acceptance floors for this trajectory versus the seed engine.
SPEEDUP_FLOORS = {"intersection_only": 3.0, "full": 2.0}

#: The rm-family subset of the pool used for throughput numbers (matches the
#: scenes the seed baseline was recorded on).
POOL_SLICE = slice(0, 3)


def _workload_rays(config: RayTracerConfig, camera: Camera, result) -> int:
    """Rays traced by one render: primary rays plus AO/shadow rays per hit.

    With ``supersample=1`` the primary-hit count equals ``active_pixels``,
    which is how the secondary-ray volume is reconstructed for WORKLOAD3.
    """
    primary = camera.width * camera.height * config.supersample
    if config.workload is not Workload.FULL:
        return primary
    hits = result.features.active_pixels
    return primary + hits * (config.ao_samples + 1)  # one light in pool scenes


def measure_workload(workload: Workload, size: int, pool=None) -> dict:
    """Aggregate Mrays/s of one workload at one image size over the pool."""
    pool = surface_scene_pool()[POOL_SLICE] if pool is None else pool
    total_rays = 0
    total_seconds = 0.0
    for entry in pool:
        camera = Camera.framing_bounds(entry.scene.mesh.bounds, size, size)
        config = RayTracerConfig(workload=workload, ao_samples=4, seed=7)
        tracer = RayTracer(entry.scene, config)
        tracer.build_acceleration_structure()
        result = tracer.render(camera)
        total_rays += _workload_rays(config, camera, result)
        total_seconds += result.seconds_excluding("bvh_build")
    return {
        "rays": int(total_rays),
        "seconds": total_seconds,
        "mrays_per_s": total_rays / total_seconds / 1e6,
    }


def measure_all() -> dict:
    """The full trajectory record: every workload at 96^2 and 192^2."""
    results = {}
    for size in (BENCH_IMAGE_SIZE, BENCH_IMAGE_SIZE_LARGE):
        for workload in (Workload.INTERSECTION_ONLY, Workload.SHADING, Workload.FULL):
            key = f"{workload.name.lower()}_{size}"
            results[key] = measure_workload(workload, size)
    return results


def verify_pool_differential() -> None:
    """Check the engine against brute force on every pool scene (hit ids and t)."""
    for entry in surface_scene_pool():
        mesh = entry.scene.mesh
        camera = Camera.framing_bounds(mesh.bounds, 48, 48)
        origins, directions = camera.generate_rays()
        tracer = RayTracer(entry.scene)
        bvh = tracer.build_acceleration_structure()
        fast = closest_hit(bvh, mesh, origins, directions)
        slow = brute_force_closest_hit(mesh, origins, directions)
        assert np.array_equal(fast.triangle, slow.triangle), entry.name
        hit = fast.hit_mask
        assert np.allclose(fast.t[hit], slow.t[hit], atol=1e-6, rtol=0.0), entry.name


@pytest.mark.perf
def test_traversal_throughput():
    verify_pool_differential()
    results = measure_all()
    rows = []
    for key, record in results.items():
        baseline = SEED_BASELINE_MRAYS[key]
        speedup = record["mrays_per_s"] / baseline
        rows.append(
            [key, record["rays"], f"{record['seconds']:.3f}",
             f"{record['mrays_per_s']:.4f}", f"{baseline:.4f}", f"{speedup:.2f}x"]
        )
    print_table(
        "Traversal throughput (frontier engine vs seed)",
        ["configuration", "rays", "seconds", "Mrays/s", "seed Mrays/s", "speedup"],
        rows,
    )
    for size in (BENCH_IMAGE_SIZE, BENCH_IMAGE_SIZE_LARGE):
        w1 = results[f"intersection_only_{size}"]["mrays_per_s"]
        full = results[f"full_{size}"]["mrays_per_s"]
        assert w1 >= SPEEDUP_FLOORS["intersection_only"] * SEED_BASELINE_MRAYS[f"intersection_only_{size}"]
        assert full >= SPEEDUP_FLOORS["full"] * SEED_BASELINE_MRAYS[f"full_{size}"]


@pytest.mark.perf
def test_float32_mode_throughput():
    """The optional float32 ray-state mode must not be slower than float64."""
    pool = surface_scene_pool()[POOL_SLICE]
    entry = pool[0]
    camera = Camera.framing_bounds(entry.scene.mesh.bounds, BENCH_IMAGE_SIZE_LARGE, BENCH_IMAGE_SIZE_LARGE)
    timings = {}
    for ray_dtype in ("float64", "float32"):
        config = RayTracerConfig(workload=Workload.INTERSECTION_ONLY, ray_dtype=ray_dtype)
        tracer = RayTracer(entry.scene, config)
        tracer.build_acceleration_structure()
        tracer.render(camera)  # warm caches
        start = time.perf_counter()
        tracer.render(camera)
        timings[ray_dtype] = time.perf_counter() - start
    print(f"\nfloat64 {timings['float64']:.3f}s vs float32 {timings['float32']:.3f}s")
    assert timings["float32"] <= timings["float64"] * 1.25
