"""Load-generation benchmark for the prediction-serving tier -> BENCH_serving.json.

Starts a real :mod:`repro.serving` server on an ephemeral localhost port and
drives it through the socket with pipelined HTTP/1.1 load: ``connections``
persistent client connections each write ``pipeline`` single-configuration
``POST /predict`` requests before reading any response, so
``connections * pipeline`` configurations are concurrently in flight (the
full preset holds 10,240).  Three measured phases:

* **micro-batched** -- the production server (``max_batch``/``max_delay_us``
  accumulation window), result cache disabled so every prediction is computed;
* **no-batching baseline** -- the same server with ``max_batch=1``: every
  request is served individually, the classic per-request serving loop.  The
  headline ``speedup_vs_no_batching`` is the ratio of the two measured
  predictions/sec numbers -- a measurement, not a claim;
* **warm cache** -- the micro-batched server re-serving the same pool with
  the LRU enabled, for the cache's contribution on repeating traffic.

Every response is parsed after the clock stops and checked **bit-identical**
against :meth:`Predictor.predict_configurations
<repro.reporting.predictor.Predictor.predict_configurations>` on the same
inputs -- the serving tier's differential oracle.  Latency is recorded
per request from its (pipelined) send to its response, so p50/p99 describe
queue drain under the full concurrent load.

    python -m benchmarks.bench_serving_throughput            # full: 10,240 configs
    python -m benchmarks.bench_serving_throughput --smoke    # CI-sized, parity gate

The full run also measures the smoke shape so the emitted record carries the
``smoke_*`` keys :mod:`benchmarks.perf_guard` re-measures in CI.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import statistics
import sys
import tempfile
import time
from pathlib import Path

_BENCH_DIR = Path(__file__).resolve().parent
if str(_BENCH_DIR) not in sys.path:  # allow `python -m benchmarks.bench_serving_throughput`
    sys.path.insert(0, str(_BENCH_DIR))

from repro.modeling.study import StudyConfiguration, StudyHarness
from repro.reporting import ModelSuite, Predictor
from repro.serving.client import request_bytes
from repro.serving.core import canonical_config
from repro.serving.server import start_server

__all__ = [
    "build_models_fixture",
    "config_pool",
    "measure_serving",
    "measure_smoke_serving",
    "main",
]

#: Load shapes: (connections, pipelined single-config requests per connection).
FULL_SHAPE = (64, 160)  # 10,240 configs concurrently in flight
SMOKE_SHAPE = (32, 48)  # 1,536 -- CI-sized

#: Production-shaped knobs for the micro-batched phase.
MAX_BATCH = 512
MAX_DELAY_US = 2000

_TASK_COUNTS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)
_IMAGE_SIZES = ((256, 256), (512, 512), (1024, 768), (1024, 1024), (1920, 1080), (2048, 2048))


def build_models_fixture(out_dir: Path) -> Path:
    """Fit a small deterministic suite and write its ``models.json``."""
    config = StudyConfiguration(
        architectures=("cpu-host", "gpu1-k40m"),
        techniques=("raytrace", "volume"),
        simulations=("kripke",),
        task_counts=(1, 4),
        samples_per_technique=8,
        compositing_task_counts=(2, 4),
        compositing_pixel_sizes=(32, 48, 64),
        seed=2016,
    )
    suite = ModelSuite.fit_corpus(StudyHarness(config).run())
    return suite.save(out_dir / "models.json")


def config_pool(keys: list[tuple[str, str]], count: int) -> list[dict]:
    """``count`` pairwise-distinct render configurations over the fitted slices."""
    pool = []
    for index in range(count):
        architecture, technique = keys[index % len(keys)]
        rest = index // len(keys)
        cells = 40 + rest % 400
        rest //= 400
        width, height = _IMAGE_SIZES[rest % len(_IMAGE_SIZES)]
        rest //= len(_IMAGE_SIZES)
        tasks = _TASK_COUNTS[rest % len(_TASK_COUNTS)]
        pool.append(
            {
                "architecture": architecture,
                "technique": technique,
                "num_tasks": tasks,
                "cells_per_task": cells,
                "image_width": width,
                "image_height": height,
            }
        )
    return pool


async def _drive_connection(
    host: str, port: int, payloads: list[bytes]
) -> tuple[list[float], list[bytes]]:
    """One pipelined connection: write every request, then bulk-read responses.

    Responses are parsed off a growing buffer (the server writes them
    coalesced, so one ``read`` usually delivers many), with one latency stamp
    per arriving chunk -- the true wire arrival time of that coalesced run.
    """
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(b"".join(payloads))
    await writer.drain()
    sent_at = time.perf_counter()
    latencies: list[float] = []
    bodies: list[bytes] = []
    buffer = b""
    remaining = len(payloads)
    while remaining:
        chunk = await reader.read(1 << 18)
        if not chunk:
            raise RuntimeError("server closed the connection mid-stream")
        buffer += chunk
        arrived = time.perf_counter()
        while remaining:
            header_end = buffer.find(b"\r\n\r\n")
            if header_end < 0:
                break
            header = buffer[:header_end]
            lowered = header.lower()
            marker = lowered.find(b"content-length:")
            line_end = lowered.find(b"\r\n", marker)
            length = int(lowered[marker + 15 : line_end if line_end >= 0 else len(lowered)])
            total = header_end + 4 + length
            if len(buffer) < total:
                break
            body = buffer[header_end + 4 : total]
            buffer = buffer[total:]
            status = int(header.split(b" ", 2)[1])
            if status != 200:
                raise RuntimeError(f"serving error {status}: {body.decode(errors='replace')}")
            latencies.append(arrived - sent_at)
            bodies.append(body)
            remaining -= 1
    writer.close()
    return latencies, bodies


async def _run_load(server, configs: list[dict], connections: int) -> dict:
    """Drive the pool through the socket; returns wall time, latencies, pairs.

    ``pairs`` aligns each configuration with the response body that answered
    it (responses are positional per connection), so parity can be checked
    without the server echoing configurations back.
    """
    per_conn_configs = [chunk for chunk in (configs[i::connections] for i in range(connections)) if chunk]
    per_conn_payloads = [
        [request_bytes("POST", "/predict", config) for config in chunk] for chunk in per_conn_configs
    ]
    start = time.perf_counter()
    outcomes = await asyncio.gather(
        *(_drive_connection(server.host, server.port, payloads) for payloads in per_conn_payloads)
    )
    wall = time.perf_counter() - start
    latencies = [latency for chunk_latencies, _ in outcomes for latency in chunk_latencies]
    pairs: list[tuple[dict, bytes]] = []
    for chunk, (_, bodies) in zip(per_conn_configs, outcomes):
        pairs.extend(zip(chunk, bodies))
    return {"wall_s": wall, "latencies": latencies, "pairs": pairs}


def _percentile(values: list[float], fraction: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


def measure_serving(
    models: Path,
    connections: int,
    pipeline: int,
    max_batch: int = MAX_BATCH,
    max_delay_us: int = MAX_DELAY_US,
    cache_size: int = 0,
    repeat_pool: bool = False,
) -> dict:
    """One measured phase: start a server, drive the load, collect the numbers."""
    configs = config_pool(_renderer_keys(models), connections * pipeline)

    async def scenario() -> dict:
        server = await start_server(
            models,
            max_batch=max_batch,
            max_delay_us=max_delay_us,
            cache_size=cache_size,
            watch=False,
        )
        try:
            if repeat_pool:  # warm the cache with one full pass first
                await _run_load(server, configs, connections)
            run = await _run_load(server, configs, connections)
            run["stats"] = server.stats()
            return run
        finally:
            await server.close()

    run = asyncio.run(scenario())
    total = len(configs)
    rows = [
        {**config, **json.loads(body)["predictions"][0]} for config, body in run["pairs"]
    ]
    return {
        "configs": configs,
        "rows": rows,
        "total_configs": total,
        "concurrent_configs": total,
        "connections": connections,
        "pipeline_depth": pipeline,
        "wall_s": run["wall_s"],
        "predictions_per_s": total / run["wall_s"],
        "p50_ms": _percentile(run["latencies"], 0.50) * 1e3,
        "p99_ms": _percentile(run["latencies"], 0.99) * 1e3,
        "mean_ms": statistics.fmean(run["latencies"]) * 1e3,
        "stats": run["stats"],
    }


def _renderer_keys(models: Path) -> list[tuple[str, str]]:
    suite = ModelSuite.load(models)
    return sorted(suite.entries)


def check_parity(models: Path, rows: list[dict]) -> int:
    """Assert every served prediction is bit-identical to the batch Predictor."""
    predictor = Predictor.load(models)
    checked = 0
    for row in rows:
        canon = canonical_config(row)
        batch = predictor.predict_configurations(
            canon[1],
            canon[2],
            num_tasks=canon[3],
            cells_per_task=canon[4],
            image_width=canon[5],
            image_height=canon[6],
            samples_in_depth=canon[7],
            include_build=canon[8],
        )
        expected = (
            float(batch.seconds[0]),
            float(batch.lower[0]),
            float(batch.upper[0]),
            float(batch.residual_std),
        )
        served = (row["seconds"], row["lower"], row["upper"], row["residual_std"])
        if served != expected:
            raise AssertionError(f"parity violation for {row}: served {served}, predictor {expected}")
        checked += 1
    return checked


def measure_smoke_serving(models: Path | None = None) -> dict[str, float]:
    """The perf-guard subset: smoke-shape batched throughput and p99 latency.

    Best of two runs: the guard fails on dips only, so the stable upper
    envelope is the right statistic on a noisy shared-CPU box.
    """
    with tempfile.TemporaryDirectory() as tmp:
        models = models or build_models_fixture(Path(tmp))
        connections, pipeline = SMOKE_SHAPE
        phases = [measure_serving(models, connections, pipeline) for _ in range(2)]
        return {
            "smoke_predictions_per_s": round(max(p["predictions_per_s"] for p in phases), 1),
            "smoke_p99_ms": round(min(p["p99_ms"] for p in phases), 2),
        }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m benchmarks.bench_serving_throughput",
        description="Drive pipelined load through the prediction server; emit BENCH_serving.json.",
    )
    parser.add_argument("--smoke", action="store_true", help="CI-sized load (parity gate only)")
    parser.add_argument("--out", default=str(_BENCH_DIR.parent / "BENCH_serving.json"))
    parser.add_argument("--models", help="existing models.json (default: fit a fixture suite)")
    parser.add_argument("--max-batch", type=int, default=MAX_BATCH)
    parser.add_argument("--max-delay-us", type=int, default=MAX_DELAY_US)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail under this batched/baseline ratio (default: 5.0 full, unenforced smoke)",
    )
    args = parser.parse_args(argv)

    connections, pipeline = SMOKE_SHAPE if args.smoke else FULL_SHAPE
    min_speedup = args.min_speedup if args.min_speedup is not None else (None if args.smoke else 5.0)

    with tempfile.TemporaryDirectory() as tmp:
        models = Path(args.models) if args.models else build_models_fixture(Path(tmp))

        print(f"load shape: {connections} connections x {pipeline} pipelined = "
              f"{connections * pipeline} concurrent configs")
        print(f"micro-batched phase (max_batch={args.max_batch}, max_delay_us={args.max_delay_us}) ...")
        batched = measure_serving(
            models, connections, pipeline, max_batch=args.max_batch, max_delay_us=args.max_delay_us
        )
        print(
            f"  {batched['predictions_per_s']:.0f} predictions/s, "
            f"p50={batched['p50_ms']:.1f}ms p99={batched['p99_ms']:.1f}ms"
        )
        print("no-batching baseline phase (max_batch=1) ...")
        baseline = measure_serving(models, connections, pipeline, max_batch=1)
        print(
            f"  {baseline['predictions_per_s']:.0f} predictions/s, "
            f"p50={baseline['p50_ms']:.1f}ms p99={baseline['p99_ms']:.1f}ms"
        )
        print("warm-cache phase (micro-batched, LRU enabled) ...")
        cached = measure_serving(
            models,
            connections,
            pipeline,
            max_batch=args.max_batch,
            max_delay_us=args.max_delay_us,
            cache_size=connections * pipeline,
            repeat_pool=True,
        )
        print(f"  {cached['predictions_per_s']:.0f} predictions/s")

        checked = check_parity(models, batched["rows"] + baseline["rows"] + cached["rows"])
        print(f"parity: {checked} served predictions bit-identical to Predictor.predict_configurations")

        smoke_keys = (
            {"smoke_predictions_per_s": round(batched["predictions_per_s"], 1),
             "smoke_p99_ms": round(batched["p99_ms"], 2)}
            if args.smoke
            else measure_smoke_serving(models)
        )

    speedup = batched["predictions_per_s"] / baseline["predictions_per_s"]
    import numpy

    record = {
        "benchmark": "serving_throughput",
        "mode": "smoke" if args.smoke else "full",
        "python": sys.version.split()[0],
        "numpy": numpy.__version__,
        "serving": {
            "load": {
                "connections": connections,
                "pipeline_depth": pipeline,
                "total_configs": batched["total_configs"],
                "concurrent_configs": batched["concurrent_configs"],
            },
            "knobs": {"max_batch": args.max_batch, "max_delay_us": args.max_delay_us},
            "current": {
                "predictions_per_s": round(batched["predictions_per_s"], 1),
                "p50_ms": round(batched["p50_ms"], 2),
                "p99_ms": round(batched["p99_ms"], 2),
                "baseline_predictions_per_s": round(baseline["predictions_per_s"], 1),
                "baseline_p99_ms": round(baseline["p99_ms"], 2),
                "speedup_vs_no_batching": round(speedup, 2),
                "cached_predictions_per_s": round(cached["predictions_per_s"], 1),
                **smoke_keys,
            },
            "batch_histogram": batched["stats"]["batching"]["histogram"],
            "cache": cached["stats"]["cache"],
            "parity": {"checked": checked, "bit_identical": True},
        },
    }
    out = Path(args.out)
    out.write_text(json.dumps(record, indent=1, sort_keys=True) + "\n")
    print(f"speedup vs no-batching baseline: {speedup:.2f}x -> {out}")
    if min_speedup is not None and speedup < min_speedup:
        print(
            f"FAIL: micro-batched throughput is {speedup:.2f}x the no-batching baseline "
            f"(floor {min_speedup:.1f}x)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
