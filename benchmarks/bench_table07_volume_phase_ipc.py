"""Table 7: CPU versus GPU time and IPC by volume-rendering phase.

CPU times are host-measured; GPU times come from the per-phase synthetic cost
model.  The IPC column is replaced by the primitive-level arithmetic-intensity
proxy (elements touched per byte moved) recorded by the instrumentation.
"""

from __future__ import annotations

from common import print_table, volume_dataset_pool
from repro.dpp.instrument import get_instrumentation, reset_instrumentation
from repro.geometry import Camera
from repro.machines import KernelCostModel
from repro.rendering import UnstructuredVolumeConfig, UnstructuredVolumeRenderer

PHASES = ["pass_selection", "screen_space", "sampling", "compositing"]


def test_table07_volume_phase_cpu_vs_gpu(benchmark):
    name, (grid, tets, field) = volume_dataset_pool()[1]
    camera = Camera.framing_bounds(grid.bounds, 80, 80, zoom=1.2)
    renderer = UnstructuredVolumeRenderer(
        tets, field, config=UnstructuredVolumeConfig(samples_in_depth=80, num_passes=4)
    )
    reset_instrumentation()
    result = renderer.render(camera)
    instrumentation = get_instrumentation()

    gpu = KernelCostModel("gpu1-k40m", seed=1)
    gpu_phases = gpu.phases("volume_unstructured", result.features)
    gpu_total = sum(gpu_phases.values())
    cpu_sampling_share = result.phase_seconds["sampling"] / result.total_seconds

    rows = []
    for phase in PHASES:
        scope = f"volume.{phase}"
        cpu_time = result.phase_seconds[phase]
        gpu_time = gpu_total * (cpu_time / result.total_seconds)
        rows.append(
            [
                phase,
                f"{gpu_time:.4f}s",
                f"{cpu_time:.4f}s",
                f"{instrumentation.arithmetic_intensity(scope):.4f}",
            ]
        )
    print_table(
        f"Table 7: volume rendering by phase, GPU (synthetic) vs CPU (measured), {name}",
        ["phase", "GPU time", "CPU time", "elem/byte (IPC proxy)"],
        rows,
    )

    benchmark(lambda: renderer.render(camera))
    assert gpu_total < result.total_seconds  # GPU is faster overall
    assert cpu_sampling_share > 0.3          # sampling dominates the CPU time (paper: same)
