"""Table 6: unstructured volume rendering kernel metrics (time per phase, work per phase).

The paper reports per-kernel time, registers, and occupancy from nvprof; the
reproduction reports per-phase time plus the primitive-level instrumentation
counters (elements touched, bytes moved) that stand in for the hardware
counters.
"""

from __future__ import annotations

from common import print_table, volume_dataset_pool
from repro.dpp.instrument import get_instrumentation, reset_instrumentation
from repro.geometry import Camera
from repro.rendering import UnstructuredVolumeConfig, UnstructuredVolumeRenderer

PHASES = ["initialization", "pass_selection", "screen_space", "sampling", "compositing"]


def test_table06_volume_kernel_metrics(benchmark):
    name, (grid, tets, field) = volume_dataset_pool()[1]
    camera = Camera.framing_bounds(grid.bounds, 80, 80, zoom=1.2)
    renderer = UnstructuredVolumeRenderer(
        tets, field, config=UnstructuredVolumeConfig(samples_in_depth=80, num_passes=4)
    )
    reset_instrumentation()
    result = renderer.render(camera)
    instrumentation = get_instrumentation()

    rows = []
    for phase in PHASES:
        scope = f"volume.{phase}"
        rows.append(
            [
                phase,
                f"{result.phase_seconds[phase]:.4f}s",
                instrumentation.elements(scope),
                instrumentation.bytes_moved(scope),
                f"{instrumentation.arithmetic_intensity(scope):.4f}",
            ]
        )
    print_table(
        f"Table 6: volume rendering kernel metrics ({name}, close view, 4 passes)",
        ["phase", "time", "elements", "bytes moved", "elem/byte"],
        rows,
    )

    benchmark(lambda: renderer.render(camera))
    assert result.phase_seconds["sampling"] > 0
    # Sampling plus compositing dominate, as in the paper's kernel table.
    dominant = result.phase_seconds["sampling"] + result.phase_seconds["compositing"]
    assert dominant > 0.5 * result.total_seconds
