"""Figure 11: 3-fold cross-validation error versus predicted render time, all six models.

Reports, per model, the error distribution binned by predicted render time,
reproducing the key qualitative feature of Figure 11: accuracy improves as
predicted render time grows (short renders are dominated by overheads and
noise).
"""

from __future__ import annotations

import numpy as np

from common import print_table


def test_fig11_crossval_error_series(benchmark, study_corpus):
    rows = []
    improves = 0
    total = 0
    for architecture in ("cpu-host", "gpu1-k40m"):
        for technique in ("raster", "raytrace", "volume"):
            summary = study_corpus.cross_validate(architecture, technique, k=3, seed=11)
            predictions = summary.predictions
            errors = np.abs(summary.errors) * 100.0
            median_prediction = np.median(predictions)
            slow_half = errors[predictions >= median_prediction]
            fast_half = errors[predictions < median_prediction]
            rows.append(
                [
                    architecture,
                    technique,
                    f"{np.mean(fast_half):.1f}%",
                    f"{np.mean(slow_half):.1f}%",
                    f"{np.max(errors):.1f}%",
                ]
            )
            total += 1
            if np.mean(slow_half) <= np.mean(fast_half) * 1.5:
                improves += 1
    print_table(
        "Figure 11: cross-validation error by predicted-time half (fast vs slow renders)",
        ["architecture", "technique", "mean |err| fast half", "mean |err| slow half", "max |err|"],
        rows,
    )

    benchmark(lambda: study_corpus.cross_validate("cpu-host", "volume", k=3, seed=11))
    # In most models the slower (larger) renders are predicted at least as well
    # as the fast ones -- the paper's "increasingly accurate as render time goes up".
    assert improves >= total // 2
