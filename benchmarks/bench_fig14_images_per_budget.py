"""Figure 14: how many images can be rendered in a 60-second budget.

Uses the fitted models plus the Section 5.8 mapping to predict, for 32 tasks
of 200^3 cells each, the number of images of each size renderable in 60
seconds by every (architecture, technique) pair -- the Figure 14 curves.
"""

from __future__ import annotations

import numpy as np

from common import print_table
from repro.modeling.feasibility import images_within_budget

IMAGE_SIZES = np.array([1024, 1536, 2048, 3072, 4096])


def test_fig14_images_within_budget(benchmark, fitted_models):
    # Compositing is excluded here (as in the paper's single-node framing of
    # the question): the reproduction's compositor exchanges uncompressed
    # pixel runs, so its extrapolated cost at 4K images would swamp the
    # rendering cost the figure is about.
    points = images_within_budget(
        fitted_models,
        budget_seconds=60.0,
        num_tasks=32,
        cells_per_task=200,
        image_sizes=IMAGE_SIZES,
    )
    rows = [
        [p.architecture, p.technique, p.image_size, f"{p.seconds_per_image:.4f}s", p.images_in_budget]
        for p in points
    ]
    print_table(
        "Figure 14: images renderable in a 60 s budget (32 tasks, 200^3 cells/task)",
        ["architecture", "technique", "image size", "s/image", "images in budget"],
        rows,
    )

    benchmark(
        lambda: images_within_budget(
            fitted_models, 60.0, num_tasks=32, cells_per_task=200, image_sizes=IMAGE_SIZES[:2]
        )
    )
    # Counts never increase with image size, and at least one configuration
    # reaches the hundreds-of-images regime the image-database use case needs.
    for (architecture, technique) in fitted_models:
        series = [p.images_in_budget for p in points if p.architecture == architecture and p.technique == technique]
        assert all(a >= b for a, b in zip(series, series[1:]))
    assert max(p.images_in_budget for p in points) > 100
