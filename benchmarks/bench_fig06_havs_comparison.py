"""Figure 6: DPP volume renderer versus HAVS (projected tetrahedra) run times.

Reproduces the two panels of Figure 6 (zoomed-out and close-up views over the
data-set pool).  The expected shape: HAVS run time tracks data size closely,
while the sampling renderer tracks the number of samples (so it is relatively
better zoomed out, relatively worse zoomed in).
"""

from __future__ import annotations

import numpy as np

from common import print_table, volume_dataset_pool
from repro.geometry import Camera
from repro.rendering import UnstructuredVolumeConfig, UnstructuredVolumeRenderer
from repro.rendering.baselines import ProjectedTetrahedraRenderer


def test_fig06_dpp_vs_havs(benchmark):
    rows = []
    havs_times, havs_cells = [], []
    for name, (grid, tets, field) in volume_dataset_pool():
        for view, zoom in (("far", 0.8), ("close", 1.4)):
            camera = Camera.framing_bounds(grid.bounds, 64, 64, zoom=zoom)
            dpp = UnstructuredVolumeRenderer(
                tets, field, config=UnstructuredVolumeConfig(samples_in_depth=60, num_passes=2)
            ).render(camera)
            havs = ProjectedTetrahedraRenderer(tets, field).render(camera)
            rows.append([f"{name}/{view}", tets.num_cells, f"{dpp.total_seconds:.3f}", f"{havs.total_seconds:.3f}"])
            if view == "close":
                havs_times.append(havs.total_seconds)
                havs_cells.append(tets.num_cells)
    print_table("Figure 6: DPP-VR vs HAVS-proxy run times", ["data/view", "tets", "DPP-VR", "HAVS"], rows)

    name, (grid, tets, field) = volume_dataset_pool()[0]
    camera = Camera.framing_bounds(grid.bounds, 64, 64, zoom=1.4)
    havs = ProjectedTetrahedraRenderer(tets, field)
    benchmark(lambda: havs.render(camera))
    # HAVS run time correlates strongly with data size (the paper's observation).
    correlation = np.corrcoef(havs_cells, havs_times)[0, 1]
    assert correlation > 0.6
