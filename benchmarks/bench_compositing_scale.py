"""Thousand-rank streaming compositing: the CI scale gate and its perf keys.

Companion to ``bench_compositing_throughput.py`` for the cohort scheduler:
where that module measures the run-length engine against the dense reference
at 64-256 ranks, this one drives
:meth:`repro.compositing.Compositor.composite_streaming` at 1k-16k simulated
ranks, where no dense engine fits in memory.  Three entry points:

CI smoke (the ``compositing-scale-smoke`` job):

    PYTHONPATH=src python -m benchmarks.bench_compositing_scale --smoke \
        [--round-log compositing_scale_rounds.json]

runs 1,024-rank binary-swap and radix-k at 128^2, asserts cohort-size
invariance (two different ``max_live_ranks`` budgets produce byte-identical
images), holds the peak traced allocation under
:data:`SMOKE_MEMORY_BUDGET_BYTES`, and writes the per-round traffic log as a
JSON artifact.

Scale completion (the acceptance configuration):

    PYTHONPATH=src python -m benchmarks.bench_compositing_scale --ranks 16384 \
        [--size 256] [--algorithms binary-swap,radix-k] [--budget-mb 600]

completes each algorithm at the requested rank count and fails if the peak
traced allocation exceeds the budget.

Perf keys (consumed by ``perf_guard.py`` / ``emit_bench.py``):
:func:`measure_scale_section` returns the ``compositing_scale`` section --
ranks/s at 1k and 4k ranks plus the 1k peak-memory bytes.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import tracemalloc

from repro.compositing import Compositor, scene_factory

#: Image edge of the smoke and perf measurements.
SCALE_IMAGE_SIZE = 128

#: Rank count of the CI smoke assertions.
SMOKE_RANKS = 1024

#: The two cohort budgets whose outputs must be byte-identical.
SMOKE_LIVE_BUDGETS = (64, 256)

#: Peak traced allocation allowed for one 1,024-rank smoke composite.
SMOKE_MEMORY_BUDGET_BYTES = 300_000_000

SMOKE_ALGORITHMS = ("binary-swap", "radix-k")

#: Perf-guard keys of the ``compositing_scale`` section and their regression
#: direction (ranks/s falls, peak bytes rise).
SCALE_KEYS = {
    "binary-swap_1024_ranks_per_s": True,
    "radix-k_1024_ranks_per_s": True,
    "binary-swap_4096_ranks_per_s": True,
    "binary-swap_1024_peak_memory_bytes": False,
}


def measure_scale(
    algorithm: str,
    ranks: int,
    size: int = SCALE_IMAGE_SIZE,
    max_live_ranks: int = 256,
    scenario: str = "uniform",
    trace_memory: bool = False,
) -> dict:
    """One streamed composite; wall clock, accounting, optional traced peak."""
    factory = scene_factory(scenario, ranks, size, size, mode="depth", seed=2016)
    compositor = Compositor(algorithm)
    if trace_memory:
        tracemalloc.start()
    start = time.perf_counter()
    result = compositor.composite_streaming(
        factory, ranks, size, size, mode="depth", max_live_ranks=max_live_ranks
    )
    seconds = time.perf_counter() - start
    peak_bytes = 0
    if trace_memory:
        _, peak_bytes = tracemalloc.get_traced_memory()
        tracemalloc.stop()
    return {
        "algorithm": algorithm,
        "ranks": ranks,
        "pixels": size * size,
        "seconds": seconds,
        "ranks_per_s": ranks / seconds,
        "peak_memory_bytes": int(peak_bytes),
        "max_live_ranks": max_live_ranks,
        "peak_live_images": result.peak_live_images,
        "cohorts": result.cohorts,
        "merge_operations": result.merge_operations,
        "bytes_exchanged": result.bytes_exchanged,
        "network_seconds": result.network_seconds,
        "rounds": len(result.round_summary),
        "round_summary": result.round_summary,
        "checksum": result.framebuffer.rgba.tobytes().hex()[:32],
    }


def measure_scale_section() -> dict[str, float]:
    """The ``compositing_scale`` perf keys (ranks/s at 1k and 4k, 1k peak bytes)."""
    section: dict[str, float] = {}
    for key in SCALE_KEYS:
        algorithm, rest = key.split("_", 1)
        ranks = int(rest.split("_", 1)[0])
        if key.endswith("peak_memory_bytes"):
            row = measure_scale(algorithm, ranks, trace_memory=True)
            section[key] = float(row["peak_memory_bytes"])
        else:
            row = measure_scale(algorithm, ranks)
            section[key] = round(row["ranks_per_s"], 2)
    return section


def run_smoke(round_log_path: str | None) -> int:
    """The ``compositing-scale-smoke`` assertions; returns a process exit code."""
    logs = {}
    for algorithm in SMOKE_ALGORITHMS:
        rows = [
            measure_scale(
                algorithm,
                SMOKE_RANKS,
                max_live_ranks=budget,
                trace_memory=(budget == SMOKE_LIVE_BUDGETS[0]),
            )
            for budget in SMOKE_LIVE_BUDGETS
        ]
        first, second = rows
        if first["checksum"] != second["checksum"]:
            print(
                f"FAIL {algorithm}: max_live_ranks={SMOKE_LIVE_BUDGETS[0]} and "
                f"{SMOKE_LIVE_BUDGETS[1]} disagree "
                f"({first['checksum']} vs {second['checksum']})",
                file=sys.stderr,
            )
            return 1
        if first["merge_operations"] != second["merge_operations"]:
            print(f"FAIL {algorithm}: merge counts differ across cohort sizes", file=sys.stderr)
            return 1
        if first["peak_memory_bytes"] > SMOKE_MEMORY_BUDGET_BYTES:
            print(
                f"FAIL {algorithm}: peak traced allocation "
                f"{first['peak_memory_bytes'] / 1e6:.1f} MB exceeds the "
                f"{SMOKE_MEMORY_BUDGET_BYTES / 1e6:.0f} MB smoke budget",
                file=sys.stderr,
            )
            return 1
        for row in rows:
            if row["peak_live_images"] > row["max_live_ranks"] + 1:
                print(
                    f"FAIL {algorithm}: ledger peak {row['peak_live_images']} broke "
                    f"the max_live_ranks={row['max_live_ranks']} contract",
                    file=sys.stderr,
                )
                return 1
        logs[algorithm] = {
            "ranks": SMOKE_RANKS,
            "pixels": first["pixels"],
            "max_live_ranks": [row["max_live_ranks"] for row in rows],
            "peak_memory_bytes": first["peak_memory_bytes"],
            "rounds": first["round_summary"],
        }
        print(
            f"  ok {algorithm:12s} {SMOKE_RANKS} ranks  "
            f"invariant across max_live={SMOKE_LIVE_BUDGETS}  "
            f"{first['seconds']:.1f}s  peak {first['peak_memory_bytes'] / 1e6:.1f} MB  "
            f"{first['rounds']} rounds"
        )
    if round_log_path:
        with open(round_log_path, "w", encoding="utf-8") as handle:
            json.dump(logs, handle, indent=2, sort_keys=True)
        print(f"  round log written to {round_log_path}")
    print("compositing scale smoke ok")
    return 0


def run_completion(ranks: int, size: int, algorithms: list[str], budget_mb: float) -> int:
    """Complete each algorithm at ``ranks``; enforce the traced-memory budget."""
    for algorithm in algorithms:
        row = measure_scale(algorithm, ranks, size=size, trace_memory=True)
        peak_mb = row["peak_memory_bytes"] / 1e6
        print(
            f"  {algorithm:12s} {ranks} ranks at {size}^2: {row['seconds']:.1f}s "
            f"({row['ranks_per_s']:.0f} ranks/s), peak {peak_mb:.1f} MB, "
            f"{row['cohorts']} cohorts, {row['rounds']} rounds"
        )
        if peak_mb > budget_mb:
            print(
                f"FAIL {algorithm}: peak {peak_mb:.1f} MB exceeds {budget_mb:.0f} MB",
                file=sys.stderr,
            )
            return 1
    print(f"scale completion ok at {ranks} ranks")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m benchmarks.bench_compositing_scale",
        description="Streaming compositing at 1k-16k simulated ranks.",
    )
    parser.add_argument("--smoke", action="store_true", help="run the CI smoke assertions")
    parser.add_argument(
        "--round-log", default=None, help="write the smoke round log JSON here (artifact)"
    )
    parser.add_argument("--ranks", type=int, default=None, help="completion run at this rank count")
    parser.add_argument("--size", type=int, default=256, help="image edge of the completion run")
    parser.add_argument(
        "--algorithms",
        default="binary-swap,radix-k",
        help="comma list of exchange algorithms for the completion run",
    )
    parser.add_argument(
        "--budget-mb", type=float, default=600.0, help="traced-allocation budget (completion run)"
    )
    args = parser.parse_args(argv)
    if args.smoke:
        return run_smoke(args.round_log)
    if args.ranks is not None:
        return run_completion(args.ranks, args.size, args.algorithms.split(","), args.budget_mb)
    parser.error("pass --smoke or --ranks N")
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
