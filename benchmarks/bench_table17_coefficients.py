"""Table 17: experimentally determined coefficients of every model."""

from __future__ import annotations

from common import print_table


def test_table17_fitted_coefficients(benchmark, study_corpus, fitted_models, compositing_model):
    rows = []
    for (architecture, technique), model in sorted(fitted_models.items()):
        coefficients = model.coefficients
        rows.append(
            [technique, architecture]
            + [f"{value:.3e}" for value in coefficients.values()]
            + [""] * (5 - len(coefficients))
        )
    rows.append(
        ["compositing", "-"]
        + [f"{value:.3e}" for value in compositing_model.coefficients.values()]
        + [""] * 2
    )
    print_table("Table 17: fitted model coefficients", ["technique", "architecture", "c0", "c1", "c2", "c3", "c4"], rows)

    benchmark(lambda: study_corpus.fit_all_models())
    # Every renderer coefficient is non-negative (the paper's validity criterion).
    for model in fitted_models.values():
        assert all(value >= 0.0 for value in model.coefficients.values())
