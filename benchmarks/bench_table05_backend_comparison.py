"""Table 5: OpenMP versus ISPC back-ends on the Xeon Phi (Mrays/s).

Two substitutions combine here: the Phi architectures are synthesized
(mic-phi-openmp / mic-phi-ispc), and the back-end swap is additionally
demonstrated for real by running the DPP primitives on the ``serial`` versus
``vectorized`` device adapters -- the reproduction's analogue of a poorly and
a well matched back-end.
"""

from __future__ import annotations

import numpy as np

from common import observed_surface_features, print_table, surface_scene_pool, synthetic_rays_per_second
from repro.dpp import exclusive_scan, use_device


def test_table05_backend_comparison(benchmark):
    pool = surface_scene_pool()[:4]
    rows = []
    speedups = []
    for entry in pool:
        features = observed_surface_features(entry)
        openmp = synthetic_rays_per_second("mic-phi-openmp", features) / 1e6
        ispc = synthetic_rays_per_second("mic-phi-ispc", features) / 1e6
        speedups.append(ispc / openmp)
        rows.append([entry.name, f"{openmp:.2f}", f"{ispc:.1f}", f"{ispc / openmp:.1f}x"])
    print_table("Table 5: Xeon Phi Mrays/s, OpenMP vs ISPC back-end", ["dataset", "OpenMP", "ISPC", "speedup"], rows)

    # Demonstrate the back-end swap on a real primitive: scan on the serial
    # device versus the vectorized device.
    data = np.ones(200_000, dtype=np.int64)

    def vectorized_scan():
        with use_device("vectorized"):
            exclusive_scan(data)

    benchmark(vectorized_scan)
    # Paper: the ISPC back-end gives 5x-9x over OpenMP.
    assert all(4.0 < s < 12.0 for s in speedups)
