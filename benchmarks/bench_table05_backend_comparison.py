"""Table 5: OpenMP versus ISPC back-ends on the Xeon Phi (Mrays/s).

Two substitutions combine here: the Phi architectures are synthesized
(mic-phi-openmp / mic-phi-ispc), and the back-end swap is additionally
demonstrated for real by running the DPP primitives on every device adapter
registered on this machine -- ``serial`` versus ``vectorized`` always (the
reproduction's analogue of a poorly and a well matched back-end), plus the
optional ``jax`` accelerator device when installed.

:func:`measure_device` is also the measurement behind the
``device_comparison`` section of ``BENCH_render.json`` (see ``emit_bench``
and ``perf_guard``).
"""

from __future__ import annotations

import time

import numpy as np

from common import observed_surface_features, print_table, surface_scene_pool, synthetic_rays_per_second
from repro.dpp import list_devices, segmented_argmin, stream_compact, use_device

#: Elements per compaction round; sized so the vectorized device is safely
#: out of interpreter-overhead territory but a serial round stays affordable.
COMPACTION_ELEMENTS = 200_000

#: Segments for the segmented_argmin round (the ray tracer's winner pick).
ARGMIN_SEGMENTS = 2_000

#: Measurement rounds per primitive (after one untimed warm-up round, which
#: lets jit back-ends compile outside the timed region).
ROUNDS = 3


def _workload(rng: np.random.Generator):
    flags = rng.random(COMPACTION_ELEMENTS) < 0.5
    payload = rng.random(COMPACTION_ELEMENTS)
    values = rng.random(COMPACTION_ELEMENTS)
    tiebreak = rng.integers(0, 64, COMPACTION_ELEMENTS)
    starts = np.arange(ARGMIN_SEGMENTS, dtype=np.int64) * (
        COMPACTION_ELEMENTS // ARGMIN_SEGMENTS
    )
    return flags, payload, values, tiebreak, starts


def measure_device(name: str, elements: int = COMPACTION_ELEMENTS) -> dict[str, float]:
    """Throughput of the two renderer-critical idioms on one device.

    Returns M elements/s for the stream-compaction idiom (reduce + scan +
    reverse_index + gather) and for ``segmented_argmin`` -- the two composite
    primitives the ray tracer's hot loop is made of.
    """
    rng = np.random.default_rng(51)
    flags, payload, values, tiebreak, starts = _workload(rng)
    with use_device(name):
        # Warm-up: triggers jit compilation / caching on accelerator devices.
        stream_compact(flags[:1024], payload[:1024])
        segmented_argmin(values[:1024], starts[:4], tiebreak[:1024])

        begin = time.perf_counter()
        for _ in range(ROUNDS):
            stream_compact(flags, payload)
        compaction_seconds = (time.perf_counter() - begin) / ROUNDS

        begin = time.perf_counter()
        for _ in range(ROUNDS):
            segmented_argmin(values, starts, tiebreak)
        argmin_seconds = (time.perf_counter() - begin) / ROUNDS

    return {
        "compaction_mops": elements / compaction_seconds / 1e6,
        "segmented_argmin_mops": elements / argmin_seconds / 1e6,
    }


def measure_all_devices() -> dict[str, dict[str, float]]:
    """:func:`measure_device` for every device registered on this machine."""
    return {name: measure_device(name) for name in list_devices()}


def test_table05_backend_comparison(benchmark):
    pool = surface_scene_pool()[:4]
    rows = []
    speedups = []
    for entry in pool:
        features = observed_surface_features(entry)
        openmp = synthetic_rays_per_second("mic-phi-openmp", features) / 1e6
        ispc = synthetic_rays_per_second("mic-phi-ispc", features) / 1e6
        speedups.append(ispc / openmp)
        rows.append([entry.name, f"{openmp:.2f}", f"{ispc:.1f}", f"{ispc / openmp:.1f}x"])
    print_table("Table 5: Xeon Phi Mrays/s, OpenMP vs ISPC back-end", ["dataset", "OpenMP", "ISPC", "speedup"], rows)

    # Demonstrate the back-end swap on the real primitives: the compaction
    # and winner-pick idioms on every registered device adapter.
    device_results = measure_all_devices()
    serial = device_results["serial"]
    device_rows = [
        [
            name,
            f"{result['compaction_mops']:.1f}",
            f"{result['segmented_argmin_mops']:.1f}",
            f"{result['compaction_mops'] / serial['compaction_mops']:.1f}x",
        ]
        for name, result in device_results.items()
    ]
    print_table(
        "DPP device back-ends (M elements/s, 200k-element idioms)",
        ["device", "compaction", "segmented_argmin", "vs serial"],
        device_rows,
    )

    def vectorized_compaction():
        measure_device("vectorized", COMPACTION_ELEMENTS)

    benchmark(vectorized_compaction)
    # Paper: the ISPC back-end gives 5x-9x over OpenMP.
    assert all(4.0 < s < 12.0 for s in speedups)
    # The real back-end swap must point the same way: a well-matched device
    # beats the poorly-matched one on both idioms.
    assert device_results["vectorized"]["compaction_mops"] > serial["compaction_mops"]
    assert (
        device_results["vectorized"]["segmented_argmin_mops"]
        > serial["segmented_argmin_mops"]
    )
