"""Table 15: large-scale prediction on a leading-edge machine (Titan / GPU2).

Calibrates each renderer's model from a small number of experiments on the
``gpu2-titan-k20`` architecture (the Titan substitution), then predicts a
1024-task rendering at 2048^2 and compares against the "measured" (synthesized
out-of-sample) run time -- the Table 15 workflow.
"""

from __future__ import annotations

from common import print_table
from repro.machines import KernelCostModel
from repro.modeling import RenderingConfiguration, map_configuration_to_features
from repro.modeling.calibration import MachineCalibration, validate_large_scale_prediction

TECHNIQUES = ("raytrace", "volume", "raster")


def test_table15_titan_scale_prediction(benchmark):
    calibrator = MachineCalibration("gpu2-titan-k20", simulation="cloverleaf", calibration_samples=10, seed=41)
    oracle = KernelCostModel("gpu2-titan-k20", seed=314)

    rows = []
    differences = {}
    for technique in TECHNIQUES:
        calibration = calibrator.calibrate(technique)
        config = RenderingConfiguration(
            technique=technique,
            architecture="gpu2-titan-k20",
            num_tasks=1024,
            cells_per_task=252,   # 1024 * 252^3 ~ 16.4 billion cells, as in the paper
            image_width=2048,
            image_height=2048,
        )
        features = map_configuration_to_features(config)
        synthetic_technique = {"raytrace": "raytrace", "raster": "raster", "volume": "volume_structured"}[technique]
        measured = oracle.total(synthetic_technique, features, include_build=False)
        row = validate_large_scale_prediction(calibration, config, measured)
        differences[technique] = row["difference_percent"]
        rows.append(
            [
                technique,
                f"{row['actual_seconds']:.4f}s",
                f"{row['predicted_seconds']:.4f}s",
                f"{row['difference_percent']:+.1f}%",
                int(row["sample_points"]),
            ]
        )
    print_table(
        "Table 15: Titan-scale prediction after small-sample calibration (1024 tasks, 2048^2, ~16B cells)",
        ["technique", "actual", "predicted", "difference", "sample points"],
        rows,
    )

    benchmark(lambda: calibrator.calibrate("raster"))
    # Surface renderers predict within tens of percent (paper: -6% and +18%);
    # volume rendering is allowed to be far off (paper: -79%).
    assert abs(differences["raytrace"]) < 60.0
    assert abs(differences["raster"]) < 60.0
