"""Device adapters (back-ends) for the data-parallel primitives.

EAVL and VTK-m compile a single algorithm description to multiple back-ends
(serial, OpenMP/TBB, CUDA, ISPC).  The reproduction keeps the same structure:
primitives in :mod:`repro.dpp.primitives` never execute work themselves; they
delegate to the active :class:`Device`.  Three devices ship in-tree:

``vectorized``
    Executes every primitive with numpy array operations.  This is the
    production back-end and the one whose wall-clock time is measured for the
    "CPU1" architecture in the study.

``serial``
    Executes primitives with explicit Python loops.  It is deliberately slow
    but trivially correct, and is used for differential testing and to
    reproduce the paper's back-end comparison experiments (Table 5), where a
    poorly-matched back-end (OpenMP on Xeon Phi) is contrasted with a
    well-matched one (ISPC).

``jax``
    An accelerator back-end built on ``jax.jit``-compiled XLA kernels
    (:mod:`repro.dpp.backends.jax_device`).  It is registered *lazily*: the
    name only appears in :func:`list_devices` when the optional ``jax``
    package is importable (``pip install -e ".[jax]"``), and the adapter is
    constructed on first :func:`get_device` call.  Machines without JAX see
    exactly the two CPU devices and never pay an import attempt beyond a
    ``find_spec`` probe.

Devices are selected through :func:`use_device`, which is a context manager
mirroring VTK-m's runtime device tracker.  The active device is tracked in a
:class:`contextvars.ContextVar`, so activation is task- and thread-local:
concurrent ``use_device`` blocks on an asyncio event loop or across executor
threads each see their own device and restore their own previous device on
exit, instead of racing on one process-global slot.
"""

from __future__ import annotations

import contextlib
import contextvars
import importlib.util
from dataclasses import dataclass, field
from typing import Callable, Iterator

import numpy as np

__all__ = [
    "Device",
    "DeviceUnavailableError",
    "SerialDevice",
    "VectorizedDevice",
    "DeviceRegistry",
    "register_device",
    "register_lazy_device",
    "get_device",
    "use_device",
    "list_devices",
    "device_available",
]

#: Reduction operators every device must support.
REDUCE_OPERATORS = ("add", "min", "max")


class DeviceUnavailableError(KeyError):
    """A registered device cannot be used on this machine.

    Raised by :meth:`DeviceRegistry.get` when a lazily registered back-end's
    capability probe fails (e.g. the ``jax`` package is not installed) or its
    loader raises.  Subclasses :class:`KeyError` so callers treating "no such
    device" and "device unusable here" alike keep working.
    """

    def __init__(self, name: str, reason: str) -> None:
        super().__init__(name)
        self.device_name = name
        self.reason = reason

    def __str__(self) -> str:
        return f"device {self.device_name!r} is unavailable: {self.reason}"


class Device:
    """Abstract device adapter.

    Subclasses implement the raw execution of each primitive.  All inputs and
    outputs are numpy arrays; functors are plain Python callables that accept
    and return arrays (vectorized device) or scalars (serial device is free to
    call them element-wise when ``elementwise`` is requested).

    :meth:`reduce` is a template method: the operator/empty-input contract
    (unknown operators raise ``ValueError``; an empty ``add`` reduction
    returns the zero identity; empty ``min``/``max`` raise ``ValueError``) is
    enforced here once, so every device -- including direct ``Device.reduce``
    callers that bypass :func:`repro.dpp.primitives.reduce_field` -- behaves
    identically.  Devices implement :meth:`_reduce_impl` for the non-empty
    case only.
    """

    #: Unique registry name.
    name: str = "abstract"

    # -- mandatory primitive implementations ---------------------------------
    def map(self, functor: Callable, *arrays: np.ndarray) -> np.ndarray | tuple:
        raise NotImplementedError

    def gather(self, values: np.ndarray, indices: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def scatter(
        self, values: np.ndarray, indices: np.ndarray, output: np.ndarray
    ) -> np.ndarray:
        raise NotImplementedError

    def reduce(self, values: np.ndarray, operator: str) -> np.generic:
        """Validated reduction entry point (shared across all devices)."""
        values = np.asarray(values)
        if operator not in REDUCE_OPERATORS:
            raise ValueError(f"unknown reduction operator: {operator!r}")
        if len(values) == 0:
            if operator == "add":
                if values.ndim > 1:
                    return np.zeros(values.shape[1:], dtype=values.dtype)
                return values.dtype.type(0)
            raise ValueError(f"cannot {operator}-reduce an empty array")
        return self._reduce_impl(values, operator)

    def _reduce_impl(self, values: np.ndarray, operator: str) -> np.generic:
        """Reduce a validated, non-empty array (device-specific)."""
        raise NotImplementedError

    def scan(self, values: np.ndarray, inclusive: bool) -> np.ndarray:
        raise NotImplementedError

    def reverse_index(self, scan_result: np.ndarray, flags: np.ndarray) -> np.ndarray:
        """Original indices of the flagged elements, ordered by scan offset.

        ``scan_result`` is the exclusive prefix sum of ``flags``; survivor
        ``i`` lands at output position ``scan_result[i]``.  This is the
        ``reverseIndex`` step of the paper's stream-compaction idiom
        (Algorithm 1, line 21 and Algorithm 2, line 20) -- a scatter of the
        survivors' positions through their scan offsets.
        """
        raise NotImplementedError

    def segmented_argmin(
        self, values: np.ndarray, starts: np.ndarray, tiebreak: np.ndarray
    ) -> np.ndarray:
        """Global index of the minimum of each contiguous segment of ``values``.

        ``starts`` are the segment start offsets (ascending, ``starts[0] == 0``,
        every segment non-empty).  Ties on the value are broken by the smallest
        ``tiebreak`` entry, then by position, making the result deterministic
        across devices.  Used by the ray tracer's batched leaf intersector to
        pick the winning triangle per ray.
        """
        raise NotImplementedError


class VectorizedDevice(Device):
    """numpy-backed device adapter (the production back-end)."""

    name = "vectorized"

    def map(self, functor: Callable, *arrays: np.ndarray) -> np.ndarray | tuple:
        return functor(*arrays)

    def gather(self, values: np.ndarray, indices: np.ndarray) -> np.ndarray:
        return np.take(values, indices, axis=0)

    def scatter(
        self, values: np.ndarray, indices: np.ndarray, output: np.ndarray
    ) -> np.ndarray:
        output[indices] = values
        return output

    def _reduce_impl(self, values: np.ndarray, operator: str) -> np.generic:
        if operator == "add":
            return values.sum(axis=0)
        if operator == "min":
            return values.min(axis=0)
        return values.max(axis=0)

    def scan(self, values: np.ndarray, inclusive: bool) -> np.ndarray:
        result = np.cumsum(values, axis=0)
        if inclusive or len(result) == 0:
            return result
        exclusive = np.empty_like(result)
        exclusive[0] = 0
        exclusive[1:] = result[:-1]
        return exclusive

    def reverse_index(self, scan_result: np.ndarray, flags: np.ndarray) -> np.ndarray:
        count = int(scan_result[-1]) + int(flags[-1]) if len(flags) else 0
        out = np.empty(count, dtype=np.int64)
        out[scan_result[flags]] = np.flatnonzero(flags)
        return out

    def segmented_argmin(
        self, values: np.ndarray, starts: np.ndarray, tiebreak: np.ndarray
    ) -> np.ndarray:
        total = len(values)
        segment_of = np.repeat(
            np.arange(len(starts), dtype=np.int64),
            np.diff(np.append(starts, total)),
        )
        segment_min = np.minimum.reduceat(values, starts)
        at_min = values == segment_min[segment_of]
        big = np.iinfo(np.int64).max
        masked_tiebreak = np.where(at_min, tiebreak, big)
        segment_tiebreak = np.minimum.reduceat(masked_tiebreak, starts)
        winning = at_min & (masked_tiebreak == segment_tiebreak[segment_of])
        positions = np.where(winning, np.arange(total, dtype=np.int64), total)
        return np.minimum.reduceat(positions, starts)


class SerialDevice(Device):
    """Pure-Python loop device adapter (reference back-end).

    Functors passed to :meth:`map` are still called on whole arrays (they are
    written vectorized throughout the library); the serial device differs in
    how the structural primitives -- gather, scatter, reduce, scan -- are
    executed, using explicit loops so they can be diffed against the
    vectorized implementations.
    """

    name = "serial"

    def map(self, functor: Callable, *arrays: np.ndarray) -> np.ndarray | tuple:
        return functor(*arrays)

    def gather(self, values: np.ndarray, indices: np.ndarray) -> np.ndarray:
        indices = np.asarray(indices)
        out_shape = (len(indices),) + values.shape[1:]
        out = np.empty(out_shape, dtype=values.dtype)
        for position, index in enumerate(indices):
            out[position] = values[index]
        return out

    def scatter(
        self, values: np.ndarray, indices: np.ndarray, output: np.ndarray
    ) -> np.ndarray:
        indices = np.asarray(indices)
        for position, index in enumerate(indices):
            output[index] = values[position]
        return output

    def _reduce_impl(self, values: np.ndarray, operator: str) -> np.generic:
        accumulator = values[0]
        for value in values[1:]:
            if operator == "add":
                accumulator = accumulator + value
            elif operator == "min":
                accumulator = np.minimum(accumulator, value)
            else:
                accumulator = np.maximum(accumulator, value)
        return accumulator

    def scan(self, values: np.ndarray, inclusive: bool) -> np.ndarray:
        out = np.empty_like(np.asarray(values))
        running = np.zeros_like(np.asarray(values[:1]).sum(axis=0)) if len(values) else 0
        for position, value in enumerate(values):
            if inclusive:
                running = running + value
                out[position] = running
            else:
                out[position] = running
                running = running + value
        return out

    def reverse_index(self, scan_result: np.ndarray, flags: np.ndarray) -> np.ndarray:
        count = 0
        for flag in flags:
            count += int(bool(flag))
        out = np.empty(count, dtype=np.int64)
        for position, flag in enumerate(flags):
            if flag:
                out[int(scan_result[position])] = position
        return out

    def segmented_argmin(
        self, values: np.ndarray, starts: np.ndarray, tiebreak: np.ndarray
    ) -> np.ndarray:
        boundaries = list(starts) + [len(values)]
        out = np.empty(len(starts), dtype=np.int64)
        for segment in range(len(starts)):
            best = boundaries[segment]
            for position in range(boundaries[segment] + 1, boundaries[segment + 1]):
                key = (values[position], tiebreak[position], position)
                if key < (values[best], tiebreak[best], best):
                    best = position
            out[segment] = best
        return out


@dataclass
class _LazyDevice:
    """A device registered by name only, constructed on first use.

    ``probe`` answers "could :func:`loader` succeed on this machine?" cheaply
    (no heavyweight imports) by returning ``None`` when available or a
    human-readable reason string when not.  ``loader`` performs the real
    import and returns the constructed :class:`Device`.
    """

    name: str
    loader: Callable[[], Device]
    probe: Callable[[], str | None] = field(default=lambda: None)

    def unavailable_reason(self) -> str | None:
        return self.probe()


class DeviceRegistry:
    """Registry of available devices with a context-local active device.

    The active device is held in a :class:`contextvars.ContextVar`, not an
    instance attribute: each asyncio task and each thread resolves (and
    restores) its own activation, so interleaved :meth:`activate` blocks --
    the serving tier's event loop, the sweep executor's workers -- can never
    restore one another's device.  A context that never activated anything
    falls back to the registry default (the first eagerly registered device).
    """

    def __init__(self) -> None:
        self._devices: dict[str, Device] = {}
        self._lazy: dict[str, _LazyDevice] = {}
        self._default: str | None = None
        self._active: contextvars.ContextVar[str | None] = contextvars.ContextVar(
            "repro_dpp_active_device", default=None
        )

    def register(self, device: Device) -> None:
        """Add ``device``; the first registration becomes the default device."""
        self._devices[device.name] = device
        self._lazy.pop(device.name, None)
        if self._default is None:
            self._default = device.name

    def register_lazy(
        self,
        name: str,
        loader: Callable[[], Device],
        probe: Callable[[], str | None] | None = None,
    ) -> None:
        """Register a device by name without constructing (or importing) it.

        ``loader`` is called on first :meth:`get`; ``probe`` (optional) is a
        cheap capability check returning ``None`` when the back-end should
        work here and a reason string otherwise.  Unavailable lazy devices are
        hidden from :meth:`names`, so test parametrizations and device sweeps
        over ``list_devices()`` adapt to the machine automatically.
        """
        if name not in self._devices:
            self._lazy[name] = _LazyDevice(name, loader, probe or (lambda: None))

    def available(self, name: str) -> bool:
        """Whether :meth:`get` would return a device for ``name`` here."""
        if name in self._devices:
            return True
        entry = self._lazy.get(name)
        return entry is not None and entry.unavailable_reason() is None

    def get(self, name: str | None = None) -> Device:
        """Return the named device, or the active device when ``name`` is None."""
        if name is None:
            name = self._active.get() or self._default
            if name is None:
                raise RuntimeError("no device registered")
        device = self._devices.get(name)
        if device is not None:
            return device
        if name in self._lazy:
            return self._materialize(self._lazy[name])
        raise KeyError(
            f"unknown device {name!r}; registered: {self.names()}"
        )

    def _materialize(self, entry: _LazyDevice) -> Device:
        reason = entry.unavailable_reason()
        if reason is not None:
            raise DeviceUnavailableError(entry.name, reason)
        try:
            device = entry.loader()
        except Exception as error:  # e.g. a broken optional install
            raise DeviceUnavailableError(
                entry.name, f"back-end failed to load: {error!r}"
            ) from error
        if device.name != entry.name:
            raise RuntimeError(
                f"lazy device {entry.name!r} loaded an adapter named {device.name!r}"
            )
        self.register(device)
        return device

    def names(self) -> list[str]:
        """Names of every device usable on this machine (lazy ones probed)."""
        usable = set(self._devices)
        for name, entry in self._lazy.items():
            if entry.unavailable_reason() is None:
                usable.add(name)
        return sorted(usable)

    @property
    def active(self) -> str | None:
        """The calling context's active device name (default when unset)."""
        return self._active.get() or self._default

    @contextlib.contextmanager
    def activate(self, name: str) -> Iterator[Device]:
        """Temporarily make ``name`` the active device in this context."""
        device = self.get(name)
        token = self._active.set(device.name)
        try:
            yield device
        finally:
            self._active.reset(token)


# ---------------------------------------------------------------------------
# Built-in back-ends
# ---------------------------------------------------------------------------

def _jax_probe() -> str | None:
    """Capability probe for the optional JAX back-end (no jax import)."""
    if importlib.util.find_spec("jax") is None:
        return "the 'jax' package is not installed (pip install -e \".[jax]\")"
    return None


def _load_jax_device() -> Device:
    from repro.dpp.backends.jax_device import JaxDevice

    return JaxDevice()


#: Process-global registry used by the primitive front-ends.
_REGISTRY = DeviceRegistry()
_REGISTRY.register(VectorizedDevice())
_REGISTRY.register(SerialDevice())
_REGISTRY.register_lazy("jax", _load_jax_device, _jax_probe)


def register_device(device: Device) -> None:
    """Register a custom device adapter in the global registry."""
    _REGISTRY.register(device)


def register_lazy_device(
    name: str,
    loader: Callable[[], Device],
    probe: Callable[[], str | None] | None = None,
) -> None:
    """Register a capability-gated device adapter in the global registry."""
    _REGISTRY.register_lazy(name, loader, probe)


def get_device(name: str | None = None) -> Device:
    """Return a registered device (the active one when ``name`` is omitted)."""
    return _REGISTRY.get(name)


def use_device(name: str):
    """Context manager selecting the active device for the enclosed block.

    Activation is context-local (task- and thread-local): concurrent blocks
    do not observe or clobber each other's device.
    """
    return _REGISTRY.activate(name)


def list_devices() -> list[str]:
    """Names of all devices usable on this machine."""
    return _REGISTRY.names()


def device_available(name: str) -> bool:
    """Whether ``get_device(name)`` would succeed on this machine."""
    return _REGISTRY.available(name)
