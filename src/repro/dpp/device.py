"""Device adapters (back-ends) for the data-parallel primitives.

EAVL and VTK-m compile a single algorithm description to multiple back-ends
(serial, OpenMP/TBB, CUDA, ISPC).  The reproduction keeps the same structure:
primitives in :mod:`repro.dpp.primitives` never execute work themselves; they
delegate to the active :class:`Device`.  Two devices are provided:

``vectorized``
    Executes every primitive with numpy array operations.  This is the
    production back-end and the one whose wall-clock time is measured for the
    "CPU1" architecture in the study.

``serial``
    Executes primitives with explicit Python loops.  It is deliberately slow
    but trivially correct, and is used for differential testing and to
    reproduce the paper's back-end comparison experiments (Table 5), where a
    poorly-matched back-end (OpenMP on Xeon Phi) is contrasted with a
    well-matched one (ISPC).

Devices are selected globally through :func:`use_device`, which is also a
context manager, mirroring VTK-m's runtime device tracker.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterator

import numpy as np

__all__ = [
    "Device",
    "SerialDevice",
    "VectorizedDevice",
    "DeviceRegistry",
    "register_device",
    "get_device",
    "use_device",
    "list_devices",
]


class Device:
    """Abstract device adapter.

    Subclasses implement the raw execution of each primitive.  All inputs and
    outputs are numpy arrays; functors are plain Python callables that accept
    and return arrays (vectorized device) or scalars (serial device is free to
    call them element-wise when ``elementwise`` is requested).
    """

    #: Unique registry name.
    name: str = "abstract"

    # -- mandatory primitive implementations ---------------------------------
    def map(self, functor: Callable, *arrays: np.ndarray) -> np.ndarray | tuple:
        raise NotImplementedError

    def gather(self, values: np.ndarray, indices: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def scatter(
        self, values: np.ndarray, indices: np.ndarray, output: np.ndarray
    ) -> np.ndarray:
        raise NotImplementedError

    def reduce(self, values: np.ndarray, operator: str) -> np.generic:
        raise NotImplementedError

    def scan(self, values: np.ndarray, inclusive: bool) -> np.ndarray:
        raise NotImplementedError

    def segmented_argmin(
        self, values: np.ndarray, starts: np.ndarray, tiebreak: np.ndarray
    ) -> np.ndarray:
        """Global index of the minimum of each contiguous segment of ``values``.

        ``starts`` are the segment start offsets (ascending, ``starts[0] == 0``,
        every segment non-empty).  Ties on the value are broken by the smallest
        ``tiebreak`` entry, then by position, making the result deterministic
        across devices.  Used by the ray tracer's batched leaf intersector to
        pick the winning triangle per ray.
        """
        raise NotImplementedError


class VectorizedDevice(Device):
    """numpy-backed device adapter (the production back-end)."""

    name = "vectorized"

    def map(self, functor: Callable, *arrays: np.ndarray) -> np.ndarray | tuple:
        return functor(*arrays)

    def gather(self, values: np.ndarray, indices: np.ndarray) -> np.ndarray:
        return np.take(values, indices, axis=0)

    def scatter(
        self, values: np.ndarray, indices: np.ndarray, output: np.ndarray
    ) -> np.ndarray:
        output[indices] = values
        return output

    def reduce(self, values: np.ndarray, operator: str) -> np.generic:
        if operator == "add":
            return values.sum(axis=0)
        if operator == "min":
            return values.min(axis=0)
        if operator == "max":
            return values.max(axis=0)
        raise ValueError(f"unknown reduction operator: {operator!r}")

    def scan(self, values: np.ndarray, inclusive: bool) -> np.ndarray:
        result = np.cumsum(values, axis=0)
        if inclusive or len(result) == 0:
            return result
        exclusive = np.empty_like(result)
        exclusive[0] = 0
        exclusive[1:] = result[:-1]
        return exclusive

    def segmented_argmin(
        self, values: np.ndarray, starts: np.ndarray, tiebreak: np.ndarray
    ) -> np.ndarray:
        total = len(values)
        segment_of = np.repeat(
            np.arange(len(starts), dtype=np.int64),
            np.diff(np.append(starts, total)),
        )
        segment_min = np.minimum.reduceat(values, starts)
        at_min = values == segment_min[segment_of]
        big = np.iinfo(np.int64).max
        masked_tiebreak = np.where(at_min, tiebreak, big)
        segment_tiebreak = np.minimum.reduceat(masked_tiebreak, starts)
        winning = at_min & (masked_tiebreak == segment_tiebreak[segment_of])
        positions = np.where(winning, np.arange(total, dtype=np.int64), total)
        return np.minimum.reduceat(positions, starts)


class SerialDevice(Device):
    """Pure-Python loop device adapter (reference back-end).

    Functors passed to :meth:`map` are still called on whole arrays (they are
    written vectorized throughout the library); the serial device differs in
    how the structural primitives -- gather, scatter, reduce, scan -- are
    executed, using explicit loops so they can be diffed against the
    vectorized implementations.
    """

    name = "serial"

    def map(self, functor: Callable, *arrays: np.ndarray) -> np.ndarray | tuple:
        return functor(*arrays)

    def gather(self, values: np.ndarray, indices: np.ndarray) -> np.ndarray:
        indices = np.asarray(indices)
        out_shape = (len(indices),) + values.shape[1:]
        out = np.empty(out_shape, dtype=values.dtype)
        for position, index in enumerate(indices):
            out[position] = values[index]
        return out

    def scatter(
        self, values: np.ndarray, indices: np.ndarray, output: np.ndarray
    ) -> np.ndarray:
        indices = np.asarray(indices)
        for position, index in enumerate(indices):
            output[index] = values[position]
        return output

    def reduce(self, values: np.ndarray, operator: str) -> np.generic:
        if len(values) == 0:
            return VectorizedDevice().reduce(values, operator)
        accumulator = values[0]
        for value in values[1:]:
            if operator == "add":
                accumulator = accumulator + value
            elif operator == "min":
                accumulator = np.minimum(accumulator, value)
            elif operator == "max":
                accumulator = np.maximum(accumulator, value)
            else:
                raise ValueError(f"unknown reduction operator: {operator!r}")
        return accumulator

    def scan(self, values: np.ndarray, inclusive: bool) -> np.ndarray:
        out = np.empty_like(np.asarray(values))
        running = np.zeros_like(np.asarray(values[:1]).sum(axis=0)) if len(values) else 0
        for position, value in enumerate(values):
            if inclusive:
                running = running + value
                out[position] = running
            else:
                out[position] = running
                running = running + value
        return out

    def segmented_argmin(
        self, values: np.ndarray, starts: np.ndarray, tiebreak: np.ndarray
    ) -> np.ndarray:
        boundaries = list(starts) + [len(values)]
        out = np.empty(len(starts), dtype=np.int64)
        for segment in range(len(starts)):
            best = boundaries[segment]
            for position in range(boundaries[segment] + 1, boundaries[segment + 1]):
                key = (values[position], tiebreak[position], position)
                if key < (values[best], tiebreak[best], best):
                    best = position
            out[segment] = best
        return out


class DeviceRegistry:
    """Registry of available devices with one globally active device."""

    def __init__(self) -> None:
        self._devices: dict[str, Device] = {}
        self._active: str | None = None

    def register(self, device: Device) -> None:
        """Add ``device``; the first registration becomes the active device."""
        self._devices[device.name] = device
        if self._active is None:
            self._active = device.name

    def get(self, name: str | None = None) -> Device:
        """Return the named device, or the active device when ``name`` is None."""
        if name is None:
            if self._active is None:
                raise RuntimeError("no device registered")
            name = self._active
        try:
            return self._devices[name]
        except KeyError:
            raise KeyError(
                f"unknown device {name!r}; registered: {sorted(self._devices)}"
            ) from None

    def names(self) -> list[str]:
        return sorted(self._devices)

    @property
    def active(self) -> str | None:
        return self._active

    @contextlib.contextmanager
    def activate(self, name: str) -> Iterator[Device]:
        """Temporarily make ``name`` the active device."""
        device = self.get(name)
        previous = self._active
        self._active = name
        try:
            yield device
        finally:
            self._active = previous


#: Process-global registry used by the primitive front-ends.
_REGISTRY = DeviceRegistry()
_REGISTRY.register(VectorizedDevice())
_REGISTRY.register(SerialDevice())


def register_device(device: Device) -> None:
    """Register a custom device adapter in the global registry."""
    _REGISTRY.register(device)


def get_device(name: str | None = None) -> Device:
    """Return a registered device (the active one when ``name`` is omitted)."""
    return _REGISTRY.get(name)


def use_device(name: str):
    """Context manager selecting the active device for the enclosed block."""
    return _REGISTRY.activate(name)


def list_devices() -> list[str]:
    """Names of all registered devices."""
    return _REGISTRY.names()
