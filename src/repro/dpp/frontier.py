"""The frontier kernel engine: one compacted-SoA substrate for every renderer.

The paper's central claim is that ray tracing, rasterization, and volume
rendering admit one cost-model family because they share a data-parallel
primitive substrate.  This module is that substrate's execution engine for
*image-order* work: a pool of independent lanes (rays, pixels) that march
through a per-lane computation, retire at different times, and are kept dense
by periodic stream compaction.

The machinery was originally welded into the BVH traversal loop
(``repro.rendering.raytracer.traversal``); it is factored out here so the
structured and unstructured volume ray casters run on the same engine:

* :class:`FrontierLanes` -- a contiguous structure-of-arrays of per-lane
  state.  Every field is one flat (or ``(n, k)``) array whose leading
  dimension is the lane count, so each vectorized step touches only resident
  lanes instead of fancy-indexing full-width arrays.
* :class:`FrontierKernel` -- the protocol a client implements: ``step``
  advances every resident lane once and returns the lanes that retired.
* :class:`FrontierEngine` -- owns the loop: it calls ``step`` until every
  lane has retired, and once enough lanes are dead it *flushes* (scatters the
  retired lanes' declared output fields back to full-width arrays) and
  *compacts* (drops dead lanes from every state array).  Both the flush and
  the compaction run through :mod:`repro.dpp.primitives`, so they are
  device-routed (the ``vectorized`` and ``serial`` back-ends execute the same
  kernels) and observed by :class:`repro.dpp.instrument.OpCounters` -- the
  reproduction's stand-in for PAPI/nvprof counters.

Retired lanes may ride along in the frontier until the next compaction;
kernels must treat them as inert (their retirement state is visible both in
``lanes.retired`` and in whatever lane state encodes it, e.g. an empty
traversal stack).
"""

from __future__ import annotations

from typing import Mapping, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.dpp.primitives import scatter, stream_compact

__all__ = [
    "FrontierLanes",
    "FrontierKernel",
    "FrontierEngine",
    "FRONTIER_COMPACT_FRACTION",
    "FRONTIER_COMPACT_MIN",
]

#: Retired fraction of the frontier that triggers a re-compaction.
FRONTIER_COMPACT_FRACTION = 0.25

#: Minimum number of retired lanes before a re-compaction is worthwhile
#: (below this the stream-compact overhead outweighs the dead-lane waste).
FRONTIER_COMPACT_MIN = 256


class FrontierLanes:
    """Contiguous SoA of per-lane state resident in a frontier loop.

    Parameters
    ----------
    lane_ids:
        Integer id of each lane in the full-width output arrays (typically
        ray or pixel indices).  Compaction preserves these, so retiring
        lanes always scatter back to their original slot.
    state:
        Mapping of field name to array; every array's leading dimension must
        equal ``len(lane_ids)``.  Arrays may be multi-dimensional (per-lane
        traversal stacks, RGB accumulators).

    The engine adds (and owns) ``retired``, the boolean mask of lanes whose
    retirement has been recorded but not yet flushed.
    """

    __slots__ = ("lane_ids", "state", "retired")

    def __init__(self, lane_ids: np.ndarray, state: Mapping[str, np.ndarray]) -> None:
        self.lane_ids = np.asarray(lane_ids, dtype=np.int64)
        if self.lane_ids.ndim != 1:
            raise ValueError("lane_ids must be one-dimensional")
        self.state = dict(state)
        for name, array in self.state.items():
            if len(array) != len(self.lane_ids):
                raise ValueError(
                    f"state field {name!r} has leading dimension {len(array)}, "
                    f"expected {len(self.lane_ids)}"
                )
        self.retired = np.zeros(len(self.lane_ids), dtype=bool)

    def __len__(self) -> int:
        return len(self.lane_ids)

    def __getitem__(self, name: str) -> np.ndarray:
        return self.state[name]

    def __setitem__(self, name: str, array: np.ndarray) -> None:
        self.state[name] = array

    def __contains__(self, name: str) -> bool:
        return name in self.state


@runtime_checkable
class FrontierKernel(Protocol):
    """The per-lane computation a :class:`FrontierEngine` drives.

    Attributes
    ----------
    output_fields:
        Names of the lane-state fields scattered into the same-named
        full-width output arrays when a lane retires (values are cast to the
        output array's dtype).

    Methods
    -------
    step(lanes):
        Advance every resident lane by one engine iteration, mutating lane
        state in place, and return a boolean mask (over the resident lanes)
        of lanes retired *as of* this step.  The mask may simply re-report
        lanes that already retired (retirement is sticky); lanes marked
        retired must no longer change their output fields.
    on_compact(lanes):
        Optional hook called after every compaction (and before the first
        step if defined), so kernels can rebuild lane-count-derived caches
        such as flat stack addressing.
    """

    output_fields: Sequence[str]

    def step(self, lanes: FrontierLanes) -> np.ndarray: ...


class FrontierEngine:
    """Drives a :class:`FrontierKernel` over a frontier until all lanes retire.

    Parameters
    ----------
    compact_fraction, compact_min:
        A flush-and-compact runs once at least ``compact_min`` lanes *and*
        at least ``compact_fraction`` of the resident frontier have retired
        (or when every resident lane is dead).  These are the knobs that
        previously lived in ``rendering.raytracer.traversal``.
    device:
        Optional :mod:`repro.dpp.device` name routing the engine's
        stream-compact/scatter traffic; ``None`` uses the active device.
    max_steps:
        Optional safety bound on engine iterations; exceeding it raises
        ``RuntimeError`` (a kernel that stops retiring lanes would otherwise
        loop forever).
    """

    def __init__(
        self,
        compact_fraction: float = FRONTIER_COMPACT_FRACTION,
        compact_min: int = FRONTIER_COMPACT_MIN,
        device: str | None = None,
        max_steps: int | None = None,
    ) -> None:
        if not 0.0 <= compact_fraction <= 1.0:
            raise ValueError("compact_fraction must be in [0, 1]")
        if compact_min < 1:
            raise ValueError("compact_min must be positive")
        self.compact_fraction = float(compact_fraction)
        self.compact_min = int(compact_min)
        self.device = device
        self.max_steps = max_steps

    def run(
        self,
        kernel: FrontierKernel,
        lanes: FrontierLanes,
        outputs: Mapping[str, np.ndarray],
    ) -> int:
        """Step ``kernel`` until every lane has retired; returns the step count.

        ``outputs`` maps each of ``kernel.output_fields`` to a full-width
        array indexed by lane id; retiring lanes scatter their final state
        into it.  Lanes are compacted away according to the engine
        thresholds, so the loop stays dense without per-step compaction
        overhead.
        """
        missing = [name for name in kernel.output_fields if name not in outputs]
        if missing:
            raise KeyError(f"outputs missing kernel output fields: {missing}")
        hook = getattr(kernel, "on_compact", None)
        if hook is not None:
            hook(lanes)
        steps = 0
        while len(lanes):
            if self.max_steps is not None and steps >= self.max_steps:
                raise RuntimeError(f"frontier kernel exceeded {self.max_steps} steps")
            newly_retired = kernel.step(lanes)
            steps += 1
            lanes.retired |= newly_retired
            n_resident = len(lanes)
            dead = int(np.count_nonzero(lanes.retired))
            if dead and (
                dead == n_resident
                or (dead >= self.compact_min and dead >= self.compact_fraction * n_resident)
            ):
                self._flush_and_compact(kernel, lanes, outputs)
                if hook is not None and len(lanes):
                    hook(lanes)
        return steps

    def _flush_and_compact(
        self,
        kernel: FrontierKernel,
        lanes: FrontierLanes,
        outputs: Mapping[str, np.ndarray],
    ) -> None:
        """Scatter retiring lanes' outputs back, then compact the survivors."""
        resident = ~lanes.retired
        _, done = stream_compact(
            lanes.retired,
            lanes.lane_ids,
            *[lanes.state[name] for name in kernel.output_fields],
            device=self.device,
        )
        done_ids = done[0]
        for name, values in zip(kernel.output_fields, done[1:]):
            out = outputs[name]
            scatter(values.astype(out.dtype, copy=False), done_ids, out, device=self.device)
        names = list(lanes.state)
        _, kept = stream_compact(
            resident,
            lanes.lane_ids,
            *[lanes.state[name] for name in names],
            device=self.device,
        )
        lanes.lane_ids = kept[0]
        lanes.state = dict(zip(names, kept[1:]))
        lanes.retired = np.zeros(len(lanes.lane_ids), dtype=bool)
