"""JAX device adapter: the primitives as ``jit``-compiled XLA kernels.

This is the reproduction's third back-end behind the :class:`Device` seam --
the role CUDA played for EAVL/VTK-m in the paper, demonstrated here in the
``jax.jit`` idiom.  The structural primitives (gather, scatter, reduce, scan,
reverse-index, segmented argmin) each compile to an XLA kernel on first use
and re-trace automatically per input shape; all inputs arrive as numpy arrays
and all outputs are materialized back to numpy at the seam, which also forces
JAX's asynchronous dispatch to complete so the primitive layer's wall-clock
instrumentation stays honest.

Contract notes (the "bit-identity vs tolerance" policy, see DESIGN.md):

* ``map`` executes the functor on the host with numpy.  Functors are opaque
  Python callables that may mutate arrays in place, which traced JAX arrays
  forbid; EAVL's answer was user-compiled worklets, which this reproduction
  does not require of its callers.  Every *structural* primitive still runs
  on the accelerator.
* ``scatter`` deduplicates indices on the host (keeping the last occurrence)
  before the XLA scatter: numpy and the serial loop define duplicate-index
  scatter as last-write-wins, while XLA leaves the order undefined.  The
  dedup makes the contract deterministic on every device.
* Floating-point ``add`` reductions and scans may reassociate inside XLA and
  so are only guaranteed to ~1e-12 relative of the numpy result; integer and
  boolean accumulations, ``min``/``max``, gather/scatter, and every
  index-valued primitive (reverse-index, segmented argmin) are bit-identical.
  The compaction idiom scans int64 flags, so frontier compaction -- and with
  it the renderer differential suites -- inherits bit-identity.
* The adapter enables ``jax_enable_x64`` at construction: the rest of the
  library works in float64/int64 and silent down-casting to 32-bit would
  break the differential oracles.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.dpp.device import Device

__all__ = ["JaxDevice", "is_available"]


def is_available() -> bool:
    """Cheap capability probe (no jax import)."""
    import importlib.util

    return importlib.util.find_spec("jax") is not None


def _host(result) -> np.ndarray:
    """Materialize a JAX array on the host (blocks on async dispatch)."""
    return np.asarray(result)


class JaxDevice(Device):
    """``jax.jit``-compiled device adapter (accelerator back-end)."""

    name = "jax"

    def __init__(self) -> None:
        import jax

        jax.config.update("jax_enable_x64", True)
        import jax.numpy as jnp

        self._jnp = jnp

        self._gather_kernel = jax.jit(lambda values, indices: jnp.take(values, indices, axis=0))
        self._scatter_kernel = jax.jit(
            lambda values, indices, output: output.at[indices].set(values, unique_indices=True)
        )
        self._reduce_kernels: dict[str, Callable] = {
            "add": jax.jit(lambda values: jnp.sum(values, axis=0)),
            "min": jax.jit(lambda values: jnp.min(values, axis=0)),
            "max": jax.jit(lambda values: jnp.max(values, axis=0)),
        }
        self._inclusive_scan_kernel = jax.jit(lambda values: jnp.cumsum(values, axis=0))

        def _exclusive_scan(values):
            inclusive = jnp.cumsum(values, axis=0)
            return jnp.concatenate([jnp.zeros_like(inclusive[:1]), inclusive[:-1]], axis=0)

        self._exclusive_scan_kernel = jax.jit(_exclusive_scan)

        def _reverse_index(scan_result, flags, count):
            positions = jnp.arange(flags.shape[0], dtype=jnp.int64)
            # Unflagged elements are routed to the out-of-range slot ``count``
            # and dropped; every in-range slot receives exactly one write.
            targets = jnp.where(flags, scan_result, count)
            out = jnp.zeros(count, dtype=jnp.int64)
            return out.at[targets].set(positions, mode="drop")

        self._reverse_index_kernel = jax.jit(_reverse_index, static_argnums=2)

        def _segmented_argmin(values, segment_of, tiebreak, num_segments):
            total = values.shape[0]
            segment_min = jax.ops.segment_min(values, segment_of, num_segments=num_segments)
            at_min = values == segment_min[segment_of]
            big = np.iinfo(np.int64).max
            masked_tiebreak = jnp.where(at_min, tiebreak, big)
            segment_tiebreak = jax.ops.segment_min(
                masked_tiebreak, segment_of, num_segments=num_segments
            )
            winning = at_min & (masked_tiebreak == segment_tiebreak[segment_of])
            positions = jnp.where(winning, jnp.arange(total, dtype=jnp.int64), total)
            return jax.ops.segment_min(positions, segment_of, num_segments=num_segments)

        self._segmented_argmin_kernel = jax.jit(_segmented_argmin, static_argnums=3)

    # -- primitives -----------------------------------------------------------
    def map(self, functor: Callable, *arrays: np.ndarray) -> np.ndarray | tuple:
        # Host execution: functors are opaque numpy callables (see module
        # docstring).  The structural primitives below run on the accelerator.
        return functor(*arrays)

    def gather(self, values: np.ndarray, indices: np.ndarray) -> np.ndarray:
        return _host(self._gather_kernel(values, np.asarray(indices)))

    def scatter(
        self, values: np.ndarray, indices: np.ndarray, output: np.ndarray
    ) -> np.ndarray:
        values = np.asarray(values)
        indices = np.asarray(indices, dtype=np.int64)
        if len(indices) == 0:
            return output
        # Last-write-wins on duplicates, enforced on the host: XLA's scatter
        # order is undefined, so only unique indices reach the kernel.
        unique_indices, first_in_reversed = np.unique(indices[::-1], return_index=True)
        last_occurrence = len(indices) - 1 - first_in_reversed
        unique_values = values[last_occurrence].astype(output.dtype, copy=False)
        result = self._scatter_kernel(unique_values, unique_indices, output)
        np.copyto(output, _host(result))
        return output

    def _reduce_impl(self, values: np.ndarray, operator: str) -> np.generic:
        host = _host(self._reduce_kernels[operator](values))
        return host[()] if host.ndim == 0 else host

    def scan(self, values: np.ndarray, inclusive: bool) -> np.ndarray:
        values = np.asarray(values)
        if len(values) == 0:
            return np.cumsum(values, axis=0)
        kernel = self._inclusive_scan_kernel if inclusive else self._exclusive_scan_kernel
        return _host(kernel(values))

    def reverse_index(self, scan_result: np.ndarray, flags: np.ndarray) -> np.ndarray:
        flags = np.asarray(flags, dtype=bool)
        if len(flags) == 0:
            return np.empty(0, dtype=np.int64)
        scan_result = np.asarray(scan_result, dtype=np.int64)
        count = int(scan_result[-1]) + int(flags[-1])
        if count == 0:
            return np.empty(0, dtype=np.int64)
        return _host(self._reverse_index_kernel(scan_result, flags, count))

    def segmented_argmin(
        self, values: np.ndarray, starts: np.ndarray, tiebreak: np.ndarray
    ) -> np.ndarray:
        starts = np.asarray(starts, dtype=np.int64)
        total = len(values)
        segment_of = np.repeat(
            np.arange(len(starts), dtype=np.int64),
            np.diff(np.append(starts, total)),
        )
        result = self._segmented_argmin_kernel(
            np.asarray(values), segment_of, np.asarray(tiebreak, dtype=np.int64), len(starts)
        )
        return _host(result)
