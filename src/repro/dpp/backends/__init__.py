"""Optional accelerator back-ends for the data-parallel primitive layer.

Every module in this package implements the :class:`repro.dpp.device.Device`
contract on top of an optional third-party runtime and is registered *lazily*
(:func:`repro.dpp.device.register_lazy_device`): the device name only shows
up in ``list_devices()`` when the runtime is importable, and nothing here is
imported until the first ``get_device(<name>)`` call.  Machines without the
optional dependency keep exactly the built-in ``vectorized`` and ``serial``
CPU devices -- import of :mod:`repro.dpp` never touches this package.

Shipped back-ends:

* :mod:`repro.dpp.backends.jax_device` -- ``jax.jit``-compiled XLA kernels
  (CPU, GPU, or TPU, whatever the installed jaxlib targets).
"""
