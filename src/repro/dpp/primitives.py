"""The data-parallel primitives: map, gather, scatter, reduce, scan, compaction.

These are the operations enumerated in Section 2.3 of the dissertation.  Every
rendering algorithm in :mod:`repro.rendering` is written exclusively in terms
of these functions plus user-defined functors, exactly mirroring the paper's
EAVL/VTK-m implementations, so that the algorithmic-complexity terms used by
the performance models (objects touched, pixels touched, samples taken) can be
counted at this single choke point.

Each primitive

1. validates its inputs,
2. dispatches execution to the active :class:`repro.dpp.device.Device`, and
3. records wall-clock time, elements touched, and bytes moved into the global
   :class:`repro.dpp.instrument.OpCounters`.
"""

from __future__ import annotations

import time
from typing import Callable, Sequence

import numpy as np

from repro.dpp.device import get_device
from repro.dpp.instrument import get_instrumentation

__all__ = [
    "map_field",
    "gather",
    "scatter",
    "reduce_field",
    "inclusive_scan",
    "exclusive_scan",
    "reverse_index",
    "segmented_argmin",
    "stream_compact",
]


def _array_bytes(arrays: Sequence[np.ndarray]) -> int:
    """Sum of buffer sizes, used as the bytes-moved estimate."""
    return int(sum(np.asarray(a).nbytes for a in arrays))


def _record(primitive: str, elements: int, arrays: Sequence[np.ndarray], seconds: float) -> None:
    get_instrumentation().record(primitive, elements, _array_bytes(arrays), seconds)


def map_field(functor: Callable, *arrays: np.ndarray, device: str | None = None):
    """Apply ``functor`` element-wise over equally sized input arrays.

    The functor receives the input arrays whole (the vectorized execution
    model) and must return one array -- or a tuple of arrays -- whose leading
    dimension matches the inputs'.  This is the ``map`` primitive of
    Section 2.3: primary-ray generation, intersection, shading, and color
    compositing are all expressed through it.

    Parameters
    ----------
    functor:
        Callable applied to the arrays.
    arrays:
        One or more numpy arrays sharing their leading dimension.
    device:
        Optional device name overriding the active device.

    Returns
    -------
    numpy.ndarray or tuple of numpy.ndarray
        Whatever the functor produced.
    """
    if not arrays:
        raise ValueError("map_field requires at least one input array")
    arrays = tuple(np.asarray(a) for a in arrays)
    length = len(arrays[0])
    for array in arrays[1:]:
        if len(array) != length:
            raise ValueError("map_field inputs must share their leading dimension")
    start = time.perf_counter()
    result = get_device(device).map(functor, *arrays)
    elapsed = time.perf_counter() - start
    outputs = result if isinstance(result, tuple) else (result,)
    _record("map", length, arrays + tuple(np.asarray(o) for o in outputs), elapsed)
    return result


def gather(values: np.ndarray, indices: np.ndarray, device: str | None = None) -> np.ndarray:
    """Collect ``values[indices[i]]`` into an output the length of ``indices``.

    Gather is used to compact surviving rays, to collect per-pixel samples for
    anti-aliasing, and by stream compaction (Section 2.3).
    """
    values = np.asarray(values)
    indices = np.asarray(indices)
    if indices.ndim != 1:
        raise ValueError("gather indices must be one-dimensional")
    if len(values) == 0 and len(indices) > 0:
        raise ValueError("cannot gather from an empty array")
    if len(indices) and (indices.min() < 0 or indices.max() >= len(values)):
        raise IndexError("gather index out of range")
    start = time.perf_counter()
    result = get_device(device).gather(values, indices)
    elapsed = time.perf_counter() - start
    _record("gather", len(indices), (values, indices, result), elapsed)
    return result


def scatter(
    values: np.ndarray,
    indices: np.ndarray,
    output: np.ndarray,
    device: str | None = None,
) -> np.ndarray:
    """Write ``values[i]`` into ``output[indices[i]]`` (in place) and return it.

    The caller is responsible for index uniqueness when a race would matter,
    as in the paper (scatter "generally requires more care than gather").
    """
    values = np.asarray(values)
    indices = np.asarray(indices)
    if indices.ndim != 1:
        raise ValueError("scatter indices must be one-dimensional")
    if len(values) != len(indices):
        raise ValueError("scatter values and indices must have equal length")
    if len(indices) and (indices.min() < 0 or indices.max() >= len(output)):
        raise IndexError("scatter index out of range")
    start = time.perf_counter()
    result = get_device(device).scatter(values, indices, output)
    elapsed = time.perf_counter() - start
    _record("scatter", len(indices), (values, indices, output), elapsed)
    return result


def reduce_field(values: np.ndarray, operator: str = "add", device: str | None = None):
    """Combine all values into one using ``add``, ``min``, or ``max``.

    An empty ``add`` reduction returns 0; empty ``min``/``max`` reductions
    raise ``ValueError`` as there is no identity element.  Both rules (and
    operator validation) live in :meth:`repro.dpp.device.Device.reduce`, so
    direct device callers get the identical contract.
    """
    values = np.asarray(values)
    start = time.perf_counter()
    result = get_device(device).reduce(values, operator)
    elapsed = time.perf_counter() - start
    _record("reduce", len(values), (values,), elapsed)
    return result


def inclusive_scan(values: np.ndarray, device: str | None = None) -> np.ndarray:
    """Inclusive prefix sum: ``out[i] = sum(values[:i+1])``."""
    values = np.asarray(values)
    start = time.perf_counter()
    result = get_device(device).scan(values, inclusive=True)
    elapsed = time.perf_counter() - start
    _record("scan", len(values), (values, result), elapsed)
    return result


def exclusive_scan(values: np.ndarray, device: str | None = None) -> np.ndarray:
    """Exclusive prefix sum: ``out[i] = sum(values[:i])`` with ``out[0] = 0``."""
    values = np.asarray(values)
    start = time.perf_counter()
    result = get_device(device).scan(values, inclusive=False)
    elapsed = time.perf_counter() - start
    _record("scan", len(values), (values, result), elapsed)
    return result


def reverse_index(
    scan_result: np.ndarray, flags: np.ndarray, device: str | None = None
) -> np.ndarray:
    """Invert an exclusive scan of boolean flags into gather indices.

    Given ``flags`` marking surviving elements and ``scan_result`` their
    exclusive prefix sum, return the array of original indices of the
    survivors, in order: survivor ``i`` is scattered to output position
    ``scan_result[i]``.  This is the ``reverseIndex`` step of the paper's
    stream-compaction idiom (Algorithm 1, line 21 and Algorithm 2, line 20);
    like every other primitive it dispatches to the active
    :class:`~repro.dpp.device.Device` and records its traffic.
    """
    flags = np.asarray(flags, dtype=bool)
    scan_result = np.asarray(scan_result)
    if flags.ndim != 1 or scan_result.ndim != 1:
        raise ValueError("reverse_index flags and scan_result must be one-dimensional")
    if len(flags) != len(scan_result):
        raise ValueError("flags and scan_result must have equal length")
    start = time.perf_counter()
    result = get_device(device).reverse_index(scan_result, flags)
    elapsed = time.perf_counter() - start
    _record("reverse_index", len(flags), (scan_result, flags, result), elapsed)
    return result


def segmented_argmin(
    values: np.ndarray,
    segment_starts: np.ndarray,
    tiebreak: np.ndarray,
    device: str | None = None,
) -> np.ndarray:
    """Global index of the minimum value within each contiguous segment.

    This is the segmented-reduction primitive behind the ray tracer's batched
    leaf intersection: all candidate ``(ray, triangle)`` pair distances are
    laid out contiguously per ray, and one segmented argmin picks each ray's
    winning triangle.  Ties on the value are broken by the smallest
    ``tiebreak`` entry (the triangle id), then by position, so the result is
    deterministic and matches a serial first-minimum sweep.

    Parameters
    ----------
    values:
        One-dimensional array of segment-concatenated values.
    segment_starts:
        Ascending start offsets, one per segment; ``segment_starts[0]`` must
        be 0 and every segment must be non-empty.
    tiebreak:
        Integer array the same length as ``values`` used to break value ties.

    Returns
    -------
    numpy.ndarray
        ``int64`` positions into ``values``, one per segment.
    """
    values = np.asarray(values)
    segment_starts = np.asarray(segment_starts, dtype=np.int64)
    tiebreak = np.asarray(tiebreak)
    if values.ndim != 1 or tiebreak.ndim != 1:
        raise ValueError("segmented_argmin values and tiebreak must be one-dimensional")
    if len(values) != len(tiebreak):
        raise ValueError("segmented_argmin values and tiebreak must have equal length")
    if len(segment_starts) == 0:
        return np.empty(0, dtype=np.int64)
    if segment_starts[0] != 0:
        raise ValueError("segmented_argmin segment_starts must begin at 0")
    if np.any(np.diff(segment_starts) <= 0) or segment_starts[-1] >= len(values):
        raise ValueError("segmented_argmin segments must be non-empty and ascending")
    if np.isnan(values.min()):
        # NaN never compares as a minimum, so the devices cannot agree on a
        # winner for it; reject it rather than diverge (use +inf for "no
        # candidate", as the ray tracer's masked intersection distances do).
        raise ValueError("segmented_argmin values must not contain NaN")
    start = time.perf_counter()
    result = get_device(device).segmented_argmin(values, segment_starts, tiebreak)
    elapsed = time.perf_counter() - start
    _record("segmented_argmin", len(values), (values, segment_starts, tiebreak, result), elapsed)
    return result


def stream_compact(flags: np.ndarray, *arrays: np.ndarray, device: str | None = None):
    """Remove the elements whose flag is false from every array, preserving order.

    Implements the compaction idiom from the ray tracer (Section 2.4 "Stream
    Compaction"): reduce to count survivors, exclusive-scan the flags,
    reverse-index to build gather indices, then gather each array.

    Returns
    -------
    (count, compacted):
        ``count`` is the number of survivors and ``compacted`` a tuple with
        each input array restricted to the surviving elements.
    """
    flags = np.asarray(flags)
    flag_ints = flags.astype(np.int64)
    count = int(reduce_field(flag_ints, "add", device=device))
    scanned = exclusive_scan(flag_ints, device=device)
    indices = reverse_index(scanned, flags, device=device)
    compacted = tuple(gather(array, indices, device=device) for array in arrays)
    return count, compacted
