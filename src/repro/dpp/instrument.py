"""Primitive-level instrumentation: timings and operation counters.

The study gathered PAPI counters on the CPU and nvprof metrics on the GPU to
derive per-phase instructions-per-cycle (Table 7) and to populate the
regression corpus with per-phase run times.  The reproduction cannot read
hardware counters, so instead every data-parallel primitive invocation reports

* wall-clock time,
* the number of elements it touched (a proxy for instruction count), and
* an estimate of the bytes it moved (a proxy for memory traffic),

into a process-global :class:`OpCounters` object.  The ratio of elements
touched to bytes moved plays the role of arithmetic intensity / IPC in the
per-phase analyses, and the timings feed the model-fitting corpus.

Scopes (:class:`InstrumentationScope`) give each rendering phase its own
namespace, so a volume render records ``volume.sampling`` separately from
``volume.compositing`` just as the paper's harness did.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Iterator

from repro.util.timing import TimingRegistry

__all__ = ["OpCounters", "InstrumentationScope", "get_instrumentation", "reset_instrumentation"]


@dataclass
class _PhaseCounters:
    """Raw accumulators for one instrumentation scope."""

    invocations: int = 0
    elements: int = 0
    bytes_moved: int = 0


@dataclass
class OpCounters:
    """Process-global primitive instrumentation.

    Attributes
    ----------
    timings:
        Hierarchical wall-clock registry; phase names follow the active scope.
    """

    timings: TimingRegistry = field(default_factory=TimingRegistry)
    _phases: dict[str, _PhaseCounters] = field(default_factory=dict)
    _scope: str = "global"
    enabled: bool = True

    # -- scope management -----------------------------------------------------
    @contextlib.contextmanager
    def scope(self, name: str) -> Iterator[str]:
        """Temporarily switch the active scope (dotted names nest naturally)."""
        previous = self._scope
        self._scope = name
        try:
            yield name
        finally:
            self._scope = previous

    @property
    def active_scope(self) -> str:
        return self._scope

    # -- recording -------------------------------------------------------------
    def record(self, primitive: str, elements: int, bytes_moved: int, seconds: float) -> None:
        """Record one primitive invocation under the active scope."""
        if not self.enabled:
            return
        key = f"{self._scope}.{primitive}"
        phase = self._phases.setdefault(self._scope, _PhaseCounters())
        phase.invocations += 1
        phase.elements += int(elements)
        phase.bytes_moved += int(bytes_moved)
        self.timings.record(key, seconds)

    # -- queries ----------------------------------------------------------------
    def elements(self, scope: str) -> int:
        """Total elements touched by primitives in ``scope``."""
        phase = self._phases.get(scope)
        return phase.elements if phase else 0

    def bytes_moved(self, scope: str) -> int:
        """Total estimated bytes moved by primitives in ``scope``."""
        phase = self._phases.get(scope)
        return phase.bytes_moved if phase else 0

    def invocations(self, scope: str) -> int:
        """Number of primitive invocations recorded in ``scope``."""
        phase = self._phases.get(scope)
        return phase.invocations if phase else 0

    def seconds(self, scope: str) -> float:
        """Wall-clock seconds recorded by primitives in ``scope``."""
        return self.timings.subtotal(scope + ".")

    def arithmetic_intensity(self, scope: str) -> float:
        """Elements touched per byte moved -- the reproduction's IPC proxy."""
        moved = self.bytes_moved(scope)
        if moved == 0:
            return 0.0
        return self.elements(scope) / moved

    def scopes(self) -> list[str]:
        """All scopes with recorded activity."""
        return sorted(self._phases)

    def snapshot(self) -> dict[str, dict[str, float]]:
        """Per-scope dictionary of counters (for reports and tests)."""
        return {
            scope: {
                "invocations": float(phase.invocations),
                "elements": float(phase.elements),
                "bytes_moved": float(phase.bytes_moved),
                "seconds": self.seconds(scope),
            }
            for scope, phase in self._phases.items()
        }

    def clear(self) -> None:
        """Forget all counters and timings."""
        self._phases.clear()
        self.timings.clear()


#: Module-level singleton used by :mod:`repro.dpp.primitives`.
_INSTRUMENTATION = OpCounters()


def get_instrumentation() -> OpCounters:
    """Return the process-global instrumentation object."""
    return _INSTRUMENTATION


def reset_instrumentation() -> None:
    """Clear the process-global instrumentation (used by tests and the harness)."""
    _INSTRUMENTATION.clear()


class InstrumentationScope:
    """Convenience context manager: ``with InstrumentationScope("volume.sampling"): ...``"""

    def __init__(self, name: str) -> None:
        self._name = name
        self._manager = None

    def __enter__(self) -> str:
        self._manager = _INSTRUMENTATION.scope(self._name)
        return self._manager.__enter__()

    def __exit__(self, *exc_info: object) -> None:
        assert self._manager is not None
        self._manager.__exit__(*exc_info)
        self._manager = None
