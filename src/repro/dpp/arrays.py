"""Struct-of-arrays container.

Chapter III notes that the data-parallel renderers organise their data as
structs-of-arrays, "following acknowledged best practices for both CPU
(enabling vectorization) and GPU (creating coalesced memory accesses)".  The
:class:`SOAArray` container encodes that convention: a named collection of
equally sized numpy arrays that can be gathered, scattered, compacted, and
concatenated as one unit.
"""

from __future__ import annotations

from typing import Iterator, Mapping

import numpy as np

__all__ = ["SOAArray"]


class SOAArray:
    """A named bundle of equally sized numpy arrays ("fields").

    Fields are accessed with item syntax (``soa["origin"]``).  Structural
    operations return new :class:`SOAArray` instances and never copy more than
    necessary.
    """

    def __init__(self, fields: Mapping[str, np.ndarray] | None = None) -> None:
        self._fields: dict[str, np.ndarray] = {}
        self._length: int | None = None
        if fields:
            for name, values in fields.items():
                self[name] = values

    # -- basic mapping behaviour -------------------------------------------------
    def __setitem__(self, name: str, values: np.ndarray) -> None:
        values = np.asarray(values)
        if self._length is None:
            self._length = len(values)
        elif len(values) != self._length:
            raise ValueError(
                f"field {name!r} has length {len(values)}, expected {self._length}"
            )
        self._fields[name] = values

    def __getitem__(self, name: str) -> np.ndarray:
        return self._fields[name]

    def __contains__(self, name: str) -> bool:
        return name in self._fields

    def __iter__(self) -> Iterator[str]:
        return iter(self._fields)

    def __len__(self) -> int:
        return self._length or 0

    @property
    def names(self) -> list[str]:
        """Field names in insertion order."""
        return list(self._fields)

    @property
    def nbytes(self) -> int:
        """Total buffer size across all fields."""
        return int(sum(values.nbytes for values in self._fields.values()))

    # -- structural operations -----------------------------------------------------
    def select(self, indices: np.ndarray) -> "SOAArray":
        """Gather the given element indices from every field."""
        indices = np.asarray(indices)
        return SOAArray({name: values[indices] for name, values in self._fields.items()})

    def compact(self, flags: np.ndarray) -> "SOAArray":
        """Keep only elements whose flag is true (order preserved)."""
        flags = np.asarray(flags, dtype=bool)
        if len(flags) != len(self):
            raise ValueError("flag length must match SOAArray length")
        return self.select(np.flatnonzero(flags))

    def concatenate(self, other: "SOAArray") -> "SOAArray":
        """Append another SOAArray with exactly the same field names."""
        if set(self._fields) != set(other._fields):
            raise ValueError("cannot concatenate SOAArrays with different fields")
        return SOAArray(
            {
                name: np.concatenate([self._fields[name], other._fields[name]])
                for name in self._fields
            }
        )

    def copy(self) -> "SOAArray":
        """Deep copy of every field."""
        return SOAArray({name: values.copy() for name, values in self._fields.items()})

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fields = ", ".join(f"{name}{tuple(values.shape)}" for name, values in self._fields.items())
        return f"SOAArray(n={len(self)}, fields=[{fields}])"
