"""Data-parallel primitives framework (EAVL / VTK-m analogue).

The dissertation's rendering algorithms (Chapters II, III, and V) are composed
entirely of a small set of data-parallel primitives -- ``map``, ``gather``,
``scatter``, ``reduce``, ``scan``, and the stream-compaction idiom built from
them -- executed by an underlying engine (EAVL, later VTK-m) that provides
portable performance across CPU and GPU back-ends.

This package reproduces that layer in Python:

* :mod:`repro.dpp.device` -- back-end ("device adapter") registry.  The
  ``vectorized`` device executes primitives with numpy; the ``serial`` device
  runs explicit Python loops (useful for differential testing of the
  vectorized kernels, mirroring the paper's OpenMP-vs-ISPC back-end swap).
* :mod:`repro.dpp.primitives` -- the primitives themselves, dispatching to the
  active device and recording per-invocation instrumentation.
* :mod:`repro.dpp.instrument` -- operation counters and timings per primitive,
  standing in for PAPI / nvprof hardware counters.
* :mod:`repro.dpp.arrays` -- a struct-of-arrays container following the
  memory-layout best practice noted in Chapter III.
* :mod:`repro.dpp.frontier` -- the compacted-frontier kernel engine shared by
  the BVH traversal loop and both volume ray casters: contiguous SoA lane
  state, device-routed flush/compaction, and per-lane retirement.
"""

from repro.dpp.arrays import SOAArray
from repro.dpp.frontier import FrontierEngine, FrontierKernel, FrontierLanes
from repro.dpp.device import (
    Device,
    DeviceRegistry,
    DeviceUnavailableError,
    SerialDevice,
    VectorizedDevice,
    device_available,
    get_device,
    list_devices,
    register_device,
    register_lazy_device,
    use_device,
)
from repro.dpp.instrument import InstrumentationScope, OpCounters, get_instrumentation
from repro.dpp.primitives import (
    exclusive_scan,
    gather,
    inclusive_scan,
    map_field,
    reduce_field,
    reverse_index,
    scatter,
    segmented_argmin,
    stream_compact,
)

__all__ = [
    "Device",
    "DeviceRegistry",
    "DeviceUnavailableError",
    "FrontierEngine",
    "FrontierKernel",
    "FrontierLanes",
    "InstrumentationScope",
    "OpCounters",
    "SOAArray",
    "SerialDevice",
    "VectorizedDevice",
    "device_available",
    "exclusive_scan",
    "gather",
    "get_device",
    "get_instrumentation",
    "inclusive_scan",
    "list_devices",
    "map_field",
    "reduce_field",
    "register_device",
    "register_lazy_device",
    "reverse_index",
    "scatter",
    "segmented_argmin",
    "stream_compact",
    "use_device",
]
