"""The study-sweep engine: parallel, cached, resumable experiment execution.

The paper's central artifact is a 1,350-experiment sweep whose slowest-rank
corpus feeds the Table 12/17 model fits and the Table 13 / Figure 11
cross-validation.  This package turns that sweep into a production-style
pipeline:

* :mod:`repro.study.plan` -- declarative matrix expansion of a
  :class:`~repro.modeling.study.StudyConfiguration` into explicit, cacheable
  :class:`~repro.study.plan.ExperimentSpec` rows;
* :mod:`repro.study.executor` -- a process-pool executor with per-experiment
  timeouts, crash/exception isolation (failure rows instead of dead sweeps),
  and deterministic row assembly in plan order;
* :mod:`repro.study.cache` -- a content-addressed on-disk row cache (config
  identity + code digest) that makes interrupted sweeps resumable and keeps
  unchanged configurations from ever re-rendering;
* :mod:`repro.study.corpus_io` -- the row-level JSON schema shared by
  workers, the cache, and corpus files, plus corpus merging;
* :mod:`repro.study.adaptive` -- uncertainty-driven sweep planning: fit the
  models, score candidates by prediction-interval width, select the widest
  batch deterministically (with :mod:`repro.study.trajectory` recording the
  error-vs-corpus-size learning curve);
* :mod:`repro.study.cli` -- ``python -m repro.study`` with ``plan
  [--adaptive]`` / ``run [--adaptive] --jobs N --resume`` / ``merge`` /
  ``fit`` subcommands.

:class:`~repro.modeling.study.StudyHarness` is a thin client of this engine
(and keeps its pre-engine serial loop as the differential oracle); the
benchmark suite's corpus fixtures run through :func:`run_study` so every
table/figure benchmark rides the same pipeline CI exercises.
"""

from repro.study.adaptive import (
    AdaptiveRun,
    AdaptiveSelection,
    run_adaptive_rounds,
    select_batch,
)
from repro.study.cache import CorpusCache, cache_key, code_token
from repro.study.corpus_io import load_corpus, merge_corpora, save_corpus
from repro.study.executor import (
    SpecFailure,
    SweepExecutor,
    SweepOutcome,
    SweepReport,
    execute_spec,
    run_plan,
)
from repro.study.plan import (
    ExperimentSpec,
    SweepPlan,
    build_plan,
    corpus_spec_keys,
    full_configuration,
    smoke_configuration,
    spec_corpus_key,
)

__all__ = [
    "AdaptiveRun",
    "AdaptiveSelection",
    "CorpusCache",
    "ExperimentSpec",
    "SpecFailure",
    "SweepExecutor",
    "SweepOutcome",
    "SweepPlan",
    "SweepReport",
    "build_plan",
    "cache_key",
    "code_token",
    "corpus_spec_keys",
    "execute_spec",
    "full_configuration",
    "load_corpus",
    "merge_corpora",
    "run_adaptive_rounds",
    "run_plan",
    "run_study",
    "save_corpus",
    "select_batch",
    "smoke_configuration",
    "spec_corpus_key",
]


def run_study(
    config=None,
    jobs: int = 1,
    cache_dir=None,
    timeout: float | None = None,
    resume: bool = True,
    strict: bool = True,
):
    """One-call engine entry point: configuration -> corpus.

    The benchmark fixtures and examples use this instead of spelling out
    plan/execute; ``cache_dir`` (a path) turns on the content-addressed row
    cache so repeated corpus builds -- e.g. across benchmark sessions -- skip
    every unchanged configuration.

    ``strict`` (default) raises if any experiment failed, so a corpus consumed
    by model fits can never silently shrink; pass ``strict=False`` (or use
    :func:`run_plan`, which also returns the report) for failure isolation.
    """
    from repro.modeling.study import StudyConfiguration, StudyHarness

    harness = StudyHarness(config if config is not None else StudyConfiguration())
    return harness.run(jobs=jobs, cache=cache_dir, timeout=timeout, resume=resume, strict=strict)
