"""Uncertainty-driven sweep planning: spend the render budget where models are weakest.

The static presets treat every configuration as equally informative; this
module ranks *candidate* experiments by how much the fitted models do not yet
know about them, following the variable-selection discipline of the LARS
discussions (greedily add the inputs that most reduce model uncertainty) --
applied to experiment selection rather than regression terms.

One adaptive step is::

    corpus --fit--> ModelSuite --score--> interval widths --select--> top-K batch

* **Candidates** come from :func:`~repro.study.plan.build_plan` on the same
  study configuration, re-expanded at ``expand``x the stratified sampling
  density with an RNG seed derived from the corpus digest -- so the candidate
  continuum is fresh per corpus state yet exactly reproducible from it.
* **Scores** are prediction-interval widths from
  :meth:`repro.reporting.predictor.Predictor.interval_widths_for_specs`
  (quadrature-combined build+frame residuals for ray tracing).  A candidate
  whose ``(architecture, technique)`` slice has no fitted model scores
  ``inf``: an unfit slice is maximal uncertainty and ranks first.
* **Selection** is the widest ``batch_size`` candidates, ties broken by the
  candidate's corpus key.  Everything is a pure function of ``(corpus digest,
  candidate configuration, seed)``: same inputs, byte-identical batch -- so
  adaptive batches cache and resume like every other plan in the engine.

:func:`run_adaptive_rounds` chains fit -> select -> render -> refit rounds,
holding the candidate pool fixed across rounds of one run (executed specs
leave the pool, and dedup against the grown corpus backstops that), and
records one learning-curve row per round via :mod:`repro.study.trajectory`.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import asdict, dataclass, field, replace

from repro.modeling.study import StudyConfiguration, StudyCorpus
from repro.study.corpus_io import corpus_digest, merge_corpora
from repro.study.plan import (
    ExperimentSpec,
    SweepPlan,
    build_plan,
    corpus_spec_keys,
    spec_corpus_key,
)

__all__ = [
    "ADAPTIVE_SCHEMA_VERSION",
    "DEFAULT_BATCH_SIZE",
    "DEFAULT_EXPAND",
    "ScoredCandidate",
    "AdaptiveSelection",
    "AdaptiveRound",
    "AdaptiveRun",
    "selection_token",
    "candidate_plan",
    "score_candidates",
    "select_batch",
    "run_adaptive_rounds",
]

#: Version guard of the adaptive batch payload (and the selection token).
ADAPTIVE_SCHEMA_VERSION = 1

#: Default experiments per adaptive batch.
DEFAULT_BATCH_SIZE = 8

#: Default candidate-density multiplier over the configuration's
#: ``samples_per_technique`` -- the candidate matrix is ``expand``x the static
#: plan, so selection always has strictly more to choose from than one sweep.
DEFAULT_EXPAND = 4


def selection_token(digest: str, config: StudyConfiguration, seed: int) -> str:
    """The determinism anchor: sha256 over (corpus digest, config, seed).

    Everything stochastic about one adaptive step -- the candidate matrix's
    stratified jitter -- is derived from this token, which makes selection a
    pure function of its three inputs: re-invoking with the same corpus file
    and flags reproduces the batch byte for byte, while a grown corpus (new
    digest) draws a fresh candidate continuum.
    """
    canonical = json.dumps(asdict(config), sort_keys=True, separators=(",", ":"))
    material = f"{ADAPTIVE_SCHEMA_VERSION}\x1f{digest}\x1f{canonical}\x1f{seed}"
    return hashlib.sha256(material.encode()).hexdigest()


def candidate_plan(
    config: StudyConfiguration,
    token: str,
    expand: int = DEFAULT_EXPAND,
    include_compositing: bool = True,
) -> SweepPlan:
    """The candidate matrix: the configuration re-expanded at ``expand``x density.

    The stratified (image size, data size) draws use a seed derived from the
    selection token, so candidates differ from the static sweep's draws (and
    from any other corpus state's candidates) but are exactly reproducible.
    The compositing matrix is discrete (algorithms x tasks x sizes) and does
    not densify: compositing candidates only survive dedup while the corpus
    has not covered that matrix yet.
    """
    if expand < 1:
        raise ValueError("expand must be at least 1")
    candidate_config = replace(
        config,
        seed=int(token[:12], 16),
        samples_per_technique=config.samples_per_technique * expand,
    )
    return build_plan(candidate_config, include_compositing=include_compositing)


@dataclass(frozen=True)
class ScoredCandidate:
    """One candidate experiment plus its uncertainty score."""

    spec: ExperimentSpec
    width: float  #: interval width; ``inf`` = no fitted model for the slice
    slice: str  #: ``architecture/technique`` (``-/compositing`` for Eq. 5.5)

    @property
    def known(self) -> bool:
        return math.isfinite(self.width)

    def to_payload(self) -> dict:
        """JSON-safe form (``inf`` widths become ``None`` + ``known: false``)."""
        return {
            "spec": self.spec.key_payload(),
            "slice": self.slice,
            "known": self.known,
            "width": float(self.width) if self.known else None,
        }


def score_candidates(specs: list[ExperimentSpec], suite, sigmas: float = 2.0) -> list[ScoredCandidate]:
    """Score candidates by interval width and sort widest-first.

    Unknown-model slices (``inf``) rank before every fitted slice; ties (all
    specs of one slice share its residual band unless the zero clip bites)
    break on the candidate's corpus key, so the order -- and therefore the
    selected batch -- is deterministic.
    """
    from repro.reporting.predictor import Predictor

    predictor = suite if isinstance(suite, Predictor) else Predictor(suite)
    widths = predictor.interval_widths_for_specs([spec.key_payload() for spec in specs], sigmas=sigmas)
    scored = []
    for spec, width in zip(specs, widths):
        if spec.kind == "compositing":
            slice_name = "-/compositing"
        else:
            slice_name = f"{spec.architecture}/{spec.technique}"
        scored.append(ScoredCandidate(spec=spec, width=float(width), slice=slice_name))
    return sorted(scored, key=lambda c: (-c.width, spec_corpus_key(c.spec)))


@dataclass
class AdaptiveSelection:
    """One deterministic fit -> score -> select step, ready to execute or serialize."""

    config: StudyConfiguration
    corpus_digest: str
    seed: int
    expand: int
    batch_size: int
    sigmas: float
    candidates: list[ScoredCandidate] = field(default_factory=list)
    selected: list[ScoredCandidate] = field(default_factory=list)
    deduplicated: int = 0  #: candidate-matrix specs dropped as already-in-corpus

    def unknown_candidates(self) -> int:
        return sum(1 for candidate in self.candidates if not candidate.known)

    def mean_interval_width(self) -> float | None:
        """Mean width over the fitted (finite-width) candidates; ``None`` if none."""
        finite = [candidate.width for candidate in self.candidates if candidate.known]
        if not finite:
            return None
        return float(sum(finite) / len(finite))

    def max_interval_width(self) -> float | None:
        finite = [candidate.width for candidate in self.candidates if candidate.known]
        return max(finite) if finite else None

    def plan(self) -> SweepPlan:
        """The selected batch as a :class:`SweepPlan` (feeds ``run_plan`` unchanged)."""
        return SweepPlan(config=self.config, specs=[candidate.spec for candidate in self.selected])

    def to_payload(self) -> dict:
        """The adaptive batch artifact (``plan --adaptive --out``), byte-stable."""
        return {
            "schema": ADAPTIVE_SCHEMA_VERSION,
            "corpus_digest": self.corpus_digest,
            "seed": self.seed,
            "expand": self.expand,
            "batch_size": self.batch_size,
            "sigmas": self.sigmas,
            "candidates": len(self.candidates),
            "deduplicated": self.deduplicated,
            "unknown_candidates": self.unknown_candidates(),
            "mean_interval_width": self.mean_interval_width(),
            "config": asdict(self.config),
            "selected": [candidate.to_payload() for candidate in self.selected],
        }


def select_batch(
    corpus: StudyCorpus,
    config: StudyConfiguration,
    batch_size: int = DEFAULT_BATCH_SIZE,
    seed: int = 2016,
    expand: int = DEFAULT_EXPAND,
    sigmas: float = 2.0,
    folds: int = 3,
    suite=None,
    candidates: list[ExperimentSpec] | None = None,
    include_compositing: bool = True,
) -> AdaptiveSelection:
    """One adaptive step: fit on the corpus, score candidates, take the widest K.

    ``suite`` short-circuits the fit (multi-round drivers refit once per
    round); ``candidates`` short-circuits the expansion (multi-round drivers
    hold one pool fixed and let executed specs fall out).  Either way the
    candidate list is deduplicated against every experiment identity the
    corpus already holds -- rows *and* failure rows -- so a selected spec's
    key can never already exist in the corpus.
    """
    if batch_size < 0:
        raise ValueError("batch_size must be non-negative")
    digest = corpus_digest(corpus)
    if candidates is None:
        token = selection_token(digest, config, seed)
        pool = candidate_plan(config, token, expand, include_compositing).specs
    else:
        pool = candidates
    existing = corpus_spec_keys(corpus)
    seen: set[tuple] = set()
    fresh: list[ExperimentSpec] = []
    for spec in pool:
        key = spec_corpus_key(spec)
        if key in existing or key in seen:
            continue
        seen.add(key)
        fresh.append(spec)
    if suite is None:
        from repro.reporting.suite import ModelSuite

        suite = ModelSuite.fit_corpus(corpus, folds=folds, seed=seed)
    scored = score_candidates(fresh, suite, sigmas=sigmas)
    return AdaptiveSelection(
        config=config,
        corpus_digest=digest,
        seed=seed,
        expand=expand,
        batch_size=batch_size,
        sigmas=sigmas,
        candidates=scored,
        selected=scored[:batch_size],
        deduplicated=len(pool) - len(fresh),
    )


@dataclass
class AdaptiveRound:
    """What one fit -> select -> render round did."""

    selection: AdaptiveSelection
    report: object | None = None  #: :class:`~repro.study.executor.SweepReport`
    trajectory_row: dict = field(default_factory=dict)


@dataclass
class AdaptiveRun:
    """The outcome of :func:`run_adaptive_rounds`."""

    corpus: StudyCorpus  #: the base corpus grown by every executed batch
    rounds: list[AdaptiveRound] = field(default_factory=list)
    final_row: dict = field(default_factory=dict)

    def trajectory_rows(self) -> list[dict]:
        rows = [round_.trajectory_row for round_ in self.rounds]
        if self.final_row:
            rows.append(self.final_row)
        return rows

    @property
    def executed(self) -> int:
        return sum(r.report.executed for r in self.rounds if r.report is not None)

    @property
    def failures(self) -> int:
        return sum(r.report.failed for r in self.rounds if r.report is not None)


def run_adaptive_rounds(
    corpus: StudyCorpus,
    config: StudyConfiguration,
    rounds: int = 2,
    batch_size: int = DEFAULT_BATCH_SIZE,
    seed: int = 2016,
    expand: int = DEFAULT_EXPAND,
    sigmas: float = 2.0,
    folds: int = 3,
    jobs: int = 1,
    timeout: float | None = None,
    cache=None,
    resume: bool = True,
    include_compositing: bool = True,
) -> AdaptiveRun:
    """Chain ``rounds`` fit -> select -> render -> refit steps over one candidate pool.

    The pool is expanded once, from the *initial* corpus digest: each round
    refits the suite on the grown corpus, rescores what remains of the pool,
    records a learning-curve row, executes the widest ``batch_size``
    candidates, and removes them from the pool (dedup against the grown
    corpus backstops the removal, so a later round can never re-select an
    earlier round's specs -- succeeded or failed).  A final fit/score pass
    records the post-run trajectory row.  Holding the pool fixed is what
    makes the recorded mean interval width meaningful round over round: the
    widest candidates leave the pool, so the curve tracks uncertainty
    actually retired, not resampled.
    """
    from repro.reporting.suite import ModelSuite
    from repro.study.executor import run_plan
    from repro.study.trajectory import trajectory_row

    token = selection_token(corpus_digest(corpus), config, seed)
    pool = candidate_plan(config, token, expand, include_compositing).specs
    run = AdaptiveRun(corpus=corpus)
    for round_index in range(rounds):
        suite = ModelSuite.fit_corpus(corpus, folds=folds, seed=seed)
        selection = select_batch(
            corpus,
            config,
            batch_size=batch_size,
            seed=seed,
            expand=expand,
            sigmas=sigmas,
            suite=suite,
            candidates=pool,
        )
        row = trajectory_row(corpus, suite, selection, round_index=round_index)
        if not selection.selected:
            run.rounds.append(AdaptiveRound(selection=selection, trajectory_row=row))
            break
        batch_corpus, report = run_plan(
            selection.plan(), jobs=jobs, timeout=timeout, cache=cache, resume=resume
        )
        corpus = merge_corpora([corpus, batch_corpus])
        executed = {spec_corpus_key(candidate.spec) for candidate in selection.selected}
        pool = [spec for spec in pool if spec_corpus_key(spec) not in executed]
        run.rounds.append(AdaptiveRound(selection=selection, report=report, trajectory_row=row))
    suite = ModelSuite.fit_corpus(corpus, folds=folds, seed=seed)
    final_selection = select_batch(
        corpus,
        config,
        batch_size=0,
        seed=seed,
        expand=expand,
        sigmas=sigmas,
        suite=suite,
        candidates=pool,
    )
    run.final_row = trajectory_row(corpus, suite, final_selection, round_index=len(run.rounds))
    run.corpus = corpus
    return run
