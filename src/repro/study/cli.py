"""``python -m repro.study`` -- the sweep pipeline's command-line face.

Subcommands
-----------
``plan``
    Expand the matrix and print (or write) it without running anything.
``run``
    Execute the sweep: ``--jobs N`` for the process pool, ``--cache-dir`` to
    persist rows, ``--resume`` to reuse them, ``--timeout`` per experiment,
    ``--out`` for the corpus JSON.  ``--require-cached`` exits non-zero if
    anything had to execute -- CI's "second run is 100% cache hits" gate.
``merge``
    Concatenate corpus files (e.g. per-architecture shards).
``fit``
    Load a corpus and report the fitted models (Table 12's R^2 view) plus
    optional cross-validation accuracy rows.

Exit codes: 0 success; 2 argument/usage errors (argparse); 3 a ``run`` with
``--require-cached`` executed at least one experiment; 4 a ``run`` recorded
failure rows.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace

from repro.modeling.study import StudyConfiguration
from repro.study.cache import CorpusCache
from repro.study.corpus_io import load_corpus, merge_corpora, save_corpus
from repro.study.executor import run_plan
from repro.study.plan import build_plan, full_configuration, smoke_configuration

__all__ = ["main", "build_parser"]

_PRESETS = {
    "default": lambda seed: StudyConfiguration(seed=seed),
    "smoke": smoke_configuration,
    "full": full_configuration,
}


def _comma_tuple(text: str) -> tuple[str, ...]:
    return tuple(part.strip() for part in text.split(",") if part.strip())


def _comma_ints(text: str) -> tuple[int, ...]:
    return tuple(int(part) for part in _comma_tuple(text))


def _add_matrix_arguments(parser: argparse.ArgumentParser) -> None:
    matrix = parser.add_argument_group("matrix", "override the preset's sweep matrix")
    matrix.add_argument("--preset", choices=sorted(_PRESETS), default="default")
    matrix.add_argument("--seed", type=int, default=2016)
    matrix.add_argument("--samples", type=int, help="stratified samples per technique")
    matrix.add_argument("--simulations", type=_comma_tuple, help="comma list, e.g. kripke,lulesh")
    matrix.add_argument(
        "--techniques",
        type=_comma_tuple,
        help="comma list from raytrace,raster,volume,volume_unstructured",
    )
    matrix.add_argument("--architectures", type=_comma_tuple, help="comma list, e.g. cpu-host,gpu1-k40m")
    matrix.add_argument("--task-counts", type=_comma_ints, help="comma list of MPI task counts")
    matrix.add_argument(
        "--compositing-algorithms",
        type=_comma_tuple,
        help="comma list from direct-send,binary-swap,radix-k",
    )
    matrix.add_argument("--no-compositing", action="store_true", help="skip the Eq. 5.5 sweep")


def _configuration_from(args: argparse.Namespace) -> StudyConfiguration:
    config = _PRESETS[args.preset](args.seed)
    overrides = {}
    if args.samples is not None:
        overrides["samples_per_technique"] = args.samples
    if args.simulations:
        overrides["simulations"] = args.simulations
    if args.techniques:
        overrides["techniques"] = args.techniques
    if args.architectures:
        overrides["architectures"] = args.architectures
    if args.task_counts:
        overrides["task_counts"] = args.task_counts
    if args.compositing_algorithms:
        overrides["compositing_algorithms"] = args.compositing_algorithms
    return replace(config, **overrides) if overrides else config


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.study",
        description="Parallel, cached, resumable execution of the rendering study sweep.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    plan_parser = commands.add_parser("plan", help="expand the matrix without running it")
    _add_matrix_arguments(plan_parser)
    plan_parser.add_argument("--out", help="write the expanded plan as JSON")

    run_parser = commands.add_parser("run", help="execute the sweep")
    _add_matrix_arguments(run_parser)
    run_parser.add_argument("--jobs", type=int, default=1, help="worker processes (1 = in-process)")
    run_parser.add_argument("--timeout", type=float, help="per-experiment timeout in seconds")
    run_parser.add_argument("--cache-dir", help="content-addressed row cache directory")
    run_parser.add_argument(
        "--resume", action="store_true", help="reuse cached rows instead of re-running them"
    )
    run_parser.add_argument(
        "--require-cached",
        action="store_true",
        help="exit 3 if any experiment executed (CI resume gate)",
    )
    run_parser.add_argument("--out", default="study_corpus.json", help="corpus output path")

    merge_parser = commands.add_parser("merge", help="concatenate corpus files")
    merge_parser.add_argument("output")
    merge_parser.add_argument("inputs", nargs="+")

    fit_parser = commands.add_parser("fit", help="fit the models to a corpus file")
    fit_parser.add_argument("corpus")
    fit_parser.add_argument("--crossval", action="store_true", help="also report 3-fold accuracy rows")
    fit_parser.add_argument("--folds", type=int, default=3)
    fit_parser.add_argument("--seed", type=int, default=2016, help="cross-validation shuffle seed")

    return parser


# -- subcommands ----------------------------------------------------------------------

def _command_plan(args) -> int:
    plan = build_plan(_configuration_from(args), include_compositing=not args.no_compositing)
    counts = plan.counts()
    print(f"plan: {len(plan)} experiments ({json.dumps(counts)})")
    for (kind, axis, technique), count in sorted(plan.breakdown().items()):
        label = f"{kind:12s} {axis:12s} {technique or '-':22s}"
        print(f"  {label} {count:4d}")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(plan.to_payload(), handle, indent=1)
        print(f"wrote {args.out}")
    return 0


def _command_run(args) -> int:
    if (args.resume or args.require_cached) and not args.cache_dir:
        print(
            "error: --resume/--require-cached need --cache-dir (there is no cache to resume from)",
            file=sys.stderr,
        )
        return 2
    config = _configuration_from(args)
    plan = build_plan(config, include_compositing=not args.no_compositing)
    cache = CorpusCache(args.cache_dir) if args.cache_dir else None
    corpus, report = run_plan(
        plan, jobs=args.jobs, timeout=args.timeout, cache=cache, resume=args.resume
    )
    save_corpus(corpus, args.out, metadata={"report": report.as_dict(), "preset": args.preset})
    print(
        f"sweep: planned={report.planned} cache_hits={report.cache_hits} "
        f"executed={report.executed} failed={report.failed}"
    )
    print(
        f"corpus: {len(corpus.records)} rendering rows, "
        f"{len(corpus.compositing_records)} compositing rows, "
        f"{len(corpus.failures)} failures -> {args.out}"
    )
    for failure in report.failures:
        spec = plan.specs[failure.index]
        print(f"  FAILED [{failure.reason}] {spec.label()}: {failure.message}", file=sys.stderr)
    if args.require_cached and report.executed > 0:
        print(
            f"--require-cached: {report.executed} experiments executed (expected 0)",
            file=sys.stderr,
        )
        return 3
    if report.failed:
        return 4
    return 0


def _command_merge(args) -> int:
    corpora = [load_corpus(path) for path in args.inputs]
    merged = merge_corpora(corpora)
    save_corpus(merged, args.output, metadata={"merged_from": list(args.inputs)})
    print(
        f"merged {len(args.inputs)} corpora -> {args.output}: "
        f"{len(merged.records)} rendering rows, "
        f"{len(merged.compositing_records)} compositing rows, "
        f"{len(merged.failures)} failures"
    )
    return 0


def _command_fit(args) -> int:
    corpus = load_corpus(args.corpus)
    print(
        f"corpus: {len(corpus.records)} rendering rows, "
        f"{len(corpus.compositing_records)} compositing rows, "
        f"{len(corpus.failures)} failures"
    )
    models = corpus.fit_all_models()
    for (architecture, technique), model in sorted(models.items()):
        line = f"  {architecture:12s} {technique:20s} R^2={model.r_squared:.4f}"
        if args.crossval:
            try:
                summary = corpus.cross_validate(architecture, technique, k=args.folds, seed=args.seed)
            except ValueError as error:
                line += f"  crossval skipped ({error})"
            else:
                row = summary.accuracy_row()
                line += f"  within50={row['within_50']:.0f}% avg={row['average_percent']:.1f}%"
        print(line)
    if corpus.compositing_records:
        compositing = corpus.fit_compositing_model()
        print(f"  compositing ({len(corpus.compositing_records)} rows) R^2={compositing.r_squared:.4f}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    command = {
        "plan": _command_plan,
        "run": _command_run,
        "merge": _command_merge,
        "fit": _command_fit,
    }[args.command]
    return command(args)


if __name__ == "__main__":
    raise SystemExit(main())
