"""``python -m repro.study`` -- the sweep pipeline's command-line face.

Subcommands
-----------
``plan``
    Expand the matrix and print (or write) it without running anything.
    ``--adaptive --corpus corpus.json`` switches to uncertainty-driven
    selection: fit the models on the corpus, score the expanded candidates
    by prediction-interval width, emit the widest ``--batch-size`` as a
    deterministic batch (pure function of corpus digest + config + seed).
``run``
    Execute the sweep: ``--jobs N`` for the process pool, ``--cache-dir`` to
    persist rows, ``--resume`` to reuse them, ``--timeout`` per experiment,
    ``--out`` for the corpus JSON.  ``--require-cached`` exits non-zero if
    anything had to execute -- CI's "second run is 100% cache hits" gate.
    ``--adaptive --corpus corpus.json`` runs ``--rounds`` fit -> select ->
    render -> refit rounds instead of the static matrix and appends the
    learning-curve rows to ``--learning-out`` (``BENCH_learning.json``).
``merge``
    Concatenate corpus files (e.g. per-architecture shards).
``fit``
    Load a corpus and report the fitted models (Table 12's R^2 view) plus
    optional cross-validation accuracy rows, through the
    :class:`~repro.reporting.suite.ModelSuite` registry.
``report``
    Corpus -> full artifact tree: ``models.json``, Tables 12-17 and Figures
    11-15 as JSON + Markdown, manifest, and the consolidated ``report.md``.
``predict``
    Load a ``models.json`` and serve batch predictions with bounded-error
    intervals for inline or file-supplied configurations.  The request goes
    through the serving tier's request path
    (:meth:`repro.serving.core.ServingCore.predict_rows`), so CLI answers are
    bit-identical to what ``python -m repro.serve`` returns over the socket.

Exit codes: 0 success; 2 argument/usage errors (argparse); 3 a ``run`` with
``--require-cached`` executed at least one experiment; 4 a ``run`` recorded
failure rows; 5 a ``fit``/``report`` where *every* fit was degenerate (the
structured failure report is printed as JSON); 6 a ``predict`` naming an
unknown ``(architecture, technique)`` slice (the structured JSON error is
printed to stdout); 7 an adaptive ``plan``/``run`` whose candidate matrix
deduplicated to nothing (the corpus already covers every candidate); 8 a
radix schedule (``--radices``) whose product does not equal a swept task
count (the :class:`repro.compositing.RadixFactorError` payload is printed
as JSON).
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace

from repro.compositing import RadixFactorError, validate_radices
from repro.modeling.study import StudyConfiguration
from repro.study.cache import CorpusCache
from repro.study.corpus_io import load_corpus, merge_corpora, save_corpus
from repro.study.executor import run_plan
from repro.study.plan import build_plan, full_configuration, smoke_configuration

#: Exit code of a fit/report whose every slice was degenerate.
EXIT_ALL_FITS_DEGENERATE = 5

#: Exit code of a predict naming an unknown (architecture, technique) slice.
EXIT_UNKNOWN_MODEL = 6

#: Exit code of an adaptive plan/run with no candidates left after dedup.
EXIT_NO_CANDIDATES = 7

#: Exit code of a run whose radix schedule does not tile a swept task count.
EXIT_RADIX_SCHEDULE = 8

__all__ = ["main", "build_parser"]

_PRESETS = {
    "default": lambda seed: StudyConfiguration(seed=seed),
    "smoke": smoke_configuration,
    "full": full_configuration,
}


def _comma_tuple(text: str) -> tuple[str, ...]:
    return tuple(part.strip() for part in text.split(",") if part.strip())


def _comma_ints(text: str) -> tuple[int, ...]:
    return tuple(int(part) for part in _comma_tuple(text))


def _add_matrix_arguments(parser: argparse.ArgumentParser) -> None:
    matrix = parser.add_argument_group("matrix", "override the preset's sweep matrix")
    matrix.add_argument("--preset", choices=sorted(_PRESETS), default="default")
    matrix.add_argument("--seed", type=int, default=2016)
    matrix.add_argument("--samples", type=int, help="stratified samples per technique")
    matrix.add_argument("--simulations", type=_comma_tuple, help="comma list, e.g. kripke,lulesh")
    matrix.add_argument(
        "--techniques",
        type=_comma_tuple,
        help="comma list from raytrace,raster,volume,volume_unstructured",
    )
    matrix.add_argument("--architectures", type=_comma_tuple, help="comma list, e.g. cpu-host,gpu1-k40m")
    matrix.add_argument(
        "--dpp-devices",
        type=_comma_tuple,
        help="comma list of DPP back-ends host renders run on, e.g. vectorized,jax",
    )
    matrix.add_argument("--task-counts", type=_comma_ints, help="comma list of MPI task counts")
    matrix.add_argument(
        "--compositing-algorithms",
        type=_comma_tuple,
        help="comma list from direct-send,binary-swap,radix-k",
    )
    matrix.add_argument("--no-compositing", action="store_true", help="skip the Eq. 5.5 sweep")
    matrix.add_argument(
        "--compositing-tasks", type=_comma_ints, help="comma list of compositing rank counts"
    )
    matrix.add_argument(
        "--radices",
        type=_comma_ints,
        help="explicit radix-k schedule; its product must equal every swept rank count",
    )
    matrix.add_argument(
        "--max-live-ranks",
        type=int,
        help="cohort budget: rank counts above it stream through the cohort scheduler",
    )
    matrix.add_argument(
        "--compositing-scenario",
        choices=("uniform", "amr", "camera-orbit"),
        help="scene family for streamed compositing rows",
    )


def _add_adaptive_arguments(parser: argparse.ArgumentParser) -> None:
    adaptive = parser.add_argument_group("adaptive", "uncertainty-driven selection (requires --corpus)")
    adaptive.add_argument(
        "--adaptive",
        action="store_true",
        help="select the widest-interval candidates instead of the static matrix",
    )
    adaptive.add_argument("--corpus", help="corpus JSON the models are fitted on")
    adaptive.add_argument("--batch-size", type=int, default=8, help="experiments per adaptive batch")
    adaptive.add_argument(
        "--expand", type=int, default=4, help="candidate density multiplier over --samples"
    )
    adaptive.add_argument("--sigmas", type=float, default=2.0, help="interval half-width in residual stds")
    adaptive.add_argument("--folds", type=int, default=3, help="cross-validation folds per refit")


def _configuration_from(args: argparse.Namespace) -> StudyConfiguration:
    config = _PRESETS[args.preset](args.seed)
    overrides = {}
    if args.samples is not None:
        overrides["samples_per_technique"] = args.samples
    if args.simulations:
        overrides["simulations"] = args.simulations
    if args.techniques:
        overrides["techniques"] = args.techniques
    if args.architectures:
        overrides["architectures"] = args.architectures
    if args.dpp_devices:
        overrides["dpp_devices"] = args.dpp_devices
    if args.task_counts:
        overrides["task_counts"] = args.task_counts
    if args.compositing_algorithms:
        overrides["compositing_algorithms"] = args.compositing_algorithms
    if getattr(args, "compositing_tasks", None):
        overrides["compositing_task_counts"] = args.compositing_tasks
    if getattr(args, "radices", None):
        overrides["compositing_radices"] = args.radices
    if getattr(args, "max_live_ranks", None) is not None:
        overrides["compositing_max_live_ranks"] = args.max_live_ranks
    if getattr(args, "compositing_scenario", None):
        overrides["compositing_scenario"] = args.compositing_scenario
    config = replace(config, **overrides) if overrides else config
    if config.compositing_radices is not None and "radix-k" in config.compositing_algorithms:
        # Validate the schedule against every swept rank count up front: a
        # schedule that does not tile a count would otherwise only surface
        # mid-sweep as an isolated failure row.
        for tasks in config.compositing_task_counts:
            validate_radices(tasks, config.compositing_radices)
    return config


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.study",
        description="Parallel, cached, resumable execution of the rendering study sweep.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    plan_parser = commands.add_parser("plan", help="expand the matrix without running it")
    _add_matrix_arguments(plan_parser)
    _add_adaptive_arguments(plan_parser)
    plan_parser.add_argument("--out", help="write the expanded plan (or adaptive batch) as JSON")

    run_parser = commands.add_parser("run", help="execute the sweep")
    _add_matrix_arguments(run_parser)
    _add_adaptive_arguments(run_parser)
    run_parser.add_argument("--rounds", type=int, default=2, help="adaptive fit->select->render rounds")
    run_parser.add_argument(
        "--learning-out", help="append adaptive learning-curve rows to this BENCH_learning.json"
    )
    run_parser.add_argument("--jobs", type=int, default=1, help="worker processes (1 = in-process)")
    run_parser.add_argument("--timeout", type=float, help="per-experiment timeout in seconds")
    run_parser.add_argument("--cache-dir", help="content-addressed row cache directory")
    run_parser.add_argument(
        "--resume", action="store_true", help="reuse cached rows instead of re-running them"
    )
    run_parser.add_argument(
        "--require-cached",
        action="store_true",
        help="exit 3 if any experiment executed (CI resume gate)",
    )
    run_parser.add_argument("--out", default="study_corpus.json", help="corpus output path")

    merge_parser = commands.add_parser("merge", help="concatenate corpus files")
    merge_parser.add_argument("output")
    merge_parser.add_argument("inputs", nargs="+")

    fit_parser = commands.add_parser("fit", help="fit the models to a corpus file")
    fit_parser.add_argument("corpus")
    fit_parser.add_argument("--crossval", action="store_true", help="also report 3-fold accuracy rows")
    fit_parser.add_argument("--folds", type=int, default=3)
    fit_parser.add_argument("--seed", type=int, default=2016, help="cross-validation shuffle seed")

    report_parser = commands.add_parser(
        "report", help="corpus -> models.json + Tables 12-17 / Figures 11-15 (JSON + Markdown)"
    )
    report_parser.add_argument("corpus")
    report_parser.add_argument("--out-dir", default="study-report", help="artifact tree root")
    report_parser.add_argument("--folds", type=int, default=3)
    report_parser.add_argument("--seed", type=int, default=2016, help="cross-validation shuffle seed")

    predict_parser = commands.add_parser(
        "predict", help="serve batch predictions with intervals from a models.json"
    )
    predict_parser.add_argument("models", help="models.json written by `report` (or ModelSuite.save)")
    predict_parser.add_argument("--configs", help="JSON file: list of configuration objects")
    predict_parser.add_argument("--architecture", help="inline configuration: architecture")
    predict_parser.add_argument("--technique", help="inline configuration: technique")
    predict_parser.add_argument("--num-tasks", type=int, default=32)
    predict_parser.add_argument("--cells-per-task", type=int, default=200)
    predict_parser.add_argument("--image-size", type=int, default=1024, help="square image edge")
    predict_parser.add_argument("--samples-in-depth", type=int, default=1000)
    predict_parser.add_argument("--no-build", action="store_true", help="exclude the BVH build")
    predict_parser.add_argument(
        "--sigmas", type=float, default=2.0, help="interval half-width in residual stds"
    )
    predict_parser.add_argument("--out", help="write the prediction JSON here instead of stdout")

    return parser


# -- subcommands ----------------------------------------------------------------------

def _load_adaptive_corpus(args):
    """The corpus behind ``--adaptive``, or ``None`` + exit code on usage error."""
    if not args.corpus:
        print("error: --adaptive needs --corpus (the models must fit on something)", file=sys.stderr)
        return None, 2
    return load_corpus(args.corpus), 0


def _print_selection(selection) -> None:
    print(
        f"adaptive: {len(selection.candidates)} candidates "
        f"({selection.deduplicated} deduplicated against corpus, "
        f"{selection.unknown_candidates()} on unfit slices), "
        f"selected {len(selection.selected)}/{selection.batch_size}"
    )
    mean_width = selection.mean_interval_width()
    if mean_width is not None:
        print(f"adaptive: mean interval width {mean_width:.4f}s over fitted candidates")
    for candidate in selection.selected:
        width = "unfit-slice" if not candidate.known else f"{candidate.width:.4f}s"
        print(f"  {width:>12s}  {candidate.spec.label()}")


def _command_plan_adaptive(args) -> int:
    from repro.study.adaptive import select_batch

    corpus, code = _load_adaptive_corpus(args)
    if corpus is None:
        return code
    selection = select_batch(
        corpus,
        _configuration_from(args),
        batch_size=args.batch_size,
        seed=args.seed,
        expand=args.expand,
        sigmas=args.sigmas,
        folds=args.folds,
        include_compositing=not args.no_compositing,
    )
    _print_selection(selection)
    if args.out:
        text = json.dumps(selection.to_payload(), indent=2, sort_keys=True)
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.out}")
    if not selection.candidates:
        print("error: the corpus already covers every candidate", file=sys.stderr)
        return EXIT_NO_CANDIDATES
    return 0


def _command_run_adaptive(args) -> int:
    from repro.study.adaptive import run_adaptive_rounds
    from repro.study.trajectory import append_trajectory_rows

    corpus, code = _load_adaptive_corpus(args)
    if corpus is None:
        return code
    cache = CorpusCache(args.cache_dir) if args.cache_dir else None
    run = run_adaptive_rounds(
        corpus,
        _configuration_from(args),
        rounds=args.rounds,
        batch_size=args.batch_size,
        seed=args.seed,
        expand=args.expand,
        sigmas=args.sigmas,
        folds=args.folds,
        jobs=args.jobs,
        timeout=args.timeout,
        cache=cache,
        resume=args.resume,
        include_compositing=not args.no_compositing,
    )
    for index, round_ in enumerate(run.rounds):
        _print_selection(round_.selection)
        if round_.report is not None:
            print(
                f"round {index}: executed={round_.report.executed} "
                f"cache_hits={round_.report.cache_hits} failed={round_.report.failed}"
            )
    save_corpus(
        run.corpus,
        args.out,
        metadata={"preset": args.preset, "adaptive_rounds": len(run.rounds)},
    )
    print(
        f"corpus: {len(run.corpus.records)} rendering rows, "
        f"{len(run.corpus.compositing_records)} compositing rows, "
        f"{len(run.corpus.failures)} failures -> {args.out}"
    )
    if args.learning_out:
        payload = append_trajectory_rows(args.learning_out, run.trajectory_rows())
        print(f"learning curve: {len(payload['rows'])} rows -> {args.learning_out}")
    if not run.rounds or not run.rounds[0].selection.selected:
        print("error: the corpus already covers every candidate", file=sys.stderr)
        return EXIT_NO_CANDIDATES
    if run.failures:
        return 4
    return 0


def _command_plan(args) -> int:
    if args.adaptive:
        return _command_plan_adaptive(args)
    plan = build_plan(_configuration_from(args), include_compositing=not args.no_compositing)
    counts = plan.counts()
    print(f"plan: {len(plan)} experiments ({json.dumps(counts)})")
    for (kind, axis, technique), count in sorted(plan.breakdown().items()):
        label = f"{kind:12s} {axis:12s} {technique or '-':22s}"
        print(f"  {label} {count:4d}")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(plan.to_payload(), handle, indent=1)
        print(f"wrote {args.out}")
    return 0


def _command_run(args) -> int:
    if args.adaptive:
        return _command_run_adaptive(args)
    if (args.resume or args.require_cached) and not args.cache_dir:
        print(
            "error: --resume/--require-cached need --cache-dir (there is no cache to resume from)",
            file=sys.stderr,
        )
        return 2
    config = _configuration_from(args)
    plan = build_plan(config, include_compositing=not args.no_compositing)
    cache = CorpusCache(args.cache_dir) if args.cache_dir else None
    corpus, report = run_plan(
        plan, jobs=args.jobs, timeout=args.timeout, cache=cache, resume=args.resume
    )
    save_corpus(corpus, args.out, metadata={"report": report.as_dict(), "preset": args.preset})
    print(
        f"sweep: planned={report.planned} cache_hits={report.cache_hits} "
        f"executed={report.executed} failed={report.failed}"
    )
    print(
        f"corpus: {len(corpus.records)} rendering rows, "
        f"{len(corpus.compositing_records)} compositing rows, "
        f"{len(corpus.failures)} failures -> {args.out}"
    )
    for failure in report.failures:
        spec = plan.specs[failure.index]
        print(f"  FAILED [{failure.reason}] {spec.label()}: {failure.message}", file=sys.stderr)
    if args.require_cached and report.executed > 0:
        print(
            f"--require-cached: {report.executed} experiments executed (expected 0)",
            file=sys.stderr,
        )
        return 3
    if report.failed:
        return 4
    return 0


def _command_merge(args) -> int:
    corpora = [load_corpus(path) for path in args.inputs]
    merged = merge_corpora(corpora)
    save_corpus(merged, args.output, metadata={"merged_from": list(args.inputs)})
    print(
        f"merged {len(args.inputs)} corpora -> {args.output}: "
        f"{len(merged.records)} rendering rows, "
        f"{len(merged.compositing_records)} compositing rows, "
        f"{len(merged.failures)} failures"
    )
    return 0


def _print_corpus_line(corpus) -> None:
    print(
        f"corpus: {len(corpus.records)} rendering rows, "
        f"{len(corpus.compositing_records)} compositing rows, "
        f"{len(corpus.failures)} failures"
    )


def _degenerate_exit(suite) -> int:
    """The all-degenerate outcome: a structured JSON failure report, exit 5."""
    print(
        json.dumps(
            {"error": "all-fits-degenerate", "failures": suite.failures},
            indent=2,
            sort_keys=True,
        )
    )
    print("error: no model could be fitted from this corpus", file=sys.stderr)
    return EXIT_ALL_FITS_DEGENERATE


def _command_fit(args) -> int:
    from repro.reporting.suite import ModelSuite

    corpus = load_corpus(args.corpus)
    _print_corpus_line(corpus)
    suite = ModelSuite.fit_corpus(corpus, folds=args.folds, seed=args.seed)
    for entry in suite.all_entries():
        label = entry.technique
        if entry.technique == "compositing":
            label = f"compositing ({entry.num_rows} rows)"
        line = f"  {entry.architecture:12s} {label:20s} R^2={entry.model.r_squared:.4f}"
        if args.crossval:
            if entry.crossval_accuracy is None:
                line += f"  crossval skipped ({entry.crossval_skipped})"
            else:
                row = entry.crossval_accuracy
                line += f"  within50={row['within_50']:.0f}% avg={row['average_percent']:.1f}%"
        print(line)
    for failure in suite.failures:
        print(
            f"  DEGENERATE {failure['architecture']}/{failure['technique']}: "
            f"{failure['message']} ({failure['num_rows']} rows)",
            file=sys.stderr,
        )
    for warning in suite.all_warnings():
        print(f"  WARNING {json.dumps(warning, sort_keys=True)}", file=sys.stderr)
    if suite.is_empty():
        return _degenerate_exit(suite)
    return 0


def _command_report(args) -> int:
    from repro.reporting.report import generate_report

    corpus = load_corpus(args.corpus)
    _print_corpus_line(corpus)
    result = generate_report(corpus, args.out_dir, folds=args.folds, seed=args.seed)
    print(
        f"report: {len(result.suite.entries)} renderer models"
        + (" + compositing" if result.suite.compositing is not None else "")
        + f", {len(result.suite.failures)} degenerate fits, "
        f"{len(result.suite.all_warnings())} warnings -> {result.out_dir}"
    )
    print(f"  models:   {result.models_path}")
    print(f"  markdown: {result.markdown_path}")
    if result.suite.is_empty():
        return _degenerate_exit(result.suite)
    return 0


def _command_predict(args) -> int:
    from repro.serving.core import ServingCore, ServingError

    core = ServingCore.from_path(args.models, cache_size=0)
    if args.configs:
        with open(args.configs, encoding="utf-8") as handle:
            configs = json.load(handle)
        if not isinstance(configs, list):
            print("error: --configs must hold a JSON list of configuration objects", file=sys.stderr)
            return 2
    else:
        if not args.architecture or not args.technique:
            print(
                "error: pass --configs FILE, or an inline --architecture and --technique",
                file=sys.stderr,
            )
            return 2
        configs = [
            {
                "architecture": args.architecture,
                "technique": args.technique,
                "num_tasks": args.num_tasks,
                "cells_per_task": args.cells_per_task,
                "image_width": args.image_size,
                "image_height": args.image_size,
                "samples_in_depth": args.samples_in_depth,
                "include_build": not args.no_build,
            }
        ]

    try:
        rows, meta = core.predict_rows(configs, sigmas=args.sigmas)
    except ServingError as error:
        if error.code == "unknown-model":
            # The structured error a serving client would receive, exit 6.
            print(json.dumps(error.payload(), indent=2, sort_keys=True))
            print(f"error: {error}", file=sys.stderr)
            return EXIT_UNKNOWN_MODEL
        print(f"error: {error}", file=sys.stderr)
        return 2
    payload = {
        "models": args.models,
        "models_digest": meta["models_digest"],
        "sigmas": args.sigmas,
        "predictions": rows,
    }
    text = json.dumps(payload, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {len(rows)} predictions -> {args.out}")
    else:
        print(text)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    command = {
        "plan": _command_plan,
        "run": _command_run,
        "merge": _command_merge,
        "fit": _command_fit,
        "report": _command_report,
        "predict": _command_predict,
    }[args.command]
    try:
        return command(args)
    except RadixFactorError as error:
        # A mis-specified --radices schedule is a configuration error, not a
        # crash: report it machine-readably on its own exit code.
        print(json.dumps(error.as_dict(), indent=2, sort_keys=True))
        return EXIT_RADIX_SCHEDULE


if __name__ == "__main__":
    raise SystemExit(main())
