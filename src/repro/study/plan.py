"""Declarative sweep plans: matrix expansion of a :class:`StudyConfiguration`.

The paper's study is a 1,350-experiment matrix over {architecture x technique
x simulation x task count x resolution x data size}; this module turns a
:class:`~repro.modeling.study.StudyConfiguration` into the equivalent explicit
list of :class:`ExperimentSpec`\\ s *before* anything runs.  Expanding first is
what makes the rest of the engine possible:

* every stochastic choice (the stratified resolution/size samples) is drawn at
  plan time, so executing a spec is a pure function of the spec -- specs can be
  cached, distributed over a process pool, retried, or skipped without
  changing any other spec's result;
* the plan is serializable (``python -m repro.study plan --out plan.json``)
  and diffable, so a sweep is reviewable before it spends hours rendering;
* the plan order *is* the corpus order: the engine reassembles rows by spec
  index, which keeps a parallel sweep row-for-row identical to the serial
  oracle (:meth:`~repro.modeling.study.StudyHarness.run_serial`).

The expansion reproduces the oracle's enumeration exactly: one host-measured
pass per technique drawing from the ``"study"`` RNG stream, one synthesized
full-scale pass per non-host architecture drawing from ``"study-synthetic"``,
then the compositing matrix (algorithms x task counts x pixel sizes).
"""

from __future__ import annotations

import warnings
from dataclasses import asdict, dataclass, field

from repro.modeling.study import HOST_ARCHITECTURE, StudyConfiguration
from repro.util.rng import default_rng

__all__ = [
    "ExperimentSpec",
    "SweepPlan",
    "build_plan",
    "smoke_configuration",
    "full_configuration",
    "spec_from_payload",
    "spec_corpus_key",
    "corpus_spec_keys",
]

#: Spec kinds and the experiment they resolve to.
KIND_RENDER = "render"  # host-measured render (StudyHarness.run_experiment)
KIND_SYNTHETIC = "synthetic"  # mapped + cost-model experiment (run_synthetic_experiment)
KIND_COMPOSITING = "compositing"  # Eq. 5.5 compositing row (run_compositing_case)

KINDS = (KIND_RENDER, KIND_SYNTHETIC, KIND_COMPOSITING)


@dataclass(frozen=True)
class ExperimentSpec:
    """One fully-resolved experiment of a sweep.

    A spec carries *everything* its execution needs -- config keys plus the
    handful of :class:`StudyConfiguration` knobs the renderers consume -- so a
    worker process reconstructs nothing from ambient state.  Two specs with
    equal :meth:`key_payload` describe the same experiment and may share a
    cache entry.
    """

    kind: str
    base_seed: int
    architecture: str = ""
    technique: str = ""
    simulation: str = ""
    num_tasks: int = 0
    cells_per_task: int = 0
    image_width: int = 0
    image_height: int = 0
    samples_in_depth: int = 0
    synthetic_samples_in_depth: int = 0
    max_sampled_ranks: int = 0
    algorithm: str = ""
    pixel_size: int = 0
    #: DPP back-end for host renders ("" = the worker's default device);
    #: part of the cache key, so the same configuration rendered on two
    #: back-ends occupies two cache entries.
    dpp_device: str = ""

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown spec kind {self.kind!r}; choose from {KINDS}")

    def key_payload(self) -> dict:
        """The identity of this experiment as a flat, JSON-stable dict.

        Every field participates: the config keys obviously, and the harness
        knobs too (``samples_in_depth`` changes the render, ``base_seed``
        changes the noise/sub-image streams), so the content-addressed cache
        can never alias two experiments that would produce different rows.
        """
        return {name: value for name, value in sorted(asdict(self).items())}

    def label(self) -> str:
        """Short human-readable identity used in logs and failure rows."""
        if self.kind == KIND_COMPOSITING:
            return f"compositing/{self.algorithm}/t{self.num_tasks}/{self.pixel_size}px"
        device_suffix = f"@{self.dpp_device}" if self.dpp_device else ""
        return (
            f"{self.kind}/{self.architecture}/{self.technique}/{self.simulation}"
            f"/t{self.num_tasks}/c{self.cells_per_task}/{self.image_width}x{self.image_height}"
            f"{device_suffix}"
        )


@dataclass
class SweepPlan:
    """An ordered list of specs plus the configuration that produced it."""

    config: StudyConfiguration
    specs: list[ExperimentSpec] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.specs)

    def counts(self) -> dict[str, int]:
        """Spec counts by kind (the ``plan`` subcommand's summary)."""
        counts: dict[str, int] = {kind: 0 for kind in KINDS}
        for spec in self.specs:
            counts[spec.kind] += 1
        return counts

    def breakdown(self) -> dict[tuple[str, str, str], int]:
        """Counts by (kind, architecture-or-algorithm, technique)."""
        table: dict[tuple[str, str, str], int] = {}
        for spec in self.specs:
            axis = spec.algorithm if spec.kind == KIND_COMPOSITING else spec.architecture
            key = (spec.kind, axis, spec.technique)
            table[key] = table.get(key, 0) + 1
        return table

    def to_payload(self) -> dict:
        """JSON-serializable form (``plan --out plan.json``)."""
        return {
            "config": asdict(self.config),
            "specs": [spec.key_payload() for spec in self.specs],
        }


def build_plan(config: StudyConfiguration, include_compositing: bool = True) -> SweepPlan:
    """Expand a study configuration into the explicit experiment matrix.

    The enumeration (loop nesting *and* RNG stream consumption) mirrors
    :meth:`StudyHarness.run_serial` exactly; the engine's row-for-row parity
    with the serial oracle rests on this function staying in lockstep with it.
    """
    specs: list[ExperimentSpec] = []
    common = dict(
        base_seed=config.seed,
        samples_in_depth=config.samples_in_depth,
        synthetic_samples_in_depth=config.synthetic_samples_in_depth,
        max_sampled_ranks=config.max_sampled_ranks,
    )

    rng = default_rng(config.seed, "study")
    for technique in config.techniques:
        if HOST_ARCHITECTURE in config.architectures:
            # One stratified draw per technique, shared by every DPP back-end:
            # the device axis compares back-ends on *identical* configurations
            # and leaves the RNG stream exactly where the single-device
            # enumeration (and the serial oracle) leaves it.
            samples = config.stratified_samples(rng)
            for dpp_device in config.dpp_devices:
                for image_size, cells, tasks, simulation in samples:
                    specs.append(
                        ExperimentSpec(
                            kind=KIND_RENDER,
                            architecture=HOST_ARCHITECTURE,
                            technique=technique,
                            simulation=simulation,
                            num_tasks=tasks,
                            cells_per_task=cells,
                            image_width=image_size,
                            image_height=image_size,
                            dpp_device=dpp_device,
                            **common,
                        )
                    )

    synthetic_rng = default_rng(config.seed, "study-synthetic")
    for architecture in config.architectures:
        if architecture == HOST_ARCHITECTURE:
            continue
        for technique in config.techniques:
            for image_size, cells, tasks, simulation in config.stratified_samples(
                synthetic_rng, synthetic=True
            ):
                specs.append(
                    ExperimentSpec(
                        kind=KIND_SYNTHETIC,
                        architecture=architecture,
                        technique=technique,
                        simulation=simulation,
                        num_tasks=tasks,
                        cells_per_task=cells,
                        image_width=image_size,
                        image_height=image_size,
                        **common,
                    )
                )

    if include_compositing:
        for algorithm in config.compositing_algorithms:
            for tasks in config.compositing_task_counts:
                for size in config.compositing_pixel_sizes:
                    specs.append(
                        ExperimentSpec(
                            kind=KIND_COMPOSITING,
                            algorithm=algorithm,
                            num_tasks=tasks,
                            pixel_size=size,
                            **common,
                        )
                    )

    return SweepPlan(config=config, specs=specs)


def smoke_configuration(seed: int = 2016) -> StudyConfiguration:
    """The CI smoke matrix: 2 simulations x 2 renderer families x 4 ranks.

    Small enough to run (twice -- once cold, once resumed) inside the CI
    budget, but still exercising host renders, synthesized experiments, and
    every compositing algorithm.
    """
    return StudyConfiguration(
        simulations=("kripke", "lulesh"),
        techniques=("raytrace", "volume"),
        task_counts=(4,),
        samples_per_technique=4,
        image_size_range=(48, 80),
        cells_per_task_range=(6, 10),
        samples_in_depth=24,
        compositing_task_counts=(4,),
        compositing_pixel_sizes=(48, 64),
        compositing_algorithms=("direct-send", "binary-swap", "radix-k"),
        seed=seed,
    )


def full_configuration(seed: int = 2016) -> StudyConfiguration:
    """The widest matrix the reproduction renders: every simulation in
    :mod:`repro.simulations`, all four renderer families, all three
    compositing algorithms, both devices, stratified resolution/size pairs
    up to the benchmark's full 192^2 resolution.

    The resolution ceiling was held at the default 160 while the unstructured
    sampler ran at seed speed (a single 192^2 tet render cost ~20 s); the
    fragment-sorted sampler removed that cliff, so ``volume_unstructured``
    rows now sweep the same full-resolution range as every other family.

    The compositing axis extends past the 256-rank dense ceiling: the 1,024-
    and 4,096-rank rows stream through the cohort scheduler (bounded by
    ``compositing_max_live_ranks``) over the AMR nonuniform-decomposition
    scenario, so the Eq. 5.5 corpus covers the thousand-rank regime the paper
    validates at Titan scale.
    """
    return StudyConfiguration(
        techniques=("raytrace", "raster", "volume", "volume_unstructured"),
        compositing_algorithms=("direct-send", "binary-swap", "radix-k"),
        compositing_task_counts=(2, 4, 8, 16, 32, 64, 256, 1024, 4096),
        compositing_scenario="amr",
        image_size_range=(64, 192),
        seed=seed,
    )


def spec_from_payload(payload: dict, lenient: bool = False) -> ExperimentSpec:
    """Inverse of :meth:`ExperimentSpec.key_payload` (plan files, cache entries).

    Unknown payload keys raise: a key this spec schema does not carry means the
    payload came from a newer (or otherwise diverged) plan/cache schema, and
    silently dropping it would alias two *different* experiments onto one spec.
    Pass ``lenient=True`` to downgrade the mismatch to a :class:`UserWarning`
    (e.g. when deliberately reading a newer plan file for inspection).
    """
    known = set(ExperimentSpec.__dataclass_fields__)
    unknown = sorted(set(payload) - known)
    if unknown:
        message = (
            f"spec payload carries unknown keys {unknown}: plan/cache schema drift "
            "(pass lenient=True to drop them anyway)"
        )
        if not lenient:
            raise ValueError(message)
        warnings.warn(message, UserWarning, stacklevel=2)
    return ExperimentSpec(**{name: value for name, value in payload.items() if name in known})


# ---------------------------------------------------------------------------
# Experiment identity across plans and corpora (adaptive dedup)
# ---------------------------------------------------------------------------

def spec_corpus_key(payload: "ExperimentSpec | dict") -> tuple:
    """The *corpus-level* identity of an experiment, as a hashable tuple.

    Coarser than :meth:`ExperimentSpec.key_payload` on purpose: corpus rows do
    not record ``base_seed`` (two seeds rendering the same configuration
    produce interchangeable rows as far as the fitted models are concerned),
    so adaptive dedup must compare what a *row* can answer -- the observable
    configuration.  Accepts a spec or its payload dict; compositing keys carry
    total pixels (``pixel_size**2``) so they compare against
    :class:`~repro.modeling.study.CompositingRecord.pixels` directly.
    """
    if isinstance(payload, ExperimentSpec):
        payload = payload.key_payload()
    if payload["kind"] == KIND_COMPOSITING:
        size = int(payload["pixel_size"])
        return (KIND_COMPOSITING, payload["algorithm"], int(payload["num_tasks"]), size * size)
    samples = (
        payload["samples_in_depth"]
        if payload["kind"] == KIND_RENDER
        else payload["synthetic_samples_in_depth"]
    )
    return (
        "experiment",
        payload["architecture"],
        payload["technique"],
        payload["simulation"],
        int(payload["num_tasks"]),
        int(payload["cells_per_task"]),
        int(payload["image_width"]),
        int(payload["image_height"]),
        int(samples),
        payload.get("dpp_device", "") if payload["kind"] == KIND_RENDER else "",
    )


def corpus_spec_keys(corpus) -> set[tuple]:
    """Every experiment identity a corpus already holds (rows *and* failures).

    Failure rows count: a configuration that crashed or timed out was spent
    budget, and re-selecting it every adaptive round would wedge the loop on
    a permanently-broken config.  Rendering rows key by the observable config
    (the record's own ``samples_in_depth``/``dpp_device``), compositing rows
    by (algorithm, tasks, pixels).
    """
    keys: set[tuple] = set()
    for record in corpus.records:
        keys.add(
            (
                "experiment",
                record.architecture,
                record.technique,
                record.simulation,
                int(record.num_tasks),
                int(record.cells_per_task),
                int(record.image_width),
                int(record.image_height),
                int(record.samples_in_depth),
                record.dpp_device if record.architecture == HOST_ARCHITECTURE else "",
            )
        )
    for record in corpus.compositing_records:
        keys.add((KIND_COMPOSITING, record.algorithm, int(record.num_tasks), int(record.pixels)))
    for failure in corpus.failures:
        if failure.spec and "kind" in failure.spec:
            keys.add(spec_corpus_key(failure.spec))
    return keys
