"""The sweep executor: process-pool execution with isolation, timeouts, cache.

Two layers live here.

:class:`SweepExecutor` is generic: it runs ``execute(spec) -> payload`` over a
list of specs with

* **failure isolation** -- a spec that raises records an ``"error"`` failure;
  a spec whose worker process dies (segfault, ``os._exit``, OOM kill) records
  a ``"crash"`` failure and the pool replaces the worker; in both cases every
  other spec still runs;
* **per-experiment timeouts** -- a worker that exceeds ``timeout`` seconds on
  one spec is terminated (``"timeout"`` failure) and replaced;
* **caching / resume** -- with a :class:`~repro.study.cache.CorpusCache` and
  ``resume=True``, cached specs are never re-executed, and every fresh result
  is persisted the moment it finishes, so a killed sweep loses at most the
  experiments that were in flight.

The pool is hand-rolled (workers over pipes, a dispatcher with deadlines)
rather than ``concurrent.futures`` because ``ProcessPoolExecutor`` cannot
kill a timed-out task and treats a dead worker as a broken pool -- the
opposite of the isolation contract above.  Each worker owns a private duplex
pipe, so terminating one worker can never corrupt another's channel.

The second layer is the study glue: :func:`execute_spec` turns one
:class:`~repro.study.plan.ExperimentSpec` into a row payload by calling the
same :class:`~repro.modeling.study.StudyHarness` methods the serial oracle
uses, and :func:`run_plan` assembles executor output back into a
:class:`~repro.modeling.study.StudyCorpus` in plan order.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import time
import traceback
from dataclasses import dataclass, field

from repro.study.plan import (
    KIND_COMPOSITING,
    KIND_RENDER,
    KIND_SYNTHETIC,
    ExperimentSpec,
    SweepPlan,
)

__all__ = [
    "SpecFailure",
    "SweepOutcome",
    "SweepReport",
    "SweepExecutor",
    "execute_spec",
    "run_plan",
]

#: Seconds between dispatcher wake-ups while waiting on workers.
_POLL_SECONDS = 0.05


@dataclass
class SpecFailure:
    """Why one spec produced no row."""

    index: int
    reason: str  #: ``"error"`` | ``"timeout"`` | ``"crash"``
    error_type: str = ""
    message: str = ""
    traceback_text: str = ""


@dataclass
class SweepOutcome:
    """Index-aligned results of one executor run."""

    payloads: list[dict | None]
    failures: list[SpecFailure] = field(default_factory=list)
    from_cache: list[bool] = field(default_factory=list)
    cache_hits: int = 0
    executed: int = 0


class _Worker:
    """One pool process plus its private pipe and current assignment."""

    def __init__(self, context, execute) -> None:
        parent_conn, child_conn = context.Pipe(duplex=True)
        self.conn = parent_conn
        self.process = context.Process(
            target=_worker_loop, args=(execute, child_conn), daemon=True
        )
        self.process.start()
        child_conn.close()
        self.task_index: int | None = None
        self.deadline: float | None = None

    def assign(self, index: int, spec, timeout: float | None) -> None:
        self.conn.send((index, spec))
        self.task_index = index
        self.deadline = (time.monotonic() + timeout) if timeout else None

    def release(self) -> None:
        self.task_index = None
        self.deadline = None

    def stop(self) -> None:
        try:
            self.conn.send(None)
        except (OSError, BrokenPipeError):
            pass
        self.process.join(timeout=2.0)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=2.0)
        self.conn.close()

    def kill(self) -> None:
        self.process.terminate()
        self.process.join(timeout=2.0)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(timeout=2.0)
        self.conn.close()


def _worker_loop(execute, conn) -> None:
    """Worker main: receive ``(index, spec)``, reply ``(status, index, payload)``."""
    while True:
        try:
            item = conn.recv()
        except (EOFError, OSError):
            return
        if item is None:
            return
        index, spec = item
        try:
            payload = execute(spec)
            conn.send(("ok", index, payload))
        except Exception as exc:
            conn.send(
                (
                    "error",
                    index,
                    {
                        "error_type": type(exc).__name__,
                        "message": str(exc),
                        "traceback": traceback.format_exc(),
                    },
                )
            )


class SweepExecutor:
    """Run ``execute`` over specs with isolation, timeouts, and caching.

    Parameters
    ----------
    execute:
        Pure function of one spec returning a JSON-safe payload.  Must be
        picklable (a module-level function) when ``jobs > 1``.
    jobs:
        Worker process count; ``1`` executes in-process (no multiprocessing,
        still failure-isolated for Python exceptions).
    timeout:
        Per-experiment wall-clock budget in seconds.  Enforcement requires a
        killable process, so ``jobs=1`` with a timeout runs on a one-worker
        pool instead of in-process.
    cache, key_fn:
        Content-addressed row cache plus the spec -> key-payload projection
        (defaults to ``spec.key_payload()``).  Results are always written
        through; cached rows are only *read* when ``run(resume=True)``.
    """

    def __init__(self, execute, jobs: int = 1, timeout: float | None = None, cache=None, key_fn=None):
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        self.execute = execute
        self.jobs = jobs
        self.timeout = timeout
        self.cache = cache
        self.key_fn = key_fn if key_fn is not None else lambda spec: spec.key_payload()

    # -- public -------------------------------------------------------------------------
    def run(self, specs: list, resume: bool = True) -> SweepOutcome:
        outcome = SweepOutcome(
            payloads=[None] * len(specs), from_cache=[False] * len(specs)
        )
        keys: list[str | None] = [None] * len(specs)
        pending: list[int] = []
        for index, spec in enumerate(specs):
            if self.cache is not None:
                keys[index] = self.cache.key(self.key_fn(spec))
                if resume:
                    cached = self.cache.get(keys[index])
                    if cached is not None:
                        outcome.payloads[index] = cached
                        outcome.from_cache[index] = True
                        outcome.cache_hits += 1
                        continue
            pending.append(index)

        if not pending:
            return outcome
        # Timeouts can only be enforced on a process we may kill, so a
        # timeout-carrying serial run still goes through a one-worker pool.
        if self.jobs == 1 and self.timeout is None:
            self._run_inline(specs, pending, keys, outcome)
        else:
            self._run_pool(specs, pending, keys, outcome)
        return outcome

    # -- in-process path ----------------------------------------------------------------
    def _run_inline(self, specs, pending, keys, outcome) -> None:
        for index in pending:
            try:
                payload = self.execute(specs[index])
            except Exception as exc:
                outcome.failures.append(
                    SpecFailure(
                        index=index,
                        reason="error",
                        error_type=type(exc).__name__,
                        message=str(exc),
                        traceback_text=traceback.format_exc(),
                    )
                )
                continue
            self._record(index, payload, specs, keys, outcome)

    # -- pool path ----------------------------------------------------------------------
    def _run_pool(self, specs, pending, keys, outcome) -> None:
        context = multiprocessing.get_context()
        queue = list(pending)
        workers: list[_Worker] = []
        try:
            for _ in range(min(self.jobs, len(queue))):
                workers.append(_Worker(context, self.execute))
            idle = list(workers)
            while queue or any(w.task_index is not None for w in workers):
                while queue and idle:
                    worker = idle.pop()
                    index = queue.pop(0)
                    try:
                        worker.assign(index, specs[index], self.timeout)
                    except (OSError, BrokenPipeError):
                        # Worker died before it could accept work; put the
                        # spec back and replace the worker.
                        queue.insert(0, index)
                        worker.kill()
                        workers.remove(worker)
                        replacement = _Worker(context, self.execute)
                        workers.append(replacement)
                        idle.append(replacement)

                busy = [w for w in workers if w.task_index is not None]
                ready = multiprocessing.connection.wait(
                    [w.conn for w in busy], timeout=_POLL_SECONDS
                )
                for conn in ready:
                    worker = next(w for w in busy if w.conn is conn)
                    index = worker.task_index
                    try:
                        status, reply_index, payload = conn.recv()
                    except (EOFError, OSError):
                        # The worker died without replying: crash isolation.
                        outcome.failures.append(
                            SpecFailure(
                                index=index,
                                reason="crash",
                                message=f"worker exited with code {worker.process.exitcode}",
                            )
                        )
                        worker.kill()
                        workers.remove(worker)
                        if queue:
                            replacement = _Worker(context, self.execute)
                            workers.append(replacement)
                            idle.append(replacement)
                        continue
                    worker.release()
                    idle.append(worker)
                    if status == "ok":
                        self._record(reply_index, payload, specs, keys, outcome)
                    else:
                        outcome.failures.append(
                            SpecFailure(
                                index=reply_index,
                                reason="error",
                                error_type=payload["error_type"],
                                message=payload["message"],
                                traceback_text=payload["traceback"],
                            )
                        )

                now = time.monotonic()
                for worker in [w for w in workers if w.deadline is not None and now > w.deadline]:
                    if worker.conn.poll(0):
                        # The result beat the deadline and is sitting in the
                        # pipe: let the next wait() iteration consume it
                        # rather than discarding a finished row as a timeout.
                        continue
                    outcome.failures.append(
                        SpecFailure(
                            index=worker.task_index,
                            reason="timeout",
                            message=f"experiment exceeded {self.timeout:.1f}s",
                        )
                    )
                    worker.kill()
                    workers.remove(worker)
                    if queue:
                        replacement = _Worker(context, self.execute)
                        workers.append(replacement)
                        idle.append(replacement)
        finally:
            for worker in workers:
                if worker.task_index is None:
                    worker.stop()
                else:
                    worker.kill()

    # -- shared -------------------------------------------------------------------------
    def _record(self, index, payload, specs, keys, outcome) -> None:
        outcome.payloads[index] = payload
        outcome.executed += 1
        if self.cache is not None and keys[index] is not None:
            self.cache.put(keys[index], payload, spec_payload=self.key_fn(specs[index]))


# ---------------------------------------------------------------------------
# Study glue: spec execution and plan -> corpus assembly
# ---------------------------------------------------------------------------

def execute_spec(spec: ExperimentSpec) -> dict:
    """Run one experiment spec to a row payload (pure function of the spec).

    Reconstructs a minimal harness from the spec's knobs and calls the same
    per-experiment methods :meth:`StudyHarness.run_serial` calls, so the
    engine and the oracle share one definition of every experiment.
    """
    from repro.modeling.study import StudyConfiguration, StudyHarness
    from repro.study import corpus_io

    harness = StudyHarness(
        StudyConfiguration(
            seed=spec.base_seed,
            samples_in_depth=spec.samples_in_depth,
            synthetic_samples_in_depth=spec.synthetic_samples_in_depth,
            max_sampled_ranks=spec.max_sampled_ranks,
        )
    )
    if spec.kind == KIND_RENDER:
        record = harness.run_experiment(
            spec.technique,
            spec.simulation,
            spec.num_tasks,
            spec.cells_per_task,
            spec.image_width,
            spec.image_height,
            dpp_device=spec.dpp_device or None,
        )
        return corpus_io.experiment_record_to_payload(record)
    if spec.kind == KIND_SYNTHETIC:
        record = harness.run_synthetic_experiment(
            spec.architecture,
            spec.technique,
            spec.simulation,
            spec.num_tasks,
            spec.cells_per_task,
            spec.image_width,
            spec.image_height,
        )
        return corpus_io.experiment_record_to_payload(record)
    record = harness.run_compositing_case(spec.algorithm, spec.num_tasks, spec.pixel_size)
    return corpus_io.compositing_record_to_payload(record)


@dataclass
class SweepReport:
    """What one engine run did (the CLI's summary and CI's assertions)."""

    planned: int
    cache_hits: int
    executed: int
    failures: list[SpecFailure] = field(default_factory=list)

    @property
    def failed(self) -> int:
        return len(self.failures)

    def as_dict(self) -> dict:
        return {
            "planned": self.planned,
            "cache_hits": self.cache_hits,
            "executed": self.executed,
            "failed": self.failed,
        }


def run_plan(
    plan: SweepPlan,
    jobs: int = 1,
    timeout: float | None = None,
    cache=None,
    resume: bool = True,
):
    """Execute a sweep plan into a corpus; returns ``(corpus, report)``.

    ``cache`` may be a :class:`~repro.study.cache.CorpusCache` or a directory
    path.  Rows land in plan order regardless of completion order, so the
    corpus is row-for-row comparable with the serial oracle's.
    """
    from repro.modeling.study import FailureRecord, StudyCorpus
    from repro.study import corpus_io
    from repro.study.cache import CorpusCache

    if cache is not None and not isinstance(cache, CorpusCache):
        cache = CorpusCache(cache)
    executor = SweepExecutor(execute_spec, jobs=jobs, timeout=timeout, cache=cache)
    outcome = executor.run(plan.specs, resume=resume)

    corpus = StudyCorpus()
    failure_by_index = {failure.index: failure for failure in outcome.failures}
    for index, spec in enumerate(plan.specs):
        payload = outcome.payloads[index]
        if payload is not None:
            record = corpus_io.record_from_payload(payload)
            if payload["row_type"] == "compositing":
                corpus.compositing_records.append(record)
            else:
                corpus.records.append(record)
            continue
        failure = failure_by_index.get(index)
        corpus.failures.append(
            FailureRecord(
                kind=spec.kind,
                reason=failure.reason if failure else "error",
                spec=spec.key_payload(),
                error_type=failure.error_type if failure else "",
                message=failure.message if failure else "",
            )
        )
    report = SweepReport(
        planned=len(plan.specs),
        cache_hits=outcome.cache_hits,
        executed=outcome.executed,
        failures=outcome.failures,
    )
    return corpus, report
