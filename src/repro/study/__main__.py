"""Entry point for ``python -m repro.study`` (static and ``--adaptive`` sweeps)."""

from repro.study.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
