"""Row-level corpus serialization: records <-> JSON payloads, files, merging.

One schema serves three consumers: the executor (worker processes return row
payloads, not pickled dataclasses), the corpus cache (entries store the same
payloads), and the CLI (``run --out corpus.json``, ``merge``, ``fit``).  The
schema is documented in DESIGN.md ("Corpus row schema"); ``SCHEMA_VERSION``
guards shape changes.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.modeling.study import (
    CompositingRecord,
    ExperimentRecord,
    FailureRecord,
    StudyCorpus,
)
from repro.rendering.result import ObservedFeatures

__all__ = [
    "SCHEMA_VERSION",
    "experiment_record_to_payload",
    "experiment_record_from_payload",
    "compositing_record_to_payload",
    "compositing_record_from_payload",
    "failure_record_to_payload",
    "failure_record_from_payload",
    "record_from_payload",
    "corpus_to_payload",
    "corpus_from_payload",
    "corpus_digest",
    "save_corpus",
    "load_corpus",
    "merge_corpora",
]

SCHEMA_VERSION = 1


# -- rendering rows -------------------------------------------------------------------

def experiment_record_to_payload(record: ExperimentRecord) -> dict:
    return {
        "row_type": "experiment",
        "architecture": record.architecture,
        "technique": record.technique,
        "simulation": record.simulation,
        "num_tasks": record.num_tasks,
        "cells_per_task": record.cells_per_task,
        "image_width": record.image_width,
        "image_height": record.image_height,
        "features": {
            "objects": record.features.objects,
            "active_pixels": record.features.active_pixels,
            "visible_objects": record.features.visible_objects,
            "pixels_per_triangle": record.features.pixels_per_triangle,
            "samples_per_ray": record.features.samples_per_ray,
            "cells_spanned": record.features.cells_spanned,
        },
        "phase_seconds": dict(record.phase_seconds),
        "build_seconds": record.build_seconds,
        "frame_seconds": record.frame_seconds,
        "samples_in_depth": record.samples_in_depth,
        "dpp_device": record.dpp_device,
    }


def experiment_record_from_payload(payload: dict) -> ExperimentRecord:
    features = payload["features"]
    return ExperimentRecord(
        architecture=payload["architecture"],
        technique=payload["technique"],
        simulation=payload["simulation"],
        num_tasks=int(payload["num_tasks"]),
        cells_per_task=int(payload["cells_per_task"]),
        image_width=int(payload["image_width"]),
        image_height=int(payload["image_height"]),
        features=ObservedFeatures(
            objects=int(features["objects"]),
            active_pixels=int(features["active_pixels"]),
            visible_objects=int(features["visible_objects"]),
            pixels_per_triangle=float(features["pixels_per_triangle"]),
            samples_per_ray=float(features["samples_per_ray"]),
            cells_spanned=int(features["cells_spanned"]),
        ),
        phase_seconds={name: float(value) for name, value in payload["phase_seconds"].items()},
        build_seconds=float(payload["build_seconds"]),
        frame_seconds=float(payload["frame_seconds"]),
        samples_in_depth=int(payload.get("samples_in_depth", 0)),
        dpp_device=payload.get("dpp_device", ""),
    )


# -- compositing rows -----------------------------------------------------------------

def compositing_record_to_payload(record: CompositingRecord) -> dict:
    return {
        "row_type": "compositing",
        "num_tasks": record.num_tasks,
        "pixels": record.pixels,
        "average_active_pixels": record.average_active_pixels,
        "seconds": record.seconds,
        "algorithm": record.algorithm,
    }


def compositing_record_from_payload(payload: dict) -> CompositingRecord:
    return CompositingRecord(
        num_tasks=int(payload["num_tasks"]),
        pixels=int(payload["pixels"]),
        average_active_pixels=float(payload["average_active_pixels"]),
        seconds=float(payload["seconds"]),
        algorithm=payload.get("algorithm", "radix-k"),
    )


# -- failure rows ---------------------------------------------------------------------

def failure_record_to_payload(record: FailureRecord) -> dict:
    return {
        "row_type": "failure",
        "kind": record.kind,
        "reason": record.reason,
        "spec": dict(record.spec),
        "error_type": record.error_type,
        "message": record.message,
    }


def failure_record_from_payload(payload: dict) -> FailureRecord:
    return FailureRecord(
        kind=payload["kind"],
        reason=payload["reason"],
        spec=dict(payload.get("spec", {})),
        error_type=payload.get("error_type", ""),
        message=payload.get("message", ""),
    )


# -- whole corpora --------------------------------------------------------------------

def record_from_payload(payload: dict):
    """Dispatch on ``row_type`` (the form the executor and cache traffic in)."""
    row_type = payload.get("row_type")
    if row_type == "experiment":
        return experiment_record_from_payload(payload)
    if row_type == "compositing":
        return compositing_record_from_payload(payload)
    if row_type == "failure":
        return failure_record_from_payload(payload)
    raise ValueError(f"unknown corpus row type {row_type!r}")


def corpus_to_payload(corpus: StudyCorpus, metadata: dict | None = None) -> dict:
    payload = {
        "schema": SCHEMA_VERSION,
        "records": [experiment_record_to_payload(r) for r in corpus.records],
        "compositing_records": [compositing_record_to_payload(r) for r in corpus.compositing_records],
        "failures": [failure_record_to_payload(r) for r in corpus.failures],
    }
    if metadata:
        payload["metadata"] = metadata
    return payload


def corpus_from_payload(payload: dict) -> StudyCorpus:
    """Rebuild a corpus; tolerates payloads without a ``failures`` section."""
    schema = payload.get("schema", SCHEMA_VERSION)
    if schema > SCHEMA_VERSION:
        raise ValueError(f"corpus schema {schema} is newer than supported {SCHEMA_VERSION}")
    return StudyCorpus(
        records=[experiment_record_from_payload(r) for r in payload.get("records", [])],
        compositing_records=[
            compositing_record_from_payload(r) for r in payload.get("compositing_records", [])
        ],
        failures=[failure_record_from_payload(r) for r in payload.get("failures", [])],
    )


def corpus_digest(corpus: StudyCorpus) -> str:
    """Content digest of a corpus (sha256 over the canonical row payload).

    Metadata is excluded on purpose: two corpus files holding the same rows
    hash identically, so report artifacts regenerated from either are
    byte-for-byte the same.
    """
    canonical = json.dumps(corpus_to_payload(corpus), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def save_corpus(corpus: StudyCorpus, path: str | Path, metadata: dict | None = None) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(corpus_to_payload(corpus, metadata), handle, indent=1)
    return path


def load_corpus(path: str | Path) -> StudyCorpus:
    with open(path, encoding="utf-8") as handle:
        return corpus_from_payload(json.load(handle))


def merge_corpora(corpora: list[StudyCorpus]) -> StudyCorpus:
    """Concatenate corpora (rendering rows, compositing rows, and failures).

    Rows are kept in input order; no deduplication is attempted -- merging the
    same sweep twice doubles its weight, which is the caller's decision to
    make (e.g. merging per-architecture shards of one study).
    """
    merged = StudyCorpus()
    for corpus in corpora:
        merged.records.extend(corpus.records)
        merged.compositing_records.extend(corpus.compositing_records)
        merged.failures.extend(corpus.failures)
    return merged
