"""Content-addressed on-disk cache for sweep experiment rows.

Every finished experiment is written to ``<root>/<k[:2]>/<k>.json`` where
``k`` is a SHA-256 over

* the experiment's full identity (:meth:`ExperimentSpec.key_payload` -- every
  config key and harness knob, canonically JSON-encoded),
* a cache schema version, and
* a *code token*: a digest over the source of the whole ``repro`` package.

The code token is deliberately coarse.  Any change to the renderers, the cost
model, the mapping, or the engine itself invalidates every entry, because a
row is only reusable if the code that would recompute it is unchanged; a hash
of "just the relevant modules" invites silent staleness the first time a
dependency moves.  Hashing the package costs a few milliseconds once per
process.

Writes are atomic (temp file + ``os.replace``) so a sweep killed mid-write
never leaves a truncated entry, and unreadable/corrupt entries read as misses
-- both are what make ``run --resume`` safe after any interruption.

Failures are never cached: an interrupted or crashed configuration is retried
on the next run, only successful rows short-circuit.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from functools import lru_cache
from pathlib import Path

__all__ = ["CACHE_SCHEMA_VERSION", "CorpusCache", "cache_key", "code_token"]

#: Bump when the row payload schema changes shape (invalidates every entry).
CACHE_SCHEMA_VERSION = 1


@lru_cache(maxsize=1)
def code_token() -> str:
    """Digest of every ``.py`` file in the installed ``repro`` package."""
    import repro

    # ``repro`` is a namespace package (no __init__.py), so __file__ is None;
    # __path__ still names its single source directory.
    package_root = Path(next(iter(repro.__path__))).resolve()
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode())
        digest.update(b"\x00")
        digest.update(path.read_bytes())
        digest.update(b"\x00")
    return digest.hexdigest()


def cache_key(spec_payload: dict, token: str | None = None) -> str:
    """Stable content address of one experiment.

    ``spec_payload`` must be the flat JSON-safe dict of
    :meth:`ExperimentSpec.key_payload`; canonical encoding (sorted keys, no
    whitespace variance) makes the key independent of dict ordering.
    """
    canonical = json.dumps(spec_payload, sort_keys=True, separators=(",", ":"))
    material = f"{CACHE_SCHEMA_VERSION}\x1f{token if token is not None else code_token()}\x1f{canonical}"
    return hashlib.sha256(material.encode()).hexdigest()


class CorpusCache:
    """Directory-backed store of finished experiment rows, keyed by content.

    The cache is shared-friendly: keys are content addresses, writes are
    atomic, and readers tolerate concurrent writers (at worst two processes
    compute the same row and one ``os.replace`` wins with identical content
    modulo wall-clock timings).
    """

    def __init__(self, root: str | os.PathLike, token: str | None = None) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._token = token if token is not None else code_token()
        self.hits = 0
        self.misses = 0

    # -- keys ---------------------------------------------------------------------------
    def key(self, spec_payload: dict) -> str:
        return cache_key(spec_payload, self._token)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    # -- access -------------------------------------------------------------------------
    def get(self, key: str) -> dict | None:
        """The cached row payload, or ``None`` (corrupt entries read as misses)."""
        path = self._path(key)
        try:
            with open(path, encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        payload = entry.get("payload") if isinstance(entry, dict) else None
        if payload is None:
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, key: str, payload: dict, spec_payload: dict | None = None) -> None:
        """Atomically persist one finished row."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {"key": key, "schema": CACHE_SCHEMA_VERSION, "payload": payload}
        if spec_payload is not None:
            entry["spec"] = spec_payload
        handle = tempfile.NamedTemporaryFile(
            "w", encoding="utf-8", dir=path.parent, suffix=".tmp", delete=False
        )
        try:
            with handle:
                json.dump(entry, handle)
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self.root.glob("*/*.json"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed
