"""The learning-curve ledger: error-vs-corpus-size rows in ``BENCH_learning.json``.

Each adaptive round (and the final refit after the last round) appends one
row recording where the models stood *before* that round's batch ran: corpus
size, per-slice cross-validated error (:meth:`ModelSuite.slice_errors`), and
the mean/max prediction-interval width over the remaining candidate pool.
Plotted over rows, this is the active-learning trajectory -- the CI artifact
that makes "did the adaptive sweep actually reduce uncertainty?" a question
with a versioned, diffable answer instead of a vibe.

The file schema is versioned (``LEARNING_SCHEMA_VERSION``); loading an
absent file yields an empty ledger, loading a *newer* schema raises (old
readers must not silently misread rows written by a future writer).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.study.corpus_io import corpus_digest

__all__ = [
    "LEARNING_SCHEMA_VERSION",
    "trajectory_row",
    "load_trajectory",
    "append_trajectory_rows",
    "format_markdown",
]

#: Version guard of the ``BENCH_learning.json`` ledger.
LEARNING_SCHEMA_VERSION = 1


def trajectory_row(corpus, suite, selection, round_index: int = 0) -> dict:
    """One learning-curve row: the model state this round's selection saw.

    ``selection`` is an :class:`~repro.study.adaptive.AdaptiveSelection`; its
    candidate pool's interval widths summarize the uncertainty still on the
    table, and its selected specs' corpus keys are recorded so CI can assert
    that no later round re-selects them.
    """
    from repro.study.plan import spec_corpus_key

    return {
        "round": int(round_index),
        "corpus_digest": corpus_digest(corpus),
        "corpus_size": {
            "rendering_rows": len(corpus.records),
            "compositing_rows": len(corpus.compositing_records),
            "failures": len(corpus.failures),
            "total": len(corpus.records) + len(corpus.compositing_records),
        },
        "candidates": len(selection.candidates),
        "unknown_candidates": selection.unknown_candidates(),
        "deduplicated": selection.deduplicated,
        "mean_interval_width": selection.mean_interval_width(),
        "max_interval_width": selection.max_interval_width(),
        "sigmas": float(selection.sigmas),
        "selected": [list(spec_corpus_key(c.spec)) for c in selection.selected],
        "slices": suite.slice_errors(),
    }


def load_trajectory(path: str | Path) -> dict:
    """Load a ledger, or an empty one if the file does not exist yet."""
    path = Path(path)
    if not path.exists():
        return {"schema": LEARNING_SCHEMA_VERSION, "rows": []}
    payload = json.loads(path.read_text())
    schema = payload.get("schema", 0)
    if schema > LEARNING_SCHEMA_VERSION:
        raise ValueError(
            f"BENCH_learning schema {schema} is newer than supported "
            f"{LEARNING_SCHEMA_VERSION}; refusing to append blind"
        )
    payload.setdefault("rows", [])
    return payload


def append_trajectory_rows(path: str | Path, rows: list[dict]) -> dict:
    """Append rows to the ledger at ``path`` (created if absent); returns it."""
    path = Path(path)
    payload = load_trajectory(path)
    payload["schema"] = LEARNING_SCHEMA_VERSION
    payload["rows"].extend(rows)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def format_markdown(payload: dict, limit: int = 20) -> str:
    """The ledger as a Markdown learning-curve table (``$GITHUB_STEP_SUMMARY``)."""
    rows = payload.get("rows", [])[-limit:]
    lines = [
        "## Adaptive learning curve",
        "",
        "| round | corpus rows | candidates | unfit slices' candidates | mean width (s) | max width (s) |",
        "| --- | --- | --- | --- | --- | --- |",
    ]
    for row in rows:
        mean = row.get("mean_interval_width")
        peak = row.get("max_interval_width")
        lines.append(
            "| {round} | {total} | {candidates} | {unknown} | {mean} | {peak} |".format(
                round=row.get("round", "?"),
                total=row.get("corpus_size", {}).get("total", "?"),
                candidates=row.get("candidates", "?"),
                unknown=row.get("unknown_candidates", "?"),
                mean="-" if mean is None else f"{mean:.4f}",
                peak="-" if peak is None else f"{peak:.4f}",
            )
        )
    if not rows:
        lines.append("| - | - | - | - | - | - |")
    return "\n".join(lines) + "\n"
