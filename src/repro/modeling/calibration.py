"""Small-sample calibration for a new machine and large-scale prediction (Section 5.7).

The paper validates its methodology on ORNL's Titan by running only 20-31
small calibration experiments per renderer, re-fitting the architecture
coefficients, and then predicting a 1024-node, 16-billion-element rendering.
:class:`MachineCalibration` reproduces that workflow against any registered
architecture: it gathers a small calibration corpus (synthesized for
non-host devices, measured for the host), fits the technique's model, and
predicts arbitrary large configurations through the Section 5.8 mapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.modeling.features import RenderingConfiguration, map_configuration_to_features
from repro.modeling.models import RayTracingModel, make_model
from repro.modeling.study import StudyConfiguration, StudyHarness

__all__ = ["CalibrationResult", "MachineCalibration"]


@dataclass
class CalibrationResult:
    """A fitted model plus the size of the corpus used to calibrate it."""

    architecture: str
    technique: str
    model: object
    sample_points: int

    def predict_configuration(self, config: RenderingConfiguration, include_build: bool = True) -> float:
        """Predict the per-task render time of a configuration via the mapping."""
        features = map_configuration_to_features(config)
        if isinstance(self.model, RayTracingModel):
            return self.model.predict(features, include_build=include_build)
        return self.model.predict(features)


@dataclass
class MachineCalibration:
    """Calibrate the models for one architecture from a small experiment sample.

    Parameters
    ----------
    architecture:
        Registered architecture name (e.g. ``"gpu2-titan-k20"``).
    simulation:
        Which synthetic simulation field the calibration runs use
        (CloverLeaf3D in the paper's Titan study).
    calibration_samples:
        Number of stratified calibration experiments per technique (the paper
        used 20-31).
    """

    architecture: str
    simulation: str = "cloverleaf"
    calibration_samples: int = 10
    seed: int = 77
    task_counts: tuple[int, ...] = (1, 2, 4, 8)
    _harness: StudyHarness = field(init=False)

    def __post_init__(self) -> None:
        architectures = (
            ("cpu-host", self.architecture) if self.architecture != "cpu-host" else ("cpu-host",)
        )
        config = StudyConfiguration(
            architectures=architectures,
            simulations=(self.simulation,),
            task_counts=self.task_counts,
            samples_per_technique=self.calibration_samples,
            seed=self.seed,
        )
        self._harness = StudyHarness(config)

    def calibrate(self, technique: str) -> CalibrationResult:
        """Run the calibration experiments for one technique and fit its model."""
        corpus = self._run_technique(technique)
        model = corpus.fit_model(self.architecture, technique)
        return CalibrationResult(
            architecture=self.architecture,
            technique=technique,
            model=model,
            sample_points=len(corpus.select(self.architecture, technique)),
        )

    def calibrate_all(
        self, techniques: tuple[str, ...] = ("raytrace", "raster", "volume")
    ) -> dict[str, CalibrationResult]:
        """Calibrate every technique; returns results keyed by technique."""
        return {technique: self.calibrate(technique) for technique in techniques}

    # -- internals -------------------------------------------------------------------
    def _run_technique(self, technique: str):
        """Run only the requested technique's calibration sweep.

        The harness is handed a single-technique copy of the calibration
        configuration; the stored configuration itself is never mutated, so
        repeated/interleaved ``calibrate`` calls stay independent.
        """
        return StudyHarness(replace(self._harness.config, techniques=(technique,))).run(
            include_compositing=False
        )


def validate_large_scale_prediction(
    calibration: CalibrationResult,
    config: RenderingConfiguration,
    measured_seconds: float,
) -> dict[str, float]:
    """Compare a mapped-input prediction against a measured (or synthesized) time.

    Returns the Table 15 row: actual, predicted, and percentage difference
    ``100 * (predicted - actual) / actual`` (negative = under-prediction).
    """
    predicted = calibration.predict_configuration(config, include_build=False)
    difference = 100.0 * (predicted - measured_seconds) / max(measured_seconds, 1e-12)
    return {
        "actual_seconds": float(measured_seconds),
        "predicted_seconds": float(predicted),
        "difference_percent": float(difference),
        "sample_points": float(calibration.sample_points),
    }
