"""Performance modeling of in situ rendering (the paper's primary contribution).

The package implements the full Chapter V methodology:

* :mod:`repro.modeling.regression` -- multiple linear regression (ordinary
  least squares), R-squared, residual standard deviation.
* :mod:`repro.modeling.crossval` -- k-fold cross validation and the accuracy
  summaries (fraction of predictions within 50/25/10/5 percent, average
  relative error) reported in Tables 13 and 14.
* :mod:`repro.modeling.features` -- the model input variables (Objects,
  Active Pixels, Visible Objects, Pixels Per Triangle, Samples Per Ray, Cells
  Spanned) and the a-priori mapping from user-facing rendering configurations
  to those variables (Section 5.8).
* :mod:`repro.modeling.models` -- the per-technique performance models of
  Equations 5.1-5.5 (ray tracing, rasterization, volume rendering, image
  compositing, and the combined multi-node model).
* :mod:`repro.modeling.study` -- the experiment harness that runs the
  rendering sweep, gathers the regression corpus, and fits the models.
* :mod:`repro.modeling.calibration` -- small-sample re-calibration for a new
  machine and large-scale prediction (the Titan workflow of Section 5.7).
* :mod:`repro.modeling.feasibility` -- the in situ viability analyses of
  Section 5.9 (images within a time budget; ray tracing versus
  rasterization).
"""

from repro.modeling.crossval import CrossValidationSummary, k_fold_cross_validation
from repro.modeling.features import (
    RenderingConfiguration,
    feature_arrays,
    map_configuration_batch,
    map_configuration_to_features,
)
from repro.modeling.models import (
    CompositingModel,
    RasterizationModel,
    RayTracingModel,
    TotalRenderingModel,
    VolumeRenderingModel,
    make_model,
)
from repro.modeling.regression import LinearRegressionResult, fit_linear_model
from repro.modeling.study import (
    ExperimentRecord,
    FailureRecord,
    StudyConfiguration,
    StudyCorpus,
    StudyHarness,
)

__all__ = [
    "CompositingModel",
    "CrossValidationSummary",
    "ExperimentRecord",
    "FailureRecord",
    "LinearRegressionResult",
    "RasterizationModel",
    "RayTracingModel",
    "RenderingConfiguration",
    "StudyConfiguration",
    "StudyCorpus",
    "StudyHarness",
    "TotalRenderingModel",
    "VolumeRenderingModel",
    "feature_arrays",
    "fit_linear_model",
    "k_fold_cross_validation",
    "make_model",
    "map_configuration_batch",
    "map_configuration_to_features",
]
