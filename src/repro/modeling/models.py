"""The per-technique performance models (Equations 5.1 - 5.5).

Every model turns the observed (or mapped) input variables into the terms of
its linear equation, fits coefficients with ordinary least squares, and
predicts run times for new inputs.

* Ray tracing (Eq. 5.1)::

      T_RT = (c0 * O + c1) + (c2 * (AP * log2(O)) + c3 * AP + c4)

  The first group is the acceleration-structure build, which is timed and fit
  separately so repeated-rendering analyses can amortise it.

* Rasterization (Eq. 5.2)::

      T_RAST = c0 * O + c1 * (VO * PPT) + c2

* Volume rendering (Eq. 5.3)::

      T_VR = c0 * (AP * CS) + c1 * (AP * SPR) + c2

* Image compositing (Eq. 5.5)::

      T_COMP = c0 * avg(AP) + c1 * Pixels + c2

* Total multi-node rendering (Eq. 5.4)::

      T_total = max_tasks(T_LR) + T_COMP
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.modeling.crossval import CrossValidationSummary, k_fold_cross_validation
from repro.modeling.regression import LinearRegressionResult, fit_linear_model
from repro.rendering.result import ObservedFeatures

__all__ = [
    "SingleTermModel",
    "RayTracingModel",
    "RasterizationModel",
    "VolumeRenderingModel",
    "CompositingModel",
    "TotalRenderingModel",
    "make_model",
]


class SingleTermModel:
    """Base class for the single-equation models (rasterization, volume, compositing).

    Subclasses define :meth:`term_row` (the design-matrix row for one
    observation) and :attr:`term_names`.
    """

    technique: str = ""
    term_names: tuple[str, ...] = ()
    #: Renderer models constrain coefficients to be non-negative (the paper
    #: treats negative coefficients as a sign of an invalid model); the
    #: compositing model keeps plain OLS, matching its negative intercept in
    #: Table 17.
    nonnegative: bool = True

    def __init__(self) -> None:
        self.fit_result: LinearRegressionResult | None = None

    # -- design matrices ---------------------------------------------------------------
    def term_row(self, features: ObservedFeatures) -> np.ndarray:
        raise NotImplementedError

    @staticmethod
    def term_matrix(arrays: dict[str, np.ndarray]) -> np.ndarray:
        """Vectorized design matrix from feature column arrays.

        ``arrays`` maps :class:`ObservedFeatures` attribute names to aligned
        float64 columns (see :func:`repro.modeling.features.feature_arrays`).
        Row ``i`` equals :meth:`term_row` of observation ``i`` exactly -- the
        batch :class:`~repro.reporting.predictor.Predictor` relies on that.
        """
        raise NotImplementedError

    def design_matrix(self, feature_list: list[ObservedFeatures]) -> np.ndarray:
        """Design matrix for a list of observations."""
        return np.array([self.term_row(features) for features in feature_list], dtype=np.float64)

    # -- fitting -------------------------------------------------------------------------
    def fit(self, feature_list: list[ObservedFeatures], times: np.ndarray) -> LinearRegressionResult:
        """Fit the model coefficients to observed run times."""
        design = self.design_matrix(feature_list)
        self.fit_result = fit_linear_model(
            design, np.asarray(times, dtype=np.float64), self.term_names, nonnegative=self.nonnegative
        )
        return self.fit_result

    def cross_validate(
        self, feature_list: list[ObservedFeatures], times: np.ndarray, k: int = 3, seed: int | None = None
    ) -> CrossValidationSummary:
        """K-fold cross validation of the model on a corpus."""
        return k_fold_cross_validation(
            self.design_matrix(feature_list), np.asarray(times), k, seed, nonnegative=self.nonnegative
        )

    # -- prediction ---------------------------------------------------------------------------
    def _require_fit(self) -> LinearRegressionResult:
        if self.fit_result is None:
            raise RuntimeError(f"{type(self).__name__} has not been fit yet")
        return self.fit_result

    def predict(self, features: ObservedFeatures) -> float:
        """Predicted run time (seconds) for one observation."""
        return float(self._require_fit().predict(self.term_row(features)[None, :])[0])

    def predict_many(self, feature_list: list[ObservedFeatures]) -> np.ndarray:
        """Predicted run times for many observations."""
        return self._require_fit().predict(self.design_matrix(feature_list))

    # -- reporting -----------------------------------------------------------------------------
    @property
    def coefficients(self) -> dict[str, float]:
        """Named coefficients of the fitted model."""
        return self._require_fit().named_coefficients()

    @property
    def r_squared(self) -> float:
        """Multiple R-squared of the fit."""
        return self._require_fit().r_squared


class RasterizationModel(SingleTermModel):
    """Equation 5.2: ``c0 * O + c1 * (VO * PPT) + c2``."""

    technique = "raster"
    term_names = ("c0_objects", "c1_vo_ppt", "c2_intercept")

    def term_row(self, features: ObservedFeatures) -> np.ndarray:
        return np.array(
            [
                float(features.objects),
                float(features.visible_objects) * float(features.pixels_per_triangle),
                1.0,
            ]
        )

    @staticmethod
    def term_matrix(arrays: dict[str, np.ndarray]) -> np.ndarray:
        objects = np.asarray(arrays["objects"], dtype=np.float64)
        candidates = np.asarray(arrays["visible_objects"], dtype=np.float64) * np.asarray(
            arrays["pixels_per_triangle"], dtype=np.float64
        )
        return np.stack([objects, candidates, np.ones_like(objects)], axis=1)


class VolumeRenderingModel(SingleTermModel):
    """Equation 5.3: ``c0 * (AP * CS) + c1 * (AP * SPR) + c2``."""

    technique = "volume"
    term_names = ("c0_ap_cs", "c1_ap_spr", "c2_intercept")

    def term_row(self, features: ObservedFeatures) -> np.ndarray:
        active = float(features.active_pixels)
        return np.array(
            [
                active * float(features.cells_spanned),
                active * float(features.samples_per_ray),
                1.0,
            ]
        )

    @staticmethod
    def term_matrix(arrays: dict[str, np.ndarray]) -> np.ndarray:
        active = np.asarray(arrays["active_pixels"], dtype=np.float64)
        cells = np.asarray(arrays["cells_spanned"], dtype=np.float64)
        samples = np.asarray(arrays["samples_per_ray"], dtype=np.float64)
        return np.stack([active * cells, active * samples, np.ones_like(active)], axis=1)


@dataclass
class CompositingFeatures:
    """Inputs of the compositing model (Eq. 5.5)."""

    average_active_pixels: float
    pixels: int
    num_tasks: int = 1


class CompositingModel(SingleTermModel):
    """Equation 5.5: ``c0 * avg(AP) + c1 * Pixels + c2``."""

    technique = "compositing"
    term_names = ("c0_avg_active_pixels", "c1_pixels", "c2_intercept")
    nonnegative = False

    def term_row(self, features: CompositingFeatures) -> np.ndarray:  # type: ignore[override]
        return np.array([float(features.average_active_pixels), float(features.pixels), 1.0])

    @staticmethod
    def term_matrix(arrays: dict[str, np.ndarray]) -> np.ndarray:
        active = np.asarray(arrays["average_active_pixels"], dtype=np.float64)
        pixels = np.asarray(arrays["pixels"], dtype=np.float64)
        return np.stack([active, pixels, np.ones_like(active)], axis=1)


class RayTracingModel:
    """Equation 5.1, fit as two groups: BVH build and per-frame tracing/shading."""

    technique = "raytrace"
    build_term_names = ("c0_objects", "c1_intercept")
    frame_term_names = ("c2_ap_log_o", "c3_ap", "c4_intercept")

    def __init__(self) -> None:
        self.build_fit: LinearRegressionResult | None = None
        self.frame_fit: LinearRegressionResult | None = None

    # -- design matrices -------------------------------------------------------------------
    @staticmethod
    def build_term_row(features: ObservedFeatures) -> np.ndarray:
        return np.array([float(features.objects), 1.0])

    @staticmethod
    def frame_term_row(features: ObservedFeatures) -> np.ndarray:
        objects = max(float(features.objects), 2.0)
        active = float(features.active_pixels)
        return np.array([active * np.log2(objects), active, 1.0])

    @staticmethod
    def build_term_matrix(arrays: dict[str, np.ndarray]) -> np.ndarray:
        objects = np.asarray(arrays["objects"], dtype=np.float64)
        return np.stack([objects, np.ones_like(objects)], axis=1)

    @staticmethod
    def frame_term_matrix(arrays: dict[str, np.ndarray]) -> np.ndarray:
        objects = np.maximum(np.asarray(arrays["objects"], dtype=np.float64), 2.0)
        active = np.asarray(arrays["active_pixels"], dtype=np.float64)
        return np.stack([active * np.log2(objects), active, np.ones_like(active)], axis=1)

    def build_design(self, feature_list: list[ObservedFeatures]) -> np.ndarray:
        return np.array([self.build_term_row(f) for f in feature_list])

    def frame_design(self, feature_list: list[ObservedFeatures]) -> np.ndarray:
        return np.array([self.frame_term_row(f) for f in feature_list])

    # -- fitting -------------------------------------------------------------------------------
    def fit(
        self,
        feature_list: list[ObservedFeatures],
        build_times: np.ndarray,
        frame_times: np.ndarray,
    ) -> tuple[LinearRegressionResult, LinearRegressionResult]:
        """Fit the build and frame groups from separately timed phases."""
        self.build_fit = fit_linear_model(
            self.build_design(feature_list), np.asarray(build_times), self.build_term_names, nonnegative=True
        )
        self.frame_fit = fit_linear_model(
            self.frame_design(feature_list), np.asarray(frame_times), self.frame_term_names, nonnegative=True
        )
        return self.build_fit, self.frame_fit

    def cross_validate(
        self,
        feature_list: list[ObservedFeatures],
        build_times: np.ndarray,
        frame_times: np.ndarray,
        k: int = 3,
        seed: int | None = None,
    ) -> CrossValidationSummary:
        """Cross-validate the *total* (build + frame) prediction.

        The combined design matrix concatenates both term groups so each fold
        fits the same structure the full model uses.
        """
        design = np.concatenate([self.build_design(feature_list), self.frame_design(feature_list)], axis=1)
        total = np.asarray(build_times) + np.asarray(frame_times)
        return k_fold_cross_validation(design, total, k, seed, nonnegative=True)

    # -- prediction --------------------------------------------------------------------------------
    def _require_fit(self) -> None:
        if self.build_fit is None or self.frame_fit is None:
            raise RuntimeError("RayTracingModel has not been fit yet")

    def predict(self, features: ObservedFeatures, include_build: bool = True) -> float:
        """Predicted seconds for one render (optionally excluding the BVH build)."""
        self._require_fit()
        frame = float(self.frame_fit.predict(self.frame_term_row(features)[None, :])[0])
        if not include_build:
            return frame
        build = float(self.build_fit.predict(self.build_term_row(features)[None, :])[0])
        return build + frame

    def predict_many(self, feature_list: list[ObservedFeatures], include_build: bool = True) -> np.ndarray:
        self._require_fit()
        frame = self.frame_fit.predict(self.frame_design(feature_list))
        if not include_build:
            return frame
        return frame + self.build_fit.predict(self.build_design(feature_list))

    # -- reporting ------------------------------------------------------------------------------------
    @property
    def coefficients(self) -> dict[str, float]:
        """The five coefficients c0..c4 of Eq. 5.1 (Table 17 layout)."""
        self._require_fit()
        named = {}
        named.update(self.build_fit.named_coefficients())
        named.update(self.frame_fit.named_coefficients())
        return named

    @property
    def r_squared(self) -> float:
        """R-squared of the per-frame group (the paper reports the render-time fit)."""
        self._require_fit()
        return self.frame_fit.r_squared


@dataclass
class TotalRenderingModel:
    """Equation 5.4: ``T_total = max_tasks(T_LR) + T_COMP``."""

    local_model: RayTracingModel | RasterizationModel | VolumeRenderingModel
    compositing_model: CompositingModel

    def predict(
        self,
        per_task_features: list[ObservedFeatures],
        compositing_features: "CompositingFeatures",
        include_build: bool = True,
    ) -> float:
        """Predicted end-to-end time for one distributed rendering."""
        if not per_task_features:
            raise ValueError("at least one task's features are required")
        if isinstance(self.local_model, RayTracingModel):
            local = max(self.local_model.predict(f, include_build) for f in per_task_features)
        else:
            local = max(self.local_model.predict(f) for f in per_task_features)
        return local + self.compositing_model.predict(compositing_features)


def make_model(technique: str):
    """Factory mapping a technique name to its model class instance."""
    if technique == "raytrace":
        return RayTracingModel()
    if technique == "raster":
        return RasterizationModel()
    if technique in ("volume", "volume_structured", "volume_unstructured"):
        return VolumeRenderingModel()
    if technique == "compositing":
        return CompositingModel()
    raise ValueError(f"unknown technique {technique!r}")
