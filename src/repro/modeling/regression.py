"""Multiple linear regression and the fit-quality metrics used by the study.

The paper fits its models with R's ``lm`` and evaluates them with multiple
R-squared and residual standard deviation; this module provides the same
mathematics on numpy (ordinary least squares through ``lstsq``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LinearRegressionResult", "fit_linear_model", "relative_errors"]


@dataclass
class LinearRegressionResult:
    """Outcome of one ordinary-least-squares fit.

    Attributes
    ----------
    coefficients:
        One coefficient per column of the design matrix (the intercept is a
        column of ones supplied by the caller, matching the paper's explicit
        ``c_i`` constants).
    r_squared:
        Multiple R-squared: fraction of the response variance the model
        captures.
    residual_std:
        Standard deviation of the residuals with degrees-of-freedom
        correction (the "residual standard error" of R's ``summary.lm``).
    term_names:
        Optional labels for the design-matrix columns.
    """

    coefficients: np.ndarray
    r_squared: float
    residual_std: float
    num_observations: int
    term_names: tuple[str, ...] = ()

    def predict(self, design: np.ndarray) -> np.ndarray:
        """Predictions for a new design matrix with the same columns.

        Accumulates column-by-column in fixed term order instead of calling
        BLAS gemv: each row's result is then bit-identical however many rows
        share the call (gemv picks different kernels by matrix size, which
        perturbs the last ulp).  The serving tier's batch-invariance contract
        -- a micro-batched prediction must equal the same query served alone
        -- depends on this.
        """
        design = np.atleast_2d(np.asarray(design, dtype=np.float64))
        if design.shape[1] != len(self.coefficients):
            raise ValueError(
                f"design matrix has {design.shape[1]} columns, expected {len(self.coefficients)}"
            )
        coefficients = self.coefficients
        total = design[:, 0] * coefficients[0]
        for column in range(1, len(coefficients)):
            total = total + design[:, column] * coefficients[column]
        return total

    def named_coefficients(self) -> dict[str, float]:
        """Coefficients keyed by term name (``c0``, ``c1``, ... when unnamed)."""
        names = self.term_names or tuple(f"c{i}" for i in range(len(self.coefficients)))
        return {name: float(value) for name, value in zip(names, self.coefficients)}

    def has_negative_coefficients(self, tolerance: float = 0.0) -> bool:
        """True when any coefficient is below ``-tolerance``.

        The paper uses negative coefficients as a red flag: "no input
        variables should have a negative linear relationship to run-time".
        """
        return bool(np.any(self.coefficients < -tolerance))


def fit_linear_model(
    design: np.ndarray,
    response: np.ndarray,
    term_names: tuple[str, ...] | None = None,
    nonnegative: bool = False,
) -> LinearRegressionResult:
    """Ordinary (or non-negative) least squares fit of ``response ~ design``.

    Parameters
    ----------
    design:
        ``(n, p)`` matrix of model terms (include a column of ones for an
        intercept term).
    response:
        ``(n,)`` observed values (run times).
    term_names:
        Optional labels for the ``p`` columns.
    nonnegative:
        Constrain every coefficient to be non-negative (solved with
        ``scipy.optimize.nnls``).  The paper argues that negative
        coefficients indicate an invalid rendering model; the renderer models
        use this constraint so that extrapolation to exascale-sized
        configurations (Section 5.9) cannot produce negative times.

    Returns
    -------
    LinearRegressionResult
    """
    design = np.atleast_2d(np.asarray(design, dtype=np.float64))
    response = np.asarray(response, dtype=np.float64).ravel()
    n, p = design.shape
    if len(response) != n:
        raise ValueError("design and response must have the same number of rows")
    if n < p:
        raise ValueError(f"need at least {p} observations to fit {p} coefficients (got {n})")

    if nonnegative:
        from scipy.optimize import nnls

        # NNLS is poorly conditioned when columns differ by many orders of
        # magnitude (e.g. an intercept column of ones next to a pixel-count
        # column in the millions), so solve in column-scaled space.
        scale = np.linalg.norm(design, axis=0)
        scale[scale == 0.0] = 1.0
        scaled_coefficients, _ = nnls(design / scale, response)
        coefficients = scaled_coefficients / scale
    else:
        coefficients, _, _, _ = np.linalg.lstsq(design, response, rcond=None)
    predictions = design @ coefficients
    residuals = response - predictions
    total_ss = float(np.sum((response - response.mean()) ** 2))
    residual_ss = float(np.sum(residuals**2))
    r_squared = 1.0 - residual_ss / total_ss if total_ss > 0 else 1.0
    dof = max(n - p, 1)
    residual_std = float(np.sqrt(residual_ss / dof))
    return LinearRegressionResult(
        coefficients=coefficients,
        r_squared=r_squared,
        residual_std=residual_std,
        num_observations=n,
        term_names=tuple(term_names) if term_names else (),
    )


def relative_errors(actual: np.ndarray, predicted: np.ndarray) -> np.ndarray:
    """Relative error per observation: ``(actual - predicted) / actual``.

    Matches the error definition used by the cross-validation plots
    (Figure 11): positive values mean the model under-predicts.
    """
    actual = np.asarray(actual, dtype=np.float64)
    predicted = np.asarray(predicted, dtype=np.float64)
    safe = np.where(np.abs(actual) < 1e-300, 1e-300, actual)
    return (actual - predicted) / safe
