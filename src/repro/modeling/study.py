"""The experiment harness: run the rendering sweep and gather the regression corpus.

The paper's study runs 1,350 experiments over {architecture x rendering
technique x simulation code x MPI task count x image resolution x data size},
keeps the slowest MPI task of each, and fits the per-technique models to the
resulting corpus.  :class:`StudyHarness` reproduces that pipeline at
laptop-friendly scale:

* Configurations are sampled with stratified (image size, data size) pairs,
  exactly as the paper samples its resolution/size space.
* Each configuration is decomposed over simulated MPI tasks
  (:class:`~repro.runtime.decomposition.BlockDecomposition`, weak scaling);
  a subset of ranks is actually rendered (the model only needs the slowest
  task) and the per-rank observed features are recorded.
* ``cpu-host`` experiments use the real measured wall-clock of the numpy
  renderers; GPU (and other device) experiments reuse the observed features
  and synthesize their times with :mod:`repro.machines.costmodel` -- the
  substitution documented in DESIGN.md.
* A separate compositing sweep drives the sort-last compositor over varying
  task counts and image sizes to build the Eq. 5.5 corpus.

The result is a :class:`StudyCorpus` that can fit all six single-node models
(Table 12 / 17), cross-validate them (Table 13, Figure 11), and fit the
compositing model (Table 14, Figures 12-13).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.transforms import Camera
from repro.geometry.triangles import external_faces
from repro.machines.costmodel import synthesize_render_time
from repro.modeling.models import (
    CompositingFeatures,
    CompositingModel,
    RasterizationModel,
    RayTracingModel,
    VolumeRenderingModel,
)
from repro.rendering import (
    Rasterizer,
    RayTracer,
    RayTracerConfig,
    Scene,
    StructuredVolumeConfig,
    StructuredVolumeRenderer,
    UnstructuredVolumeConfig,
    UnstructuredVolumeRenderer,
    Workload,
)
from repro.rendering.framebuffer import Framebuffer
from repro.rendering.result import ObservedFeatures, RenderResult
from repro.runtime.decomposition import BlockDecomposition
from repro.compositing import Compositor, scene_factory
from repro.util.rng import default_rng, derive_seed

__all__ = [
    "StudyConfiguration",
    "ExperimentRecord",
    "CompositingRecord",
    "FailureRecord",
    "StudyCorpus",
    "StudyHarness",
    "get_default_corpus",
]

#: Host architecture name whose timings are real measurements.
HOST_ARCHITECTURE = "cpu-host"


# ---------------------------------------------------------------------------
# Synthetic simulation fields (continuous across the decomposed domain).
# ---------------------------------------------------------------------------

def _lulesh_field(points: np.ndarray) -> np.ndarray:
    """Expanding-shell energy field (Sedov-like)."""
    radius = np.linalg.norm(points - 0.1, axis=1)
    return np.exp(-((radius - 0.55) ** 2) / 0.02) + 0.2 * np.exp(-radius / 0.3)


def _kripke_field(points: np.ndarray) -> np.ndarray:
    """Clustered scalar-flux field."""
    centers = np.array([[0.3, 0.4, 0.5], [0.7, 0.6, 0.4], [0.5, 0.2, 0.7]])
    widths = np.array([0.05, 0.08, 0.04])
    value = np.full(len(points), 0.1)
    for center, width in zip(centers, widths):
        value += np.exp(-np.sum((points - center) ** 2, axis=1) / (2 * width))
    return value


def _cloverleaf_field(points: np.ndarray) -> np.ndarray:
    """Advecting-front density field."""
    return 1.0 / (1.0 + np.exp(-12.0 * (points[:, 0] - 0.4))) + 0.1 * np.sin(
        6.0 * np.pi * points[:, 1]
    ) * np.sin(6.0 * np.pi * points[:, 2])


_SIMULATION_FIELDS = {
    "lulesh": _lulesh_field,
    "kripke": _kripke_field,
    "cloverleaf": _cloverleaf_field,
}


# ---------------------------------------------------------------------------
# Configuration and records
# ---------------------------------------------------------------------------

@dataclass
class StudyConfiguration:
    """Parameters of the sweep (scaled-down analogue of Section 5.4).

    Two size ranges exist because of the hardware substitution documented in
    DESIGN.md: ``cpu-host`` experiments actually render with the numpy
    renderers, so their image / data sizes are kept laptop-friendly
    (``image_size_range`` / ``cells_per_task_range``), while experiments for
    synthesized devices need no rendering and therefore use the paper's
    full-scale ranges (``synthetic_image_size_range`` /
    ``synthetic_cells_per_task_range``: 512^2-2880^2 pixels, 128^3-320^3
    cells per task) with inputs taken from the Section 5.8 mapping.
    """

    architectures: tuple[str, ...] = (HOST_ARCHITECTURE, "gpu1-k40m")
    #: DPP back-ends (``repro.dpp`` device names) the host renders run on.
    #: Each ``cpu-host`` configuration is rendered once per listed device --
    #: the real back-end swap of the paper's Table 5.  Synthesized
    #: architectures never render, so the axis does not apply to them.
    dpp_devices: tuple[str, ...] = ("vectorized",)
    techniques: tuple[str, ...] = ("raytrace", "raster", "volume")
    simulations: tuple[str, ...] = ("kripke", "cloverleaf", "lulesh")
    task_counts: tuple[int, ...] = (1, 2, 4, 8)
    samples_per_technique: int = 12
    image_size_range: tuple[int, int] = (64, 160)
    cells_per_task_range: tuple[int, int] = (8, 20)
    synthetic_image_size_range: tuple[int, int] = (512, 2880)
    synthetic_cells_per_task_range: tuple[int, int] = (128, 320)
    samples_in_depth: int = 60
    synthetic_samples_in_depth: int = 1000
    max_sampled_ranks: int = 2
    seed: int = 2016
    compositing_task_counts: tuple[int, ...] = (2, 4, 8, 16, 32, 64)
    compositing_pixel_sizes: tuple[int, ...] = (64, 96, 128, 192, 256)
    compositing_algorithms: tuple[str, ...] = ("radix-k",)
    #: Task counts above this budget run through the cohort scheduler
    #: (:meth:`repro.compositing.Compositor.composite_streaming`) instead of
    #: materializing every rank's framebuffer, which is how the sweep reaches
    #: thousand-rank rows in bounded memory.
    compositing_max_live_ranks: int = 256
    #: Explicit radix schedule for ``"radix-k"`` rows; ``None`` factors the
    #: task count.  The product must equal every swept task count
    #: (:class:`repro.compositing.RadixFactorError` otherwise).
    compositing_radices: tuple[int, ...] | None = None
    #: Scene family for streamed (above-budget) compositing rows -- a key of
    #: :data:`repro.compositing.SCENARIOS` (``uniform``/``amr``/``camera-orbit``).
    compositing_scenario: str = "uniform"

    def stratified_samples(
        self, rng: np.random.Generator, synthetic: bool = False
    ) -> list[tuple[int, int, int, str]]:
        """Stratified (image size, cells per task, tasks, simulation) samples.

        Image size and data size are stratified over their ranges (Latin-
        hypercube style: one sample per stratum with random jitter), while
        task count and simulation cycle through their option lists.
        """
        count = self.samples_per_technique
        image_lo, image_hi = self.synthetic_image_size_range if synthetic else self.image_size_range
        cells_lo, cells_hi = (
            self.synthetic_cells_per_task_range if synthetic else self.cells_per_task_range
        )
        image_edges = np.linspace(image_lo, image_hi, count + 1)
        cells_edges = np.linspace(cells_lo, cells_hi, count + 1)
        image_sizes = rng.uniform(image_edges[:-1], image_edges[1:]).astype(int)
        cells_sizes = rng.uniform(cells_edges[:-1], cells_edges[1:]).astype(int)
        rng.shuffle(cells_sizes)
        samples = []
        for index in range(count):
            tasks = self.task_counts[index % len(self.task_counts)]
            simulation = self.simulations[index % len(self.simulations)]
            samples.append((int(image_sizes[index]), int(cells_sizes[index]), tasks, simulation))
        return samples


@dataclass
class ExperimentRecord:
    """One row of the rendering corpus (the slowest sampled rank of one test)."""

    architecture: str
    technique: str
    simulation: str
    num_tasks: int
    cells_per_task: int
    image_width: int
    image_height: int
    features: ObservedFeatures
    phase_seconds: dict[str, float]
    build_seconds: float
    frame_seconds: float
    #: Volume-sampling depth the experiment rendered (or mapped) with; 0 on
    #: rows from pre-recording corpora.  The Table 16 mapping validation uses
    #: it so the a-priori SPR term matches the experiment being validated.
    samples_in_depth: int = 0
    #: DPP back-end the host render executed on ("" on synthesized rows and
    #: rows from pre-device-matrix corpora).
    dpp_device: str = ""

    @property
    def total_seconds(self) -> float:
        return self.build_seconds + self.frame_seconds

    @property
    def pixels(self) -> int:
        return self.image_width * self.image_height


@dataclass
class CompositingRecord:
    """One row of the compositing corpus."""

    num_tasks: int
    pixels: int
    average_active_pixels: float
    seconds: float
    algorithm: str = "radix-k"

    @classmethod
    def from_result(cls, result, seconds: float, algorithm: str = "radix-k") -> "CompositingRecord":
        """Build a row from a :class:`~repro.compositing.CompositeResult`.

        ``avg(AP)`` is threaded through
        :func:`repro.modeling.features.compositing_features_from_result`, so
        the corpus consumes the run-length engine's mode-aware active-pixel
        accounting unchanged in meaning.
        """
        from repro.modeling.features import compositing_features_from_result

        features = compositing_features_from_result(result)
        return cls(
            num_tasks=features.num_tasks,
            pixels=features.pixels,
            average_active_pixels=features.average_active_pixels,
            seconds=seconds,
            algorithm=algorithm,
        )

    def features(self) -> CompositingFeatures:
        return CompositingFeatures(self.average_active_pixels, self.pixels, self.num_tasks)


@dataclass
class FailureRecord:
    """One failed experiment of a sweep (the config, not a corpus row).

    A sweep never dies because one configuration does: the executor isolates
    crashes, Python exceptions, and per-experiment timeouts, and records them
    here so ``plan - records == failures`` always holds.  Failure rows carry
    no measurements and are therefore ignored by every fitting and
    cross-validation entry point.
    """

    kind: str  #: ``"render"`` | ``"synthetic"`` | ``"compositing"``
    reason: str  #: ``"error"`` | ``"timeout"`` | ``"crash"``
    spec: dict = field(default_factory=dict)  #: config keys of the failed experiment
    error_type: str = ""
    message: str = ""


@dataclass
class StudyCorpus:
    """The gathered experiment corpus plus model fitting helpers."""

    records: list[ExperimentRecord] = field(default_factory=list)
    compositing_records: list[CompositingRecord] = field(default_factory=list)
    failures: list[FailureRecord] = field(default_factory=list)

    # -- selection ------------------------------------------------------------------
    def select(
        self,
        architecture: str | None = None,
        technique: str | None = None,
        dpp_device: str | None = None,
    ) -> list[ExperimentRecord]:
        """Records matching the given architecture, technique, and/or device.

        ``dpp_device`` filters multi-back-end sweeps (device-comparison runs)
        down to one back-end so its timings are never folded into another
        back-end's fitted model.
        """
        out = self.records
        if architecture is not None:
            out = [r for r in out if r.architecture == architecture]
        if technique is not None:
            out = [r for r in out if r.technique == technique]
        if dpp_device is not None:
            out = [r for r in out if r.dpp_device == dpp_device]
        return out

    def architectures(self) -> list[str]:
        return sorted({r.architecture for r in self.records})

    def techniques(self) -> list[str]:
        return sorted({r.technique for r in self.records})

    def slices(self):
        """Yield every non-empty ``(architecture, technique, rows)`` slice.

        Deterministic (sorted) order -- the reporting suite iterates this to
        fit the full model registry, so artifact files never depend on record
        insertion order.
        """
        for architecture in self.architectures():
            for technique in self.techniques():
                rows = self.select(architecture, technique)
                if rows:
                    yield architecture, technique, rows

    # -- model fitting -----------------------------------------------------------------
    def fit_model(self, architecture: str, technique: str):
        """Fit the technique's model to this corpus slice and return it."""
        rows = self.select(architecture, technique)
        if not rows:
            raise ValueError(f"no records for ({architecture!r}, {technique!r})")
        features = [row.features for row in rows]
        if technique == "raytrace":
            model = RayTracingModel()
            model.fit(
                features,
                np.array([row.build_seconds for row in rows]),
                np.array([row.frame_seconds for row in rows]),
            )
            return model
        model = RasterizationModel() if technique == "raster" else VolumeRenderingModel()
        model.fit(features, np.array([row.total_seconds for row in rows]))
        return model

    def fit_all_models(self) -> dict[tuple[str, str], object]:
        """Fit every (architecture, technique) pair present in the corpus."""
        fitted: dict[tuple[str, str], object] = {}
        for architecture in self.architectures():
            for technique in self.techniques():
                if self.select(architecture, technique):
                    fitted[(architecture, technique)] = self.fit_model(architecture, technique)
        return fitted

    def fit_compositing_model(self) -> CompositingModel:
        """Fit Eq. 5.5 to the compositing corpus."""
        if not self.compositing_records:
            raise ValueError("no compositing records gathered")
        model = CompositingModel()
        model.fit(
            [row.features() for row in self.compositing_records],
            np.array([row.seconds for row in self.compositing_records]),
        )
        return model

    # -- cross validation ------------------------------------------------------------------
    def cross_validate(self, architecture: str, technique: str, k: int = 3, seed: int | None = None):
        """K-fold cross validation of one (architecture, technique) slice."""
        rows = self.select(architecture, technique)
        features = [row.features for row in rows]
        if technique == "raytrace":
            model = RayTracingModel()
            return model.cross_validate(
                features,
                np.array([row.build_seconds for row in rows]),
                np.array([row.frame_seconds for row in rows]),
                k,
                seed,
            )
        model = RasterizationModel() if technique == "raster" else VolumeRenderingModel()
        return model.cross_validate(features, np.array([row.total_seconds for row in rows]), k, seed)

    def cross_validate_compositing(self, k: int = 3, seed: int | None = None):
        """K-fold cross validation of the compositing model."""
        model = CompositingModel()
        return model.cross_validate(
            [row.features() for row in self.compositing_records],
            np.array([row.seconds for row in self.compositing_records]),
            k,
            seed,
        )


# ---------------------------------------------------------------------------
# The harness
# ---------------------------------------------------------------------------

class StudyHarness:
    """Runs the sweep described by a :class:`StudyConfiguration`."""

    def __init__(self, config: StudyConfiguration | None = None) -> None:
        self.config = config or StudyConfiguration()

    # -- public entry points -----------------------------------------------------------
    def run(
        self,
        include_compositing: bool = True,
        jobs: int = 1,
        cache=None,
        timeout: float | None = None,
        resume: bool = True,
        strict: bool = True,
    ) -> StudyCorpus:
        """Run the full sweep through the :mod:`repro.study` engine.

        ``cpu-host`` experiments render for real at the reduced scale; every
        other architecture gets the same number of experiments at the paper's
        full scale with mapped inputs and synthesized times.

        The harness is a thin client of the sweep engine: the configuration is
        expanded into a declarative plan (:func:`repro.study.plan.build_plan`)
        and executed by :func:`repro.study.run_plan` -- in-process when
        ``jobs == 1``, on a process pool otherwise, optionally resuming from a
        corpus cache.  :meth:`run_serial` keeps the pre-engine serial loop as
        the differential oracle.

        With ``strict`` (the default, matching the pre-engine behavior of
        letting experiment errors propagate) any failure row raises instead of
        silently shrinking the corpus the models are fitted to; sweep-style
        callers that want failure isolation pass ``strict=False`` or use
        :func:`repro.study.run_plan`, which also returns the report.
        """
        from repro.study import run_plan
        from repro.study.plan import build_plan

        plan = build_plan(self.config, include_compositing=include_compositing)
        corpus, _report = run_plan(plan, jobs=jobs, cache=cache, timeout=timeout, resume=resume)
        if strict and corpus.failures:
            details = "; ".join(
                f"[{f.reason}] {f.kind} {f.error_type}: {f.message}" for f in corpus.failures[:5]
            )
            raise RuntimeError(
                f"{len(corpus.failures)} of {len(plan.specs)} experiments failed "
                f"(pass strict=False to keep the partial corpus): {details}"
            )
        return corpus

    def run_serial(self, include_compositing: bool = True) -> StudyCorpus:
        """The pre-engine serial sweep, preserved as the differential oracle.

        Executes every experiment in plan order, in this process, without the
        executor or the cache.  The engine is contractually row-for-row
        equivalent to this loop (exact config keys, features to 1e-10; host
        wall-clock timings naturally differ between runs) -- the sweep-engine
        tests diff the two.
        """
        corpus = StudyCorpus()
        rng = default_rng(self.config.seed, "study")
        for technique in self.config.techniques:
            if HOST_ARCHITECTURE in self.config.architectures:
                samples = self.config.stratified_samples(rng)
                for dpp_device in self.config.dpp_devices:
                    for image_size, cells, tasks, simulation in samples:
                        corpus.records.append(
                            self.run_experiment(
                                technique,
                                simulation,
                                tasks,
                                cells,
                                image_size,
                                image_size,
                                dpp_device=dpp_device,
                            )
                        )
        synthetic_rng = default_rng(self.config.seed, "study-synthetic")
        for architecture in self.config.architectures:
            if architecture == HOST_ARCHITECTURE:
                continue
            for technique in self.config.techniques:
                for image_size, cells, tasks, simulation in self.config.stratified_samples(
                    synthetic_rng, synthetic=True
                ):
                    corpus.records.append(
                        self.run_synthetic_experiment(
                            architecture, technique, simulation, tasks, cells, image_size, image_size
                        )
                    )
        if include_compositing:
            corpus.compositing_records.extend(self.run_compositing_sweep())
        return corpus

    def run_experiment(
        self,
        technique: str,
        simulation: str,
        num_tasks: int,
        cells_per_task: int,
        image_width: int,
        image_height: int,
        dpp_device: str | None = None,
    ) -> ExperimentRecord:
        """Render one host configuration; returns the slowest sampled rank's record.

        ``dpp_device`` selects the DPP back-end the render's primitives run
        on (``None`` keeps the caller's active device).  An unknown or
        unavailable device raises before any rendering happens, which the
        sweep executor records as an ordinary failure row.
        """
        from repro.dpp import get_device, use_device

        if simulation not in _SIMULATION_FIELDS:
            raise KeyError(f"unknown simulation {simulation!r}")
        decomposition = BlockDecomposition(num_tasks, cells_per_task)
        camera = Camera.framing_bounds(decomposition.global_bounds, image_width, image_height)
        sampled_ranks = self._sampled_ranks(num_tasks)

        results: list[RenderResult] = []
        with use_device(dpp_device or get_device().name) as device:
            for rank in sampled_ranks:
                grid = decomposition.block_grid_with_field(
                    rank, "scalar", _SIMULATION_FIELDS[simulation]
                )
                results.append(self._render_block(technique, grid, camera))

        # Slowest-task proxy, chosen deterministically: the rank with the
        # largest observed workload (active pixels, then object count, then
        # rank order).  Selecting by measured wall-clock would make the
        # recorded *features* depend on timing jitter, and the corpus would no
        # longer be reproducible run to run -- the engine's row-for-row parity
        # with the serial oracle rests on this choice being a pure function of
        # the configuration.
        slowest = max(
            enumerate(results),
            key=lambda pair: (pair[1].features.active_pixels, pair[1].features.objects, -pair[0]),
        )[1]
        phases = dict(slowest.phase_seconds)
        build = phases.get("bvh_build", 0.0)
        frame = slowest.total_seconds - build
        return ExperimentRecord(
            architecture=HOST_ARCHITECTURE,
            technique=technique,
            simulation=simulation,
            num_tasks=num_tasks,
            cells_per_task=cells_per_task,
            image_width=image_width,
            image_height=image_height,
            features=slowest.features,
            phase_seconds=phases,
            build_seconds=build,
            frame_seconds=frame,
            samples_in_depth=self.config.samples_in_depth,
            dpp_device=device.name,
        )

    def run_synthetic_experiment(
        self,
        architecture: str,
        technique: str,
        simulation: str,
        num_tasks: int,
        cells_per_task: int,
        image_width: int,
        image_height: int,
        rng: np.random.Generator | None = None,
    ) -> ExperimentRecord:
        """Synthesize one full-scale experiment for a non-host architecture.

        Inputs come from the Section 5.8 mapping (no rendering is needed) and
        per-phase times from :mod:`repro.machines.costmodel` with measurement
        noise, reproducing the corpus the paper gathered on its GPUs.

        The noise stream is derived from the study seed plus every config key
        of the experiment, never shared between experiments, so the record is
        a pure function of the configuration -- executing the sweep in any
        order (or on any process pool) yields bit-identical synthetic rows.
        """
        from repro.modeling.features import RenderingConfiguration, map_configuration_to_features

        if rng is None:
            rng = default_rng(
                self.config.seed,
                "synthetic-experiment",
                architecture,
                technique,
                simulation,
                num_tasks,
                cells_per_task,
                image_width,
                image_height,
            )
        configuration = RenderingConfiguration(
            technique=technique,
            architecture=architecture,
            num_tasks=num_tasks,
            cells_per_task=cells_per_task,
            image_width=image_width,
            image_height=image_height,
            samples_in_depth=self.config.synthetic_samples_in_depth,
        )
        features = map_configuration_to_features(configuration)
        synthetic_technique = {
            "raytrace": "raytrace",
            "raster": "raster",
            "volume": "volume_structured",
            "volume_unstructured": "volume_unstructured",
        }[technique]
        phases = synthesize_render_time(architecture, synthetic_technique, features, rng)
        build = phases.get("bvh_build", 0.0)
        frame = sum(seconds for name, seconds in phases.items() if name != "bvh_build")
        return ExperimentRecord(
            architecture=architecture,
            technique=technique,
            simulation=simulation,
            num_tasks=num_tasks,
            cells_per_task=cells_per_task,
            image_width=image_width,
            image_height=image_height,
            features=features,
            phase_seconds=phases,
            build_seconds=build,
            frame_seconds=frame,
            samples_in_depth=self.config.synthetic_samples_in_depth,
        )

    #: Pixel-blending throughput assumed for the compositing corpus (bytes of
    #: exchanged image data blended per second).  The measured Python blending
    #: time is dominated by interpreter overhead on the reproduction's small
    #: images, so the corpus charges blending at a realistic rate instead and
    #: keeps the simulated-network estimate for communication.
    COMPOSITING_BLEND_BYTES_PER_SECOND = 2.5e9

    def run_compositing_sweep(
        self,
        task_counts: tuple[int, ...] | None = None,
        pixel_sizes: tuple[int, ...] | None = None,
        algorithm: str | None = None,
    ) -> list[CompositingRecord]:
        """Drive the compositor over synthetic sub-images to build the Eq. 5.5 corpus.

        Defaults come from the study configuration
        (``compositing_task_counts`` x ``compositing_pixel_sizes`` for each of
        ``compositing_algorithms``); passing ``algorithm`` restricts the sweep
        to that single exchange algorithm.
        """
        config = self.config
        algorithms = (algorithm,) if algorithm is not None else config.compositing_algorithms
        task_counts = config.compositing_task_counts if task_counts is None else task_counts
        pixel_sizes = config.compositing_pixel_sizes if pixel_sizes is None else pixel_sizes
        return [
            self.run_compositing_case(name, tasks, size)
            for name in algorithms
            for tasks in task_counts
            for size in pixel_sizes
        ]

    def run_compositing_case(
        self,
        algorithm: str,
        num_tasks: int,
        pixel_size: int,
        rng: np.random.Generator | None = None,
    ) -> CompositingRecord:
        """One row of the Eq. 5.5 corpus: composite ``num_tasks`` synthetic sub-images.

        Per-rank sub-images are synthesized (a contiguous screen block of
        active pixels per rank whose size follows the Section 5.8 mapping)
        rather than rendered, so that large task counts stay cheap -- the
        run-length engine keeps even the 64-rank rows fast.  The recorded
        compositing time combines the simulated-network estimate of the
        exchange (critical path over rounds) with the blending work charged
        at :data:`COMPOSITING_BLEND_BYTES_PER_SECOND`.

        Like the synthetic render experiments, the sub-image stream is seeded
        per configuration (study seed + algorithm + tasks + size), so the row
        is a pure function of the configuration regardless of sweep order.
        """
        if rng is None:
            rng = default_rng(self.config.seed, "compositing-sweep", algorithm, num_tasks, pixel_size)
        radices = None
        if algorithm == "radix-k" and self.config.compositing_radices is not None:
            radices = list(self.config.compositing_radices)
        compositor = Compositor(algorithm, radices=radices)
        if num_tasks > self.config.compositing_max_live_ranks:
            # Thousand-rank rows: stream per-rank images through the cohort
            # scheduler instead of materializing the whole population.  The
            # factory is seeded per configuration, so the row stays a pure
            # function of the configuration regardless of sweep order.
            factory = scene_factory(
                self.config.compositing_scenario,
                num_tasks,
                pixel_size,
                pixel_size,
                mode="over",
                seed=derive_seed(
                    self.config.seed, "compositing-sweep", algorithm, num_tasks, pixel_size
                ),
            )
            result = compositor.composite_streaming(
                factory,
                num_tasks,
                pixel_size,
                pixel_size,
                mode="over",
                max_live_ranks=self.config.compositing_max_live_ranks,
            )
        else:
            framebuffers = self._synthetic_sub_images(num_tasks, pixel_size, pixel_size, rng)
            visibility = list(np.arange(num_tasks, dtype=np.float64))
            result = compositor.composite(framebuffers, mode="over", visibility_order=visibility)
        # Blending happens concurrently on every rank, so charge the per-rank
        # share of the exchanged bytes (the critical path), not the total.
        blend_seconds = (
            result.bytes_exchanged / max(num_tasks, 1) / self.COMPOSITING_BLEND_BYTES_PER_SECOND
        )
        return CompositingRecord.from_result(
            result, seconds=result.network_seconds + blend_seconds, algorithm=algorithm
        )

    # -- internals ----------------------------------------------------------------------------
    def _sampled_ranks(self, num_tasks: int) -> list[int]:
        """Evenly spaced subset of ranks actually rendered (slowest-task proxy)."""
        count = min(self.config.max_sampled_ranks, num_tasks)
        if count == num_tasks:
            return list(range(num_tasks))
        return sorted({int(round(index)) for index in np.linspace(0, num_tasks - 1, count)})

    def _render_block(self, technique: str, grid, camera: Camera) -> RenderResult:
        """Render one rank's block with the requested technique (host-measured)."""
        if technique in ("raytrace", "raster"):
            surface = external_faces(grid, scalar_field="scalar")
            scene = Scene(surface)
            if technique == "raytrace":
                tracer = RayTracer(scene, RayTracerConfig(workload=Workload.SHADING))
                return tracer.render(camera)
            return Rasterizer(scene).render(camera)
        if technique == "volume_unstructured":
            from repro.geometry.tetra import tetrahedralize_uniform_grid

            renderer = UnstructuredVolumeRenderer(
                tetrahedralize_uniform_grid(grid),
                "scalar",
                config=UnstructuredVolumeConfig(samples_in_depth=self.config.samples_in_depth),
            )
            return renderer.render(camera)
        if technique != "volume":
            raise KeyError(f"unknown technique {technique!r}")
        renderer = StructuredVolumeRenderer(
            grid,
            "scalar",
            config=StructuredVolumeConfig(samples_in_depth=self.config.samples_in_depth),
        )
        return renderer.render(camera)

    def _synthetic_sub_images(
        self, tasks: int, width: int, height: int, rng: np.random.Generator
    ) -> list[Framebuffer]:
        """Synthetic per-rank framebuffers with mapping-consistent active-pixel counts."""
        framebuffers = []
        fill = 0.55 / tasks ** (1.0 / 3.0)
        active = max(int(fill * width * height), 1)
        side = max(int(np.sqrt(active)), 1)
        for _ in range(tasks):
            framebuffer = Framebuffer(width, height)
            x0 = int(rng.integers(0, max(width - side, 1)))
            y0 = int(rng.integers(0, max(height - side, 1)))
            block = (slice(y0, min(y0 + side, height)), slice(x0, min(x0 + side, width)))
            shape = framebuffer.rgba[block][..., 0].shape
            framebuffer.rgba[block] = np.concatenate(
                [rng.random(shape + (3,)), np.full(shape + (1,), 0.7)], axis=-1
            )
            framebuffer.depth[block] = rng.random(shape) * 10.0
            framebuffers.append(framebuffer)
        return framebuffers


# ---------------------------------------------------------------------------
# Shared default corpus (benchmarks reuse it so the sweep runs once per process)
# ---------------------------------------------------------------------------

_DEFAULT_CORPUS: dict[tuple, StudyCorpus] = {}


def get_default_corpus(samples_per_technique: int = 12, seed: int = 2016) -> StudyCorpus:
    """Build (once per process) and return the default study corpus."""
    key = (samples_per_technique, seed)
    if key not in _DEFAULT_CORPUS:
        config = StudyConfiguration(samples_per_technique=samples_per_technique, seed=seed)
        _DEFAULT_CORPUS[key] = StudyHarness(config).run()
    return _DEFAULT_CORPUS[key]
