"""The experiment harness: run the rendering sweep and gather the regression corpus.

The paper's study runs 1,350 experiments over {architecture x rendering
technique x simulation code x MPI task count x image resolution x data size},
keeps the slowest MPI task of each, and fits the per-technique models to the
resulting corpus.  :class:`StudyHarness` reproduces that pipeline at
laptop-friendly scale:

* Configurations are sampled with stratified (image size, data size) pairs,
  exactly as the paper samples its resolution/size space.
* Each configuration is decomposed over simulated MPI tasks
  (:class:`~repro.runtime.decomposition.BlockDecomposition`, weak scaling);
  a subset of ranks is actually rendered (the model only needs the slowest
  task) and the per-rank observed features are recorded.
* ``cpu-host`` experiments use the real measured wall-clock of the numpy
  renderers; GPU (and other device) experiments reuse the observed features
  and synthesize their times with :mod:`repro.machines.costmodel` -- the
  substitution documented in DESIGN.md.
* A separate compositing sweep drives the sort-last compositor over varying
  task counts and image sizes to build the Eq. 5.5 corpus.

The result is a :class:`StudyCorpus` that can fit all six single-node models
(Table 12 / 17), cross-validate them (Table 13, Figure 11), and fit the
compositing model (Table 14, Figures 12-13).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.transforms import Camera
from repro.geometry.triangles import external_faces
from repro.machines.costmodel import KernelCostModel
from repro.modeling.models import (
    CompositingFeatures,
    CompositingModel,
    RasterizationModel,
    RayTracingModel,
    VolumeRenderingModel,
)
from repro.rendering import (
    Rasterizer,
    RayTracer,
    RayTracerConfig,
    Scene,
    StructuredVolumeConfig,
    StructuredVolumeRenderer,
    Workload,
)
from repro.rendering.framebuffer import Framebuffer
from repro.rendering.result import ObservedFeatures, RenderResult
from repro.runtime.decomposition import BlockDecomposition
from repro.compositing import Compositor
from repro.util.rng import default_rng

__all__ = [
    "StudyConfiguration",
    "ExperimentRecord",
    "CompositingRecord",
    "StudyCorpus",
    "StudyHarness",
    "get_default_corpus",
]

#: Host architecture name whose timings are real measurements.
HOST_ARCHITECTURE = "cpu-host"


# ---------------------------------------------------------------------------
# Synthetic simulation fields (continuous across the decomposed domain).
# ---------------------------------------------------------------------------

def _lulesh_field(points: np.ndarray) -> np.ndarray:
    """Expanding-shell energy field (Sedov-like)."""
    radius = np.linalg.norm(points - 0.1, axis=1)
    return np.exp(-((radius - 0.55) ** 2) / 0.02) + 0.2 * np.exp(-radius / 0.3)


def _kripke_field(points: np.ndarray) -> np.ndarray:
    """Clustered scalar-flux field."""
    centers = np.array([[0.3, 0.4, 0.5], [0.7, 0.6, 0.4], [0.5, 0.2, 0.7]])
    widths = np.array([0.05, 0.08, 0.04])
    value = np.full(len(points), 0.1)
    for center, width in zip(centers, widths):
        value += np.exp(-np.sum((points - center) ** 2, axis=1) / (2 * width))
    return value


def _cloverleaf_field(points: np.ndarray) -> np.ndarray:
    """Advecting-front density field."""
    return 1.0 / (1.0 + np.exp(-12.0 * (points[:, 0] - 0.4))) + 0.1 * np.sin(
        6.0 * np.pi * points[:, 1]
    ) * np.sin(6.0 * np.pi * points[:, 2])


_SIMULATION_FIELDS = {
    "lulesh": _lulesh_field,
    "kripke": _kripke_field,
    "cloverleaf": _cloverleaf_field,
}


# ---------------------------------------------------------------------------
# Configuration and records
# ---------------------------------------------------------------------------

@dataclass
class StudyConfiguration:
    """Parameters of the sweep (scaled-down analogue of Section 5.4).

    Two size ranges exist because of the hardware substitution documented in
    DESIGN.md: ``cpu-host`` experiments actually render with the numpy
    renderers, so their image / data sizes are kept laptop-friendly
    (``image_size_range`` / ``cells_per_task_range``), while experiments for
    synthesized devices need no rendering and therefore use the paper's
    full-scale ranges (``synthetic_image_size_range`` /
    ``synthetic_cells_per_task_range``: 512^2-2880^2 pixels, 128^3-320^3
    cells per task) with inputs taken from the Section 5.8 mapping.
    """

    architectures: tuple[str, ...] = (HOST_ARCHITECTURE, "gpu1-k40m")
    techniques: tuple[str, ...] = ("raytrace", "raster", "volume")
    simulations: tuple[str, ...] = ("kripke", "cloverleaf", "lulesh")
    task_counts: tuple[int, ...] = (1, 2, 4, 8)
    samples_per_technique: int = 12
    image_size_range: tuple[int, int] = (64, 160)
    cells_per_task_range: tuple[int, int] = (8, 20)
    synthetic_image_size_range: tuple[int, int] = (512, 2880)
    synthetic_cells_per_task_range: tuple[int, int] = (128, 320)
    samples_in_depth: int = 60
    synthetic_samples_in_depth: int = 1000
    max_sampled_ranks: int = 2
    seed: int = 2016

    def stratified_samples(
        self, rng: np.random.Generator, synthetic: bool = False
    ) -> list[tuple[int, int, int, str]]:
        """Stratified (image size, cells per task, tasks, simulation) samples.

        Image size and data size are stratified over their ranges (Latin-
        hypercube style: one sample per stratum with random jitter), while
        task count and simulation cycle through their option lists.
        """
        count = self.samples_per_technique
        image_lo, image_hi = self.synthetic_image_size_range if synthetic else self.image_size_range
        cells_lo, cells_hi = (
            self.synthetic_cells_per_task_range if synthetic else self.cells_per_task_range
        )
        image_edges = np.linspace(image_lo, image_hi, count + 1)
        cells_edges = np.linspace(cells_lo, cells_hi, count + 1)
        image_sizes = rng.uniform(image_edges[:-1], image_edges[1:]).astype(int)
        cells_sizes = rng.uniform(cells_edges[:-1], cells_edges[1:]).astype(int)
        rng.shuffle(cells_sizes)
        samples = []
        for index in range(count):
            tasks = self.task_counts[index % len(self.task_counts)]
            simulation = self.simulations[index % len(self.simulations)]
            samples.append((int(image_sizes[index]), int(cells_sizes[index]), tasks, simulation))
        return samples


@dataclass
class ExperimentRecord:
    """One row of the rendering corpus (the slowest sampled rank of one test)."""

    architecture: str
    technique: str
    simulation: str
    num_tasks: int
    cells_per_task: int
    image_width: int
    image_height: int
    features: ObservedFeatures
    phase_seconds: dict[str, float]
    build_seconds: float
    frame_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.build_seconds + self.frame_seconds

    @property
    def pixels(self) -> int:
        return self.image_width * self.image_height


@dataclass
class CompositingRecord:
    """One row of the compositing corpus."""

    num_tasks: int
    pixels: int
    average_active_pixels: float
    seconds: float

    @classmethod
    def from_result(cls, result, seconds: float) -> "CompositingRecord":
        """Build a row from a :class:`~repro.compositing.CompositeResult`.

        ``avg(AP)`` is threaded through
        :func:`repro.modeling.features.compositing_features_from_result`, so
        the corpus consumes the run-length engine's mode-aware active-pixel
        accounting unchanged in meaning.
        """
        from repro.modeling.features import compositing_features_from_result

        features = compositing_features_from_result(result)
        return cls(
            num_tasks=features.num_tasks,
            pixels=features.pixels,
            average_active_pixels=features.average_active_pixels,
            seconds=seconds,
        )

    def features(self) -> CompositingFeatures:
        return CompositingFeatures(self.average_active_pixels, self.pixels, self.num_tasks)


@dataclass
class StudyCorpus:
    """The gathered experiment corpus plus model fitting helpers."""

    records: list[ExperimentRecord] = field(default_factory=list)
    compositing_records: list[CompositingRecord] = field(default_factory=list)

    # -- selection ------------------------------------------------------------------
    def select(self, architecture: str | None = None, technique: str | None = None) -> list[ExperimentRecord]:
        """Records matching the given architecture and/or technique."""
        out = self.records
        if architecture is not None:
            out = [r for r in out if r.architecture == architecture]
        if technique is not None:
            out = [r for r in out if r.technique == technique]
        return out

    def architectures(self) -> list[str]:
        return sorted({r.architecture for r in self.records})

    def techniques(self) -> list[str]:
        return sorted({r.technique for r in self.records})

    # -- model fitting -----------------------------------------------------------------
    def fit_model(self, architecture: str, technique: str):
        """Fit the technique's model to this corpus slice and return it."""
        rows = self.select(architecture, technique)
        if not rows:
            raise ValueError(f"no records for ({architecture!r}, {technique!r})")
        features = [row.features for row in rows]
        if technique == "raytrace":
            model = RayTracingModel()
            model.fit(
                features,
                np.array([row.build_seconds for row in rows]),
                np.array([row.frame_seconds for row in rows]),
            )
            return model
        model = RasterizationModel() if technique == "raster" else VolumeRenderingModel()
        model.fit(features, np.array([row.total_seconds for row in rows]))
        return model

    def fit_all_models(self) -> dict[tuple[str, str], object]:
        """Fit every (architecture, technique) pair present in the corpus."""
        fitted: dict[tuple[str, str], object] = {}
        for architecture in self.architectures():
            for technique in self.techniques():
                if self.select(architecture, technique):
                    fitted[(architecture, technique)] = self.fit_model(architecture, technique)
        return fitted

    def fit_compositing_model(self) -> CompositingModel:
        """Fit Eq. 5.5 to the compositing corpus."""
        if not self.compositing_records:
            raise ValueError("no compositing records gathered")
        model = CompositingModel()
        model.fit(
            [row.features() for row in self.compositing_records],
            np.array([row.seconds for row in self.compositing_records]),
        )
        return model

    # -- cross validation ------------------------------------------------------------------
    def cross_validate(self, architecture: str, technique: str, k: int = 3, seed: int | None = None):
        """K-fold cross validation of one (architecture, technique) slice."""
        rows = self.select(architecture, technique)
        features = [row.features for row in rows]
        if technique == "raytrace":
            model = RayTracingModel()
            return model.cross_validate(
                features,
                np.array([row.build_seconds for row in rows]),
                np.array([row.frame_seconds for row in rows]),
                k,
                seed,
            )
        model = RasterizationModel() if technique == "raster" else VolumeRenderingModel()
        return model.cross_validate(features, np.array([row.total_seconds for row in rows]), k, seed)

    def cross_validate_compositing(self, k: int = 3, seed: int | None = None):
        """K-fold cross validation of the compositing model."""
        model = CompositingModel()
        return model.cross_validate(
            [row.features() for row in self.compositing_records],
            np.array([row.seconds for row in self.compositing_records]),
            k,
            seed,
        )


# ---------------------------------------------------------------------------
# The harness
# ---------------------------------------------------------------------------

class StudyHarness:
    """Runs the sweep described by a :class:`StudyConfiguration`."""

    def __init__(self, config: StudyConfiguration | None = None) -> None:
        self.config = config or StudyConfiguration()

    # -- public entry points -----------------------------------------------------------
    def run(self, include_compositing: bool = True) -> StudyCorpus:
        """Run the full sweep and return the gathered corpus.

        ``cpu-host`` experiments render for real at the reduced scale; every
        other architecture gets the same number of experiments at the paper's
        full scale with mapped inputs and synthesized times.
        """
        corpus = StudyCorpus()
        rng = default_rng(self.config.seed, "study")
        for technique in self.config.techniques:
            if HOST_ARCHITECTURE in self.config.architectures:
                for image_size, cells, tasks, simulation in self.config.stratified_samples(rng):
                    corpus.records.append(
                        self.run_experiment(technique, simulation, tasks, cells, image_size, image_size)
                    )
        synthetic_rng = default_rng(self.config.seed, "study-synthetic")
        for architecture in self.config.architectures:
            if architecture == HOST_ARCHITECTURE:
                continue
            for technique in self.config.techniques:
                for image_size, cells, tasks, simulation in self.config.stratified_samples(
                    synthetic_rng, synthetic=True
                ):
                    corpus.records.append(
                        self.run_synthetic_experiment(
                            architecture, technique, simulation, tasks, cells, image_size, image_size
                        )
                    )
        if include_compositing:
            corpus.compositing_records.extend(self.run_compositing_sweep())
        return corpus

    def run_experiment(
        self,
        technique: str,
        simulation: str,
        num_tasks: int,
        cells_per_task: int,
        image_width: int,
        image_height: int,
    ) -> ExperimentRecord:
        """Render one host configuration; returns the slowest sampled rank's record."""
        if simulation not in _SIMULATION_FIELDS:
            raise KeyError(f"unknown simulation {simulation!r}")
        decomposition = BlockDecomposition(num_tasks, cells_per_task)
        camera = Camera.framing_bounds(decomposition.global_bounds, image_width, image_height)
        sampled_ranks = self._sampled_ranks(num_tasks)

        results: list[RenderResult] = []
        for rank in sampled_ranks:
            grid = decomposition.block_grid_with_field(rank, "scalar", _SIMULATION_FIELDS[simulation])
            results.append(self._render_block(technique, grid, camera))

        slowest = max(results, key=lambda result: result.total_seconds)
        phases = dict(slowest.phase_seconds)
        build = phases.get("bvh_build", 0.0)
        frame = slowest.total_seconds - build
        return ExperimentRecord(
            architecture=HOST_ARCHITECTURE,
            technique=technique,
            simulation=simulation,
            num_tasks=num_tasks,
            cells_per_task=cells_per_task,
            image_width=image_width,
            image_height=image_height,
            features=slowest.features,
            phase_seconds=phases,
            build_seconds=build,
            frame_seconds=frame,
        )

    def run_synthetic_experiment(
        self,
        architecture: str,
        technique: str,
        simulation: str,
        num_tasks: int,
        cells_per_task: int,
        image_width: int,
        image_height: int,
    ) -> ExperimentRecord:
        """Synthesize one full-scale experiment for a non-host architecture.

        Inputs come from the Section 5.8 mapping (no rendering is needed) and
        per-phase times from :mod:`repro.machines.costmodel` with measurement
        noise, reproducing the corpus the paper gathered on its GPUs.
        """
        from repro.modeling.features import RenderingConfiguration, map_configuration_to_features

        configuration = RenderingConfiguration(
            technique=technique,
            architecture=architecture,
            num_tasks=num_tasks,
            cells_per_task=cells_per_task,
            image_width=image_width,
            image_height=image_height,
            samples_in_depth=self.config.synthetic_samples_in_depth,
        )
        features = map_configuration_to_features(configuration)
        cost_model = self._cost_model(architecture)
        synthetic_technique = {"raytrace": "raytrace", "raster": "raster", "volume": "volume_structured"}[technique]
        phases = cost_model.phases(synthetic_technique, features)
        build = phases.get("bvh_build", 0.0)
        frame = sum(seconds for name, seconds in phases.items() if name != "bvh_build")
        return ExperimentRecord(
            architecture=architecture,
            technique=technique,
            simulation=simulation,
            num_tasks=num_tasks,
            cells_per_task=cells_per_task,
            image_width=image_width,
            image_height=image_height,
            features=features,
            phase_seconds=phases,
            build_seconds=build,
            frame_seconds=frame,
        )

    def _cost_model(self, architecture: str) -> KernelCostModel:
        """One deterministic cost model per architecture (cached)."""
        if not hasattr(self, "_cost_models"):
            self._cost_models: dict[str, KernelCostModel] = {}
        if architecture not in self._cost_models:
            self._cost_models[architecture] = KernelCostModel(architecture, seed=self.config.seed)
        return self._cost_models[architecture]

    #: Pixel-blending throughput assumed for the compositing corpus (bytes of
    #: exchanged image data blended per second).  The measured Python blending
    #: time is dominated by interpreter overhead on the reproduction's small
    #: images, so the corpus charges blending at a realistic rate instead and
    #: keeps the simulated-network estimate for communication.
    COMPOSITING_BLEND_BYTES_PER_SECOND = 2.5e9

    def run_compositing_sweep(
        self,
        task_counts: tuple[int, ...] = (2, 4, 8, 16, 32, 64),
        pixel_sizes: tuple[int, ...] = (64, 96, 128, 192, 256),
        algorithm: str = "radix-k",
    ) -> list[CompositingRecord]:
        """Drive the compositor over synthetic sub-images to build the Eq. 5.5 corpus.

        Per-rank sub-images are synthesized (a contiguous screen block of
        active pixels per rank whose size follows the Section 5.8 mapping)
        rather than rendered, so that large task counts stay cheap -- the
        run-length engine keeps even the 64-rank rows fast.  The recorded
        compositing time combines the simulated-network estimate of the
        exchange (critical path over rounds) with the blending work charged
        at :data:`COMPOSITING_BLEND_BYTES_PER_SECOND`.
        """
        rng = default_rng(self.config.seed, "compositing-sweep")
        records = []
        for tasks in task_counts:
            for size in pixel_sizes:
                framebuffers = self._synthetic_sub_images(tasks, size, size, rng)
                compositor = Compositor(algorithm)
                visibility = list(np.arange(tasks, dtype=np.float64))
                result = compositor.composite(framebuffers, mode="over", visibility_order=visibility)
                # Blending happens concurrently on every rank, so charge the
                # per-rank share of the exchanged bytes (the critical path),
                # not the total.
                blend_seconds = (
                    result.bytes_exchanged / max(tasks, 1) / self.COMPOSITING_BLEND_BYTES_PER_SECOND
                )
                records.append(
                    CompositingRecord.from_result(result, seconds=result.network_seconds + blend_seconds)
                )
        return records

    # -- internals ----------------------------------------------------------------------------
    def _sampled_ranks(self, num_tasks: int) -> list[int]:
        """Evenly spaced subset of ranks actually rendered (slowest-task proxy)."""
        count = min(self.config.max_sampled_ranks, num_tasks)
        if count == num_tasks:
            return list(range(num_tasks))
        return sorted({int(round(index)) for index in np.linspace(0, num_tasks - 1, count)})

    def _render_block(self, technique: str, grid, camera: Camera) -> RenderResult:
        """Render one rank's block with the requested technique (host-measured)."""
        if technique in ("raytrace", "raster"):
            surface = external_faces(grid, scalar_field="scalar")
            scene = Scene(surface)
            if technique == "raytrace":
                tracer = RayTracer(scene, RayTracerConfig(workload=Workload.SHADING))
                return tracer.render(camera)
            return Rasterizer(scene).render(camera)
        renderer = StructuredVolumeRenderer(
            grid,
            "scalar",
            config=StructuredVolumeConfig(samples_in_depth=self.config.samples_in_depth),
        )
        return renderer.render(camera)

    def _synthetic_sub_images(
        self, tasks: int, width: int, height: int, rng: np.random.Generator
    ) -> list[Framebuffer]:
        """Synthetic per-rank framebuffers with mapping-consistent active-pixel counts."""
        framebuffers = []
        fill = 0.55 / tasks ** (1.0 / 3.0)
        active = max(int(fill * width * height), 1)
        side = max(int(np.sqrt(active)), 1)
        for _ in range(tasks):
            framebuffer = Framebuffer(width, height)
            x0 = int(rng.integers(0, max(width - side, 1)))
            y0 = int(rng.integers(0, max(height - side, 1)))
            block = (slice(y0, min(y0 + side, height)), slice(x0, min(x0 + side, width)))
            shape = framebuffer.rgba[block][..., 0].shape
            framebuffer.rgba[block] = np.concatenate(
                [rng.random(shape + (3,)), np.full(shape + (1,), 0.7)], axis=-1
            )
            framebuffer.depth[block] = rng.random(shape) * 10.0
            framebuffers.append(framebuffer)
        return framebuffers


# ---------------------------------------------------------------------------
# Shared default corpus (benchmarks reuse it so the sweep runs once per process)
# ---------------------------------------------------------------------------

_DEFAULT_CORPUS: dict[tuple, StudyCorpus] = {}


def get_default_corpus(samples_per_technique: int = 12, seed: int = 2016) -> StudyCorpus:
    """Build (once per process) and return the default study corpus."""
    key = (samples_per_technique, seed)
    if key not in _DEFAULT_CORPUS:
        config = StudyConfiguration(samples_per_technique=samples_per_technique, seed=seed)
        _DEFAULT_CORPUS[key] = StudyHarness(config).run()
    return _DEFAULT_CORPUS[key]
