"""Model input variables and the configuration-to-variable mapping of Section 5.8.

Domain scientists think of a rendering task in terms of its *configuration* --
architecture, rendering technique, number of MPI tasks, image resolution, and
per-task data size.  The performance models, however, consume the *variable
inputs* O, AP, VO, PPT, SPR, and CS.  :func:`map_configuration_to_features`
bridges the two exactly as the paper's mapping does:

* ``Objects``: ``12 N^2`` external-face triangles for the surface renderers
  (two triangles per boundary quad on each of the six faces of an ``N^3``
  block), ``N^3`` cells for volume rendering.
* ``Active Pixels``: a fixed camera fill fraction of the image, divided by the
  cube root of the task count (each direction of the block grid shrinks a
  task's screen footprint).
* ``Visible Objects``: ``min(AP, O)``.
* ``Pixels Per Triangle``: ``4 AP / VO`` -- front and back faces overlap each
  active pixel and the two "other" triangles of each quad also consider the
  pixel before failing their inside test.
* ``Samples Per Ray``: a per-task baseline shrinking with the cube root of the
  task count.
* ``Cells Spanned``: ``N``.

The constants (camera fill fraction, samples baseline) are module-level so
tests and alternative camera models can adjust them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rendering.result import ObservedFeatures, RenderResult

__all__ = [
    "RenderingConfiguration",
    "map_configuration_to_features",
    "map_configuration_batch",
    "feature_arrays",
    "features_from_result",
    "compositing_features_from_result",
    "contention_features_from_result",
    "CAMERA_FILL_FRACTION",
    "SAMPLES_PER_RAY_BASELINE",
]

#: Fraction of image pixels the default framing camera covers on one task
#: ("Our camera positions filled about 60% of pixels by default" -- the
#: reproduction's framing camera fills a bit less on its smaller scenes).
CAMERA_FILL_FRACTION = 0.55

#: Baseline samples-per-ray for a single task (373 in the paper's full-scale
#: study with 1000 samples in depth; proportionally smaller here because the
#: default renderer uses 200 samples in depth).
SAMPLES_PER_RAY_BASELINE = 373.0

#: How many pixels each visible triangle considers per active pixel it covers
#: (front + back face, plus the two complementary quad triangles that fail
#: their inside test).
PIXELS_PER_TRIANGLE_FACTOR = 4.0

#: Techniques recognised by the mapping.  ``volume_unstructured`` (the
#: Chapter III tetrahedral renderer) maps exactly like ``volume``: objects are
#: the task's cells and SPR scales with the sampling depth.
TECHNIQUES = ("raytrace", "raster", "volume", "volume_unstructured")


@dataclass(frozen=True)
class RenderingConfiguration:
    """A user-facing rendering configuration (the rows of Table 16).

    Attributes
    ----------
    technique:
        ``"raytrace"``, ``"raster"``, ``"volume"``, or
        ``"volume_unstructured"``.
    architecture:
        Registered architecture name (``"cpu-host"``, ``"gpu1-k40m"``, ...).
    num_tasks:
        Number of MPI tasks.
    cells_per_task:
        ``N`` for an ``N^3`` block per task.
    image_width, image_height:
        Output resolution.
    samples_in_depth:
        Volume-rendering sample count used to scale ``SPR`` (the paper's
        full-scale studies use 1000).
    """

    technique: str
    architecture: str
    num_tasks: int
    cells_per_task: int
    image_width: int
    image_height: int
    samples_in_depth: int = 1000

    def __post_init__(self) -> None:
        if self.technique not in TECHNIQUES:
            raise ValueError(f"unknown technique {self.technique!r}; choose from {TECHNIQUES}")
        if self.num_tasks < 1 or self.cells_per_task < 1:
            raise ValueError("num_tasks and cells_per_task must be positive")
        if self.image_width < 1 or self.image_height < 1:
            raise ValueError("image dimensions must be positive")

    @property
    def pixels(self) -> int:
        """Total pixels in the output image."""
        return self.image_width * self.image_height

    @property
    def total_cells(self) -> int:
        """Total cells across all tasks (weak scaling)."""
        return self.num_tasks * self.cells_per_task**3


def map_configuration_to_features(config: RenderingConfiguration) -> ObservedFeatures:
    """A-priori estimate of the model input variables for a configuration.

    The estimates are intentionally conservative (upper bounds), so that --
    because all fitted coefficients are positive -- predictions made from the
    mapping err on the slow side (Section 5.8, "overestimates lead to
    conservative results").
    """
    n = config.cells_per_task
    task_shrink = config.num_tasks ** (1.0 / 3.0)
    active_pixels = CAMERA_FILL_FRACTION * config.pixels / task_shrink

    if config.technique in ("raytrace", "raster"):
        objects = 12 * n * n
    else:
        objects = n**3

    features = ObservedFeatures(
        objects=int(objects),
        active_pixels=int(round(active_pixels)),
        cells_spanned=n,
    )
    if config.technique == "raster":
        visible = min(features.active_pixels, features.objects)
        features.visible_objects = int(visible)
        features.pixels_per_triangle = (
            PIXELS_PER_TRIANGLE_FACTOR * features.active_pixels / max(visible, 1)
        )
    if config.technique in ("volume", "volume_unstructured"):
        scale = config.samples_in_depth / 1000.0
        features.samples_per_ray = SAMPLES_PER_RAY_BASELINE * scale / task_shrink
    return features


def map_configuration_batch(
    technique: str,
    num_tasks: np.ndarray,
    cells_per_task: np.ndarray,
    image_width: np.ndarray,
    image_height: np.ndarray,
    samples_in_depth: np.ndarray | int = 1000,
) -> dict[str, np.ndarray]:
    """Vectorized :func:`map_configuration_to_features` over arrays of configurations.

    All parameters broadcast against each other; the result is a dictionary of
    1-D float64 arrays keyed like :meth:`ObservedFeatures` attribute names.
    Element for element the mapping is exactly the scalar one (same rounding,
    same clamps), so the batch :class:`~repro.reporting.predictor.Predictor`
    and the scalar prediction path agree bit for bit.
    """
    if technique not in TECHNIQUES:
        raise ValueError(f"unknown technique {technique!r}; choose from {TECHNIQUES}")
    num_tasks, cells, width, height, samples = np.broadcast_arrays(
        np.atleast_1d(np.asarray(num_tasks, dtype=np.float64)),
        np.atleast_1d(np.asarray(cells_per_task, dtype=np.float64)),
        np.atleast_1d(np.asarray(image_width, dtype=np.float64)),
        np.atleast_1d(np.asarray(image_height, dtype=np.float64)),
        np.atleast_1d(np.asarray(samples_in_depth, dtype=np.float64)),
    )
    if np.any(num_tasks < 1) or np.any(cells < 1) or np.any(width < 1) or np.any(height < 1):
        raise ValueError("num_tasks, cells_per_task, and image dimensions must be positive")
    # numpy's array power differs from CPython's scalar ``**`` by one ulp for
    # some inputs (e.g. 127 ** (1/3)), which would let a rounded active-pixel
    # count diverge between the scalar and batch mappings.  The cube root is
    # therefore taken with scalar pow per element; everything downstream stays
    # vectorized.
    task_shrink = np.array([value ** (1.0 / 3.0) for value in num_tasks.tolist()], dtype=np.float64)
    pixels = width * height
    active_pixels = np.rint(CAMERA_FILL_FRACTION * pixels / task_shrink)

    if technique in ("raytrace", "raster"):
        objects = np.floor(12.0 * cells * cells)
    else:
        objects = np.floor(cells**3)

    arrays = {
        "objects": objects,
        "active_pixels": active_pixels,
        "visible_objects": np.zeros_like(active_pixels),
        "pixels_per_triangle": np.zeros_like(active_pixels),
        "samples_per_ray": np.zeros_like(active_pixels),
        "cells_spanned": cells.copy(),
    }
    if technique == "raster":
        visible = np.minimum(active_pixels, objects)
        arrays["visible_objects"] = visible
        arrays["pixels_per_triangle"] = (
            PIXELS_PER_TRIANGLE_FACTOR * active_pixels / np.maximum(visible, 1.0)
        )
    if technique in ("volume", "volume_unstructured"):
        scale = samples / 1000.0
        arrays["samples_per_ray"] = SAMPLES_PER_RAY_BASELINE * scale / task_shrink
    return arrays


def feature_arrays(feature_list: list[ObservedFeatures]) -> dict[str, np.ndarray]:
    """Column arrays (float64) for a list of observed features.

    The batch prediction path consumes these; values equal ``float(attr)`` of
    the scalar design-matrix rows, so vectorized and scalar designs coincide.
    """
    return {
        "objects": np.array([float(f.objects) for f in feature_list], dtype=np.float64),
        "active_pixels": np.array([float(f.active_pixels) for f in feature_list], dtype=np.float64),
        "visible_objects": np.array([float(f.visible_objects) for f in feature_list], dtype=np.float64),
        "pixels_per_triangle": np.array(
            [float(f.pixels_per_triangle) for f in feature_list], dtype=np.float64
        ),
        "samples_per_ray": np.array([float(f.samples_per_ray) for f in feature_list], dtype=np.float64),
        "cells_spanned": np.array([float(f.cells_spanned) for f in feature_list], dtype=np.float64),
    }


def features_from_result(result: RenderResult) -> dict[str, float | str]:
    """One standardized corpus row from any renderer family's result.

    Every renderer validates its phases against the shared schema of
    :mod:`repro.rendering.result`, so this mapping is renderer-agnostic: the
    Section 5.3 model-input variables (``O``, ``AP``, ``VO``, ``PPT``,
    ``SPR``, ``CS``) plus the canonical phase groups (``t_setup``,
    ``t_sample``, ``t_shade``, ``t_composite``) and total render time.
    """
    row: dict[str, float | str] = dict(result.features.as_dict())
    for group, seconds in result.grouped_seconds().items():
        row[f"t_{group}"] = seconds
    row["t_total"] = result.total_seconds
    row["technique"] = result.technique
    return row


def compositing_features_from_result(result) -> "CompositingFeatures":
    """The Eq. 5.5 model inputs of one parallel composite.

    ``avg(AP)`` comes straight from the compositor's run-length accounting
    (mean active pixels per sub-image, mode-aware activity), so the
    compositing corpus consumes exactly the quantity the fast data path
    compacts and exchanges.  Accepts any object with the
    :class:`repro.compositing.CompositeResult` accounting fields.
    """
    from repro.modeling.models import CompositingFeatures

    return CompositingFeatures(
        average_active_pixels=float(result.average_active_pixels),
        pixels=int(result.num_pixels),
        num_tasks=int(result.num_tasks),
    )


def contention_features_from_result(result) -> dict[str, float]:
    """Per-round contention descriptors of a (streamed) composite.

    The cohort engine attaches a compact round summary to its
    :class:`~repro.compositing.CompositeResult` (``round_summary``); this
    flattens it into scalars a model or report row can consume:

    * ``rounds`` -- communication rounds on the critical path;
    * ``busiest_round_seconds`` -- the single worst per-round link occupancy
      (the term contention adds on top of pure byte counts);
    * ``network_seconds`` -- the Eq. 5.5 critical path (sum over rounds);
    * ``contention_share`` -- fraction of the network estimate spent in the
      busiest round: near ``1/rounds`` for balanced exchanges, approaching 1
      when one fan-in round (e.g. final assembly) dominates.

    Returns all-zero features for results without a round summary (the dense
    engines do not record one).
    """
    summary = getattr(result, "round_summary", None) or []
    if not summary:
        return {
            "rounds": 0.0,
            "busiest_round_seconds": 0.0,
            "network_seconds": float(getattr(result, "network_seconds", 0.0)),
            "contention_share": 0.0,
        }
    per_round = [float(entry["busiest_link_seconds"]) for entry in summary]
    network = sum(per_round)
    busiest = max(per_round)
    return {
        "rounds": float(len(per_round)),
        "busiest_round_seconds": busiest,
        "network_seconds": network,
        "contention_share": busiest / network if network > 0 else 0.0,
    }
