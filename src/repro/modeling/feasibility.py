"""In situ viability analyses (Section 5.9).

Two feasibility questions are answered with the fitted models plus the
configuration-to-feature mapping:

* :func:`images_within_budget` -- how many images of a given size can each
  (architecture, technique) render within a fixed time budget (Figure 14)?
  The BVH build is amortised: it is paid once, then every additional frame
  costs only the per-frame time.
* :func:`raytracing_vs_rasterization` -- for a grid of image sizes and data
  sizes, the ratio of predicted rasterization time to predicted ray-tracing
  time over a repeated-rendering session (Figure 15).  Values above one mean
  ray tracing is faster.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.modeling.features import RenderingConfiguration, map_configuration_to_features
from repro.modeling.models import CompositingModel, CompositingFeatures, RayTracingModel

__all__ = [
    "BudgetPoint",
    "images_within_budget",
    "raytracing_vs_rasterization",
]


@dataclass
class BudgetPoint:
    """One point of the Figure 14 curves."""

    architecture: str
    technique: str
    image_size: int
    seconds_per_image: float
    images_in_budget: int

    def as_dict(self) -> dict[str, float | int | str]:
        """JSON-serializable row (the Figure 14 data emitter's unit)."""
        return {
            "architecture": self.architecture,
            "technique": self.technique,
            "image_size": int(self.image_size),
            "seconds_per_image": float(self.seconds_per_image),
            "images_in_budget": int(self.images_in_budget),
        }


def _predict_frame_seconds(
    model: object,
    config: RenderingConfiguration,
    compositing_model: CompositingModel | None,
) -> tuple[float, float]:
    """(per-frame seconds, one-time seconds) for a configuration via the mapping."""
    features = map_configuration_to_features(config)
    if isinstance(model, RayTracingModel):
        frame = model.predict(features, include_build=False)
        build = model.predict(features, include_build=True) - frame
    else:
        frame = model.predict(features)
        build = 0.0
    if compositing_model is not None:
        comp_features = CompositingFeatures(
            average_active_pixels=float(features.active_pixels),
            pixels=config.pixels,
            num_tasks=config.num_tasks,
        )
        frame += compositing_model.predict(comp_features)
    return max(frame, 1e-12), max(build, 0.0)


def images_within_budget(
    models: dict[tuple[str, str], object],
    budget_seconds: float = 60.0,
    num_tasks: int = 32,
    cells_per_task: int = 200,
    image_sizes: np.ndarray | None = None,
    compositing_model: CompositingModel | None = None,
    samples_in_depth: int = 1000,
) -> list[BudgetPoint]:
    """Predict how many images fit in a time budget for every fitted model.

    Parameters
    ----------
    models:
        Mapping of ``(architecture, technique)`` to a fitted model (as
        returned by :meth:`repro.modeling.study.StudyCorpus.fit_all_models`).
    budget_seconds:
        The rendering budget (60 seconds in the paper's example).
    num_tasks, cells_per_task:
        The fixed simulation configuration (32 tasks of 200^3 in the paper).
    image_sizes:
        Square image edge lengths to sweep (defaults to the paper's
        1024..4096 range in steps of 128).
    compositing_model:
        Optional compositing model added to every frame.
    """
    if image_sizes is None:
        image_sizes = np.arange(1024, 4096 + 1, 128)
    points: list[BudgetPoint] = []
    for (architecture, technique), model in sorted(models.items()):
        for size in image_sizes:
            config = RenderingConfiguration(
                technique=technique,
                architecture=architecture,
                num_tasks=num_tasks,
                cells_per_task=cells_per_task,
                image_width=int(size),
                image_height=int(size),
                samples_in_depth=samples_in_depth,
            )
            frame, build = _predict_frame_seconds(model, config, compositing_model)
            remaining = max(budget_seconds - build, 0.0)
            points.append(
                BudgetPoint(
                    architecture=architecture,
                    technique=technique,
                    image_size=int(size),
                    seconds_per_image=frame,
                    images_in_budget=int(remaining // frame),
                )
            )
    return points


def raytracing_vs_rasterization(
    raytracing_model: RayTracingModel,
    rasterization_model: object,
    architecture: str,
    num_tasks: int = 32,
    num_renderings: int = 100,
    image_sizes: np.ndarray | None = None,
    data_sizes: np.ndarray | None = None,
) -> dict[str, np.ndarray]:
    """The Figure 15 heat map: rasterization time / ray-tracing time.

    For each (image size, data size) cell the predicted cost of
    ``num_renderings`` renderings is computed for both techniques, including
    the single amortised BVH build for ray tracing.  The returned dictionary
    holds the two axes and the ratio matrix (``ratio > 1`` means ray tracing
    produces more images per unit time).
    """
    if image_sizes is None:
        image_sizes = np.arange(384, 4096 + 1, 128)
    if data_sizes is None:
        data_sizes = np.arange(100, 500 + 1, 25)
    ratio = np.zeros((len(data_sizes), len(image_sizes)))
    for row, cells in enumerate(data_sizes):
        for column, size in enumerate(image_sizes):
            rt_config = RenderingConfiguration(
                technique="raytrace",
                architecture=architecture,
                num_tasks=num_tasks,
                cells_per_task=int(cells),
                image_width=int(size),
                image_height=int(size),
            )
            rast_config = RenderingConfiguration(
                technique="raster",
                architecture=architecture,
                num_tasks=num_tasks,
                cells_per_task=int(cells),
                image_width=int(size),
                image_height=int(size),
            )
            rt_features = map_configuration_to_features(rt_config)
            rast_features = map_configuration_to_features(rast_config)
            rt_frame = raytracing_model.predict(rt_features, include_build=False)
            rt_build = raytracing_model.predict(rt_features, include_build=True) - rt_frame
            rt_total = rt_build + num_renderings * rt_frame
            rast_total = num_renderings * rasterization_model.predict(rast_features)
            ratio[row, column] = rast_total / max(rt_total, 1e-12)
    return {
        "image_sizes": np.asarray(image_sizes),
        "data_sizes": np.asarray(data_sizes),
        "ratio": ratio,
    }
