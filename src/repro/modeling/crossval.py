"""K-fold cross validation and the accuracy summaries of Tables 13 and 14."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.modeling.regression import fit_linear_model, relative_errors
from repro.util.rng import default_rng

__all__ = ["CrossValidationSummary", "k_fold_cross_validation"]


@dataclass
class CrossValidationSummary:
    """Held-out prediction accuracy aggregated over all folds.

    Attributes
    ----------
    errors:
        Relative error of every held-out prediction (Figure 11's y-axis,
        expressed as a fraction rather than a percentage).
    predictions, actuals:
        The held-out predictions and their measured values.
    """

    errors: np.ndarray
    predictions: np.ndarray
    actuals: np.ndarray
    num_folds: int
    fold_r_squared: list[float] = field(default_factory=list)

    def fraction_within(self, percent: float) -> float:
        """Fraction of held-out predictions within ``percent`` relative error."""
        if len(self.errors) == 0:
            return 0.0
        return float(np.mean(np.abs(self.errors) <= percent / 100.0))

    @property
    def average_error_percent(self) -> float:
        """Mean absolute relative error in percent (the "Average %" column)."""
        if len(self.errors) == 0:
            return 0.0
        return float(np.mean(np.abs(self.errors)) * 100.0)

    def accuracy_row(self) -> dict[str, float]:
        """The Table 13 row: percentages within 50/25/10/5 percent plus the average."""
        return {
            "within_50": 100.0 * self.fraction_within(50.0),
            "within_25": 100.0 * self.fraction_within(25.0),
            "within_10": 100.0 * self.fraction_within(10.0),
            "within_5": 100.0 * self.fraction_within(5.0),
            "average_percent": self.average_error_percent,
        }

    def to_payload(self) -> dict:
        """JSON-serializable form (Figure 11/13 data plus the Table 13 row)."""
        return {
            "num_folds": self.num_folds,
            "fold_r_squared": [float(value) for value in self.fold_r_squared],
            "errors": [float(value) for value in self.errors],
            "predictions": [float(value) for value in self.predictions],
            "actuals": [float(value) for value in self.actuals],
            "accuracy": self.accuracy_row(),
        }


def k_fold_cross_validation(
    design: np.ndarray,
    response: np.ndarray,
    k: int = 3,
    seed: int | None = None,
    nonnegative: bool = False,
) -> CrossValidationSummary:
    """K-fold cross validation of a linear model.

    The observations are shuffled deterministically, split into ``k`` folds,
    and each fold is predicted by a model trained on the remaining folds --
    exactly the paper's 3-fold procedure ("for each fold, two thirds of the
    data is used to train the model and the remaining one third is used to
    test the prediction").
    """
    design = np.atleast_2d(np.asarray(design, dtype=np.float64))
    response = np.asarray(response, dtype=np.float64).ravel()
    n = len(response)
    if k < 2:
        raise ValueError("k must be at least 2")
    if n < 2 * k:
        raise ValueError(f"need at least {2 * k} observations for {k}-fold cross validation")

    rng = default_rng(seed, "crossval", k, n)
    permutation = rng.permutation(n)
    folds = np.array_split(permutation, k)

    all_errors: list[np.ndarray] = []
    all_predictions: list[np.ndarray] = []
    all_actuals: list[np.ndarray] = []
    fold_r2: list[float] = []
    for held_out in folds:
        train = np.setdiff1d(permutation, held_out, assume_unique=True)
        fit = fit_linear_model(design[train], response[train], nonnegative=nonnegative)
        fold_r2.append(fit.r_squared)
        predicted = fit.predict(design[held_out])
        actual = response[held_out]
        all_errors.append(relative_errors(actual, predicted))
        all_predictions.append(predicted)
        all_actuals.append(actual)

    return CrossValidationSummary(
        errors=np.concatenate(all_errors),
        predictions=np.concatenate(all_predictions),
        actuals=np.concatenate(all_actuals),
        num_folds=k,
        fold_r_squared=fold_r2,
    )
