"""``python -m repro.serve`` -- launch the prediction server (README quick-start).

A thin shim over :func:`repro.serving.server.main`; see :mod:`repro.serving`
for the serving tier itself.
"""

from repro.serving.server import main

if __name__ == "__main__":
    raise SystemExit(main())
