"""LULESH-like proxy: Lagrangian shock hydrodynamics on an unstructured hex mesh.

The real LULESH solves the Sedov blast problem: a point energy deposition at a
corner of the domain drives an expanding shock, and the Lagrangian mesh nodes
move with the material.  The proxy keeps those externally visible properties:

* the mesh is an explicit **unstructured hexahedral** mesh whose node
  positions change every cycle (so the in situ layer cannot cache geometry),
* an element-centered energy field ``e`` and pressure field ``p`` follow an
  expanding spherical front, and
* per-cycle cost scales with the number of elements.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.mesh import UniformGrid, UnstructuredHexMesh
from repro.simulations.base import SimulationProxy
from repro.util.rng import default_rng

__all__ = ["LuleshProxy"]


class LuleshProxy(SimulationProxy):
    """Sedov-blast-like proxy on a deforming unstructured hex mesh.

    Parameters
    ----------
    cells_per_axis:
        Elements per axis of the (initially regular) hex mesh.
    initial_energy:
        Energy deposited at the origin corner at cycle 0.
    seed:
        Seed for the small random perturbation of initial node positions.
    """

    def __init__(
        self, cells_per_axis: int, initial_energy: float = 3.948746e7, seed: int | None = None
    ) -> None:
        super().__init__()
        if cells_per_axis < 2:
            raise ValueError("cells_per_axis must be at least 2")
        self.cells_per_axis = int(cells_per_axis)
        rng = default_rng(seed, "lulesh", cells_per_axis)

        points_per_axis = self.cells_per_axis + 1
        grid = UniformGrid(
            (points_per_axis,) * 3,
            origin=(0.0, 0.0, 0.0),
            spacing=(1.125 / self.cells_per_axis,) * 3,
        )
        self._mesh = UnstructuredHexMesh.from_structured(grid)
        # Small random perturbation so the mesh is genuinely unstructured.
        jitter = 0.05 * (1.125 / self.cells_per_axis)
        interior = self._interior_point_mask(points_per_axis)
        offsets = rng.uniform(-jitter, jitter, size=self._mesh.points().shape)
        self._mesh._points = self._mesh.points() + offsets * interior[:, None]

        self._reference_points = self._mesh.points().copy()
        self.initial_energy = float(initial_energy)
        centers = self._mesh.cell_centers()
        self._radius = np.linalg.norm(centers, axis=1)
        energy = np.zeros(self._mesh.num_cells)
        energy[np.argmin(self._radius)] = self.initial_energy
        self._mesh.add_cell_field("e", energy)
        self._mesh.add_cell_field("p", np.zeros(self._mesh.num_cells))
        self._mesh.add_point_field("speed", np.zeros(self._mesh.num_points))
        self._dt = 1e-2 / self.cells_per_axis

    @staticmethod
    def _interior_point_mask(points_per_axis: int) -> np.ndarray:
        """1 for interior points, 0 on the boundary (boundary stays fixed)."""
        axis = np.arange(points_per_axis)
        interior_axis = (axis > 0) & (axis < points_per_axis - 1)
        zz, yy, xx = np.meshgrid(interior_axis, interior_axis, interior_axis, indexing="ij")
        return (xx & yy & zz).ravel().astype(np.float64)

    # -- physics -----------------------------------------------------------------------
    def _step(self) -> float:
        """Expand the blast front and advect nodes radially outward."""
        mesh = self._mesh
        front_radius = 0.15 + 0.9 * (1.0 - np.exp(-0.08 * (self.cycle + 1)))
        width = 0.08 + 0.02 * np.sqrt(self.cycle + 1.0)

        # Element energy: a Gaussian shell at the front plus the decaying core.
        shell = np.exp(-((self._radius - front_radius) ** 2) / (2.0 * width**2))
        core = np.exp(-self._radius / max(front_radius, 1e-6)) * np.exp(-0.05 * self.cycle)
        energy = self.initial_energy * (0.7 * shell + 0.3 * core) / max(self.cycle + 1, 1)
        pressure = (2.0 / 3.0) * energy  # ideal-gas-like closure
        mesh.cell_fields["e"] = energy
        mesh.cell_fields["p"] = pressure

        # Lagrangian node motion: radial displacement following the front.
        points = self._reference_points
        radius = np.linalg.norm(points, axis=1)
        safe_radius = np.where(radius < 1e-9, 1.0, radius)
        displacement = 0.04 * front_radius * np.exp(-((radius - front_radius) ** 2) / (2.0 * width**2))
        direction = points / safe_radius[:, None]
        mesh._points = points + displacement[:, None] * direction
        mesh.point_fields["speed"] = displacement / self._dt
        return self._dt

    # -- state access ----------------------------------------------------------------------
    def mesh(self) -> UnstructuredHexMesh:
        return self._mesh

    @property
    def primary_field(self) -> str:
        return "e"
