"""Kripke-like proxy: deterministic discrete-ordinates transport on a uniform mesh.

Kripke sweeps the angular flux across a structured grid for a set of discrete
ordinate directions and energy groups, then folds the angular solution into a
scalar flux.  The proxy keeps that structure at reduced fidelity: each cycle
performs one directional sweep per ordinate (a cumulative attenuation along
the sweep direction through an absorption field) and relaxes the scalar flux
toward the ordinate average.  The externally visible behaviour matches what
the in situ study needs: a 3D **uniform** grid whose cell-centered ``phi``
field evolves smoothly, with per-cycle cost proportional to cells x ordinates.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.mesh import UniformGrid
from repro.simulations.base import SimulationProxy
from repro.util.rng import default_rng

__all__ = ["KripkeProxy"]

#: The eight octant diagonal sweep directions used by the proxy.
_OCTANTS = np.array(
    [[sx, sy, sz] for sx in (1, -1) for sy in (1, -1) for sz in (1, -1)],
    dtype=np.int64,
)


class KripkeProxy(SimulationProxy):
    """Discrete-ordinates sweep proxy on a uniform grid.

    Parameters
    ----------
    cells_per_axis:
        Cells per axis.
    num_directions:
        Number of sweep directions per cycle (at most 8 octants).
    relaxation:
        Blend factor between the previous scalar flux and the new sweep
        result.
    """

    def __init__(
        self,
        cells_per_axis: int,
        num_directions: int = 8,
        relaxation: float = 0.35,
        seed: int | None = None,
    ) -> None:
        super().__init__()
        if cells_per_axis < 2:
            raise ValueError("cells_per_axis must be at least 2")
        if not 1 <= num_directions <= 8:
            raise ValueError("num_directions must be between 1 and 8")
        self.cells_per_axis = int(cells_per_axis)
        self.num_directions = int(num_directions)
        self.relaxation = float(relaxation)
        rng = default_rng(seed, "kripke", cells_per_axis)

        points_per_axis = self.cells_per_axis + 1
        self._grid = UniformGrid(
            (points_per_axis,) * 3,
            origin=(0.0, 0.0, 0.0),
            spacing=(1.0 / self.cells_per_axis,) * 3,
        )
        n = self.cells_per_axis
        # Heterogeneous absorption field: a few dense blobs in a light background.
        centers = rng.uniform(0.2, 0.8, size=(5, 3))
        x = (np.arange(n) + 0.5) / n
        zz, yy, xx = np.meshgrid(x, x, x, indexing="ij")
        sigma_t = np.full((n, n, n), 0.5)
        for center in centers:
            r2 = (xx - center[0]) ** 2 + (yy - center[1]) ** 2 + (zz - center[2]) ** 2
            sigma_t += 4.0 * np.exp(-r2 / 0.01)
        self._sigma_t = sigma_t
        self._phi = np.zeros((n, n, n))
        self._grid.add_cell_field("phi", self._phi.ravel().copy())
        self._grid.add_cell_field("sigma_t", self._sigma_t.ravel().copy())
        # Point-centered copy of phi for renderers that interpolate point data.
        self._grid.add_point_field("phi_point", np.zeros(self._grid.num_points))
        self._dt = 1.0

    # -- physics --------------------------------------------------------------------------
    def _sweep(self, direction: np.ndarray) -> np.ndarray:
        """Attenuation sweep along one octant diagonal direction."""
        step = 1.0 / self.cells_per_axis
        optical_depth = self._sigma_t * step
        ordered = optical_depth
        # Flip axes so the sweep always accumulates from index 0 upward.
        for axis, sign in enumerate(direction[::-1]):  # sigma_t axes are (z, y, x)
            if sign < 0:
                ordered = np.flip(ordered, axis=axis)
        transmission = np.exp(-np.cumsum(ordered, axis=2))
        for axis, sign in enumerate(direction[::-1]):
            if sign < 0:
                transmission = np.flip(transmission, axis=axis)
        return transmission

    def _step(self) -> float:
        """One source iteration: average the octant sweeps and relax the flux."""
        sweeps = [self._sweep(_OCTANTS[index]) for index in range(self.num_directions)]
        new_phi = np.mean(sweeps, axis=0)
        self._phi = (1.0 - self.relaxation) * self._phi + self.relaxation * new_phi
        self._grid.cell_fields["phi"] = self._phi.ravel().copy()
        self._grid.point_fields["phi_point"] = self._cell_to_point(self._phi)
        return self._dt

    def _cell_to_point(self, cell_volume: np.ndarray) -> np.ndarray:
        """Average the cell-centered flux onto grid points (for point-data renderers)."""
        n = self.cells_per_axis
        padded = np.pad(cell_volume, 1, mode="edge")
        point = np.zeros((n + 1, n + 1, n + 1))
        for dz in (0, 1):
            for dy in (0, 1):
                for dx in (0, 1):
                    point += padded[dz : dz + n + 1, dy : dy + n + 1, dx : dx + n + 1]
        return (point / 8.0).ravel()

    # -- state access ------------------------------------------------------------------------
    def mesh(self) -> UniformGrid:
        return self._grid

    @property
    def primary_field(self) -> str:
        return "phi_point"
