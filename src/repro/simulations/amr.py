"""AMR-style proxy: a refinement-graded mesh with a nonuniform rank decomposition.

The three DOE proxies decompose into near-equal blocks, which makes the
simulated compositing workload artificially uniform: every rank contributes
about the same number of active pixels.  Production AMR codes do not look
like that -- a few heavily refined blocks near the feature of interest carry
most of the rendered payload while the bulk of the coarse blocks contribute
almost nothing.  This proxy reproduces that *externally visible* shape at
reduced fidelity:

* the mesh is a :class:`~repro.geometry.mesh.RectilinearGrid` whose
  coordinates are geometrically graded toward a refinement center (fine cells
  near the feature, coarse far away), with a Gaussian density blob advecting
  through it per cycle;
* :meth:`rank_levels` / :meth:`rank_coverage` expose the decomposition proxy
  the thousand-rank compositing scenarios consume: each simulated rank is
  assigned a refinement level from a geometric distribution (most blocks
  coarse, a refined minority), and its active-pixel coverage scales with the
  level, so per-rank run-length images become strongly nonuniform.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.mesh import RectilinearGrid
from repro.simulations.base import SimulationProxy
from repro.util.rng import default_rng

__all__ = ["AmrProxy"]


def _graded_axis(cells: int, center: float, ratio: float) -> np.ndarray:
    """Strictly increasing coordinates on [0, 1] with fine spacing near ``center``.

    Cell widths follow ``(distance from center)`` raised through ``ratio``:
    the closest cell is about ``ratio`` times narrower than the farthest,
    which is the externally visible effect of a few levels of 2:1 refinement.
    """
    positions = (np.arange(cells) + 0.5) / cells
    widths = 1.0 + (ratio - 1.0) * np.abs(positions - center)
    widths /= widths.sum()
    coords = np.concatenate([[0.0], np.cumsum(widths)])
    coords[-1] = 1.0
    return coords


class AmrProxy(SimulationProxy):
    """Refinement-graded mesh proxy with a nonuniform decomposition model.

    Parameters
    ----------
    cells_per_axis:
        Cells per axis of the graded rectilinear grid.
    max_level:
        Deepest refinement level of the decomposition model (level 0 =
        coarsest).  Each level doubles a block's rendered coverage share.
    refined_fraction:
        Fraction of blocks promoted from each level to the next -- the
        geometric tail that makes a refined minority carry most of the load.
    """

    def __init__(
        self,
        cells_per_axis: int,
        max_level: int = 3,
        refined_fraction: float = 0.25,
        seed: int | None = None,
    ) -> None:
        super().__init__()
        if cells_per_axis < 2:
            raise ValueError("cells_per_axis must be at least 2")
        if max_level < 0:
            raise ValueError("max_level must be non-negative")
        if not 0.0 < refined_fraction < 1.0:
            raise ValueError("refined_fraction must be in (0, 1)")
        self.cells_per_axis = int(cells_per_axis)
        self.max_level = int(max_level)
        self.refined_fraction = float(refined_fraction)
        self.seed = seed
        self._rng = default_rng(seed, "amr", cells_per_axis)
        self._blob_center = np.array([0.25, 0.5, 0.5])
        self._blob_velocity = np.array([0.06, 0.02, 0.0])
        self._grid = RectilinearGrid(
            _graded_axis(self.cells_per_axis, self._blob_center[0], ratio=4.0),
            _graded_axis(self.cells_per_axis, self._blob_center[1], ratio=4.0),
            _graded_axis(self.cells_per_axis, self._blob_center[2], ratio=4.0),
        )
        self._update_field()

    # -- physics ---------------------------------------------------------------
    def _update_field(self) -> None:
        centers = self._grid.cell_centers()
        distance_sq = ((centers - self._blob_center) ** 2).sum(axis=1)
        density = np.exp(-distance_sq / (2 * 0.12**2))
        self._grid.add_cell_field("density", density)

    def _step(self) -> float:
        self._blob_center = (self._blob_center + self._blob_velocity) % 1.0
        self._update_field()
        return 0.05

    def mesh(self) -> RectilinearGrid:
        return self._grid

    @property
    def primary_field(self) -> str:
        return "density"

    # -- decomposition model ----------------------------------------------------
    def rank_levels(self, num_ranks: int) -> np.ndarray:
        """Refinement level per simulated rank (deterministic for a seed).

        Levels follow a geometric distribution: a block sits at level ``l``
        with probability proportional to ``refined_fraction ** l`` (capped at
        ``max_level``), so most ranks are coarse and a refined minority is
        deep -- the load shape a thousand-rank compositing run should see.
        """
        if num_ranks < 1:
            raise ValueError("num_ranks must be positive")
        rng = default_rng(self.seed, "amr-levels", self.cells_per_axis, num_ranks)
        draws = rng.random(num_ranks)
        levels = np.zeros(num_ranks, dtype=np.int64)
        threshold = self.refined_fraction
        for level in range(1, self.max_level + 1):
            levels[draws < threshold] = level
            threshold *= self.refined_fraction
        return levels

    def rank_coverage(self, num_ranks: int, base_coverage: float = 0.04) -> np.ndarray:
        """Active-pixel coverage fraction per simulated rank.

        A level-``l`` block covers ``base_coverage * 2**l`` of the image
        (refined blocks sit near the feature and fill more pixels), clipped
        to 0.9 so pathological draws stay renderable.
        """
        if not 0.0 < base_coverage <= 1.0:
            raise ValueError("base_coverage must be in (0, 1]")
        levels = self.rank_levels(num_ranks)
        return np.minimum(base_coverage * np.exp2(levels.astype(np.float64)), 0.9)
