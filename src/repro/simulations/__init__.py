"""Proxy simulation applications (LULESH-, Kripke-, and CloverLeaf3D-like).

The in situ study couples its rendering infrastructure to three DOE proxy
applications.  The reproduction provides small numpy proxies with the same
externally visible properties:

* :class:`repro.simulations.lulesh.LuleshProxy` -- Lagrangian shock
  hydrodynamics on a 3D **unstructured hexahedral** mesh (nodes move, an
  energy field follows an expanding blast wave).
* :class:`repro.simulations.kripke.KripkeProxy` -- deterministic discrete-
  ordinates transport on a 3D **uniform** mesh (directional sweeps relax a
  scalar flux field).
* :class:`repro.simulations.cloverleaf.CloverleafProxy` -- compressible Euler
  hydrodynamics on a 3D **rectilinear** mesh (a density/energy front advects
  across the domain).

All three implement the :class:`repro.simulations.base.SimulationProxy`
interface: ``advance()`` steps the physics and returns the per-cycle
simulation time, ``mesh()`` exposes the current mesh + fields, and
``describe()`` publishes the state through the Conduit-like tree consumed by
the Strawman-like in situ interface (Chapter IV).
"""

from repro.simulations.amr import AmrProxy
from repro.simulations.base import SimulationProxy
from repro.simulations.cloverleaf import CloverleafProxy
from repro.simulations.kripke import KripkeProxy
from repro.simulations.lulesh import LuleshProxy

__all__ = ["AmrProxy", "CloverleafProxy", "KripkeProxy", "LuleshProxy", "SimulationProxy", "create_proxy"]


def create_proxy(name: str, cells_per_axis: int, seed: int | None = None) -> SimulationProxy:
    """Factory for the three proxies by study name (``lulesh``/``kripke``/``cloverleaf``)."""
    key = name.lower()
    if key == "lulesh":
        return LuleshProxy(cells_per_axis, seed=seed)
    if key == "kripke":
        return KripkeProxy(cells_per_axis, seed=seed)
    if key in ("cloverleaf", "cloverleaf3d"):
        return CloverleafProxy(cells_per_axis, seed=seed)
    if key == "amr":
        return AmrProxy(cells_per_axis, seed=seed)
    raise KeyError(f"unknown simulation proxy {name!r}")
