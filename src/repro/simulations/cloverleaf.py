"""CloverLeaf3D-like proxy: compressible Euler hydrodynamics on a rectilinear mesh.

CloverLeaf3D advances the compressible Euler equations with an explicit
staggered-grid scheme on a rectilinear mesh.  The proxy implements a compact
first-order finite-volume update of density and energy with a prescribed
divergence-free swirl velocity field -- enough real numerical work per cycle
to stand in for the simulation burden measurements, while producing the
advecting density front that CloverLeaf's standard "clover" problem shows.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.mesh import RectilinearGrid
from repro.simulations.base import SimulationProxy
from repro.util.rng import default_rng

__all__ = ["CloverleafProxy"]


class CloverleafProxy(SimulationProxy):
    """Euler-advection proxy on a rectilinear grid.

    Parameters
    ----------
    cells_per_axis:
        Cells per axis.  The rectilinear spacing is graded (finer near one
        corner) to exercise the rectilinear code paths rather than collapsing
        to a uniform grid.
    cfl:
        Time-step safety factor.
    """

    def __init__(self, cells_per_axis: int, cfl: float = 0.4, seed: int | None = None) -> None:
        super().__init__()
        if cells_per_axis < 2:
            raise ValueError("cells_per_axis must be at least 2")
        self.cells_per_axis = int(cells_per_axis)
        self.cfl = float(cfl)
        default_rng(seed, "cloverleaf", cells_per_axis)  # reserved for future stochastic ICs

        n = self.cells_per_axis
        # Graded coordinates: geometric spacing refined toward the low corner.
        grading = np.linspace(0.0, 1.0, n + 1) ** 1.2
        self._grid = RectilinearGrid(grading * 10.0, grading * 2.0, grading * 2.0)

        centers = self._grid.cell_centers()
        x, y, z = centers[:, 0], centers[:, 1], centers[:, 2]
        density = np.where((x < 5.0) & (y < 1.0) & (z < 1.0), 1.0, 0.2)
        energy = np.where((x < 5.0) & (y < 1.0) & (z < 1.0), 2.5, 1.0)
        self._density = density.reshape(n, n, n)
        self._energy = energy.reshape(n, n, n)
        self._grid.add_cell_field("density", self._density.ravel().copy())
        self._grid.add_cell_field("energy", self._energy.ravel().copy())
        self._grid.add_point_field("density_point", self._cell_to_point(self._density))

        # Prescribed velocity: uniform drift plus a solenoidal swirl.
        cx = centers.reshape(n, n, n, 3)
        self._velocity = np.stack(
            [
                np.full((n, n, n), 1.0),
                0.3 * np.sin(2 * np.pi * cx[..., 0] / 10.0),
                0.3 * np.cos(2 * np.pi * cx[..., 0] / 10.0),
            ],
            axis=-1,
        )
        self._spacing = np.array(
            [np.diff(self._grid.x).min(), np.diff(self._grid.y).min(), np.diff(self._grid.z).min()]
        )

    # -- physics --------------------------------------------------------------------------------
    def _upwind_gradient(self, field: np.ndarray, axis: int, velocity: np.ndarray) -> np.ndarray:
        """First-order upwind difference of ``field`` along ``axis``."""
        forward = np.diff(field, axis=axis, append=np.take(field, [-1], axis=axis))
        backward = np.diff(field, axis=axis, prepend=np.take(field, [0], axis=axis))
        return np.where(velocity > 0, backward, forward)

    def _step(self) -> float:
        """Advect density and energy with the prescribed velocity field."""
        dt = self.cfl * float(self._spacing.min()) / float(np.abs(self._velocity).max() + 1e-12)
        # Field arrays are laid out (z, y, x); velocity component 0 is x.
        density = self._density.reshape(self.cells_per_axis, self.cells_per_axis, self.cells_per_axis)
        energy = self._energy.reshape(self.cells_per_axis, self.cells_per_axis, self.cells_per_axis)
        for component, axis in ((0, 2), (1, 1), (2, 0)):
            velocity = self._velocity[..., component]
            spacing = self._spacing[component]
            density = density - dt * velocity * self._upwind_gradient(density, axis, velocity) / spacing
            energy = energy - dt * velocity * self._upwind_gradient(energy, axis, velocity) / spacing
        self._density = np.clip(density, 0.05, None)
        self._energy = np.clip(energy, 0.1, None)
        self._grid.cell_fields["density"] = self._density.ravel().copy()
        self._grid.cell_fields["energy"] = self._energy.ravel().copy()
        self._grid.point_fields["density_point"] = self._cell_to_point(self._density)
        return dt

    def _cell_to_point(self, cell_volume: np.ndarray) -> np.ndarray:
        """Average cell-centered values onto the grid points."""
        n = self.cells_per_axis
        padded = np.pad(cell_volume.reshape(n, n, n), 1, mode="edge")
        point = np.zeros((n + 1, n + 1, n + 1))
        for dz in (0, 1):
            for dy in (0, 1):
                for dx in (0, 1):
                    point += padded[dz : dz + n + 1, dy : dy + n + 1, dx : dx + n + 1]
        return (point / 8.0).ravel()

    # -- state access ------------------------------------------------------------------------------
    def mesh(self) -> RectilinearGrid:
        return self._grid

    @property
    def primary_field(self) -> str:
        return "density_point"
