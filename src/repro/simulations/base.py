"""Common interface of the proxy simulation applications."""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.geometry.mesh import Mesh
from repro.util.timing import Timer

__all__ = ["SimulationProxy"]


class SimulationProxy(ABC):
    """A batch simulation stepped one cycle at a time.

    Subclasses implement :meth:`_step` (the physics) and :meth:`mesh`
    (exposing the current state).  :meth:`advance` wraps the step with timing
    so the in situ burden experiments (Table 11) can compare simulation time
    per cycle with visualization time per cycle.
    """

    def __init__(self) -> None:
        self.cycle = 0
        self.time = 0.0
        self.last_step_seconds = 0.0
        self.total_step_seconds = 0.0

    # -- stepping ---------------------------------------------------------------
    def advance(self, cycles: int = 1) -> float:
        """Advance the simulation; returns seconds spent in the physics."""
        if cycles < 1:
            raise ValueError("cycles must be positive")
        elapsed = 0.0
        for _ in range(cycles):
            with Timer() as timer:
                dt = self._step()
            self.cycle += 1
            self.time += dt
            self.last_step_seconds = timer.elapsed
            self.total_step_seconds += timer.elapsed
            elapsed += timer.elapsed
        return elapsed

    @abstractmethod
    def _step(self) -> float:
        """Advance one cycle of physics; returns the simulated time increment."""

    # -- state access ---------------------------------------------------------------
    @abstractmethod
    def mesh(self) -> Mesh:
        """The simulation's current mesh with its fields attached."""

    @property
    @abstractmethod
    def primary_field(self) -> str:
        """Name of the field a default visualization should render."""

    @property
    def name(self) -> str:
        """Short proxy name (class name without the ``Proxy`` suffix)."""
        return type(self).__name__.replace("Proxy", "").lower()

    def describe(self) -> "ConduitNode":
        """Publish the current state as a Conduit-like node tree (Chapter IV).

        The layout follows the mesh-description conventions implemented in
        :mod:`repro.insitu.blueprint`.
        """
        from repro.insitu.blueprint import mesh_to_node  # local import to avoid a cycle

        node = mesh_to_node(self.mesh())
        node["state/cycle"] = self.cycle
        node["state/time"] = self.time
        node["state/name"] = self.name
        return node
