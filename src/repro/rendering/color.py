"""Color tables (transfer-function color components) and color utilities.

Scientific visualization renders map a scalar field through a color table;
the study uses a single color table throughout ("we present results from just
a single transfer function from our pool").  This module provides a small set
of standard tables ("cool-to-warm", "viridis-like", "grayscale", "rainbow")
sampled at arbitrary resolution, plus helpers for normalizing scalars.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ColorTable", "normalize_scalars"]

# Control points (position in [0,1], r, g, b) for the built-in tables.
_TABLES: dict[str, np.ndarray] = {
    "cool-to-warm": np.array(
        [
            [0.0, 0.23, 0.30, 0.75],
            [0.5, 0.87, 0.87, 0.87],
            [1.0, 0.71, 0.02, 0.15],
        ]
    ),
    "grayscale": np.array(
        [
            [0.0, 0.0, 0.0, 0.0],
            [1.0, 1.0, 1.0, 1.0],
        ]
    ),
    "rainbow": np.array(
        [
            [0.00, 0.0, 0.0, 1.0],
            [0.25, 0.0, 1.0, 1.0],
            [0.50, 0.0, 1.0, 0.0],
            [0.75, 1.0, 1.0, 0.0],
            [1.00, 1.0, 0.0, 0.0],
        ]
    ),
    "viridis-like": np.array(
        [
            [0.00, 0.267, 0.005, 0.329],
            [0.25, 0.229, 0.322, 0.546],
            [0.50, 0.128, 0.567, 0.551],
            [0.75, 0.369, 0.789, 0.383],
            [1.00, 0.993, 0.906, 0.144],
        ]
    ),
}


def normalize_scalars(
    scalars: np.ndarray, vmin: float | None = None, vmax: float | None = None
) -> np.ndarray:
    """Map scalars linearly into [0, 1], clamping outside the given range.

    When the range is degenerate (vmin == vmax) all values map to 0.5.
    """
    scalars = np.asarray(scalars, dtype=np.float64)
    lo = float(np.min(scalars)) if vmin is None else float(vmin)
    hi = float(np.max(scalars)) if vmax is None else float(vmax)
    if hi <= lo:
        return np.full(scalars.shape, 0.5)
    return np.clip((scalars - lo) / (hi - lo), 0.0, 1.0)


class ColorTable:
    """Piecewise-linear color table sampled by normalized scalar value."""

    def __init__(self, name: str = "cool-to-warm", samples: int = 256) -> None:
        if name not in _TABLES:
            raise KeyError(f"unknown color table {name!r}; choose from {sorted(_TABLES)}")
        if samples < 2:
            raise ValueError("a color table needs at least two samples")
        self.name = name
        control = _TABLES[name]
        positions = np.linspace(0.0, 1.0, samples)
        self._rgb = np.column_stack(
            [np.interp(positions, control[:, 0], control[:, 1 + channel]) for channel in range(3)]
        )

    @property
    def num_samples(self) -> int:
        return self._rgb.shape[0]

    def map(self, normalized: np.ndarray) -> np.ndarray:
        """Look up RGB colors for normalized values in [0, 1].

        Values are clamped; the return shape is ``normalized.shape + (3,)``.
        """
        normalized = np.clip(np.asarray(normalized, dtype=np.float64), 0.0, 1.0)
        indices = np.minimum(
            (normalized * (self.num_samples - 1)).astype(np.int64), self.num_samples - 1
        )
        return self._rgb[indices]

    def map_scalars(
        self, scalars: np.ndarray, vmin: float | None = None, vmax: float | None = None
    ) -> np.ndarray:
        """Normalize raw scalars against a range and map them to RGB."""
        return self.map(normalize_scalars(scalars, vmin, vmax))

    @staticmethod
    def available() -> list[str]:
        """Names of the built-in tables."""
        return sorted(_TABLES)
