"""Baseline comparator renderers.

The dissertation's studies compare the data-parallel renderers against
architecture-specialised community codes: NVIDIA OptiX Prime and Intel Embree
for ray tracing (Tables 3-5), HAVS and the Bunyk et al. unstructured ray
caster plus VisIt's sampling renderer for volume rendering (Tables 6-9,
Figures 6-7).  None of those packages is usable here (closed source, GPU
hardware, heavyweight C++ stacks), so this module provides Python stand-ins
that occupy the same design points:

* :class:`SpecializedRayTracer` -- the Embree / OptiX role: same intersection
  mathematics, but a higher-quality SAH BVH, a larger leaf size tuned for the
  batch intersector, no data-parallel-primitive instrumentation, and no
  breadth-first pipeline bookkeeping.  Its throughput advantage over the DPP
  ray tracer plays the role of the 1.6x-2.6x gap the paper reports.
* :class:`ProjectedTetrahedraRenderer` -- the HAVS role: an object-order
  projected-tetrahedra renderer whose cost is dominated by a visibility sort
  plus per-tet splatting, so run time correlates strongly with data size (the
  trend the paper observes for HAVS).
* :class:`ConnectivityRayCaster` -- the Bunyk role: an image-order ray caster
  over the tetrahedra that marches each ray in fixed steps and locates the
  containing cell with a uniform-grid locator built in a pre-processing step
  (the analogue of Bunyk's face-connectivity pre-process).
* :class:`VisItStyleSampler` -- the VisIt role: a sampling renderer that
  "rasterizes" cells into a full sample buffer in one pass without early ray
  termination, then composites.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.aabb import ray_box_intervals
from repro.geometry.mesh import UnstructuredTetMesh
from repro.geometry.transforms import Camera
from repro.rendering.framebuffer import Framebuffer
from repro.rendering.raytracer.bvh import build_bvh
from repro.rendering.raytracer.traversal import closest_hit
from repro.rendering.result import ObservedFeatures, RenderResult
from repro.rendering.scene import Scene
from repro.rendering.volume.transfer_function import TransferFunction
from repro.rendering.volume.unstructured import UnstructuredVolumeConfig, UnstructuredVolumeRenderer
from repro.util.packing import chunk_ranges, segment_local_indices
from repro.util.timing import Timer

__all__ = [
    "SpecializedRayTracer",
    "ProjectedTetrahedraRenderer",
    "ConnectivityRayCaster",
    "VisItStyleSampler",
]


@dataclass
class SpecializedRayTracer:
    """Embree / OptiX-style specialised intersector (WORKLOAD1 comparisons)."""

    scene: Scene
    leaf_size: int = 8
    _bvh=None

    def __post_init__(self) -> None:
        self._bvh = None
        self.build_seconds = 0.0

    def build(self) -> None:
        """Build (once) the high-quality SAH BVH."""
        if self._bvh is None:
            with Timer() as timer:
                self._bvh = build_bvh(self.scene.mesh, leaf_size=self.leaf_size, method="sah")
            self.build_seconds = timer.elapsed

    def trace(self, camera: Camera) -> tuple[int, float]:
        """Trace one primary ray per pixel; returns ``(rays, seconds)``.

        Only the intersection work is timed, matching the WORKLOAD1
        methodology ("this only measures intersection time").
        """
        self.build()
        pixel_ids = np.arange(camera.width * camera.height, dtype=np.int64)
        origins, directions = camera.generate_rays(pixel_ids)
        with Timer() as timer:
            closest_hit(self._bvh, self.scene.mesh, origins, directions)
        return len(pixel_ids), timer.elapsed

    def rays_per_second(self, camera: Camera) -> float:
        """Primary-ray throughput for one frame."""
        rays, seconds = self.trace(camera)
        return rays / max(seconds, 1e-12)


@dataclass
class ProjectedTetrahedraRenderer:
    """HAVS-style projected-tetrahedra volume renderer.

    Tets are sorted back to front by view depth and splatted onto the image;
    each splat composites the cell's mean scalar with an opacity scaled by the
    cell's depth extent.  Compared with the sampling renderer, cost follows
    the number of cells far more than the number of pixels -- the behaviour
    the paper attributes to HAVS.
    """

    mesh: UnstructuredTetMesh
    field_name: str
    transfer_function: TransferFunction | None = None
    pair_chunk: int = 4_000_000

    def __post_init__(self) -> None:
        if self.transfer_function is None:
            values = np.asarray(self.mesh.point_fields[self.field_name])
            self.transfer_function = TransferFunction(
                scalar_range=(float(values.min()), float(values.max())),
                unit_distance=max(self.mesh.bounds.diagonal / 100.0, 1e-12),
            )

    def render(self, camera: Camera) -> RenderResult:
        phases: dict[str, float] = {}
        framebuffer = Framebuffer(camera.width, camera.height)
        features = ObservedFeatures(objects=self.mesh.num_cells)
        width, height = camera.width, camera.height

        with Timer() as timer:
            points = self.mesh.points()
            screen, w = camera.world_to_screen(points)
            depth = camera.depth_along_view(points)
            corner = self.mesh.connectivity
            scalars = np.asarray(self.mesh.point_fields[self.field_name], dtype=np.float64)
            cell_scalar = scalars[corner].mean(axis=1)
            cell_depth = depth[corner].mean(axis=1)
            cell_extent = depth[corner].max(axis=1) - depth[corner].min(axis=1)
            order = np.argsort(-cell_depth, kind="stable")  # back to front
        phases["sort"] = timer.elapsed

        with Timer() as timer:
            tet_xy = screen[corner][..., :2]
            lo = np.floor(tet_xy.min(axis=1)).astype(np.int64)
            hi = np.ceil(tet_xy.max(axis=1)).astype(np.int64)
            lo[:, 0] = np.clip(lo[:, 0], 0, width - 1)
            lo[:, 1] = np.clip(lo[:, 1], 0, height - 1)
            hi[:, 0] = np.clip(hi[:, 0], 0, width)
            hi[:, 1] = np.clip(hi[:, 1], 0, height)
            box_w = np.maximum(hi[:, 0] - lo[:, 0], 1)
            box_h = np.maximum(hi[:, 1] - lo[:, 1], 1)
            in_front = np.all(w[corner] > 0.0, axis=1)
            footprint = box_w * box_h * in_front
            accum_rgb = np.zeros((width * height, 3))
            accum_alpha = np.zeros(width * height)
            ordered = order[footprint[order] > 0]
            tf = self.transfer_function
            rgb_all, alpha_all = tf.sample(cell_scalar, step_length=None)
            for start, end in chunk_ranges(footprint[ordered], self.pair_chunk):
                chunk = ordered[start:end]
                counts = footprint[chunk]
                tet_of_pair = np.repeat(np.arange(len(chunk)), counts)
                local = segment_local_indices(counts)
                w_rep = np.repeat(box_w[chunk], counts)
                px = lo[chunk][tet_of_pair, 0] + local % w_rep
                py = lo[chunk][tet_of_pair, 1] + local // w_rep
                pixel = py * width + px
                tids = chunk[tet_of_pair]
                alpha = 1.0 - np.power(
                    1.0 - np.clip(alpha_all[tids], 0.0, 0.999),
                    np.maximum(cell_extent[tids], 1e-6) / max(self.mesh.bounds.diagonal / 100.0, 1e-12),
                )
                rgb = rgb_all[tids]
                # Back-to-front OVER accumulation (scatter with last-write wins per
                # chunk is acceptable because cells arrive depth-sorted).
                accum_rgb[pixel] = alpha[:, None] * rgb + (1.0 - alpha[:, None]) * accum_rgb[pixel]
                accum_alpha[pixel] = alpha + (1.0 - alpha) * accum_alpha[pixel]
        phases["rasterize"] = timer.elapsed

        features.active_pixels = int(np.count_nonzero(accum_alpha > 0.0))
        written = np.flatnonzero(accum_alpha > 0.0)
        rgba = np.concatenate([accum_rgb, accum_alpha[:, None]], axis=1)
        # Covered pixels follow the shared depth convention (nearest data
        # depth, as the sampling volume renderer reports); misses stay inf.
        # Only cells actually splatted count -- behind-camera vertices must
        # not drag the layer depth negative.
        nearest = float(cell_depth[ordered].min()) if len(ordered) else np.inf
        framebuffer.write_pixels(written, rgba[written], np.full(len(written), max(nearest, 0.0)))
        return RenderResult(framebuffer, phases, features, technique="havs_proxy")

    def visibility_depth(self, camera: Camera) -> float:
        """Distance from the camera to the mesh center (for visibility ordering)."""
        return camera.visibility_distance(self.mesh.bounds)


@dataclass
class ConnectivityRayCaster:
    """Bunyk-style image-order unstructured ray caster with a cell locator.

    A pre-processing step bins tetrahedra into a coarse uniform grid (the
    stand-in for Bunyk's serial face-connectivity construction, which the
    paper notes took tens of minutes at scale and is excluded from timings).
    Rendering then marches every ray in fixed steps, looks up candidate cells
    from the locator, and interpolates the scalar of the first containing
    cell at each step.
    """

    mesh: UnstructuredTetMesh
    field_name: str
    transfer_function: TransferFunction | None = None
    locator_resolution: int = 24
    samples_in_depth: int = 120

    def __post_init__(self) -> None:
        if self.transfer_function is None:
            values = np.asarray(self.mesh.point_fields[self.field_name])
            self.transfer_function = TransferFunction(
                scalar_range=(float(values.min()), float(values.max())),
                unit_distance=max(self.mesh.bounds.diagonal / 100.0, 1e-12),
            )
        self._locator = None
        self.preprocess_seconds = 0.0

    # -- pre-processing -------------------------------------------------------------
    def preprocess(self) -> None:
        """Build the uniform-grid cell locator (timed separately, as in the paper)."""
        if self._locator is not None:
            return
        with Timer() as timer:
            bounds = self.mesh.bounds
            res = self.locator_resolution
            centers = self.mesh.cell_centers()
            extent = np.maximum(bounds.extent, 1e-12)
            bin_of = np.clip(((centers - bounds.low) / extent * res).astype(np.int64), 0, res - 1)
            flat = bin_of[:, 0] + res * (bin_of[:, 1] + res * bin_of[:, 2])
            order = np.argsort(flat, kind="stable")
            sorted_bins = flat[order]
            starts = np.searchsorted(sorted_bins, np.arange(res**3))
            ends = np.searchsorted(sorted_bins, np.arange(res**3), side="right")
            self._locator = (order, starts, ends, res)
        self.preprocess_seconds = timer.elapsed

    def render(self, camera: Camera) -> RenderResult:
        self.preprocess()
        phases: dict[str, float] = {}
        framebuffer = Framebuffer(camera.width, camera.height)
        features = ObservedFeatures(objects=self.mesh.num_cells)
        order, starts, ends, res = self._locator
        bounds = self.mesh.bounds
        extent = np.maximum(bounds.extent, 1e-12)
        cell_scalar = np.asarray(self.mesh.point_fields[self.field_name])[self.mesh.connectivity].mean(axis=1)
        tf = self.transfer_function

        with Timer() as timer:
            pixel_ids = np.arange(camera.width * camera.height, dtype=np.int64)
            origins, directions = camera.generate_rays(pixel_ids)
            near, far = ray_box_intervals(origins, directions, bounds.low, bounds.high)
            near = np.maximum(near, 0.0)
            active = far > near
        phases["ray_setup"] = timer.elapsed

        with Timer() as timer:
            active_ids = np.flatnonzero(active)
            step = bounds.diagonal / self.samples_in_depth
            accum_rgb = np.zeros((len(active_ids), 3))
            accum_alpha = np.zeros(len(active_ids))
            o = origins[active_ids]
            d = directions[active_ids]
            n_steps = int(np.ceil((far[active_ids] - near[active_ids]).max() / step)) if len(active_ids) else 0
            for index in range(n_steps):
                t = near[active_ids] + (index + 0.5) * step
                inside_ray = t < far[active_ids]
                if not np.any(inside_ray):
                    break
                position = o + t[:, None] * d
                bin_of = np.clip(((position - bounds.low) / extent * res).astype(np.int64), 0, res - 1)
                flat = bin_of[:, 0] + res * (bin_of[:, 1] + res * bin_of[:, 2])
                # Use the first cell binned in the sample's locator bucket as the
                # containing-cell approximation (cell-average scalar).
                has_cell = (ends[flat] > starts[flat]) & inside_ray
                scalar = np.zeros(len(active_ids))
                cells = order[starts[flat[has_cell]]]
                scalar[has_cell] = cell_scalar[cells]
                rgb, alpha = tf.sample(scalar, step_length=step)
                alpha = np.where(has_cell, alpha, 0.0)
                weight = (1.0 - accum_alpha) * alpha
                accum_rgb += weight[:, None] * rgb
                accum_alpha += weight
        phases["march"] = timer.elapsed

        features.active_pixels = int(np.count_nonzero(accum_alpha > 0.0))
        features.samples_per_ray = float(n_steps)
        rgba = np.concatenate([accum_rgb, accum_alpha[:, None]], axis=1)
        covered = accum_alpha > 0.0
        written = active_ids[covered]
        # Covered pixels report their ray's entry distance (the shared depth
        # convention); misses stay inf.
        framebuffer.write_pixels(written, rgba[covered], near[written])
        return RenderResult(framebuffer, phases, features, technique="bunyk_proxy")

    def visibility_depth(self, camera: Camera) -> float:
        """Distance from the camera to the mesh center (for visibility ordering)."""
        return camera.visibility_distance(self.mesh.bounds)


@dataclass
class VisItStyleSampler:
    """VisIt-style sampling volume renderer: single pass, no early termination.

    Reuses the unstructured sampling machinery but always runs a single pass
    with early termination disabled, reproducing the structural differences
    the paper describes between its renderer and VisIt's (Table 9 analysis).
    """

    mesh: UnstructuredTetMesh
    field_name: str
    samples_in_depth: int = 200

    def render(self, camera: Camera) -> RenderResult:
        renderer = UnstructuredVolumeRenderer(
            self.mesh,
            self.field_name,
            config=UnstructuredVolumeConfig(
                samples_in_depth=self.samples_in_depth,
                num_passes=1,
                early_termination_alpha=1.0,
            ),
        )
        result = renderer.render(camera)
        result.technique = "visit_proxy"
        return result

    def visibility_depth(self, camera: Camera) -> float:
        """Distance from the camera to the mesh center (for visibility ordering)."""
        return camera.visibility_distance(self.mesh.bounds)
