"""The breadth-first, data-parallel ray-tracing pipeline (Chapter II).

The renderer processes all rays of a generation together through a fixed
sequence of pipeline stages built from data-parallel primitives:

1. **Primary ray generation** (map) -- one ray per pixel (or four with
   super-sampling), ordered along a Morton curve of the framebuffer.
2. **Traversal and intersection** (map) -- BVH traversal and Moller-Trumbore
   intersection, the "if-if" structure of Aila and Laine.
3. **Stream compaction** (reduce/scan/gather, optional) -- drop rays that
   missed all geometry before the more expensive secondary stages.
4. **Ambient occlusion** (scatter + map) -- a user-defined number of random
   hemisphere rays per hit with a short maximum distance.
5. **Shadows** (map) -- one visibility ray per hit per light.
6. **Shading and accumulation** (map / gather) -- Blinn-Phong plus color-table
   lookup, accumulated to the framebuffer; super-samples are averaged by a
   gather (anti-aliasing).

The three study workloads select progressively more of these stages:

* ``Workload.INTERSECTION_ONLY`` (WORKLOAD1) -- stages 1-2, the Mrays/s
  benchmark configuration.
* ``Workload.SHADING`` (WORKLOAD2) -- stages 1-2 plus direct shading, the
  rasterization-equivalent scientific-visualization configuration.
* ``Workload.FULL`` (WORKLOAD3) -- everything, including four-sample ambient
  occlusion, shadows, anti-aliasing, and stream compaction.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.dpp.instrument import InstrumentationScope
from repro.dpp.primitives import map_field, stream_compact
from repro.geometry.transforms import Camera
from repro.rendering.framebuffer import Framebuffer
from repro.rendering.raytracer.bvh import BVH, DEFAULT_LEAF_SIZE, build_bvh
from repro.rendering.raytracer.shading import (
    blinn_phong,
    hemisphere_samples,
    interpolate_normals,
    interpolate_scalars,
    occlusion_to_ambient,
)
from repro.rendering.raytracer.traversal import any_hit, closest_hit
from repro.rendering.rays import RayEmitter
from repro.rendering.result import ObservedFeatures, RenderResult
from repro.rendering.scene import Scene
from repro.util.rng import default_rng
from repro.util.timing import Timer

__all__ = ["Workload", "RayTracerConfig", "RayTracer"]


class Workload(enum.Enum):
    """The three ray-tracing workloads of the study (Section 2.5)."""

    INTERSECTION_ONLY = 1
    SHADING = 2
    FULL = 3


@dataclass
class RayTracerConfig:
    """Tunable parameters of the ray tracer.

    Attributes
    ----------
    workload:
        Which study workload to execute.
    ao_samples:
        Hemisphere samples per hit for ambient occlusion (WORKLOAD3).
    ao_distance_fraction:
        AO ray maximum distance as a fraction of the scene diagonal.
    supersample:
        Rays per pixel; 4 enables the study's anti-aliasing.
    compaction:
        Enable stream compaction of dead rays before secondary stages.
    bvh_method / leaf_size:
        Acceleration structure build options.
    reflections:
        Optional single-bounce specular reflections (off in all study
        workloads; provided as the paper's algorithm supports them).
    ray_dtype:
        Floating-point dtype of the traversal engine's mutable ray state:
        ``"float64"`` (default, bit-identical hit selection to the brute-force
        reference) or ``"float32"`` (halves frontier memory traffic at reduced
        intersection precision).
    seed:
        RNG seed for the AO sample directions.
    """

    workload: Workload = Workload.SHADING
    ao_samples: int = 4
    ao_distance_fraction: float = 0.05
    supersample: int = 1
    compaction: bool = False
    bvh_method: str = "lbvh"
    leaf_size: int = DEFAULT_LEAF_SIZE
    reflections: bool = False
    reflection_attenuation: float = 0.3
    ray_dtype: str = "float64"
    seed: int | None = None

    def __post_init__(self) -> None:
        if isinstance(self.workload, int):
            self.workload = Workload(self.workload)
        if self.supersample not in (1, 4):
            raise ValueError("supersample must be 1 or 4")
        if self.ao_samples < 1:
            raise ValueError("ao_samples must be positive")
        if self.ray_dtype not in ("float32", "float64"):
            raise ValueError("ray_dtype must be 'float32' or 'float64'")

    @property
    def ray_state_dtype(self) -> np.dtype:
        """The configured traversal dtype as a numpy dtype."""
        return np.dtype(self.ray_dtype)


@dataclass
class RayTracer:
    """Data-parallel ray tracer over a triangle :class:`~repro.rendering.scene.Scene`.

    The BVH is built lazily on first use and cached, so repeated renders of
    the same scene amortise the build exactly as the repeated-rendering use
    cases of Section 5.9 assume.
    """

    scene: Scene
    config: RayTracerConfig = field(default_factory=RayTracerConfig)
    _bvh: BVH | None = None
    _bvh_seconds: float = 0.0

    # -- acceleration structure ---------------------------------------------------
    def build_acceleration_structure(self, force: bool = False) -> BVH:
        """Build (or return the cached) BVH, recording its build time."""
        if self._bvh is None or force:
            with Timer() as timer:
                self._bvh = build_bvh(
                    self.scene.mesh, leaf_size=self.config.leaf_size, method=self.config.bvh_method
                )
            self._bvh_seconds = timer.elapsed
        return self._bvh

    # -- ray generation --------------------------------------------------------------
    def _generate_rays(self, camera: Camera) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Primary rays in Morton order via the shared :class:`RayEmitter`."""
        emitter = RayEmitter(camera, supersample=self.config.supersample, morton_order=True)
        return emitter.emit()

    def visibility_depth(self, camera: Camera) -> float:
        """Distance from the camera to the scene center (for visibility ordering)."""
        return camera.visibility_distance(self.scene.mesh.bounds)

    # -- main entry point ---------------------------------------------------------------
    def render(self, camera: Camera) -> RenderResult:
        """Render the scene from ``camera`` and return the image plus measurements."""
        config = self.config
        phases: dict[str, float] = {}
        mesh = self.scene.mesh

        with InstrumentationScope("raytrace.bvh_build"):
            bvh = self.build_acceleration_structure()
        phases["bvh_build"] = self._bvh_seconds

        with Timer() as timer, InstrumentationScope("raytrace.ray_setup"):
            pixel_ids, origins, directions = self._generate_rays(camera)
        phases["ray_setup"] = timer.elapsed

        with Timer() as timer, InstrumentationScope("raytrace.trace"):
            hits = closest_hit(bvh, mesh, origins, directions, dtype=config.ray_state_dtype)
        phases["trace"] = timer.elapsed

        framebuffer = Framebuffer(camera.width, camera.height)
        features = ObservedFeatures(objects=mesh.num_triangles)

        hit_mask = hits.hit_mask
        features.active_pixels = int(len(np.unique(pixel_ids[hit_mask])))

        if config.workload is Workload.INTERSECTION_ONLY:
            # The Mrays/s benchmark writes only the hit distance as grayscale.
            self._write_depth_image(framebuffer, camera, pixel_ids, hits)
            return RenderResult(framebuffer, phases, features, technique="raytrace")

        # Optionally compact away rays that missed everything before shading.
        if config.compaction or config.workload is Workload.FULL:
            with Timer() as timer, InstrumentationScope("raytrace.compaction"):
                _, (pixel_ids, origins, directions, tri, t, u, v) = stream_compact(
                    hit_mask,
                    pixel_ids,
                    origins,
                    directions,
                    hits.triangle,
                    hits.t,
                    hits.u,
                    hits.v,
                )
            phases["compaction"] = timer.elapsed
        else:
            keep = hit_mask
            pixel_ids, origins, directions = pixel_ids[keep], origins[keep], directions[keep]
            tri, t, u, v = hits.triangle[keep], hits.t[keep], hits.u[keep], hits.v[keep]

        if len(tri) == 0:
            return RenderResult(framebuffer, phases, features, technique="raytrace")

        with Timer() as timer, InstrumentationScope("raytrace.shade"):
            points = origins + t[:, None] * directions
            normals = map_field(lambda tr, uu, vv: interpolate_normals(self.scene, tr, uu, vv), tri, u, v)
            scalars = interpolate_scalars(self.scene, tri, u, v)
            vmin, vmax = self.scene.scalar_range or (None, None)
            base_colors = self.scene.color_table.map_scalars(scalars, vmin, vmax)
            view_dirs = -directions
        phases["shade_setup"] = timer.elapsed

        ambient = None
        visibility = None
        if config.workload is Workload.FULL:
            ambient = self._ambient_occlusion(bvh, points, normals, phases)
            visibility = self._shadows(bvh, points, phases)

        with Timer() as timer, InstrumentationScope("raytrace.shade"):
            shaded = map_field(
                lambda p, n, vd, bc: blinn_phong(self.scene, p, n, vd, bc, visibility, ambient),
                points,
                normals,
                view_dirs,
                base_colors,
            )
            if config.reflections:
                shaded = self._add_reflections(bvh, points, directions, normals, shaded, phases)
        phases["shade"] = timer.elapsed

        with Timer() as timer, InstrumentationScope("raytrace.accumulate"):
            self._accumulate(framebuffer, camera, pixel_ids, shaded, t)
        phases["accumulate"] = timer.elapsed
        return RenderResult(framebuffer, phases, features, technique="raytrace")

    # -- secondary ray stages ---------------------------------------------------------
    def _ambient_occlusion(
        self, bvh: BVH, points: np.ndarray, normals: np.ndarray, phases: dict[str, float]
    ) -> np.ndarray:
        """Trace hemispheric occlusion rays and return per-hit ambient factors."""
        config = self.config
        with Timer() as timer, InstrumentationScope("raytrace.ambient_occlusion"):
            rng = default_rng(config.seed, "raytrace-ao")
            sample_dirs = hemisphere_samples(normals, config.ao_samples, rng)
            sample_origins = np.repeat(points, config.ao_samples, axis=0)
            # Offset origins slightly along the normal to avoid self-hits.
            sample_origins = sample_origins + 1e-4 * np.repeat(normals, config.ao_samples, axis=0)
            max_distance = config.ao_distance_fraction * max(self.scene.mesh.bounds.diagonal, 1e-12)
            occluded = any_hit(
                bvh,
                self.scene.mesh,
                sample_origins,
                sample_dirs,
                t_max=max_distance,
                dtype=config.ray_state_dtype,
            )
            ambient = occlusion_to_ambient(occluded, config.ao_samples)
        phases["ambient_occlusion"] = timer.elapsed
        return ambient

    def _shadows(self, bvh: BVH, points: np.ndarray, phases: dict[str, float]) -> np.ndarray:
        """Trace shadow rays toward every light; returns (n_hits, n_lights) visibility.

        All lights' visibility rays are traced through a single batched
        ``any_hit`` query with a per-ray distance limit, so the traversal
        engine sees one wide frontier instead of one narrow query per light.
        """
        with Timer() as timer, InstrumentationScope("raytrace.shadows"):
            n_points = len(points)
            light_positions = np.stack([light.position for light in self.scene.lights])
            to_light = light_positions[None, :, :] - points[:, None, :]  # (n, lights, 3)
            distance = np.linalg.norm(to_light, axis=2)
            distance[distance == 0.0] = 1.0
            directions = to_light / distance[:, :, None]
            origins = points[:, None, :] + 1e-4 * directions
            blocked = any_hit(
                bvh,
                self.scene.mesh,
                origins.reshape(-1, 3),
                directions.reshape(-1, 3),
                t_max=(distance - 1e-3).ravel(),
                dtype=self.config.ray_state_dtype,
            )
            visibility = 1.0 - blocked.reshape(n_points, len(self.scene.lights)).astype(np.float64)
        phases["shadows"] = timer.elapsed
        return visibility

    def _add_reflections(
        self,
        bvh: BVH,
        points: np.ndarray,
        directions: np.ndarray,
        normals: np.ndarray,
        shaded: np.ndarray,
        phases: dict[str, float],
    ) -> np.ndarray:
        """Single-bounce specular reflections blended into the shaded color."""
        with Timer() as timer, InstrumentationScope("raytrace.reflections"):
            reflect_dirs = directions - 2.0 * np.einsum("ij,ij->i", directions, normals)[:, None] * normals
            origins = points + 1e-4 * reflect_dirs
            bounce = closest_hit(
                bvh, self.scene.mesh, origins, reflect_dirs, dtype=self.config.ray_state_dtype
            )
            mask = bounce.hit_mask
            if np.any(mask):
                scalars = interpolate_scalars(self.scene, bounce.triangle[mask], bounce.u[mask], bounce.v[mask])
                vmin, vmax = self.scene.scalar_range or (None, None)
                bounce_colors = self.scene.color_table.map_scalars(scalars, vmin, vmax)
                weight = self.config.reflection_attenuation
                shaded = shaded.copy()
                shaded[mask] = np.clip((1.0 - weight) * shaded[mask] + weight * bounce_colors, 0.0, 1.0)
        phases["reflections"] = timer.elapsed
        return shaded

    # -- framebuffer writes --------------------------------------------------------------
    def _accumulate(
        self,
        framebuffer: Framebuffer,
        camera: Camera,
        pixel_ids: np.ndarray,
        colors: np.ndarray,
        distances: np.ndarray,
    ) -> None:
        """Average super-samples per pixel and write color + depth."""
        order = np.argsort(pixel_ids, kind="stable")
        sorted_pixels = pixel_ids[order]
        sorted_colors = colors[order]
        sorted_depth = distances[order]
        unique_pixels, starts, counts = np.unique(sorted_pixels, return_index=True, return_counts=True)
        summed = np.add.reduceat(sorted_colors, starts, axis=0)
        averaged = summed / counts[:, None]
        depth = np.minimum.reduceat(sorted_depth, starts)
        rgba = np.concatenate([averaged, np.ones((len(averaged), 1))], axis=1)
        framebuffer.write_pixels(unique_pixels, rgba, depth)

    def _write_depth_image(
        self, framebuffer: Framebuffer, camera: Camera, pixel_ids: np.ndarray, hits
    ) -> None:
        """Grayscale nearest-hit distance image for WORKLOAD1."""
        mask = hits.hit_mask
        if not np.any(mask):
            return
        t = hits.t[mask]
        normalized = 1.0 - (t - t.min()) / max(t.max() - t.min(), 1e-12)
        rgba = np.column_stack([normalized, normalized, normalized, np.ones_like(normalized)])
        # For super-sampled renders keep the first sample per pixel.
        pixels = pixel_ids[mask]
        unique_pixels, first = np.unique(pixels, return_index=True)
        framebuffer.write_pixels(unique_pixels, rgba[first], t[first])
