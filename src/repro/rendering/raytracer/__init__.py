"""Data-parallel ray tracer (Chapter II) and its acceleration structures.

The ray tracer is a breadth-first pipeline composed of data-parallel
primitives: primary-ray generation (map), BVH traversal and triangle
intersection (map), optional stream compaction (reduce / scan / gather),
ambient occlusion (scatter + map), shadow tests (map), shading (map), and
color accumulation (map / gather).

Public entry points:

* :class:`repro.rendering.raytracer.bvh.LinearBVH` and
  :class:`~repro.rendering.raytracer.bvh.build_bvh` -- acceleration
  structures (LBVH in the spirit of Karras 2012; an SAH builder is provided
  for the specialised-baseline comparisons).
* :class:`repro.rendering.raytracer.pipeline.RayTracer` -- the renderer,
  supporting the three study workloads (intersection only, shading, full
  effects).
"""

from repro.rendering.raytracer.bvh import BVH, build_bvh
from repro.rendering.raytracer.pipeline import RayTracer, RayTracerConfig, Workload

__all__ = ["BVH", "RayTracer", "RayTracerConfig", "Workload", "build_bvh"]
