"""Shading for the ray tracer: Blinn-Phong, ambient occlusion, shadows.

WORKLOAD2 of the study shades each hit with the classic Blinn-Phong model
using the interpolated surface normal and the color-mapped surface scalar;
WORKLOAD3 adds four-sample ambient occlusion and point-light shadows.  The
functions here are the map functors used by those pipeline stages.
"""

from __future__ import annotations

import numpy as np

from repro.rendering.scene import Scene
from repro.util.rng import default_rng

__all__ = [
    "interpolate_normals",
    "interpolate_scalars",
    "blinn_phong",
    "hemisphere_samples",
    "occlusion_to_ambient",
]


def interpolate_normals(scene: Scene, triangles: np.ndarray, u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Barycentric interpolation of vertex normals at hit points.

    ``triangles`` indexes the scene mesh; ``u``/``v`` are the barycentric
    coordinates toward the second and third triangle corner respectively.
    """
    mesh = scene.mesh
    vertex_normals = mesh.vertex_normals()
    corner_ids = mesh.triangles[triangles]
    w = 1.0 - u - v
    normals = (
        w[:, None] * vertex_normals[corner_ids[:, 0]]
        + u[:, None] * vertex_normals[corner_ids[:, 1]]
        + v[:, None] * vertex_normals[corner_ids[:, 2]]
    )
    length = np.linalg.norm(normals, axis=1, keepdims=True)
    length[length == 0.0] = 1.0
    return normals / length


def interpolate_scalars(scene: Scene, triangles: np.ndarray, u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Barycentric interpolation of the per-vertex surface scalar (0.5 when absent)."""
    mesh = scene.mesh
    if mesh.scalars is None:
        return np.full(len(triangles), 0.5)
    corner_ids = mesh.triangles[triangles]
    w = 1.0 - u - v
    return (
        w * mesh.scalars[corner_ids[:, 0]]
        + u * mesh.scalars[corner_ids[:, 1]]
        + v * mesh.scalars[corner_ids[:, 2]]
    )


def blinn_phong(
    scene: Scene,
    points: np.ndarray,
    normals: np.ndarray,
    view_directions: np.ndarray,
    base_colors: np.ndarray,
    light_visibility: np.ndarray | None = None,
    ambient_factors: np.ndarray | None = None,
) -> np.ndarray:
    """Blinn-Phong shading of hit points.

    Parameters
    ----------
    scene:
        Provides lights and material coefficients.
    points, normals, view_directions:
        Per-hit position, unit surface normal, and unit direction from the
        hit point toward the camera.
    base_colors:
        Per-hit RGB albedo (typically from the color table).
    light_visibility:
        Optional ``(n_hits, n_lights)`` visibility factors in [0, 1]; use the
        shadow-ray results here.  Defaults to fully visible.
    ambient_factors:
        Optional per-hit ambient attenuation in [0, 1]; use the ambient-
        occlusion results here.  Defaults to 1.

    Returns
    -------
    numpy.ndarray
        ``(n_hits, 3)`` shaded RGB colors clamped to [0, 1].
    """
    material = scene.material
    n_hits = len(points)
    if ambient_factors is None:
        ambient_factors = np.ones(n_hits)
    if light_visibility is None:
        light_visibility = np.ones((n_hits, len(scene.lights)))

    # Surfaces in scientific visualization are shaded double-sided: flip
    # normals that face away from the viewer.
    facing = np.einsum("ij,ij->i", normals, view_directions)
    normals = np.where(facing[:, None] < 0.0, -normals, normals)

    color = material.ambient * ambient_factors[:, None] * base_colors
    for light_index, light in enumerate(scene.lights):
        to_light = light.position[None, :] - points
        distance = np.linalg.norm(to_light, axis=1, keepdims=True)
        distance[distance == 0.0] = 1.0
        light_dir = to_light / distance
        n_dot_l = np.clip(np.einsum("ij,ij->i", normals, light_dir), 0.0, 1.0)
        half_vector = light_dir + view_directions
        half_norm = np.linalg.norm(half_vector, axis=1, keepdims=True)
        half_norm[half_norm == 0.0] = 1.0
        half_vector = half_vector / half_norm
        n_dot_h = np.clip(np.einsum("ij,ij->i", normals, half_vector), 0.0, 1.0)
        visibility = light_visibility[:, light_index] * light.intensity
        diffuse = material.diffuse * n_dot_l * visibility
        specular = material.specular * np.power(n_dot_h, material.shininess) * visibility
        color = color + diffuse[:, None] * base_colors + specular[:, None]
    return np.clip(color, 0.0, 1.0)


def hemisphere_samples(
    normals: np.ndarray, samples_per_point: int, rng: np.random.Generator | None = None
) -> np.ndarray:
    """Cosine-ish random directions about each normal for ambient occlusion.

    Returns an array of shape ``(n_points * samples_per_point, 3)`` where the
    block of ``samples_per_point`` consecutive rows belongs to one input
    point -- matching the scatter layout of the paper's AO stage ("scatter
    them into an array n times larger than the input array").
    """
    if samples_per_point < 1:
        raise ValueError("samples_per_point must be positive")
    rng = rng if rng is not None else default_rng(None, "ao")
    n_points = len(normals)
    raw = rng.standard_normal((n_points, samples_per_point, 3))
    raw /= np.linalg.norm(raw, axis=2, keepdims=True)
    # Flip samples into the hemisphere of the normal.
    alignment = np.einsum("ijk,ik->ij", raw, normals)
    raw = np.where(alignment[..., None] < 0.0, -raw, raw)
    # Bias slightly toward the normal to avoid grazing self-intersections.
    biased = raw + 0.5 * normals[:, None, :]
    biased /= np.linalg.norm(biased, axis=2, keepdims=True)
    return biased.reshape(n_points * samples_per_point, 3)


def occlusion_to_ambient(occluded: np.ndarray, samples_per_point: int) -> np.ndarray:
    """Convert per-sample occlusion flags into a per-point ambient factor.

    ``occluded`` has one flag per AO sample ray (grouped per point); the
    ambient factor is the fraction of unoccluded samples.
    """
    occluded = np.asarray(occluded, dtype=np.float64).reshape(-1, samples_per_point)
    return 1.0 - occluded.mean(axis=1)
