"""Vectorized ray-AABB tests, ray-triangle intersection, and BVH traversal.

Traversal follows the spirit of the "if-if" algorithm of Aila and Laine that
the paper's ray tracer adapts, executed as a kernel on the shared
**compacted-frontier engine** (:mod:`repro.dpp.frontier`):

* All mutable ray state -- origins, directions, reciprocal directions,
  per-ray traversal stacks, and best-hit records -- is gathered once into a
  contiguous structure-of-arrays frontier (:class:`repro.dpp.FrontierLanes`,
  one flat array per vector component).  The SIMT loop runs entirely on the
  frontier, so every vectorized step touches only resident rays instead of
  fancy-indexing full-width ray arrays.
* Traversal is **ordered**: popping an internal node tests both child boxes
  componentwise, computes their entry distances, and pushes the far child
  below the near child; pushes -- and pops, via the entry distance carried on
  the stack -- whose entry already exceeds the ray's closest hit are culled.
  Leaf children are intersected immediately at discovery instead of being
  pushed, so the stack holds internal nodes only and the loop advances one
  *internal* node per ray per iteration.
* Leaf intersection is **batched**: every ``(ray, triangle)`` candidate pair
  of an iteration is expanded with ``np.repeat`` + segment-local indices (the
  same idiom as the volume renderer's ``pair_chunk`` sampler) and tested in a
  single Moller-Trumbore evaluation; each ray's winner is selected with the
  device-routed :func:`repro.dpp.primitives.segmented_argmin`.
* Retirement, the periodic **re-compaction** of the frontier, and the
  scatter of retiring rays' results back to full-width output arrays belong
  to :class:`repro.dpp.FrontierEngine` -- the kernel only reports which lanes
  emptied their stacks.  The engine routes that traffic through
  :mod:`repro.dpp.primitives`, so the data-parallel instrumentation choke
  point (:class:`repro.dpp.instrument.OpCounters`) observes the traversal
  work just as it observes every other pipeline stage.

Two query types are provided:

* :func:`closest_hit` -- nearest intersection per ray (primary rays, shading).
* :func:`any_hit` -- boolean occlusion within a distance (shadows, ambient
  occlusion).

Both accept an optional reduced-precision ``dtype`` (``float32``) for the
mutable ray state; the default ``float64`` path selects hits identically to
:func:`brute_force_closest_hit` (both run the same componentwise
Moller-Trumbore kernel).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dpp.frontier import (
    FRONTIER_COMPACT_FRACTION,
    FRONTIER_COMPACT_MIN,
    FrontierEngine,
    FrontierLanes,
)
from repro.dpp.primitives import segmented_argmin
from repro.geometry.aabb import safe_reciprocal
from repro.geometry.triangles import TriangleMesh
from repro.rendering.raytracer.bvh import BVH

__all__ = [
    "HitRecord",
    "closest_hit",
    "any_hit",
    "ray_aabb_intersect",
    "moller_trumbore",
    "FRONTIER_COMPACT_FRACTION",
    "FRONTIER_COMPACT_MIN",
    "FRONTIER_POP_SCHEDULE",
]

#: Numerical epsilon used by the intersector to reject grazing hits.
EPSILON = 1e-9


@dataclass
class HitRecord:
    """Per-ray nearest-hit results.

    Attributes
    ----------
    triangle:
        Index of the hit triangle, or ``-1`` for a miss.
    t:
        Ray parameter of the hit (``inf`` for misses).
    u, v:
        Barycentric coordinates of the hit point within the triangle.
    nodes_visited:
        Number of BVH nodes processed per ray (internal pops plus leaves
        intersected) -- the observable behind the ``log2(O)``
        traversal-depth term of the ray-tracing model.
    """

    triangle: np.ndarray
    t: np.ndarray
    u: np.ndarray
    v: np.ndarray
    nodes_visited: np.ndarray

    @property
    def hit_mask(self) -> np.ndarray:
        """Boolean mask of rays that hit something."""
        return self.triangle >= 0

    def hit_points(self, origins: np.ndarray, directions: np.ndarray) -> np.ndarray:
        """World-space intersection points (undefined content for misses)."""
        return origins + self.t[:, None] * directions


def ray_aabb_intersect(
    origins: np.ndarray,
    inv_directions: np.ndarray,
    box_low: np.ndarray,
    box_high: np.ndarray,
    t_min: np.ndarray,
    t_max: np.ndarray,
) -> np.ndarray:
    """Slab test of rays against per-ray boxes.

    All inputs are broadcast against each other; returns a boolean mask of
    rays whose parametric interval intersects the box within ``[t_min, t_max]``.
    """
    origins = np.asarray(origins)
    inv_directions = np.asarray(inv_directions)
    box_low = np.asarray(box_low)
    box_high = np.asarray(box_high)
    hit, _ = _slab_entry(
        origins[..., 0], origins[..., 1], origins[..., 2],
        inv_directions[..., 0], inv_directions[..., 1], inv_directions[..., 2],
        box_low[..., 0], box_low[..., 1], box_low[..., 2],
        box_high[..., 0], box_high[..., 1], box_high[..., 2],
        t_min, t_max,
    )
    return hit


def _slab_entry(ox, oy, oz, ix, iy, iz, lx, ly, lz, hx, hy, hz, t_min, t_max):
    """Componentwise slab test returning ``(hit, entry)``.

    ``entry`` is the clamped parametric distance at which the ray enters the
    box.  Any triangle contained in the box is hit at ``t >= entry``, so the
    entry distance both orders near-first traversal and soundly culls
    subtrees beyond the current closest hit.  Operating on flat component
    arrays avoids axis reductions and strided temporaries in the hot loop.
    """
    with np.errstate(over="ignore"):
        t0 = (lx - ox) * ix
        t1 = (hx - ox) * ix
        near = np.minimum(t0, t1)
        far = np.maximum(t0, t1)
        t0 = (ly - oy) * iy
        t1 = (hy - oy) * iy
        near = np.maximum(near, np.minimum(t0, t1))
        far = np.minimum(far, np.maximum(t0, t1))
        t0 = (lz - oz) * iz
        t1 = (hz - oz) * iz
        near = np.maximum(near, np.minimum(t0, t1))
        far = np.minimum(far, np.maximum(t0, t1))
    hit = (near <= far) & (far >= t_min) & (near <= t_max)
    return hit, np.maximum(near, t_min)


def moller_trumbore(
    origins: np.ndarray,
    directions: np.ndarray,
    v0: np.ndarray,
    v1: np.ndarray,
    v2: np.ndarray,
    t_min: float | np.ndarray = EPSILON,
    t_max: float | np.ndarray = np.inf,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Pairwise Moller-Trumbore intersection of rays against triangles.

    ``origins``/``directions`` and the triangle corners must broadcast to a
    common leading shape.  Returns ``(hit, t, u, v)`` where ``hit`` is a
    boolean mask and ``t`` is ``inf`` where there is no hit.
    """
    origins = np.asarray(origins)
    directions = np.asarray(directions)
    v0 = np.asarray(v0)
    edge1 = np.asarray(v1) - v0
    edge2 = np.asarray(v2) - v0
    return _moller_components(
        origins[..., 0], origins[..., 1], origins[..., 2],
        directions[..., 0], directions[..., 1], directions[..., 2],
        v0[..., 0], v0[..., 1], v0[..., 2],
        edge1[..., 0], edge1[..., 1], edge1[..., 2],
        edge2[..., 0], edge2[..., 1], edge2[..., 2],
        t_min, t_max,
    )


def _moller_components(
    ox, oy, oz, dx, dy, dz,
    v0x, v0y, v0z, e1x, e1y, e1z, e2x, e2y, e2z,
    t_min, t_max,
):
    """Componentwise Moller-Trumbore kernel shared by the frontier engine and
    the brute-force reference, so both select hits from identical arithmetic."""
    pvx = dy * e2z - dz * e2y
    pvy = dz * e2x - dx * e2z
    pvz = dx * e2y - dy * e2x
    determinant = e1x * pvx + e1y * pvy + e1z * pvz
    near_parallel = np.abs(determinant) < EPSILON
    inv_det = 1.0 / np.where(near_parallel, 1.0, determinant)
    tvx = ox - v0x
    tvy = oy - v0y
    tvz = oz - v0z
    u = (tvx * pvx + tvy * pvy + tvz * pvz) * inv_det
    qvx = tvy * e1z - tvz * e1y
    qvy = tvz * e1x - tvx * e1z
    qvz = tvx * e1y - tvy * e1x
    v = (dx * qvx + dy * qvy + dz * qvz) * inv_det
    t = (e2x * qvx + e2y * qvy + e2z * qvz) * inv_det
    hit = (
        ~near_parallel
        & (u >= -EPSILON)
        & (v >= -EPSILON)
        & (u + v <= 1.0 + EPSILON)
        & (t >= t_min)
        & (t <= t_max)
    )
    t = np.where(hit, t, np.inf)
    return hit, t, u, v


#: Pops per frontier lane per loop iteration, keyed by frontier width: wide
#: frontiers take one ordered stack op per lane (best culling), narrow
#: (tail) frontiers drain several stack levels at once so the per-iteration
#: Python overhead amortizes over the few long-running rays.
FRONTIER_POP_SCHEDULE = ((16384, 1), (4096, 2), (1024, 4), (0, 8))


def _pops_for_width(width: int) -> int:
    for threshold, pops in FRONTIER_POP_SCHEDULE:
        if width > threshold:
            return pops
    return FRONTIER_POP_SCHEDULE[-1][1]


def _frontier_lanes(origins, directions, limit_t, dtype, max_stack, t_min) -> FrontierLanes:
    """Build the traversal frontier: a contiguous SoA of all mutable ray state.

    Lane liveness is encoded entirely in ``stack_tops``: a lane with an empty
    stack is retired (any-hit occlusion simply empties the stack).  ``limit``
    caches ``min(best_t, limit_t)`` and is tightened in place as hits land.
    """
    n = len(origins)
    dx = np.ascontiguousarray(directions[:, 0], dtype=dtype)
    dy = np.ascontiguousarray(directions[:, 1], dtype=dtype)
    dz = np.ascontiguousarray(directions[:, 2], dtype=dtype)
    stack_node = np.full((n, max_stack), -1, dtype=np.int32)
    stack_entry = np.zeros((n, max_stack), dtype=dtype)
    stack_node[:, 0] = 0
    stack_entry[:, 0] = t_min
    state = {
        "ox": np.ascontiguousarray(origins[:, 0], dtype=dtype),
        "oy": np.ascontiguousarray(origins[:, 1], dtype=dtype),
        "oz": np.ascontiguousarray(origins[:, 2], dtype=dtype),
        "dx": dx,
        "dy": dy,
        "dz": dz,
        "ix": safe_reciprocal(dx),
        "iy": safe_reciprocal(dy),
        "iz": safe_reciprocal(dz),
        "best_t": np.full(n, np.inf, dtype=dtype),
        "limit_t": limit_t,
        "limit": limit_t.copy(),
        "best_triangle": np.full(n, -1, dtype=np.int64),
        "best_u": np.zeros(n, dtype=dtype),
        "best_v": np.zeros(n, dtype=dtype),
        "visits": np.zeros(n, dtype=np.int64),
        "stack_node": stack_node,
        "stack_entry": stack_entry,
        "stack_tops": np.ones(n, dtype=np.int32),
    }
    return FrontierLanes(np.arange(n, dtype=np.int64), state)


class _TraversalKernel:
    """Ordered BVH traversal as a :class:`repro.dpp.FrontierKernel`.

    One engine step pops (up to ``pops``) stack entries per lane, slab-tests
    both children of every surviving internal node, pushes internal children
    far-below-near, and batch-intersects every discovered leaf.  Lanes retire
    when their stack empties.
    """

    output_fields = ("best_triangle", "best_t", "best_u", "best_v", "visits")

    def __init__(self, bvh: BVH, mesh: TriangleMesh, dtype, t_min: float, any_hit_mode: bool):
        self.tri = bvh.triangle_soa(mesh, dtype)
        self.boxes = bvh.node_boxes(dtype)
        self.left_child = bvh.left_child
        self.right_child = bvh.right_child
        self.first_primitive = bvh.first_primitive
        self.primitive_count = bvh.primitive_count
        self.primitive_order = bvh.primitive_order
        self.t_min = float(t_min)
        self.any_hit_mode = any_hit_mode
        self.max_pops = max(pops for _, pops in FRONTIER_POP_SCHEDULE)
        # Single-pop ordered DFS holds at most depth + 1 entries (a pop at
        # depth d has at most d entries below it and pushes at most 2), plus
        # slack for the multi-pop tail window.  The window expands several
        # subtrees BFS-style, so no depth-based bound holds for it in general
        # (densely overlapping geometry); the step therefore checks capacity
        # before every push round and grows the stacks on demand, with an
        # assertion backing the final bound.
        self.initial_stack = max(bvh.max_depth() + 1 + 2 * (self.max_pops - 1), 2)
        self.max_stack = self.initial_stack
        self.base = np.empty(0, dtype=np.int64)
        self.root_is_leaf = self.primitive_count[0] > 0

    def on_compact(self, lanes: FrontierLanes) -> None:
        """Rebuild the flat stack addressing for the new lane count."""
        self.max_stack = lanes["stack_node"].shape[1]
        self.base = np.arange(len(lanes), dtype=np.int64) * self.max_stack

    def _grow_stack(self, lanes: FrontierLanes, new_max: int) -> tuple[np.ndarray, np.ndarray]:
        """Widen every lane's stack to ``new_max`` entries (contents kept).

        Returns fresh flat views of the widened stacks.
        """
        n = len(lanes)
        old_node = lanes["stack_node"]
        old_entry = lanes["stack_entry"]
        old = old_node.shape[1]
        node = np.full((n, new_max), -1, dtype=np.int32)
        entry = np.zeros((n, new_max), dtype=old_entry.dtype)
        node[:, :old] = old_node
        entry[:, :old] = old_entry
        lanes["stack_node"] = node
        lanes["stack_entry"] = entry
        self.max_stack = new_max
        self.base = np.arange(n, dtype=np.int64) * new_max
        return node.reshape(-1), entry.reshape(-1)

    def _intersect_leaves(self, s: dict, slots: np.ndarray, leaf_nodes: np.ndarray) -> None:
        """Batched (ray, triangle) pair expansion + intersection for one batch
        of leaf candidates.

        ``slots`` is sorted and may repeat (one frontier slot can discover
        several leaves in one iteration); per-candidate winners are folded to
        one winner per slot by a second segmented argmin, so the best-hit
        update is race-free.  Ties on t go to the smaller triangle id,
        matching the brute-force reference's serial first-minimum sweep.
        """
        primitive_count = self.primitive_count
        tri = self.tri
        counts = primitive_count.take(leaf_nodes)
        n_candidates = len(slots)
        starts = np.zeros(n_candidates, dtype=np.int64)
        np.cumsum(counts[:-1], out=starts[1:])
        total = int(starts[-1] + counts[-1])
        candidate_of_pair = np.repeat(np.arange(n_candidates, dtype=np.int64), counts)
        local = np.arange(total, dtype=np.int64) - starts.take(candidate_of_pair)
        prims = self.primitive_order.take(
            self.first_primitive.take(leaf_nodes).take(candidate_of_pair) + local
        )
        pair_slots = slots.take(candidate_of_pair)
        _, t, u, v = _moller_components(
            s["ox"].take(pair_slots), s["oy"].take(pair_slots), s["oz"].take(pair_slots),
            s["dx"].take(pair_slots), s["dy"].take(pair_slots), s["dz"].take(pair_slots),
            tri[0].take(prims), tri[1].take(prims), tri[2].take(prims),
            tri[3].take(prims), tri[4].take(prims), tri[5].take(prims),
            tri[6].take(prims), tri[7].take(prims), tri[8].take(prims),
            self.t_min, s["limit"].take(pair_slots),
        )
        # One segmented argmin straight from pairs to slots: pairs are
        # slot-major, so slot segments are contiguous unions of candidates.
        first_of_slot = np.empty(n_candidates, dtype=bool)
        first_of_slot[0] = True
        np.not_equal(slots[1:], slots[:-1], out=first_of_slot[1:])
        slot_starts = np.flatnonzero(first_of_slot)
        unique_slots = slots.take(slot_starts)
        winner = segmented_argmin(t, starts.take(slot_starts), prims)
        winner_t = t.take(winner)
        winner_prims = prims.take(winner)
        winner_u = u.take(winner)
        winner_v = v.take(winner)
        s["visits"][unique_slots] += np.diff(np.append(slot_starts, n_candidates))
        best = s["best_t"].take(unique_slots)
        improved = winner_t < best
        improved |= (
            (winner_t == best)
            & np.isfinite(winner_t)
            & (winner_prims < s["best_triangle"].take(unique_slots))
        )
        winners = unique_slots[improved]
        improved_t = winner_t[improved]
        s["best_t"][winners] = improved_t
        s["best_triangle"][winners] = winner_prims[improved]
        s["best_u"][winners] = winner_u[improved]
        s["best_v"][winners] = winner_v[improved]
        s["limit"][winners] = np.minimum(improved_t, s["limit_t"].take(winners))
        if self.any_hit_mode:
            # Occluded rays retire immediately: an empty stack is retirement.
            s["stack_tops"][winners] = 0

    def step(self, lanes: FrontierLanes) -> np.ndarray:
        s = lanes.state
        n_resident = len(lanes)

        # Degenerate single-leaf hierarchy: intersect the root directly and
        # retire every lane in the first step.
        if self.root_is_leaf:
            all_slots = np.arange(n_resident, dtype=np.int64)
            self._intersect_leaves(s, all_slots, np.zeros(n_resident, dtype=np.int64))
            s["stack_tops"][:] = 0
            return np.ones(n_resident, dtype=bool)

        pops = _pops_for_width(n_resident)
        flat_node = s["stack_node"].reshape(-1)
        flat_entry = s["stack_entry"].reshape(-1)
        tops = s["stack_tops"]
        limit = s["limit"]

        # Pop the top `pops` stack entries of every lane at once.  Lane-major
        # raveling keeps virtual pops of one lane adjacent, ordered top
        # (DFS-next) first; exhausted levels mask off via `read < 0` (their
        # wrapped flat reads stay in bounds because read >= -max_stack).
        if pops == 1:
            read = tops - np.int32(1)
            addr = self.base + read
            nodes = flat_node.take(addr)
            entries = flat_entry.take(addr)
            consider = (read >= 0) & (entries <= limit)
            stack_tops = s["stack_tops"] = np.maximum(read, 0)
            group = np.flatnonzero(consider)
            slots = group
            if len(group) == n_resident:
                group_nodes = nodes
                s["visits"] += 1
            else:
                group_nodes = nodes.take(group)
                s["visits"][slots] += 1
        else:
            read = tops[:, None] - np.arange(1, pops + 1, dtype=np.int32)[None, :]
            addr = self.base[:, None] + read
            nodes = flat_node.take(addr)
            entries = flat_entry.take(addr)
            consider = (read >= 0) & (entries <= limit[:, None])
            stack_tops = s["stack_tops"] = np.maximum(tops - np.int32(pops), 0)
            group = np.flatnonzero(consider.ravel())
            slots = group // pops
            group_nodes = nodes.ravel().take(group)
            s["visits"] += consider.sum(axis=1)

        size = len(group)
        if size:
            boxes = self.boxes
            t_min = self.t_min
            # Lanes whose single pop all survived the cull need no gathers at
            # all -- the frontier arrays are already the group (identity).
            identity = pops == 1 and size == n_resident
            children = np.concatenate(
                [self.left_child.take(group_nodes), self.right_child.take(group_nodes)]
            )
            if identity:
                gox, goy, goz = s["ox"], s["oy"], s["oz"]
                gix, giy, giz = s["ix"], s["iy"], s["iz"]
                glimit = limit
            else:
                gox = s["ox"].take(slots)
                goy = s["oy"].take(slots)
                goz = s["oz"].take(slots)
                gix = s["ix"].take(slots)
                giy = s["iy"].take(slots)
                giz = s["iz"].take(slots)
                glimit = limit.take(slots)
            # Ray state is gathered once and used for both child slab tests.
            hit_left, t_left = _slab_entry(
                gox, goy, goz, gix, giy, giz,
                boxes[0].take(children[:size]), boxes[1].take(children[:size]),
                boxes[2].take(children[:size]),
                boxes[3].take(children[:size]), boxes[4].take(children[:size]),
                boxes[5].take(children[:size]),
                t_min, glimit,
            )
            hit_right, t_right = _slab_entry(
                gox, goy, goz, gix, giy, giz,
                boxes[0].take(children[size:]), boxes[1].take(children[size:]),
                boxes[2].take(children[size:]),
                boxes[3].take(children[size:]), boxes[4].take(children[size:]),
                boxes[5].take(children[size:]),
                t_min, glimit,
            )
            child_is_leaf = self.primitive_count.take(children) > 0
            left, right = children[:size], children[size:]
            left_is_leaf, right_is_leaf = child_is_leaf[:size], child_is_leaf[size:]

            # Internal children are pushed (far below near so the near child
            # pops next); leaf children are intersected immediately below.
            push_left = hit_left & ~left_is_leaf
            push_right = hit_right & ~right_is_leaf
            both = push_left & push_right
            pushes = np.add(push_left, push_right, dtype=np.int64)
            left_is_far = t_left > t_right
            first_is_left = push_left & (~both | left_is_far)
            first_node = np.where(first_is_left, left, right)
            first_entry = np.where(first_is_left, t_left, t_right)

            # Stack write positions: with one pop per lane, slots are unique
            # and pushes land directly at the (post-pop) stack top.  With the
            # multi-pop tail window, virtual pops of one lane are adjacent in
            # `group` with the DFS-next (top) pop first, so each pop's pushes
            # land above the pushes of all deeper pops of the same lane.
            if pops == 1:
                seg_slots = slots
                seg_pushes = pushes
                position = stack_tops if identity else stack_tops.take(slots)
            else:
                first_of_slot = np.empty(size, dtype=bool)
                first_of_slot[0] = True
                np.not_equal(slots[1:], slots[:-1], out=first_of_slot[1:])
                seg_starts = np.flatnonzero(first_of_slot)
                cumulative = np.cumsum(pushes)
                segment_of = np.cumsum(first_of_slot) - 1
                seg_last = np.append(seg_starts[1:], size) - 1
                pushed_below = cumulative.take(seg_last).take(segment_of) - cumulative
                seg_slots = slots.take(seg_starts)
                seg_pushes = np.add.reduceat(pushes, seg_starts)
                position = stack_tops.take(slots) + pushed_below

            new_seg_tops = stack_tops.take(seg_slots) + seg_pushes
            required = int(new_seg_tops.max(initial=0))
            if required > self.max_stack:
                # The multi-pop window expands several subtrees at once, so
                # depth-based sizing can be exceeded on densely overlapping
                # geometry; widen every lane's stack before writing.
                flat_node, flat_entry = self._grow_stack(lanes, required + 2 * self.max_pops)
            assert required <= self.max_stack, "traversal stack overflow"
            first_sel = np.flatnonzero(pushes)
            write = slots.take(first_sel) * self.max_stack + position.take(first_sel)
            flat_node[write] = first_node.take(first_sel)
            flat_entry[write] = first_entry.take(first_sel)
            second_sel = np.flatnonzero(both)
            if len(second_sel):
                near_node = np.where(left_is_far, right, left)
                near_entry = np.where(left_is_far, t_right, t_left)
                write = slots.take(second_sel) * self.max_stack + position.take(second_sel) + 1
                flat_node[write] = near_node.take(second_sel)
                flat_entry[write] = near_entry.take(second_sel)
            s["stack_tops"][seg_slots] = new_seg_tops

            # Leaf children: one merged slot-ordered batch per iteration.
            candidate_mask = np.empty(2 * size, dtype=bool)
            candidate_mask[0::2] = hit_left & left_is_leaf
            candidate_mask[1::2] = hit_right & right_is_leaf
            candidate_sel = np.flatnonzero(candidate_mask)
            if len(candidate_sel):
                child_pair = np.empty(2 * size, dtype=children.dtype)
                child_pair[0::2] = left
                child_pair[1::2] = right
                self._intersect_leaves(
                    s,
                    np.repeat(slots, 2).take(candidate_sel),
                    child_pair.take(candidate_sel),
                )

        # An empty stack is retirement (including any-hit occlusion); the
        # engine flushes and compacts once enough lanes have died.
        return s["stack_tops"] == 0


def _traverse(
    bvh: BVH,
    mesh: TriangleMesh,
    origins: np.ndarray,
    directions: np.ndarray,
    t_min: float,
    t_max: float | np.ndarray,
    any_hit_mode: bool,
    dtype: np.dtype | type = np.float64,
) -> HitRecord:
    """Shared frontier-engine traversal driver for closest/any-hit queries."""
    dtype = np.dtype(dtype)
    origins = np.asarray(origins)
    directions = np.asarray(directions)
    n_rays = len(origins)

    # Full-width result arrays; the engine scatters into these as rays retire.
    outputs = {
        "best_triangle": np.full(n_rays, -1, dtype=np.int64),
        "best_t": np.full(n_rays, np.inf),
        "best_u": np.zeros(n_rays),
        "best_v": np.zeros(n_rays),
        "visits": np.zeros(n_rays, dtype=np.int64),
    }
    record = HitRecord(
        outputs["best_triangle"], outputs["best_t"], outputs["best_u"],
        outputs["best_v"], outputs["visits"],
    )
    if n_rays == 0 or bvh.num_nodes == 0:
        return record

    kernel = _TraversalKernel(bvh, mesh, dtype, t_min, any_hit_mode)
    limit_t = np.broadcast_to(np.asarray(t_max, dtype=dtype), (n_rays,)).copy()
    lanes = _frontier_lanes(
        origins, directions, limit_t, dtype, kernel.initial_stack, kernel.t_min
    )
    FrontierEngine().run(kernel, lanes, outputs)
    return record


def closest_hit(
    bvh: BVH,
    mesh: TriangleMesh,
    origins: np.ndarray,
    directions: np.ndarray,
    t_min: float = EPSILON,
    t_max: float | np.ndarray = np.inf,
    dtype: np.dtype | type = np.float64,
) -> HitRecord:
    """Nearest intersection of each ray with the mesh."""
    return _traverse(bvh, mesh, origins, directions, t_min, t_max, any_hit_mode=False, dtype=dtype)


def any_hit(
    bvh: BVH,
    mesh: TriangleMesh,
    origins: np.ndarray,
    directions: np.ndarray,
    t_min: float = EPSILON,
    t_max: float | np.ndarray = np.inf,
    dtype: np.dtype | type = np.float64,
) -> np.ndarray:
    """Boolean occlusion test: does each ray hit anything within ``[t_min, t_max]``?

    ``t_max`` may be a scalar or a per-ray array (shadow rays bound each ray
    by its own light distance).
    """
    record = _traverse(bvh, mesh, origins, directions, t_min, t_max, any_hit_mode=True, dtype=dtype)
    return record.hit_mask


def brute_force_closest_hit(
    mesh: TriangleMesh,
    origins: np.ndarray,
    directions: np.ndarray,
    t_min: float = EPSILON,
    t_max: float | np.ndarray = np.inf,
) -> HitRecord:
    """Reference O(rays x triangles) intersector used for differential testing.

    ``t_max`` may be a scalar or a per-ray array, mirroring :func:`any_hit`.
    """
    origins = np.asarray(origins, dtype=np.float64)
    directions = np.asarray(directions, dtype=np.float64)
    n_rays = len(origins)
    corners = mesh.corners()
    best_t = np.full(n_rays, np.inf)
    best_triangle = np.full(n_rays, -1, dtype=np.int64)
    best_u = np.zeros(n_rays)
    best_v = np.zeros(n_rays)
    for index in range(mesh.num_triangles):
        hit, t, u, v = moller_trumbore(
            origins,
            directions,
            corners[index, 0],
            corners[index, 1],
            corners[index, 2],
            t_min,
            t_max,
        )
        improved = hit & (t < best_t)
        best_t[improved] = t[improved]
        best_triangle[improved] = index
        best_u[improved] = u[improved]
        best_v[improved] = v[improved]
    return HitRecord(best_triangle, best_t, best_u, best_v, np.zeros(n_rays, dtype=np.int64))
