"""Vectorized ray-AABB tests, ray-triangle intersection, and BVH traversal.

Traversal follows the spirit of the "if-if" algorithm of Aila and Laine that
the paper's ray tracer adapts: each ray repeatedly pops a node from its own
stack, tests the node's box, and either descends (pushing both children) or
intersects the leaf's triangles.  The reproduction executes this SIMT-style:
a whole batch of rays advances one stack operation per iteration with all of
the arithmetic done by numpy over the currently active rays, which is the
data-parallel analogue of a warp executing the same step for many rays.

Two query types are provided:

* :func:`closest_hit` -- nearest intersection per ray (primary rays, shading).
* :func:`any_hit` -- boolean occlusion within a distance (shadows, ambient
  occlusion).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.triangles import TriangleMesh
from repro.rendering.raytracer.bvh import BVH

__all__ = ["HitRecord", "closest_hit", "any_hit", "ray_aabb_intersect", "moller_trumbore"]

#: Numerical epsilon used by the intersector to reject grazing hits.
EPSILON = 1e-9


@dataclass
class HitRecord:
    """Per-ray nearest-hit results.

    Attributes
    ----------
    triangle:
        Index of the hit triangle, or ``-1`` for a miss.
    t:
        Ray parameter of the hit (``inf`` for misses).
    u, v:
        Barycentric coordinates of the hit point within the triangle.
    nodes_visited:
        Number of BVH nodes popped per ray -- the observable behind the
        ``log2(O)`` traversal-depth term of the ray-tracing model.
    """

    triangle: np.ndarray
    t: np.ndarray
    u: np.ndarray
    v: np.ndarray
    nodes_visited: np.ndarray

    @property
    def hit_mask(self) -> np.ndarray:
        """Boolean mask of rays that hit something."""
        return self.triangle >= 0

    def hit_points(self, origins: np.ndarray, directions: np.ndarray) -> np.ndarray:
        """World-space intersection points (undefined content for misses)."""
        return origins + self.t[:, None] * directions


def ray_aabb_intersect(
    origins: np.ndarray,
    inv_directions: np.ndarray,
    box_low: np.ndarray,
    box_high: np.ndarray,
    t_min: np.ndarray,
    t_max: np.ndarray,
) -> np.ndarray:
    """Slab test of rays against per-ray boxes.

    All inputs are broadcast against each other; returns a boolean mask of
    rays whose parametric interval intersects the box within ``[t_min, t_max]``.
    """
    t0 = (box_low - origins) * inv_directions
    t1 = (box_high - origins) * inv_directions
    near = np.minimum(t0, t1).max(axis=-1)
    far = np.maximum(t0, t1).min(axis=-1)
    return (near <= far) & (far >= t_min) & (near <= t_max)


def moller_trumbore(
    origins: np.ndarray,
    directions: np.ndarray,
    v0: np.ndarray,
    v1: np.ndarray,
    v2: np.ndarray,
    t_min: float | np.ndarray = EPSILON,
    t_max: float | np.ndarray = np.inf,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Pairwise Moller-Trumbore intersection of rays against triangles.

    ``origins``/``directions`` and the triangle corners must broadcast to a
    common leading shape.  Returns ``(hit, t, u, v)`` where ``hit`` is a
    boolean mask and ``t`` is ``inf`` where there is no hit.
    """
    edge1 = v1 - v0
    edge2 = v2 - v0
    pvec = np.cross(directions, edge2)
    determinant = np.einsum("...i,...i->...", edge1, pvec)
    near_parallel = np.abs(determinant) < EPSILON
    safe_det = np.where(near_parallel, 1.0, determinant)
    inv_det = 1.0 / safe_det
    tvec = origins - v0
    u = np.einsum("...i,...i->...", tvec, pvec) * inv_det
    qvec = np.cross(tvec, edge1)
    v = np.einsum("...i,...i->...", directions, qvec) * inv_det
    t = np.einsum("...i,...i->...", edge2, qvec) * inv_det
    hit = (
        ~near_parallel
        & (u >= -EPSILON)
        & (v >= -EPSILON)
        & (u + v <= 1.0 + EPSILON)
        & (t >= t_min)
        & (t <= t_max)
    )
    t = np.where(hit, t, np.inf)
    return hit, t, u, v


def _safe_inverse(directions: np.ndarray) -> np.ndarray:
    """Reciprocal directions with zeros replaced by a huge finite value."""
    small = np.abs(directions) < 1e-300
    safe = np.where(small, np.copysign(1e-300, np.where(directions == 0.0, 1.0, directions)), directions)
    return 1.0 / safe


def _traverse(
    bvh: BVH,
    mesh: TriangleMesh,
    origins: np.ndarray,
    directions: np.ndarray,
    t_min: float,
    t_max: float | np.ndarray,
    any_hit_mode: bool,
) -> HitRecord:
    """Shared SIMT-style traversal kernel for closest-hit and any-hit queries."""
    origins = np.asarray(origins, dtype=np.float64)
    directions = np.asarray(directions, dtype=np.float64)
    n_rays = len(origins)
    corners = mesh.corners()
    tri_v0 = corners[:, 0]
    tri_v1 = corners[:, 1]
    tri_v2 = corners[:, 2]

    best_t = np.full(n_rays, np.inf)
    limit_t = np.broadcast_to(np.asarray(t_max, dtype=np.float64), (n_rays,)).copy()
    best_triangle = np.full(n_rays, -1, dtype=np.int64)
    best_u = np.zeros(n_rays)
    best_v = np.zeros(n_rays)
    nodes_visited = np.zeros(n_rays, dtype=np.int64)

    inv_directions = _safe_inverse(directions)
    max_stack = max(bvh.max_depth() + 2, 4)
    stacks = np.full((n_rays, max_stack), -1, dtype=np.int64)
    stacks[:, 0] = 0  # root
    stack_tops = np.ones(n_rays, dtype=np.int64)

    active = np.arange(n_rays, dtype=np.int64)
    leaf_size = int(bvh.primitive_count.max()) if bvh.num_nodes else 0

    while len(active):
        # Pop one node per active ray.
        stack_tops[active] -= 1
        nodes = stacks[active, stack_tops[active]]
        nodes_visited[active] += 1

        # Current closest-hit bound per ray (shrinks as hits are found).
        current_limit = np.minimum(best_t[active], limit_t[active])
        box_hit = ray_aabb_intersect(
            origins[active],
            inv_directions[active],
            bvh.node_low[nodes],
            bvh.node_high[nodes],
            np.full(len(active), t_min),
            current_limit,
        )

        is_leaf = bvh.primitive_count[nodes] > 0
        descend = box_hit & ~is_leaf
        intersect_leaf = box_hit & is_leaf

        # Internal nodes: push both children.
        if np.any(descend):
            rays = active[descend]
            children_left = bvh.left_child[nodes[descend]]
            children_right = bvh.right_child[nodes[descend]]
            tops = stack_tops[rays]
            stacks[rays, tops] = children_left
            stacks[rays, tops + 1] = children_right
            stack_tops[rays] = tops + 2

        # Leaves: test every primitive slot of the leaf against its rays.
        if np.any(intersect_leaf):
            rays = active[intersect_leaf]
            leaf_nodes = nodes[intersect_leaf]
            first = bvh.first_primitive[leaf_nodes]
            count = bvh.primitive_count[leaf_nodes]
            for slot in range(leaf_size):
                slot_mask = slot < count
                if not np.any(slot_mask):
                    break
                slot_rays = rays[slot_mask]
                prims = bvh.primitive_order[first[slot_mask] + slot]
                hit, t, u, v = moller_trumbore(
                    origins[slot_rays],
                    directions[slot_rays],
                    tri_v0[prims],
                    tri_v1[prims],
                    tri_v2[prims],
                    t_min,
                    np.minimum(best_t[slot_rays], limit_t[slot_rays]),
                )
                improved = hit & (t < best_t[slot_rays])
                if np.any(improved):
                    winners = slot_rays[improved]
                    best_t[winners] = t[improved]
                    best_triangle[winners] = prims[improved]
                    best_u[winners] = u[improved]
                    best_v[winners] = v[improved]

        # Retire rays with empty stacks, and (any-hit mode) rays already occluded.
        finished = stack_tops[active] <= 0
        if any_hit_mode:
            finished |= best_triangle[active] >= 0
        active = active[~finished]

    return HitRecord(best_triangle, best_t, best_u, best_v, nodes_visited)


def closest_hit(
    bvh: BVH,
    mesh: TriangleMesh,
    origins: np.ndarray,
    directions: np.ndarray,
    t_min: float = EPSILON,
    t_max: float | np.ndarray = np.inf,
) -> HitRecord:
    """Nearest intersection of each ray with the mesh."""
    return _traverse(bvh, mesh, origins, directions, t_min, t_max, any_hit_mode=False)


def any_hit(
    bvh: BVH,
    mesh: TriangleMesh,
    origins: np.ndarray,
    directions: np.ndarray,
    t_min: float = EPSILON,
    t_max: float | np.ndarray = np.inf,
) -> np.ndarray:
    """Boolean occlusion test: does each ray hit anything within ``[t_min, t_max]``?"""
    record = _traverse(bvh, mesh, origins, directions, t_min, t_max, any_hit_mode=True)
    return record.hit_mask


def brute_force_closest_hit(
    mesh: TriangleMesh,
    origins: np.ndarray,
    directions: np.ndarray,
    t_min: float = EPSILON,
    t_max: float = np.inf,
) -> HitRecord:
    """Reference O(rays x triangles) intersector used for differential testing."""
    origins = np.asarray(origins, dtype=np.float64)
    directions = np.asarray(directions, dtype=np.float64)
    n_rays = len(origins)
    corners = mesh.corners()
    best_t = np.full(n_rays, np.inf)
    best_triangle = np.full(n_rays, -1, dtype=np.int64)
    best_u = np.zeros(n_rays)
    best_v = np.zeros(n_rays)
    for index in range(mesh.num_triangles):
        hit, t, u, v = moller_trumbore(
            origins,
            directions,
            corners[index, 0],
            corners[index, 1],
            corners[index, 2],
            t_min,
            t_max,
        )
        improved = hit & (t < best_t)
        best_t[improved] = t[improved]
        best_triangle[improved] = index
        best_u[improved] = u[improved]
        best_v[improved] = v[improved]
    return HitRecord(best_triangle, best_t, best_u, best_v, np.zeros(n_rays, dtype=np.int64))
