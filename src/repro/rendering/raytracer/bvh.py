"""Bounding volume hierarchies for the ray tracer.

Two builders are provided, mirroring the study's configurations:

* **LBVH** (``method="lbvh"``) -- primitives are sorted along a Morton curve
  of their centroids and the hierarchy is emitted by recursively splitting
  the sorted range at its midpoint.  This is the linear-BVH family used by
  the paper's VTK-m ray tracer (a variant of Karras 2012) whose build time is
  O(n); the Eq. 5.1 term ``c0 * O`` models exactly this build.
* **SAH** (``method="sah"``) -- a binned surface-area-heuristic top-down
  build producing higher-quality trees at higher build cost.  The
  specialised-ray-tracer baselines (Embree / OptiX proxies, Tables 3 and 4)
  use this builder.

The tree is stored flat in structure-of-arrays form so traversal can run
vectorized over large ray batches: per node we keep the AABB corners, the
two child indices (internal nodes) or the primitive range (leaves).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.triangles import TriangleMesh
from repro.util.morton import morton_codes_points

__all__ = ["BVH", "build_bvh"]

#: Leaf size used by the study's EAVL ray tracer ("maximum leaf size of eight
#: triangles"); the default here is smaller because the reproduction's scenes
#: are smaller.
DEFAULT_LEAF_SIZE = 4


@dataclass
class BVH:
    """Flat bounding volume hierarchy.

    Attributes
    ----------
    node_low, node_high:
        ``(num_nodes, 3)`` AABB corners per node.
    left_child, right_child:
        Child node indices; ``-1`` for leaves.
    first_primitive, primitive_count:
        Leaf primitive range into :attr:`primitive_order`; count is zero for
        internal nodes.
    primitive_order:
        Permutation of the original primitive ids so each leaf's primitives
        are contiguous.
    """

    node_low: np.ndarray
    node_high: np.ndarray
    left_child: np.ndarray
    right_child: np.ndarray
    first_primitive: np.ndarray
    primitive_count: np.ndarray
    primitive_order: np.ndarray
    leaf_size: int
    method: str
    _triangle_soa: dict = field(default_factory=dict, init=False, repr=False, compare=False)
    _node_boxes: dict = field(default_factory=dict, init=False, repr=False, compare=False)
    _max_depth: int | None = field(default=None, init=False, repr=False, compare=False)

    @property
    def num_nodes(self) -> int:
        return len(self.left_child)

    @property
    def num_primitives(self) -> int:
        return len(self.primitive_order)

    def is_leaf(self, node: int | np.ndarray) -> np.ndarray:
        """True where the node index refers to a leaf."""
        return self.primitive_count[node] > 0

    def max_depth(self) -> int:
        """Depth of the deepest node (root = 0), computed once and cached."""
        if self._max_depth is None:
            if self.num_nodes == 0:
                self._max_depth = 0
            else:
                deepest = 0
                stack = [(0, 0)]
                while stack:
                    node, depth = stack.pop()
                    deepest = max(deepest, depth)
                    if self.primitive_count[node] == 0:
                        stack.append((int(self.left_child[node]), depth + 1))
                        stack.append((int(self.right_child[node]), depth + 1))
                self._max_depth = deepest
        return self._max_depth

    def triangle_soa(
        self, mesh: TriangleMesh, dtype: np.dtype | type = np.float64
    ) -> tuple[np.ndarray, ...]:
        """Cached per-component triangle corner/edge SoA for the traversal kernel.

        Returns nine flat arrays ``(v0x, v0y, v0z, e1x, e1y, e1z, e2x, e2y,
        e2z)``.  The seed kernel re-expanded ``mesh.corners()`` and re-derived
        the Moller-Trumbore edge vectors on every ``closest_hit``/``any_hit``
        call; the frontier engine instead computes them once per (BVH, dtype)
        and reuses them across queries.  The cache is tied to the identity of
        the mesh's corner expansion, so passing a different mesh -- or
        mutating the mesh in place and calling
        :meth:`~repro.geometry.triangles.TriangleMesh.invalidate_caches` --
        recomputes rather than serving stale geometry.
        """
        dtype = np.dtype(dtype)
        corners = mesh.corners()
        cached = self._triangle_soa.get(dtype)
        if cached is None or cached[0] is not corners:
            v0 = corners[:, 0]
            edge1 = corners[:, 1] - corners[:, 0]
            edge2 = corners[:, 2] - corners[:, 0]
            soa = tuple(
                np.ascontiguousarray(vectors[:, axis], dtype=dtype)
                for vectors in (v0, edge1, edge2)
                for axis in range(3)
            )
            cached = (corners, soa)
            self._triangle_soa[dtype] = cached
        return cached[1]

    def node_boxes(self, dtype: np.dtype | type = np.float64) -> tuple[np.ndarray, ...]:
        """Cached per-component node AABB corners cast to ``dtype``.

        Returns six flat arrays ``(lx, ly, lz, hx, hy, hz)``.  Casting
        ``float64`` boxes down to ``float32`` rounds to nearest, which could
        shrink a box by half an ulp and cause a false miss; the cast is
        therefore padded one ulp outward on each side, keeping the
        reduced-precision traversal conservative.
        """
        dtype = np.dtype(dtype)
        cached = self._node_boxes.get(dtype)
        if cached is None:
            low = self.node_low.astype(dtype, copy=False)
            high = self.node_high.astype(dtype, copy=False)
            if dtype != self.node_low.dtype:
                low = np.nextafter(low, dtype.type(-np.inf))
                high = np.nextafter(high, dtype.type(np.inf))
            cached = tuple(
                np.ascontiguousarray(corner[:, axis])
                for corner in (low, high)
                for axis in range(3)
            )
            self._node_boxes[dtype] = cached
        return cached

    def validate(self, mesh: TriangleMesh, tolerance: float = 1e-9) -> bool:
        """Check containment invariants: every node box bounds its subtree.

        Used by the property-based tests; returns True when valid and raises
        ``AssertionError`` with a description otherwise.
        """
        lows, highs = mesh.triangle_bounds()
        stack = [0]
        seen = np.zeros(self.num_primitives, dtype=bool)
        while stack:
            node = stack.pop()
            count = int(self.primitive_count[node])
            if count > 0:
                first = int(self.first_primitive[node])
                prims = self.primitive_order[first : first + count]
                assert not np.any(seen[prims]), "primitive assigned to two leaves"
                seen[prims] = True
                assert np.all(lows[prims] >= self.node_low[node] - tolerance), "leaf box too small"
                assert np.all(highs[prims] <= self.node_high[node] + tolerance), "leaf box too small"
            else:
                left, right = int(self.left_child[node]), int(self.right_child[node])
                for child in (left, right):
                    assert np.all(self.node_low[child] >= self.node_low[node] - tolerance)
                    assert np.all(self.node_high[child] <= self.node_high[node] + tolerance)
                stack.extend((left, right))
        assert np.all(seen), "some primitives missing from the hierarchy"
        return True


class _Builder:
    """Shared recursive build machinery for both split strategies."""

    def __init__(self, lows: np.ndarray, highs: np.ndarray, centroids: np.ndarray, leaf_size: int):
        self.lows = lows
        self.highs = highs
        self.centroids = centroids
        self.leaf_size = leaf_size
        self.node_low: list[np.ndarray] = []
        self.node_high: list[np.ndarray] = []
        self.left: list[int] = []
        self.right: list[int] = []
        self.first: list[int] = []
        self.count: list[int] = []

    def _new_node(self, low: np.ndarray, high: np.ndarray) -> int:
        self.node_low.append(low)
        self.node_high.append(high)
        self.left.append(-1)
        self.right.append(-1)
        self.first.append(0)
        self.count.append(0)
        return len(self.left) - 1

    def build(self, order: np.ndarray, split) -> np.ndarray:
        """Iteratively build the tree over ``order`` (a primitive permutation).

        ``split`` is a callable mapping a contiguous range of ``order`` to a
        split position (index within the range) or ``None`` to force a leaf.
        Returns the final primitive order (ranges may be permuted in place by
        the split function).
        """
        order = order.copy()
        # Work stack of (start, end, node_index); node boxes are finalized on pop.
        root = self._new_node(np.zeros(3), np.zeros(3))
        stack = [(0, len(order), root)]
        while stack:
            start, end, node = stack.pop()
            prims = order[start:end]
            low = self.lows[prims].min(axis=0)
            high = self.highs[prims].max(axis=0)
            self.node_low[node] = low
            self.node_high[node] = high
            span = end - start
            position = None if span <= self.leaf_size else split(order, start, end)
            if position is None or position <= start or position >= end:
                self.first[node] = start
                self.count[node] = span
                continue
            left_node = self._new_node(low, high)
            right_node = self._new_node(low, high)
            self.left[node] = left_node
            self.right[node] = right_node
            stack.append((start, position, left_node))
            stack.append((position, end, right_node))
        return order

    def finish(self, order: np.ndarray, leaf_size: int, method: str) -> BVH:
        return BVH(
            node_low=np.asarray(self.node_low),
            node_high=np.asarray(self.node_high),
            left_child=np.asarray(self.left, dtype=np.int64),
            right_child=np.asarray(self.right, dtype=np.int64),
            first_primitive=np.asarray(self.first, dtype=np.int64),
            primitive_count=np.asarray(self.count, dtype=np.int64),
            primitive_order=order.astype(np.int64),
            leaf_size=leaf_size,
            method=method,
        )


def _make_lbvh_split(sorted_codes: np.ndarray):
    """Karras-style LBVH split over the Morton-sorted primitive range.

    Each range splits where the highest differing bit of its first and last
    Morton codes flips -- the spatial plane of the Z-order cell -- which
    produces far less node overlap (and therefore fewer traversal visits)
    than splitting the range at its midpoint.  Ranges whose codes are all
    identical fall back to the midpoint.
    """

    def split(order: np.ndarray, start: int, end: int) -> int:
        first = int(sorted_codes[start])
        last = int(sorted_codes[end - 1])
        if first == last:
            return (start + end) // 2
        top_bit = (first ^ last).bit_length() - 1
        # First index whose code has the highest differing bit set.
        threshold = ((first >> top_bit) | 1) << top_bit
        return start + int(np.searchsorted(sorted_codes[start:end], threshold))

    return split


def _make_sah_split(lows: np.ndarray, highs: np.ndarray, centroids: np.ndarray, num_bins: int = 8):
    """Binned SAH split closure over the primitive geometry arrays."""

    def split(order: np.ndarray, start: int, end: int) -> int | None:
        prims = order[start:end]
        cents = centroids[prims]
        best_cost = np.inf
        best_axis = -1
        best_threshold = 0.0
        extent_low = cents.min(axis=0)
        extent_high = cents.max(axis=0)
        for axis in range(3):
            axis_min, axis_max = extent_low[axis], extent_high[axis]
            if axis_max - axis_min < 1e-12:
                continue
            edges = np.linspace(axis_min, axis_max, num_bins + 1)[1:-1]
            for threshold in edges:
                mask = cents[:, axis] <= threshold
                n_left = int(mask.sum())
                n_right = len(prims) - n_left
                if n_left == 0 or n_right == 0:
                    continue
                left_area = _surface_area(lows[prims[mask]], highs[prims[mask]])
                right_area = _surface_area(lows[prims[~mask]], highs[prims[~mask]])
                cost = left_area * n_left + right_area * n_right
                if cost < best_cost:
                    best_cost, best_axis, best_threshold = cost, axis, threshold
        if best_axis < 0:
            # Degenerate spread: fall back to a median split in the widest axis.
            axis = int(np.argmax(extent_high - extent_low))
            local = np.argsort(cents[:, axis], kind="stable")
            order[start:end] = prims[local]
            return (start + end) // 2
        mask = cents[:, best_axis] <= best_threshold
        # Partition the range: left primitives first (stable).
        order[start:end] = np.concatenate([prims[mask], prims[~mask]])
        return start + int(mask.sum())

    return split


def _surface_area(lows: np.ndarray, highs: np.ndarray) -> float:
    """Surface area of the union box of the given primitive boxes."""
    extent = np.maximum(highs.max(axis=0) - lows.min(axis=0), 0.0)
    dx, dy, dz = extent
    return float(2.0 * (dx * dy + dy * dz + dz * dx))


def build_bvh(
    mesh: TriangleMesh,
    leaf_size: int = DEFAULT_LEAF_SIZE,
    method: str = "lbvh",
) -> BVH:
    """Build a BVH over a triangle mesh.

    Parameters
    ----------
    mesh:
        Triangle geometry; must contain at least one triangle.
    leaf_size:
        Maximum primitives per leaf.
    method:
        ``"lbvh"`` (Morton-sorted midpoint splits, linear-time flavour) or
        ``"sah"`` (binned surface-area heuristic, higher quality).

    Returns
    -------
    BVH
    """
    if mesh.num_triangles == 0:
        raise ValueError("cannot build a BVH over an empty mesh")
    if leaf_size < 1:
        raise ValueError("leaf_size must be at least 1")
    lows, highs = mesh.triangle_bounds()
    centroids = mesh.centroids()
    builder = _Builder(lows, highs, centroids, leaf_size)
    if method == "lbvh":
        codes = morton_codes_points(centroids)
        order = np.argsort(codes, kind="stable")
        order = builder.build(order, _make_lbvh_split(codes[order]))
    elif method == "sah":
        order = np.arange(mesh.num_triangles, dtype=np.int64)
        order = builder.build(order, _make_sah_split(lows, highs, centroids))
    else:
        raise ValueError(f"unknown BVH build method {method!r}")
    return builder.finish(order, leaf_size, method)
