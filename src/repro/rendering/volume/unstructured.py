"""Unstructured (tetrahedral) volume renderer via multi-pass sampling (Chapter III).

The algorithm populates a ``width x height x samples`` buffer of scalar
samples and composites it in depth.  To bound memory it can split the sample
buffer into multiple passes over depth; each pass runs four phases built from
data-parallel primitives exactly as Algorithm 2 of the dissertation describes:

1. **Pass selection** -- map a threshold over the per-tet depth ranges, reduce
   to count the active tets, exclusive-scan + reverse-index + gather to build
   the compacted active-tet list.
2. **Screen-space transformation** -- map the active tets' vertices through
   the camera transform.
3. **Sampling** -- for every active tet, visit the (pixel, depth-slot) samples
   inside its screen-space bounding box, run an inside test via barycentric
   coordinates, and write interpolated scalars into the sample buffer.  The
   sampler consults the per-pixel *lane residency* so fully opaque pixels stop
   generating work (the analogue of early ray termination).
4. **Compositing** -- map over the resident pixels' sample rows front to back,
   accumulating color and opacity per pixel.

An initialization step (run once) computes the per-tet depth ranges used by
pass selection.

Since the frontier refactor the per-pixel accumulation runs on the shared
:class:`repro.dpp.FrontierEngine`: every pixel is a lane carrying its RGBA
accumulators, one engine step executes one pass, and a pixel crossing the
early-termination opacity *retires* -- the engine compacts it out, later
passes' samplers skip it via the residency mask, and later compositing never
touches its row.

**Fragment-sorted sampling** (the fast path behind :meth:`render`) replaces
the seed sampler's dense candidate enumeration.  The seed loop visited every
``box_w x box_h x box_d`` (pixel, depth-slot) pair of each tet's screen-space
AABB and rejected 85-90% of them with the barycentric inside test; the
fragment formulation (the HAVS-style competitor of the paper's Figure 6)
enumerates only the 2D pixel columns, intersects each column with the tet's
four inward face planes (:func:`repro.geometry.tetra.tet_face_planes`) to get
the analytic entry/exit slot span, emits one fragment per (pixel, slot, tet)
in the span, and resolves fragment collisions per sample-buffer cell with one
combined sort + :func:`~repro.dpp.primitives.segmented_argmin` -- the same
machinery the sort-last compositor uses.  The span is conservative (a slack
proportional to the face clearance covers float rounding and the reference's
``-1e-9`` barycentric tolerance) and every surviving fragment re-runs the
reference's *exact* inside test, so the fast path reproduces the seed
sampler's accepted-sample set -- and therefore its image -- bit for bit.
:meth:`UnstructuredVolumeRenderer.render_reference` keeps the pre-frontier
full-width loop with the seed sampler as the differential reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dpp.frontier import FrontierEngine, FrontierLanes
from repro.dpp.instrument import InstrumentationScope
from repro.dpp.primitives import (
    exclusive_scan,
    gather,
    map_field,
    reduce_field,
    reverse_index,
    scatter,
    segmented_argmin,
)
from repro.geometry.mesh import UnstructuredTetMesh
from repro.geometry.tetra import tet_face_planes
from repro.geometry.transforms import Camera
from repro.rendering.framebuffer import Framebuffer
from repro.rendering.result import ObservedFeatures, RenderResult
from repro.rendering.volume.transfer_function import TransferFunction
from repro.util.packing import chunk_ranges, segment_local_indices
from repro.util.timing import Timer

__all__ = ["UnstructuredVolumeConfig", "UnstructuredVolumeRenderer"]


@dataclass
class UnstructuredVolumeConfig:
    """Tunable parameters of the unstructured volume renderer.

    Attributes
    ----------
    samples_in_depth:
        Total number of depth slots in the sample buffer (1000 in the paper's
        full-scale study).
    num_passes:
        How many passes the depth range is split into; more passes mean less
        memory per pass plus the opportunity for early ray termination
        between passes.
    early_termination_alpha:
        Per-pixel opacity at which further samples are skipped.
    pair_chunk:
        Maximum number of candidate (tet, sample) pairs evaluated per batch.
    """

    samples_in_depth: int = 200
    num_passes: int = 1
    early_termination_alpha: float = 0.98
    pair_chunk: int = 4_000_000

    def __post_init__(self) -> None:
        if self.samples_in_depth < 1:
            raise ValueError("samples_in_depth must be positive")
        if self.num_passes < 1:
            raise ValueError("num_passes must be positive")
        if not 0.0 < self.early_termination_alpha <= 1.0:
            raise ValueError("early_termination_alpha must be in (0, 1]")


#: Conservative slack for the analytic face-plane span test, scaled by each
#: face's opposite-vertex clearance.  The exact inside test accepts barycentric
#: coordinates down to -1e-9, i.e. plane distances down to ``-1e-9 * height``;
#: the slack must dominate that plus the rounding error of evaluating the
#: plane at a pixel center, and 1e-6 * (1 + height) does both with orders of
#: magnitude to spare while staying far below one depth slot.
_SPAN_SLACK = 1e-6


@dataclass
class _PreparedTets:
    """Per-tet screen-space state shared by the engine and reference paths.

    ``screen_vertices`` holds the ``(px, py, depth-slot)`` positions; the face
    planes/heights (:func:`tet_face_planes` over those vertices) power the
    fragment sampler's analytic span test and are unused by the reference.
    """

    screen_vertices: np.ndarray  # (nt, 4, 3)
    slot_low: np.ndarray  # (nt,)
    slot_high: np.ndarray  # (nt,)
    tet_scalars: np.ndarray  # (nt, 4)
    face_planes: np.ndarray  # (nt, 4, 4) inward unit planes in screen space
    face_heights: np.ndarray  # (nt, 4) opposite-vertex clearances
    depth_min: float
    step_length: float


class _TetPassKernel:
    """One engine step per sampling pass over the depth-slot range.

    Lanes are pixels; the kernel runs the pass-selection, screen-space, and
    sampling phases full-width (they are object-order), gathers the resident
    pixels' sample rows, and composites them into the lane accumulators.
    Early ray termination is lane retirement: the engine compacts opaque
    pixels away and the sampler's residency mask stops generating candidate
    samples for them.
    """

    output_fields = ("accum_rgb", "accum_alpha")

    def __init__(
        self, renderer: "UnstructuredVolumeRenderer", camera: Camera, prepared: _PreparedTets
    ) -> None:
        self.renderer = renderer
        self.camera = camera
        self.prepared = prepared
        config = renderer.config
        self.num_pixels = camera.width * camera.height
        self.total_slots = config.samples_in_depth
        self.slots_per_pass = int(np.ceil(self.total_slots / config.num_passes))
        self.pass_index = 0
        self.phases = {
            "pass_selection": 0.0,
            "screen_space": 0.0,
            "sampling": 0.0,
            "compositing": 0.0,
        }
        self.samples_with_data = 0

    def step(self, lanes: FrontierLanes) -> np.ndarray:
        renderer = self.renderer
        config = renderer.config
        accum_alpha = lanes["accum_alpha"]
        first_slot = self.pass_index * self.slots_per_pass
        last_slot = min(first_slot + self.slots_per_pass, self.total_slots)
        self.pass_index += 1
        if first_slot >= last_slot:
            return np.ones(len(lanes), dtype=bool)
        final_pass = self.pass_index >= config.num_passes or last_slot >= self.total_slots

        with Timer() as timer, InstrumentationScope("volume.pass_selection"):
            active = renderer._pass_selection(
                self.prepared.slot_low, self.prepared.slot_high, first_slot, last_slot
            )
        self.phases["pass_selection"] += timer.elapsed
        if len(active) == 0:
            done = np.ones(len(lanes), dtype=bool) if final_pass else lanes.retired.copy()
            return done

        with Timer() as timer, InstrumentationScope("volume.screen_space"):
            # Screen-space tet vertices: (px, py, depth-slot), plus the face
            # planes powering the fragment sampler's analytic span test.
            vertices = self.prepared.screen_vertices[active]
            active_planes = self.prepared.face_planes[active]
            active_heights = self.prepared.face_heights[active]
            active_scalars = self.prepared.tet_scalars[active]
        self.phases["screen_space"] += timer.elapsed

        with Timer() as timer, InstrumentationScope("volume.sampling"):
            # Lane residency is the sampler's early-termination mask: only
            # pixels still resident (and not retired) receive samples.
            open_mask = np.zeros(self.num_pixels, dtype=bool)
            open_mask[lanes.lane_ids[~lanes.retired]] = True
            sample_scalar = np.full((self.num_pixels, last_slot - first_slot), np.nan)
            renderer._sample_pass(
                self.camera,
                vertices,
                active_scalars,
                active_planes,
                active_heights,
                first_slot,
                last_slot,
                sample_scalar,
                open_mask,
            )
        self.phases["sampling"] += timer.elapsed

        with Timer() as timer, InstrumentationScope("volume.compositing"):
            rows = gather(sample_scalar, lanes.lane_ids)
            self.samples_with_data += int(np.count_nonzero(~np.isnan(rows)))
            live = ~lanes.retired
            renderer._composite_rows(
                rows, lanes["accum_rgb"], accum_alpha, self.prepared.step_length, live
            )
        self.phases["compositing"] += timer.elapsed

        if final_pass:
            return np.ones(len(lanes), dtype=bool)
        return accum_alpha >= config.early_termination_alpha


@dataclass
class UnstructuredVolumeRenderer:
    """Multi-pass sampling volume renderer for tetrahedral meshes."""

    mesh: UnstructuredTetMesh
    field_name: str
    transfer_function: TransferFunction | None = None
    config: UnstructuredVolumeConfig = field(default_factory=UnstructuredVolumeConfig)

    def __post_init__(self) -> None:
        if self.field_name not in self.mesh.point_fields:
            raise KeyError(f"mesh has no point field named {self.field_name!r}")
        if self.transfer_function is None:
            values = np.asarray(self.mesh.point_fields[self.field_name])
            self.transfer_function = TransferFunction(
                scalar_range=(float(values.min()), float(values.max())),
                unit_distance=max(self.mesh.bounds.diagonal / 100.0, 1e-12),
            )

    # -- phases ------------------------------------------------------------------------
    def _initialization(self, camera: Camera) -> tuple[np.ndarray, np.ndarray, np.ndarray, float, float]:
        """Per-tet screen vertices plus depth-slot ranges (the init step of Algorithm 2)."""
        points = self.mesh.points()
        screen, _ = camera.world_to_screen(points)
        depth = camera.depth_along_view(points)
        corner = self.mesh.connectivity
        tet_screen_xy = screen[corner][..., :2]  # (nt, 4, 2)
        tet_depth = depth[corner]  # (nt, 4)
        depth_min = float(depth.min())
        depth_max = float(depth.max())
        return tet_screen_xy, tet_depth, corner, depth_min, depth_max

    def _pass_selection(
        self, slot_low: np.ndarray, slot_high: np.ndarray, first_slot: int, last_slot: int
    ) -> np.ndarray:
        """Compacted indices of tets overlapping the pass's depth-slot range."""
        flags = map_field(
            lambda lo, hi: ((hi >= first_slot) & (lo < last_slot)).astype(np.int64),
            slot_low,
            slot_high,
        )
        count = int(reduce_field(flags, "add"))
        if count == 0:
            return np.empty(0, dtype=np.int64)
        scanned = exclusive_scan(flags)
        indices = reverse_index(scanned, flags.astype(bool))
        return gather(np.arange(len(flags), dtype=np.int64), indices)

    def _prepare(self, camera: Camera) -> _PreparedTets:
        """Initialization phase shared by the engine and reference paths."""
        total_slots = self.config.samples_in_depth
        tet_screen_xy, tet_depth, corner, depth_min, depth_max = self._initialization(camera)
        depth_extent = max(depth_max - depth_min, 1e-12)
        tet_slots = (tet_depth - depth_min) / depth_extent * total_slots
        screen_vertices = np.concatenate([tet_screen_xy, tet_slots[..., None]], axis=2)
        face_planes, face_heights = tet_face_planes(screen_vertices)
        scalars = np.asarray(self.mesh.point_fields[self.field_name], dtype=np.float64)
        return _PreparedTets(
            screen_vertices=screen_vertices,
            slot_low=tet_slots.min(axis=1),
            slot_high=tet_slots.max(axis=1),
            tet_scalars=scalars[corner],
            face_planes=face_planes,
            face_heights=face_heights,
            depth_min=depth_min,
            step_length=depth_extent / total_slots,
        )

    # -- main entry point -----------------------------------------------------------------
    def render(self, camera: Camera) -> RenderResult:
        """Volume render the tetrahedral mesh from ``camera`` on the frontier engine."""
        framebuffer = Framebuffer(camera.width, camera.height)
        features = ObservedFeatures(objects=self.mesh.num_cells)
        num_pixels = camera.width * camera.height

        with Timer() as timer, InstrumentationScope("volume.initialization"):
            prepared = self._prepare(camera)
        initialization_seconds = timer.elapsed

        kernel = _TetPassKernel(self, camera, prepared)
        lanes = FrontierLanes(
            np.arange(num_pixels, dtype=np.int64),
            {
                "accum_rgb": np.zeros((num_pixels, 3)),
                "accum_alpha": np.zeros(num_pixels),
            },
        )
        outputs = {
            "accum_rgb": np.zeros((num_pixels, 3)),
            "accum_alpha": np.zeros(num_pixels),
        }
        with Timer() as engine_timer, InstrumentationScope("volume.compositing"):
            FrontierEngine().run(kernel, lanes, outputs)
        accum_rgb = outputs["accum_rgb"]
        accum_alpha = outputs["accum_alpha"]
        phases = {"initialization": initialization_seconds, **kernel.phases}
        # The engine's flush/compaction work runs between kernel steps, so it
        # lands in no kernel-timed phase; attribute the residual to
        # compositing (it is per-pixel accumulator movement).
        engine_overhead = max(engine_timer.elapsed - sum(kernel.phases.values()), 0.0)
        phases["compositing"] += engine_overhead

        features.active_pixels = int(np.count_nonzero(accum_alpha > 0.0))
        features.samples_per_ray = kernel.samples_with_data / max(features.active_pixels, 1)
        features.cells_spanned = int(round(self.mesh.num_cells ** (1.0 / 3.0)))

        rgba = np.concatenate([accum_rgb, accum_alpha[:, None]], axis=1)
        written = np.flatnonzero(accum_alpha > 0.0)
        # Covered pixels report the nearest data depth, clamped at the camera
        # (behind-camera points must not produce negative layer depths).
        framebuffer.write_pixels(
            written, rgba[written], np.full(len(written), max(prepared.depth_min, 0.0))
        )
        return RenderResult(framebuffer, phases, features, technique="volume_unstructured")

    def render_reference(self, camera: Camera) -> RenderResult:
        """Pre-frontier full-width multi-pass loop, kept as the differential
        reference for the engine path (golden-image tests and the volume
        throughput benchmark's seed baseline)."""
        config = self.config
        phases = {
            "initialization": 0.0,
            "pass_selection": 0.0,
            "screen_space": 0.0,
            "sampling": 0.0,
            "compositing": 0.0,
        }
        framebuffer = Framebuffer(camera.width, camera.height)
        features = ObservedFeatures(objects=self.mesh.num_cells)
        num_pixels = camera.width * camera.height
        total_slots = config.samples_in_depth

        with Timer() as timer:
            prepared = self._prepare(camera)
        phases["initialization"] = timer.elapsed

        accum_rgb = np.zeros((num_pixels, 3))
        accum_alpha = np.zeros(num_pixels)
        slots_per_pass = int(np.ceil(total_slots / config.num_passes))
        samples_with_data = 0
        cells_touched_max = 0

        for pass_index in range(config.num_passes):
            first_slot = pass_index * slots_per_pass
            last_slot = min(first_slot + slots_per_pass, total_slots)
            if first_slot >= last_slot:
                break

            with Timer() as timer:
                active = self._pass_selection(
                    prepared.slot_low, prepared.slot_high, first_slot, last_slot
                )
            phases["pass_selection"] += timer.elapsed
            if len(active) == 0:
                continue

            with Timer() as timer:
                # Screen-space tet vertices: (px, py, depth-slot).
                vertices = prepared.screen_vertices[active]
                active_scalars = prepared.tet_scalars[active]
            phases["screen_space"] += timer.elapsed

            with Timer() as timer:
                sample_scalar = np.full((num_pixels, last_slot - first_slot), np.nan)
                open_mask = accum_alpha < config.early_termination_alpha
                pairs = self._sample_pass_reference(
                    camera, vertices, active_scalars, first_slot, last_slot, sample_scalar, open_mask
                )
                cells_touched_max = max(cells_touched_max, pairs)
            phases["sampling"] += timer.elapsed

            with Timer() as timer:
                samples_with_data += int(np.count_nonzero(~np.isnan(sample_scalar)))
                self._composite_rows(
                    sample_scalar, accum_rgb, accum_alpha, prepared.step_length, None
                )
            phases["compositing"] += timer.elapsed

        features.active_pixels = int(np.count_nonzero(accum_alpha > 0.0))
        features.samples_per_ray = samples_with_data / max(features.active_pixels, 1)
        features.cells_spanned = int(round(self.mesh.num_cells ** (1.0 / 3.0)))

        rgba = np.concatenate([accum_rgb, accum_alpha[:, None]], axis=1)
        written = np.flatnonzero(accum_alpha > 0.0)
        framebuffer.write_pixels(
            written, rgba[written], np.full(len(written), max(prepared.depth_min, 0.0))
        )
        return RenderResult(framebuffer, phases, features, technique="volume_unstructured")

    # -- sampling (fragment-sorted fast path) -----------------------------------------------
    @staticmethod
    def _screen_boxes(
        vertices: np.ndarray, width: int, height: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Clipped integer pixel bounding boxes of each tet's screen footprint.

        Sub-pixel tets still get a one-pixel-column footprint (``box >= 1``)
        so coarse meshes do not leave holes in the image; both samplers share
        this function so they enumerate identical pixel columns.
        """
        lo_xy = np.floor(vertices[..., :2].min(axis=1)).astype(np.int64)
        hi_xy = np.ceil(vertices[..., :2].max(axis=1)).astype(np.int64)
        lo_xy[:, 0] = np.clip(lo_xy[:, 0], 0, width - 1)
        lo_xy[:, 1] = np.clip(lo_xy[:, 1], 0, height - 1)
        hi_xy[:, 0] = np.clip(hi_xy[:, 0], 0, width)
        hi_xy[:, 1] = np.clip(hi_xy[:, 1], 0, height)
        box_w = np.maximum(hi_xy[:, 0] - lo_xy[:, 0], 1)
        box_h = np.maximum(hi_xy[:, 1] - lo_xy[:, 1], 1)
        return lo_xy, hi_xy, box_w, box_h

    @staticmethod
    def _inverse_barycentric(vertices: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Inverse barycentric matrices: columns are the edge vectors from v0."""
        v0 = vertices[:, 0]
        edges = np.stack([vertices[:, 1] - v0, vertices[:, 2] - v0, vertices[:, 3] - v0], axis=2)
        determinant = np.linalg.det(edges)
        valid = np.abs(determinant) > 1e-12
        inverse = np.zeros_like(edges)
        if np.any(valid):
            inverse[valid] = np.linalg.inv(edges[valid])
        return v0, inverse, valid

    def _sample_pass(
        self,
        camera: Camera,
        vertices: np.ndarray,
        tet_scalars: np.ndarray,
        face_planes: np.ndarray,
        face_heights: np.ndarray,
        first_slot: int,
        last_slot: int,
        sample_scalar: np.ndarray,
        open_mask: np.ndarray,
    ) -> int:
        """Fragment-sorted sampler: fill the pass's sample buffer.

        Enumerates only the 2D pixel columns of each active tet's clipped
        screen box, computes the analytic slot span of every surviving column
        from the tet's inward face planes, emits one fragment per in-span
        (pixel, slot) candidate, re-runs the exact barycentric inside test on
        the fragments, and resolves per-cell collisions with one combined
        sort + segmented argmin over the whole pass.  Returns the number of
        candidates visited (pixel columns plus span fragments).

        ``open_mask`` flags the pixels still accepting samples (resident,
        non-opaque lanes on the engine path).
        """
        config = self.config
        width, height = camera.width, camera.height
        v0, inverse, valid = self._inverse_barycentric(vertices)
        lo_xy, _hi_xy, box_w, box_h = self._screen_boxes(vertices, width, height)

        columns = box_w * box_h * valid
        if int(columns.sum()) == 0:
            return 0
        order = np.flatnonzero(columns > 0)
        visited = 0
        fragments: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        for start, end in chunk_ranges(columns[order], config.pair_chunk):
            chunk = order[start:end]
            visited += self._fragment_chunk(
                chunk,
                lo_xy,
                box_w,
                box_h,
                v0,
                inverse,
                tet_scalars,
                face_planes,
                face_heights,
                first_slot,
                last_slot,
                sample_scalar.shape[1],
                open_mask,
                fragments,
                image_width=width,
            )
        if fragments:
            self._resolve_fragments(fragments, len(vertices), sample_scalar)
        return visited

    def _fragment_chunk(
        self,
        chunk: np.ndarray,
        lo_xy: np.ndarray,
        box_w: np.ndarray,
        box_h: np.ndarray,
        v0: np.ndarray,
        inverse: np.ndarray,
        tet_scalars: np.ndarray,
        face_planes: np.ndarray,
        face_heights: np.ndarray,
        first_slot: int,
        last_slot: int,
        slots_per_row: int,
        open_mask: np.ndarray,
        fragments: list,
        *,
        image_width: int,
    ) -> int:
        """Emit the surviving (cell index, tet order, scalar) fragments of one chunk."""
        counts = box_w[chunk] * box_h[chunk]
        if counts.sum() == 0:
            return 0
        tet_of_pair = np.repeat(np.arange(len(chunk)), counts)
        local = segment_local_indices(counts)
        w_rep = np.repeat(box_w[chunk], counts)
        dx = local % w_rep
        dy = local // w_rep
        tids = chunk[tet_of_pair]
        px = lo_xy[tids, 0] + dx
        py = lo_xy[tids, 1] + dy
        pixel_flat = py * image_width + px
        visited = int(len(pixel_flat))

        # Early termination: drop columns on already-opaque pixels (a gather
        # through the dpp choke point, counted as sampling work).
        open_pixel = gather(open_mask, pixel_flat)
        if not np.any(open_pixel):
            return visited
        tids = tids[open_pixel]
        px, py, pixel_flat = px[open_pixel], py[open_pixel], pixel_flat[open_pixel]

        # Analytic slot span of each column (a map over the columns): each
        # inward face plane is linear in the slot coordinate at the fixed
        # pixel center, so the tet's depth interval along the column is the
        # intersection of four half-lines.
        slot_start, slot_count = map_field(
            lambda planes, heights, x, y: self._column_spans(
                planes, heights, x, y, first_slot, last_slot
            ),
            face_planes[tids],
            face_heights[tids],
            px + 0.5,
            py + 0.5,
        )
        has_span = slot_count > 0
        if not np.any(has_span):
            return visited
        tids = tids[has_span]
        px, py, pixel_flat = px[has_span], py[has_span], pixel_flat[has_span]
        slot_start, slot_count = slot_start[has_span], slot_count[has_span]

        # Expand the spans into per-(pixel, slot) fragments and re-run the
        # reference sampler's exact inside test so the accepted set -- and
        # with it the image -- matches the brute-force enumeration bit for
        # bit (the span is conservative, never exact).
        column_of = np.repeat(np.arange(len(tids)), slot_count)
        slot = slot_start[column_of] + segment_local_indices(slot_count)
        visited += int(len(slot))
        tids = tids[column_of]
        pixel_flat = pixel_flat[column_of]
        sample_position = np.column_stack([px[column_of] + 0.5, py[column_of] + 0.5, slot + 0.5])
        offset = sample_position - v0[tids]
        barycentric = np.einsum("nij,nj->ni", inverse[tids], offset)
        b0 = 1.0 - barycentric.sum(axis=1)
        inside = (barycentric >= -1e-9).all(axis=1) & (b0 >= -1e-9)
        if not np.any(inside):
            return visited
        tids = tids[inside]
        barycentric = barycentric[inside]
        values = (
            b0[inside] * tet_scalars[tids, 0]
            + barycentric[:, 0] * tet_scalars[tids, 1]
            + barycentric[:, 1] * tet_scalars[tids, 2]
            + barycentric[:, 2] * tet_scalars[tids, 3]
        )
        cell = pixel_flat[inside] * slots_per_row + (slot[inside] - first_slot)
        fragments.append((cell, tids, values))
        return visited

    @staticmethod
    def _column_spans(
        planes: np.ndarray,
        heights: np.ndarray,
        x: np.ndarray,
        y: np.ndarray,
        first_slot: int,
        last_slot: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        """First slot index and slot count of each column's conservative span.

        ``planes``/``heights`` are the per-column tet face planes ``(n, 4, 4)``
        and clearances ``(n, 4)``; ``x``/``y`` the pixel centers.  A plane
        ``(a, b, c, d)`` restricted to the column is ``base + c * s`` with
        ``base = a*x + b*y + d``; the span is the set of slot centers
        ``s = j + 0.5`` with ``base + c*s >= -slack`` for all four faces,
        clipped to the pass's ``[first_slot, last_slot)`` slot range.
        """
        base = planes[:, :, 0] * x[:, None] + planes[:, :, 1] * y[:, None] + planes[:, :, 3]
        slope = planes[:, :, 2]
        slack = _SPAN_SLACK * (1.0 + heights)
        rising = slope > 0.0
        falling = slope < 0.0
        with np.errstate(divide="ignore", invalid="ignore"):
            bound = -(base + slack) / np.where(slope == 0.0, np.inf, slope)
        span_lo = np.max(np.where(rising, bound, -np.inf), axis=1)
        span_hi = np.min(np.where(falling, bound, np.inf), axis=1)
        # A slot-parallel face decides the whole column at once.
        dead = np.any(~rising & ~falling & (base < -slack), axis=1)
        # Slot centers j + 0.5 inside [span_lo, span_hi], clipped to the pass
        # (the clip also bounds the floats so the integer casts are safe).
        start = np.clip(np.ceil(span_lo - 0.5), first_slot, last_slot).astype(np.int64)
        stop = np.clip(np.floor(span_hi - 0.5), first_slot - 1, last_slot - 1).astype(np.int64)
        count = np.where(dead, 0, np.maximum(stop - start + 1, 0))
        return start, count

    def _resolve_fragments(
        self, fragments: list, num_tets: int, sample_scalar: np.ndarray
    ) -> None:
        """Deterministic collision resolution over one pass's fragments.

        One combined sort on ``cell * num_tets + tet order`` groups the
        fragments of every sample-buffer cell contiguously (the key is unique,
        so the unstable argsort is deterministic), and a segmented argmin
        keeps the highest-ordered tet per cell -- the same winner the
        reference loop's in-order overwrite produces -- independent of how
        ``pair_chunk`` split the work.  The winners scatter into the buffer.
        """
        cell = np.concatenate([f[0] for f in fragments])
        tet_order = np.concatenate([f[1] for f in fragments])
        values = np.concatenate([f[2] for f in fragments])
        sort_key = cell * np.int64(num_tets) + tet_order
        order = np.argsort(sort_key)
        cell_sorted = cell[order]
        new_cell = np.ones(len(order), dtype=bool)
        new_cell[1:] = cell_sorted[1:] != cell_sorted[:-1]
        starts = np.flatnonzero(new_cell)
        tet_sorted = tet_order[order]
        winners = segmented_argmin((num_tets - 1 - tet_sorted).astype(np.float64), starts, tet_sorted)
        scatter(
            gather(values, order[winners]),
            cell_sorted[starts],
            sample_scalar.reshape(-1),
        )

    # -- sampling (seed reference path) -----------------------------------------------------
    def _sample_pass_reference(
        self,
        camera: Camera,
        vertices: np.ndarray,
        tet_scalars: np.ndarray,
        first_slot: int,
        last_slot: int,
        sample_scalar: np.ndarray,
        open_mask: np.ndarray,
    ) -> int:
        """Seed sampler: visit every candidate of each tet's 3D screen box.

        Returns the number of candidate samples visited.  ``open_mask`` flags
        the pixels still accepting samples (below-threshold pixels on the
        reference path).
        """
        config = self.config
        width, height = camera.width, camera.height
        v0, inverse, valid = self._inverse_barycentric(vertices)
        lo_xy, _hi_xy, box_w, box_h = self._screen_boxes(vertices, width, height)
        lo_slot = np.clip(np.floor(vertices[..., 2].min(axis=1)).astype(np.int64), first_slot, last_slot - 1)
        hi_slot = np.clip(np.ceil(vertices[..., 2].max(axis=1)).astype(np.int64), first_slot, last_slot)

        # Sub-slot tets still get one candidate sample (box_d >= 1, matching
        # the >= 1 pixel columns of _screen_boxes) so coarse meshes do not
        # leave holes in the image.
        box_d = np.maximum(hi_slot - lo_slot, 1)
        footprint = box_w * box_h * box_d * valid
        total_candidates = int(footprint.sum())
        if total_candidates == 0:
            return 0

        order = np.flatnonzero(footprint > 0)
        visited = 0
        for start, end in chunk_ranges(footprint[order], config.pair_chunk):
            chunk = order[start:end]
            visited += self._sample_chunk(
                chunk,
                lo_xy,
                box_w,
                box_h,
                lo_slot,
                box_d,
                v0,
                inverse,
                tet_scalars,
                first_slot,
                sample_scalar,
                open_mask,
                image_width=width,
            )
        return visited

    def _sample_chunk(
        self,
        chunk: np.ndarray,
        lo_xy: np.ndarray,
        box_w: np.ndarray,
        box_h: np.ndarray,
        lo_slot: np.ndarray,
        box_d: np.ndarray,
        v0: np.ndarray,
        inverse: np.ndarray,
        tet_scalars: np.ndarray,
        first_slot: int,
        sample_scalar: np.ndarray,
        open_mask: np.ndarray,
        *,
        image_width: int,
    ) -> int:
        """Evaluate the candidate samples of one chunk of tets.

        ``image_width`` is required (and keyword-only): it folds ``(px, py)``
        into the flat pixel index, and a caller omitting it used to silently
        alias every row onto the first (``py * 0 + px``).
        """
        counts = box_w[chunk] * box_h[chunk] * box_d[chunk]
        if counts.sum() == 0:
            return 0
        tet_of_pair = np.repeat(np.arange(len(chunk)), counts)
        local = segment_local_indices(counts)
        w_rep = np.repeat(box_w[chunk], counts)
        h_rep = np.repeat(box_h[chunk], counts)
        # local index -> (dx, dy, dslot)
        dx = local % w_rep
        dy = (local // w_rep) % h_rep
        dslot = local // (w_rep * h_rep)

        tids = chunk[tet_of_pair]
        px = lo_xy[tids, 0] + dx
        py = lo_xy[tids, 1] + dy
        slot = lo_slot[tids] + dslot
        pixel_flat = py * image_width + px

        # Skip samples on pixels that are already opaque (early termination);
        # consulting per-pixel state per candidate pair is a gather, so it
        # runs through the dpp choke point and is counted as sampling work.
        open_pixel = gather(open_mask, pixel_flat)
        if not np.any(open_pixel):
            return int(len(pixel_flat))
        tids = tids[open_pixel]
        px, py, slot, pixel_flat = px[open_pixel], py[open_pixel], slot[open_pixel], pixel_flat[open_pixel]

        sample_position = np.column_stack([px + 0.5, py + 0.5, slot + 0.5])
        offset = sample_position - v0[tids]
        barycentric = np.einsum("nij,nj->ni", inverse[tids], offset)
        b0 = 1.0 - barycentric.sum(axis=1)
        inside = (
            (barycentric >= -1e-9).all(axis=1)
            & (b0 >= -1e-9)
        )
        if not np.any(inside):
            return int(len(pixel_flat)) + int(np.count_nonzero(~open_pixel))

        tids = tids[inside]
        pixel_flat = pixel_flat[inside]
        slot = slot[inside]
        barycentric = barycentric[inside]
        b0 = b0[inside]
        values = (
            b0 * tet_scalars[tids, 0]
            + barycentric[:, 0] * tet_scalars[tids, 1]
            + barycentric[:, 1] * tet_scalars[tids, 2]
            + barycentric[:, 2] * tet_scalars[tids, 3]
        )
        # Writing interpolated scalars into the sample buffer is the scatter
        # of Algorithm 2's sampling phase (last write wins within a chunk).
        slots_per_row = sample_scalar.shape[1]
        scatter(
            values,
            pixel_flat * slots_per_row + (slot - first_slot),
            sample_scalar.reshape(-1),
        )
        return int(len(px)) + int(np.count_nonzero(~open_pixel))

    # -- compositing ---------------------------------------------------------------------------
    def _composite_rows(
        self,
        sample_scalar: np.ndarray,
        accum_rgb: np.ndarray,
        accum_alpha: np.ndarray,
        step_length: float,
        live: np.ndarray | None,
    ) -> None:
        """Front-to-back composite sample rows into the matching accumulator rows.

        ``live`` masks which rows may update their opacity (engine riders --
        retired but not yet compacted lanes -- must stay frozen); ``None``
        updates every row (the reference path's full-width behavior).
        """
        tf = self.transfer_function
        has_sample = ~np.isnan(sample_scalar)
        if not np.any(has_sample):
            return
        scalars = np.where(has_sample, sample_scalar, 0.0)
        rgb, alpha = tf.sample(scalars, step_length=step_length)
        alpha = np.where(has_sample, alpha, 0.0)
        transparency = np.cumprod(1.0 - alpha, axis=1)
        leading = np.concatenate([np.ones((len(alpha), 1)), transparency[:, :-1]], axis=1)
        weights = (1.0 - accum_alpha)[:, None] * leading * alpha
        accum_rgb += np.einsum("ij,ijk->ik", weights, rgb)
        merged = 1.0 - (1.0 - accum_alpha) * transparency[:, -1]
        if live is None:
            accum_alpha[:] = merged
        else:
            accum_alpha[:] = np.where(live, merged, accum_alpha)

    def visibility_depth(self, camera: Camera) -> float:
        """Distance from the camera to the mesh center (for visibility ordering)."""
        return camera.visibility_distance(self.mesh.bounds)
