"""Unstructured (tetrahedral) volume renderer via multi-pass sampling (Chapter III).

The algorithm populates a ``width x height x samples`` buffer of scalar
samples and composites it in depth.  To bound memory it can split the sample
buffer into multiple passes over depth; each pass runs four phases built from
data-parallel primitives exactly as Algorithm 2 of the dissertation describes:

1. **Pass selection** -- map a threshold over the per-tet depth ranges, reduce
   to count the active tets, exclusive-scan + reverse-index + gather to build
   the compacted active-tet list.
2. **Screen-space transformation** -- map the active tets' vertices through
   the camera transform.
3. **Sampling** -- for every active tet, visit the (pixel, depth-slot) samples
   inside its screen-space bounding box, run an inside test via barycentric
   coordinates, and write interpolated scalars into the sample buffer.  The
   sampler consults the per-pixel *lane residency* so fully opaque pixels stop
   generating work (the analogue of early ray termination).
4. **Compositing** -- map over the resident pixels' sample rows front to back,
   accumulating color and opacity per pixel.

An initialization step (run once) computes the per-tet depth ranges used by
pass selection.

Since the frontier refactor the per-pixel accumulation runs on the shared
:class:`repro.dpp.FrontierEngine`: every pixel is a lane carrying its RGBA
accumulators, one engine step executes one pass, and a pixel crossing the
early-termination opacity *retires* -- the engine compacts it out, later
passes' samplers skip it via the residency mask, and later compositing never
touches its row.  :meth:`UnstructuredVolumeRenderer.render_reference` keeps
the pre-frontier full-width loop as a differential reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dpp.frontier import FrontierEngine, FrontierLanes
from repro.dpp.instrument import InstrumentationScope
from repro.dpp.primitives import (
    exclusive_scan,
    gather,
    map_field,
    reduce_field,
    reverse_index,
    scatter,
)
from repro.geometry.mesh import UnstructuredTetMesh
from repro.geometry.transforms import Camera
from repro.rendering.framebuffer import Framebuffer
from repro.rendering.result import ObservedFeatures, RenderResult
from repro.rendering.volume.transfer_function import TransferFunction
from repro.util.packing import chunk_ranges, segment_local_indices
from repro.util.timing import Timer

__all__ = ["UnstructuredVolumeConfig", "UnstructuredVolumeRenderer"]


@dataclass
class UnstructuredVolumeConfig:
    """Tunable parameters of the unstructured volume renderer.

    Attributes
    ----------
    samples_in_depth:
        Total number of depth slots in the sample buffer (1000 in the paper's
        full-scale study).
    num_passes:
        How many passes the depth range is split into; more passes mean less
        memory per pass plus the opportunity for early ray termination
        between passes.
    early_termination_alpha:
        Per-pixel opacity at which further samples are skipped.
    pair_chunk:
        Maximum number of candidate (tet, sample) pairs evaluated per batch.
    """

    samples_in_depth: int = 200
    num_passes: int = 1
    early_termination_alpha: float = 0.98
    pair_chunk: int = 4_000_000

    def __post_init__(self) -> None:
        if self.samples_in_depth < 1:
            raise ValueError("samples_in_depth must be positive")
        if self.num_passes < 1:
            raise ValueError("num_passes must be positive")
        if not 0.0 < self.early_termination_alpha <= 1.0:
            raise ValueError("early_termination_alpha must be in (0, 1]")


class _TetPassKernel:
    """One engine step per sampling pass over the depth-slot range.

    Lanes are pixels; the kernel runs the pass-selection, screen-space, and
    sampling phases full-width (they are object-order), gathers the resident
    pixels' sample rows, and composites them into the lane accumulators.
    Early ray termination is lane retirement: the engine compacts opaque
    pixels away and the sampler's residency mask stops generating candidate
    samples for them.
    """

    output_fields = ("accum_rgb", "accum_alpha")

    def __init__(self, renderer: "UnstructuredVolumeRenderer", camera: Camera, prepared) -> None:
        self.renderer = renderer
        self.camera = camera
        (self.tet_screen_xy, self.tet_slots, self.slot_low, self.slot_high,
         self.tet_scalars, self.depth_min, self.step_length) = prepared
        config = renderer.config
        self.num_pixels = camera.width * camera.height
        self.total_slots = config.samples_in_depth
        self.slots_per_pass = int(np.ceil(self.total_slots / config.num_passes))
        self.pass_index = 0
        self.phases = {
            "pass_selection": 0.0,
            "screen_space": 0.0,
            "sampling": 0.0,
            "compositing": 0.0,
        }
        self.samples_with_data = 0

    def step(self, lanes: FrontierLanes) -> np.ndarray:
        renderer = self.renderer
        config = renderer.config
        accum_alpha = lanes["accum_alpha"]
        first_slot = self.pass_index * self.slots_per_pass
        last_slot = min(first_slot + self.slots_per_pass, self.total_slots)
        self.pass_index += 1
        if first_slot >= last_slot:
            return np.ones(len(lanes), dtype=bool)
        final_pass = self.pass_index >= config.num_passes or last_slot >= self.total_slots

        with Timer() as timer, InstrumentationScope("volume.pass_selection"):
            active = renderer._pass_selection(self.slot_low, self.slot_high, first_slot, last_slot)
        self.phases["pass_selection"] += timer.elapsed
        if len(active) == 0:
            done = np.ones(len(lanes), dtype=bool) if final_pass else lanes.retired.copy()
            return done

        with Timer() as timer, InstrumentationScope("volume.screen_space"):
            # Screen-space tet vertices: (px, py, depth-slot).
            active_xy = self.tet_screen_xy[active]
            active_slots = self.tet_slots[active]
            vertices = np.concatenate([active_xy, active_slots[..., None]], axis=2)
            active_scalars = self.tet_scalars[active]
        self.phases["screen_space"] += timer.elapsed

        with Timer() as timer, InstrumentationScope("volume.sampling"):
            # Lane residency is the sampler's early-termination mask: only
            # pixels still resident (and not retired) receive samples.
            open_mask = np.zeros(self.num_pixels, dtype=bool)
            open_mask[lanes.lane_ids[~lanes.retired]] = True
            sample_scalar = np.full((self.num_pixels, last_slot - first_slot), np.nan)
            renderer._sample_pass(
                self.camera, vertices, active_scalars, first_slot, last_slot,
                sample_scalar, open_mask,
            )
        self.phases["sampling"] += timer.elapsed

        with Timer() as timer, InstrumentationScope("volume.compositing"):
            rows = gather(sample_scalar, lanes.lane_ids)
            self.samples_with_data += int(np.count_nonzero(~np.isnan(rows)))
            live = ~lanes.retired
            renderer._composite_rows(
                rows, lanes["accum_rgb"], accum_alpha, self.step_length, live
            )
        self.phases["compositing"] += timer.elapsed

        if final_pass:
            return np.ones(len(lanes), dtype=bool)
        return accum_alpha >= config.early_termination_alpha


@dataclass
class UnstructuredVolumeRenderer:
    """Multi-pass sampling volume renderer for tetrahedral meshes."""

    mesh: UnstructuredTetMesh
    field_name: str
    transfer_function: TransferFunction | None = None
    config: UnstructuredVolumeConfig = field(default_factory=UnstructuredVolumeConfig)

    def __post_init__(self) -> None:
        if self.field_name not in self.mesh.point_fields:
            raise KeyError(f"mesh has no point field named {self.field_name!r}")
        if self.transfer_function is None:
            values = np.asarray(self.mesh.point_fields[self.field_name])
            self.transfer_function = TransferFunction(
                scalar_range=(float(values.min()), float(values.max())),
                unit_distance=max(self.mesh.bounds.diagonal / 100.0, 1e-12),
            )

    # -- phases ------------------------------------------------------------------------
    def _initialization(self, camera: Camera) -> tuple[np.ndarray, np.ndarray, np.ndarray, float, float]:
        """Per-tet screen vertices plus depth-slot ranges (the init step of Algorithm 2)."""
        points = self.mesh.points()
        screen, _ = camera.world_to_screen(points)
        depth = camera.depth_along_view(points)
        corner = self.mesh.connectivity
        tet_screen_xy = screen[corner][..., :2]            # (nt, 4, 2)
        tet_depth = depth[corner]                           # (nt, 4)
        depth_min = float(depth.min())
        depth_max = float(depth.max())
        return tet_screen_xy, tet_depth, corner, depth_min, depth_max

    def _pass_selection(self, slot_low: np.ndarray, slot_high: np.ndarray, first_slot: int, last_slot: int) -> np.ndarray:
        """Compacted indices of tets overlapping the pass's depth-slot range."""
        flags = map_field(
            lambda lo, hi: ((hi >= first_slot) & (lo < last_slot)).astype(np.int64),
            slot_low,
            slot_high,
        )
        count = int(reduce_field(flags, "add"))
        if count == 0:
            return np.empty(0, dtype=np.int64)
        scanned = exclusive_scan(flags)
        indices = reverse_index(scanned, flags.astype(bool))
        return gather(np.arange(len(flags), dtype=np.int64), indices)

    def _prepare(self, camera: Camera):
        """Initialization phase shared by the engine and reference paths."""
        total_slots = self.config.samples_in_depth
        tet_screen_xy, tet_depth, corner, depth_min, depth_max = self._initialization(camera)
        depth_extent = max(depth_max - depth_min, 1e-12)
        tet_slots = (tet_depth - depth_min) / depth_extent * total_slots
        slot_low = tet_slots.min(axis=1)
        slot_high = tet_slots.max(axis=1)
        scalars = np.asarray(self.mesh.point_fields[self.field_name], dtype=np.float64)
        tet_scalars = scalars[corner]
        step_length = depth_extent / total_slots
        return (tet_screen_xy, tet_slots, slot_low, slot_high, tet_scalars, depth_min, step_length)

    # -- main entry point -----------------------------------------------------------------
    def render(self, camera: Camera) -> RenderResult:
        """Volume render the tetrahedral mesh from ``camera`` on the frontier engine."""
        framebuffer = Framebuffer(camera.width, camera.height)
        features = ObservedFeatures(objects=self.mesh.num_cells)
        num_pixels = camera.width * camera.height

        with Timer() as timer, InstrumentationScope("volume.initialization"):
            prepared = self._prepare(camera)
        initialization_seconds = timer.elapsed

        kernel = _TetPassKernel(self, camera, prepared)
        lanes = FrontierLanes(
            np.arange(num_pixels, dtype=np.int64),
            {
                "accum_rgb": np.zeros((num_pixels, 3)),
                "accum_alpha": np.zeros(num_pixels),
            },
        )
        outputs = {
            "accum_rgb": np.zeros((num_pixels, 3)),
            "accum_alpha": np.zeros(num_pixels),
        }
        with Timer() as engine_timer, InstrumentationScope("volume.compositing"):
            FrontierEngine().run(kernel, lanes, outputs)
        accum_rgb = outputs["accum_rgb"]
        accum_alpha = outputs["accum_alpha"]
        phases = {"initialization": initialization_seconds, **kernel.phases}
        # The engine's flush/compaction work runs between kernel steps, so it
        # lands in no kernel-timed phase; attribute the residual to
        # compositing (it is per-pixel accumulator movement).
        engine_overhead = max(engine_timer.elapsed - sum(kernel.phases.values()), 0.0)
        phases["compositing"] += engine_overhead

        features.active_pixels = int(np.count_nonzero(accum_alpha > 0.0))
        features.samples_per_ray = kernel.samples_with_data / max(features.active_pixels, 1)
        features.cells_spanned = int(round(self.mesh.num_cells ** (1.0 / 3.0)))

        rgba = np.concatenate([accum_rgb, accum_alpha[:, None]], axis=1)
        written = np.flatnonzero(accum_alpha > 0.0)
        # Covered pixels report the nearest data depth, clamped at the camera
        # (behind-camera points must not produce negative layer depths).
        framebuffer.write_pixels(written, rgba[written], np.full(len(written), max(prepared[5], 0.0)))
        return RenderResult(framebuffer, phases, features, technique="volume_unstructured")

    def render_reference(self, camera: Camera) -> RenderResult:
        """Pre-frontier full-width multi-pass loop, kept as the differential
        reference for the engine path (golden-image tests and the volume
        throughput benchmark's seed baseline)."""
        config = self.config
        phases = {
            "initialization": 0.0,
            "pass_selection": 0.0,
            "screen_space": 0.0,
            "sampling": 0.0,
            "compositing": 0.0,
        }
        framebuffer = Framebuffer(camera.width, camera.height)
        features = ObservedFeatures(objects=self.mesh.num_cells)
        num_pixels = camera.width * camera.height
        total_slots = config.samples_in_depth

        with Timer() as timer:
            (tet_screen_xy, tet_slots, slot_low, slot_high, tet_scalars,
             depth_min, step_length) = self._prepare(camera)
        phases["initialization"] = timer.elapsed

        accum_rgb = np.zeros((num_pixels, 3))
        accum_alpha = np.zeros(num_pixels)
        slots_per_pass = int(np.ceil(total_slots / config.num_passes))
        samples_with_data = 0
        cells_touched_max = 0

        for pass_index in range(config.num_passes):
            first_slot = pass_index * slots_per_pass
            last_slot = min(first_slot + slots_per_pass, total_slots)
            if first_slot >= last_slot:
                break

            with Timer() as timer:
                active = self._pass_selection(slot_low, slot_high, first_slot, last_slot)
            phases["pass_selection"] += timer.elapsed
            if len(active) == 0:
                continue

            with Timer() as timer:
                # Screen-space tet vertices: (px, py, depth-slot).
                active_xy = tet_screen_xy[active]
                active_slots = tet_slots[active]
                vertices = np.concatenate([active_xy, active_slots[..., None]], axis=2)
                active_scalars = tet_scalars[active]
            phases["screen_space"] += timer.elapsed

            with Timer() as timer:
                sample_scalar = np.full((num_pixels, last_slot - first_slot), np.nan)
                open_mask = accum_alpha < config.early_termination_alpha
                pairs = self._sample_pass(
                    camera, vertices, active_scalars, first_slot, last_slot,
                    sample_scalar, open_mask,
                )
                cells_touched_max = max(cells_touched_max, pairs)
            phases["sampling"] += timer.elapsed

            with Timer() as timer:
                samples_with_data += int(np.count_nonzero(~np.isnan(sample_scalar)))
                self._composite_rows(sample_scalar, accum_rgb, accum_alpha, step_length, None)
            phases["compositing"] += timer.elapsed

        features.active_pixels = int(np.count_nonzero(accum_alpha > 0.0))
        features.samples_per_ray = samples_with_data / max(features.active_pixels, 1)
        features.cells_spanned = int(round(self.mesh.num_cells ** (1.0 / 3.0)))

        rgba = np.concatenate([accum_rgb, accum_alpha[:, None]], axis=1)
        written = np.flatnonzero(accum_alpha > 0.0)
        framebuffer.write_pixels(written, rgba[written], np.full(len(written), max(depth_min, 0.0)))
        return RenderResult(framebuffer, phases, features, technique="volume_unstructured")

    # -- sampling ---------------------------------------------------------------------------
    def _sample_pass(
        self,
        camera: Camera,
        vertices: np.ndarray,
        tet_scalars: np.ndarray,
        first_slot: int,
        last_slot: int,
        sample_scalar: np.ndarray,
        open_mask: np.ndarray,
    ) -> int:
        """Fill the pass's sample buffer; returns the number of candidate samples visited.

        ``open_mask`` flags the pixels still accepting samples (resident,
        non-opaque lanes on the engine path; below-threshold pixels on the
        reference path).
        """
        config = self.config
        width, height = camera.width, camera.height

        # Inverse barycentric matrices: columns are the edge vectors from v0.
        v0 = vertices[:, 0]
        edges = np.stack(
            [vertices[:, 1] - v0, vertices[:, 2] - v0, vertices[:, 3] - v0], axis=2
        )                                                    # (nt, 3, 3)
        determinant = np.linalg.det(edges)
        valid = np.abs(determinant) > 1e-12
        inverse = np.zeros_like(edges)
        if np.any(valid):
            inverse[valid] = np.linalg.inv(edges[valid])

        # Integer pixel bounding boxes and slot ranges, clipped to the image and pass.
        lo_xy = np.floor(vertices[..., :2].min(axis=1)).astype(np.int64)
        hi_xy = np.ceil(vertices[..., :2].max(axis=1)).astype(np.int64)
        lo_xy[:, 0] = np.clip(lo_xy[:, 0], 0, width - 1)
        lo_xy[:, 1] = np.clip(lo_xy[:, 1], 0, height - 1)
        hi_xy[:, 0] = np.clip(hi_xy[:, 0], 0, width)
        hi_xy[:, 1] = np.clip(hi_xy[:, 1], 0, height)
        lo_slot = np.clip(np.floor(vertices[..., 2].min(axis=1)).astype(np.int64), first_slot, last_slot - 1)
        hi_slot = np.clip(np.ceil(vertices[..., 2].max(axis=1)).astype(np.int64), first_slot, last_slot)

        # Sub-pixel / sub-slot tets still get one candidate sample so coarse
        # meshes do not leave holes in the image.
        box_w = np.maximum(hi_xy[:, 0] - lo_xy[:, 0], 1)
        box_h = np.maximum(hi_xy[:, 1] - lo_xy[:, 1], 1)
        box_d = np.maximum(hi_slot - lo_slot, 1)
        footprint = box_w * box_h * box_d * valid
        total_candidates = int(footprint.sum())
        if total_candidates == 0:
            return 0

        order = np.flatnonzero(footprint > 0)
        visited = 0
        for start, end in chunk_ranges(footprint[order], config.pair_chunk):
            chunk = order[start:end]
            visited += self._sample_chunk(
                chunk, lo_xy, box_w, box_h, lo_slot, box_d, v0, inverse, tet_scalars,
                first_slot, sample_scalar, open_mask, width,
            )
        return visited

    def _sample_chunk(
        self,
        chunk: np.ndarray,
        lo_xy: np.ndarray,
        box_w: np.ndarray,
        box_h: np.ndarray,
        lo_slot: np.ndarray,
        box_d: np.ndarray,
        v0: np.ndarray,
        inverse: np.ndarray,
        tet_scalars: np.ndarray,
        first_slot: int,
        sample_scalar: np.ndarray,
        open_mask: np.ndarray,
        image_width: int = 0,
    ) -> int:
        """Evaluate the candidate samples of one chunk of tets."""
        counts = box_w[chunk] * box_h[chunk] * box_d[chunk]
        if counts.sum() == 0:
            return 0
        tet_of_pair = np.repeat(np.arange(len(chunk)), counts)
        local = segment_local_indices(counts)
        w_rep = np.repeat(box_w[chunk], counts)
        h_rep = np.repeat(box_h[chunk], counts)
        # local index -> (dx, dy, dslot)
        dx = local % w_rep
        dy = (local // w_rep) % h_rep
        dslot = local // (w_rep * h_rep)

        tids = chunk[tet_of_pair]
        px = lo_xy[tids, 0] + dx
        py = lo_xy[tids, 1] + dy
        slot = lo_slot[tids] + dslot
        pixel_flat = py * image_width + px

        # Skip samples on pixels that are already opaque (early termination);
        # consulting per-pixel state per candidate pair is a gather, so it
        # runs through the dpp choke point and is counted as sampling work.
        open_pixel = gather(open_mask, pixel_flat)
        if not np.any(open_pixel):
            return int(len(pixel_flat))
        tids = tids[open_pixel]
        px, py, slot, pixel_flat = px[open_pixel], py[open_pixel], slot[open_pixel], pixel_flat[open_pixel]

        sample_position = np.column_stack([px + 0.5, py + 0.5, slot + 0.5])
        offset = sample_position - v0[tids]
        barycentric = np.einsum("nij,nj->ni", inverse[tids], offset)
        b0 = 1.0 - barycentric.sum(axis=1)
        inside = (
            (barycentric >= -1e-9).all(axis=1)
            & (b0 >= -1e-9)
        )
        if not np.any(inside):
            return int(len(pixel_flat)) + int(np.count_nonzero(~open_pixel))

        tids = tids[inside]
        pixel_flat = pixel_flat[inside]
        slot = slot[inside]
        barycentric = barycentric[inside]
        b0 = b0[inside]
        values = (
            b0 * tet_scalars[tids, 0]
            + barycentric[:, 0] * tet_scalars[tids, 1]
            + barycentric[:, 1] * tet_scalars[tids, 2]
            + barycentric[:, 2] * tet_scalars[tids, 3]
        )
        # Writing interpolated scalars into the sample buffer is the scatter
        # of Algorithm 2's sampling phase (last write wins within a chunk).
        slots_per_row = sample_scalar.shape[1]
        scatter(
            values,
            pixel_flat * slots_per_row + (slot - first_slot),
            sample_scalar.reshape(-1),
        )
        return int(len(px)) + int(np.count_nonzero(~open_pixel))

    # -- compositing ---------------------------------------------------------------------------
    def _composite_rows(
        self,
        sample_scalar: np.ndarray,
        accum_rgb: np.ndarray,
        accum_alpha: np.ndarray,
        step_length: float,
        live: np.ndarray | None,
    ) -> None:
        """Front-to-back composite sample rows into the matching accumulator rows.

        ``live`` masks which rows may update their opacity (engine riders --
        retired but not yet compacted lanes -- must stay frozen); ``None``
        updates every row (the reference path's full-width behavior).
        """
        tf = self.transfer_function
        has_sample = ~np.isnan(sample_scalar)
        if not np.any(has_sample):
            return
        scalars = np.where(has_sample, sample_scalar, 0.0)
        rgb, alpha = tf.sample(scalars, step_length=step_length)
        alpha = np.where(has_sample, alpha, 0.0)
        transparency = np.cumprod(1.0 - alpha, axis=1)
        leading = np.concatenate([np.ones((len(alpha), 1)), transparency[:, :-1]], axis=1)
        weights = (1.0 - accum_alpha)[:, None] * leading * alpha
        accum_rgb += np.einsum("ij,ijk->ik", weights, rgb)
        merged = 1.0 - (1.0 - accum_alpha) * transparency[:, -1]
        if live is None:
            accum_alpha[:] = merged
        else:
            accum_alpha[:] = np.where(live, merged, accum_alpha)

    def visibility_depth(self, camera: Camera) -> float:
        """Distance from the camera to the mesh center (for visibility ordering)."""
        return camera.visibility_distance(self.mesh.bounds)
