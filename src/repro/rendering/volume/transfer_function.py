"""Transfer functions: scalar value to color and opacity.

Volume rendering "starts with a 'transfer function', which specifies a mapping
of opacity and color for each value in a scalar field" (Section 3.2).  The
:class:`TransferFunction` couples a color table with a piecewise-linear
opacity curve and pre-corrects opacity for the sampling step length so the
composited result is (approximately) independent of how densely a ray is
sampled.
"""

from __future__ import annotations

import numpy as np

from repro.rendering.color import ColorTable, normalize_scalars

__all__ = ["TransferFunction"]


class TransferFunction:
    """Color + opacity lookup for volume rendering.

    Parameters
    ----------
    color_table:
        Color table mapping normalized values to RGB.
    opacity_points:
        Sequence of ``(position, opacity)`` control points over [0, 1]; the
        opacity curve is piecewise linear between them.  The default ramp
        makes low values transparent and high values mostly opaque.
    scalar_range:
        Raw scalar range mapped to [0, 1]; computed from the data when None.
    unit_distance:
        The world-space distance over which the stored opacity applies; the
        per-sample opacity is corrected with ``1 - (1 - a) ** (step / unit)``.
    """

    def __init__(
        self,
        color_table: ColorTable | None = None,
        opacity_points: list[tuple[float, float]] | None = None,
        scalar_range: tuple[float, float] | None = None,
        unit_distance: float = 1.0,
    ) -> None:
        self.color_table = color_table or ColorTable("cool-to-warm")
        points = opacity_points or [(0.0, 0.0), (0.3, 0.02), (0.7, 0.25), (1.0, 0.9)]
        points = sorted(points)
        self._positions = np.array([p for p, _ in points])
        self._opacities = np.clip(np.array([a for _, a in points]), 0.0, 1.0)
        if len(self._positions) < 2:
            raise ValueError("a transfer function needs at least two opacity points")
        self.scalar_range = scalar_range
        if unit_distance <= 0:
            raise ValueError("unit_distance must be positive")
        self.unit_distance = float(unit_distance)

    def normalize(self, scalars: np.ndarray) -> np.ndarray:
        """Normalize raw scalars against the configured (or data) range."""
        if self.scalar_range is None:
            return normalize_scalars(scalars)
        return normalize_scalars(scalars, self.scalar_range[0], self.scalar_range[1])

    def opacity(self, normalized: np.ndarray, step_length: float | None = None) -> np.ndarray:
        """Opacity for normalized values, optionally corrected for sample spacing."""
        normalized = np.clip(np.asarray(normalized, dtype=np.float64), 0.0, 1.0)
        alpha = np.interp(normalized, self._positions, self._opacities)
        if step_length is not None and step_length > 0:
            alpha = 1.0 - np.power(1.0 - np.clip(alpha, 0.0, 0.999999), step_length / self.unit_distance)
        return alpha

    def color(self, normalized: np.ndarray) -> np.ndarray:
        """RGB for normalized values."""
        return self.color_table.map(normalized)

    def sample(
        self, scalars: np.ndarray, step_length: float | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Map raw scalars to ``(rgb, alpha)`` with optional opacity correction."""
        normalized = self.normalize(scalars)
        return self.color(normalized), self.opacity(normalized, step_length)
