"""Volume renderers: structured ray casting and unstructured multi-pass sampling."""

from repro.rendering.volume.transfer_function import TransferFunction
from repro.rendering.volume.structured import StructuredVolumeRenderer, StructuredVolumeConfig
from repro.rendering.volume.unstructured import (
    UnstructuredVolumeRenderer,
    UnstructuredVolumeConfig,
)

__all__ = [
    "StructuredVolumeConfig",
    "StructuredVolumeRenderer",
    "TransferFunction",
    "UnstructuredVolumeConfig",
    "UnstructuredVolumeRenderer",
]
