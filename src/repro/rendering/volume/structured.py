"""Structured-grid volume renderer (ray caster) on the frontier kernel engine.

This is the Chapter V volume renderer: "a ray caster for regular grids".  Each
pixel casts a ray through the uniform grid; samples are taken at regular steps
between the ray's entry and exit points, classified through the transfer
function, and composited front to back with early ray termination.

Since the frontier refactor the hot loop is a
:class:`repro.dpp.FrontierKernel`: every active ray is a lane in a
:class:`repro.dpp.FrontierLanes` SoA (origin, direction, entry/exit span,
color/opacity accumulators, sample counter), one engine step composites one
slab of samples, and a ray retires when it exhausts its ``[near, far)`` span
or crosses the early-termination opacity -- at which point the
:class:`repro.dpp.FrontierEngine` compacts it out of the frontier, so the
remaining slabs touch only surviving rays.  Sample evaluation only runs for
the in-span samples of each slab (the old monolithic loop evaluated the full
``rays x slab`` rectangle out to the *longest* ray's span) and is routed
through :func:`repro.dpp.primitives.map_field`, so the primitive-level
instrumentation (:class:`repro.dpp.instrument.OpCounters`) finally observes
volume sampling traffic.

The performance model (Eq. 5.3) splits the cost into a cell-frequency term
(``c0 * AP * CS`` -- locating and loading cell data) and a sample-frequency
term (``c1 * AP * SPR`` -- interpolation and compositing); the renderer
reports the observed ``AP``, ``SPR``, and ``CS`` values accordingly.

:meth:`StructuredVolumeRenderer.render_reference` keeps the pre-frontier
monolithic numpy loop as a differential reference (the volume analogue of
``brute_force_closest_hit``); the engine path must match it to within
floating-point roundoff.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dpp.frontier import FrontierEngine, FrontierLanes
from repro.dpp.instrument import InstrumentationScope
from repro.dpp.primitives import map_field
from repro.geometry.aabb import ray_box_intervals
from repro.geometry.mesh import UniformGrid
from repro.geometry.transforms import Camera
from repro.rendering.framebuffer import Framebuffer
from repro.rendering.rays import RayEmitter
from repro.rendering.result import ObservedFeatures, RenderResult
from repro.rendering.volume.transfer_function import TransferFunction
from repro.util.timing import Timer

__all__ = ["StructuredVolumeConfig", "StructuredVolumeRenderer"]


@dataclass
class StructuredVolumeConfig:
    """Tunable parameters of the structured volume renderer.

    Attributes
    ----------
    samples_in_depth:
        Number of sample steps across the volume diagonal (the study uses
        1000 at full scale; the default here is sized for the reproduction's
        smaller images).
    early_termination_alpha:
        Accumulated opacity at which a ray stops sampling.
    sample_chunk:
        Number of depth samples composited per vectorized slab (one frontier
        engine step), bounding memory use.
    """

    samples_in_depth: int = 200
    early_termination_alpha: float = 0.98
    sample_chunk: int = 32


class _Trilinear:
    """Trilinear point-field interpolation with flat-index gathers."""

    def __init__(self, grid: UniformGrid, volume: np.ndarray) -> None:
        nx, ny, nz = grid.dims
        self.nx, self.ny, self.nz = nx, ny, nz
        self.origin = grid.origin
        self.spacing = grid.spacing
        self.flat = np.ascontiguousarray(volume).reshape(-1)

    def sample_grid_coords(self, cx: np.ndarray, cy: np.ndarray, cz: np.ndarray) -> np.ndarray:
        """Interpolate at grid-space coordinates given as flat component arrays.

        Operating on contiguous per-component arrays avoids the strided
        column views of an ``(n, 3)`` position matrix in the hot loop.
        """
        nx, ny = self.nx, self.ny
        cx = np.clip(cx, 0.0, nx - 1.000001)
        cy = np.clip(cy, 0.0, ny - 1.000001)
        cz = np.clip(cz, 0.0, self.nz - 1.000001)
        ix = cx.astype(np.int64)
        iy = cy.astype(np.int64)
        iz = cz.astype(np.int64)
        fx = cx - ix
        fy = cy - iy
        fz = cz - iz
        # Flat row-major (z, y, x) addressing replaces triple fancy indexing;
        # the fetched corners and the interpolation arithmetic are identical.
        index = (iz * ny + iy) * nx + ix
        flat = self.flat
        zstride = nx * ny
        c000 = flat.take(index)
        c100 = flat.take(index + 1)
        c010 = flat.take(index + nx)
        c110 = flat.take(index + nx + 1)
        c001 = flat.take(index + zstride)
        c101 = flat.take(index + zstride + 1)
        c011 = flat.take(index + zstride + nx)
        c111 = flat.take(index + zstride + nx + 1)
        omx = 1 - fx
        omy = 1 - fy
        c00 = c000 * omx + c100 * fx
        c10 = c010 * omx + c110 * fx
        c01 = c001 * omx + c101 * fx
        c11 = c011 * omx + c111 * fx
        c0 = c00 * omy + c10 * fy
        c1 = c01 * omy + c11 * fy
        return c0 * (1 - fz) + c1 * fz

    def __call__(self, positions: np.ndarray) -> np.ndarray:
        """Interpolate the field at world ``positions`` of shape ``(n, 3)``."""
        coords = (positions - self.origin[None, :]) / self.spacing[None, :]
        return self.sample_grid_coords(
            np.ascontiguousarray(coords[:, 0]),
            np.ascontiguousarray(coords[:, 1]),
            np.ascontiguousarray(coords[:, 2]),
        )


class _SlabSampleKernel:
    """The structured ray caster's slab loop as a frontier kernel.

    One step takes ``sample_chunk`` depth samples for every resident lane,
    classifies the in-span ones through the transfer function, and composites
    them front to back into the per-lane accumulators.  Early ray termination
    and span exhaustion are expressed as lane retirement, turning both into
    engine compaction instead of per-slab fancy-indexed ``alive`` subsets.
    """

    output_fields = ("accum_rgb", "accum_alpha", "samples")

    def __init__(
        self,
        trilinear: _Trilinear,
        transfer_function: TransferFunction,
        step_length: float,
        chunk: int,
        max_samples: int,
        early_termination_alpha: float,
    ) -> None:
        self.trilinear = trilinear
        self.transfer_function = transfer_function
        self.step_length = step_length
        self.chunk = chunk
        self.max_samples = max_samples
        self.early_termination_alpha = early_termination_alpha
        self.start = 0

    def _classify(self, cx: np.ndarray, cy: np.ndarray, cz: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Interpolate + transfer-function lookup for one batch of samples."""
        scalars = self.trilinear.sample_grid_coords(cx, cy, cz)
        return self.transfer_function.sample(scalars, step_length=self.step_length)

    def step(self, lanes: FrontierLanes) -> np.ndarray:
        s = lanes.state
        near = s["near"]
        far = s["far"]
        accum_alpha = s["accum_alpha"]
        n = len(lanes)
        count = min(self.chunk, self.max_samples - self.start)
        if count <= 0:
            return np.ones(n, dtype=bool)
        offsets = (self.start + np.arange(count) + 0.5) * self.step_length
        t = near[:, None] + offsets[None, :]
        inside = t < far[:, None]
        any_retired = bool(lanes.retired.any())
        live = ~lanes.retired
        if any_retired:
            inside &= live[:, None]
        sel = np.flatnonzero(inside.ravel())
        if len(sel):
            lane_of = sel // count
            t_sel = t.ravel().take(sel)
            cx = s["gox"].take(lane_of) + t_sel * s["gdx"].take(lane_of)
            cy = s["goy"].take(lane_of) + t_sel * s["gdy"].take(lane_of)
            cz = s["goz"].take(lane_of) + t_sel * s["gdz"].take(lane_of)
            # The interpolation + classification of every in-span sample runs
            # through the map primitive: the op-counter choke point observes
            # exactly SPR work, one element per sample taken.
            rgb_sel, alpha_sel = map_field(self._classify, cx, cy, cz)
            transmittance = np.full(n * count, 1.0)
            transmittance[sel] = 1.0 - alpha_sel
            transmittance = transmittance.reshape(n, count)
            # Front-to-back compositing across this slab of samples: the
            # weight of sample j is (remaining opacity) * (transparency
            # accumulated before j within the slab) * alpha_j, evaluated only
            # at the in-span samples.
            transparency = np.cumprod(transmittance, axis=1)
            leading = np.empty((n, count))
            leading[:, 0] = 1.0
            leading[:, 1:] = transparency[:, :-1]
            weight_sel = (
                (1.0 - accum_alpha).take(lane_of)
                * leading.ravel().take(sel)
                * alpha_sel
            )
            row_counts = inside.sum(axis=1)
            rows = np.flatnonzero(row_counts)
            seg_starts = np.zeros(len(rows), dtype=np.int64)
            np.cumsum(row_counts.take(rows)[:-1], out=seg_starts[1:])
            contrib = weight_sel[:, None] * rgb_sel
            s["accum_rgb"][rows] += np.add.reduceat(contrib, seg_starts, axis=0)
            if any_retired:
                accum_alpha[:] = np.where(
                    live, 1.0 - (1.0 - accum_alpha) * transparency[:, -1], accum_alpha
                )
            else:
                accum_alpha[:] = 1.0 - (1.0 - accum_alpha) * transparency[:, -1]
            s["samples"] += row_counts
        self.start += count
        # Retirement: opacity crossed the early-termination threshold, or no
        # future sample of this lane can land inside its [near, far) span.
        exhausted = near + (self.start + 0.5) * self.step_length >= far
        return (accum_alpha >= self.early_termination_alpha) | exhausted


@dataclass
class StructuredVolumeRenderer:
    """Ray-casting volume renderer for :class:`~repro.geometry.mesh.UniformGrid` data."""

    grid: UniformGrid
    field_name: str
    transfer_function: TransferFunction | None = None
    config: StructuredVolumeConfig = field(default_factory=StructuredVolumeConfig)

    def __post_init__(self) -> None:
        if self.field_name not in self.grid.point_fields:
            raise KeyError(f"grid has no point field named {self.field_name!r}")
        if self.transfer_function is None:
            values = np.asarray(self.grid.point_fields[self.field_name])
            self.transfer_function = TransferFunction(
                scalar_range=(float(values.min()), float(values.max())),
                unit_distance=max(self.grid.bounds.diagonal / 100.0, 1e-12),
            )
        self._volume = self.grid.point_field_as_volume(self.field_name)
        self._trilinear_kernel = _Trilinear(self.grid, self._volume)

    # -- sampling helpers -----------------------------------------------------------
    def _ray_box_interval(
        self, origins: np.ndarray, directions: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Entry/exit parameters of each ray with the grid bounds (clamped at 0).

        Delegates to the shared slab test in :mod:`repro.geometry.aabb`; the
        previous private copy here mapped tiny *negative* direction
        components to a *positive* huge reciprocal, producing wrong
        entry/exit intervals for grazing rays.
        """
        bounds = self.grid.bounds
        t_near, t_far = ray_box_intervals(origins, directions, bounds.low, bounds.high)
        return np.maximum(t_near, 0.0), t_far

    def _trilinear(self, positions: np.ndarray) -> np.ndarray:
        """Trilinearly interpolate the point field at world positions."""
        return self._trilinear_kernel(np.asarray(positions, dtype=np.float64))

    # -- main entry point -----------------------------------------------------------------
    def render(self, camera: Camera) -> RenderResult:
        """Volume render the grid from ``camera`` on the frontier engine."""
        config = self.config
        phases: dict[str, float] = {}
        framebuffer = Framebuffer(camera.width, camera.height)
        features = ObservedFeatures(objects=self.grid.num_cells)

        with Timer() as timer, InstrumentationScope("volume.ray_setup"):
            emitter = RayEmitter(camera)
            active_ids, origins, directions, near, far = emitter.emit_clipped(self.grid.bounds)
        phases["ray_setup"] = timer.elapsed

        n_active = len(active_ids)
        features.active_pixels = int(n_active)
        features.cells_spanned = int(max(self.grid.cell_dims))
        if n_active == 0:
            return RenderResult(framebuffer, phases, features, technique="volume_structured")

        step = self.grid.bounds.diagonal / config.samples_in_depth

        with Timer() as timer, InstrumentationScope("volume.sampling"):
            max_samples = int(np.ceil((far - near).max() / step))
            kernel = _SlabSampleKernel(
                self._trilinear_kernel,
                self.transfer_function,
                step,
                config.sample_chunk,
                max_samples,
                config.early_termination_alpha,
            )
            # Per-lane ray state is carried in *grid-space* components (one
            # contiguous array per component), so each sample needs only a
            # fused multiply-add per axis to reach interpolation coordinates.
            grid_origin = self.grid.origin
            spacing = self.grid.spacing
            lanes = FrontierLanes(
                np.arange(n_active, dtype=np.int64),
                {
                    "gox": (origins[:, 0] - grid_origin[0]) / spacing[0],
                    "goy": (origins[:, 1] - grid_origin[1]) / spacing[1],
                    "goz": (origins[:, 2] - grid_origin[2]) / spacing[2],
                    "gdx": directions[:, 0] / spacing[0],
                    "gdy": directions[:, 1] / spacing[1],
                    "gdz": directions[:, 2] / spacing[2],
                    "near": near,
                    "far": far,
                    "accum_rgb": np.zeros((n_active, 3)),
                    "accum_alpha": np.zeros(n_active),
                    "samples": np.zeros(n_active, dtype=np.int64),
                },
            )
            outputs = {
                "accum_rgb": np.zeros((n_active, 3)),
                "accum_alpha": np.zeros(n_active),
                "samples": np.zeros(n_active, dtype=np.int64),
            }
            FrontierEngine().run(kernel, lanes, outputs)
            accum_rgb = outputs["accum_rgb"]
            accum_alpha = outputs["accum_alpha"]
        phases["sampling"] = timer.elapsed
        features.samples_per_ray = int(outputs["samples"].sum()) / max(n_active, 1)

        with Timer() as timer, InstrumentationScope("volume.compositing"):
            rgba = np.concatenate([accum_rgb, accum_alpha[:, None]], axis=1)
            depth = np.where(accum_alpha > 0.0, near, np.inf)
            framebuffer.write_pixels(active_ids, rgba, depth)
        phases["compositing"] = timer.elapsed
        return RenderResult(framebuffer, phases, features, technique="volume_structured")

    def _trilinear_reference(self, positions: np.ndarray) -> np.ndarray:
        """The pre-refactor trilinear interpolator (triple fancy indexing),
        kept verbatim so :meth:`render_reference` times the original loop."""
        grid = self.grid
        nx, ny, nz = grid.dims
        coords = (positions - grid.origin[None, :]) / grid.spacing[None, :]
        coords[:, 0] = np.clip(coords[:, 0], 0.0, nx - 1.000001)
        coords[:, 1] = np.clip(coords[:, 1], 0.0, ny - 1.000001)
        coords[:, 2] = np.clip(coords[:, 2], 0.0, nz - 1.000001)
        i0 = coords.astype(np.int64)
        frac = coords - i0
        ix, iy, iz = i0[:, 0], i0[:, 1], i0[:, 2]
        fx, fy, fz = frac[:, 0], frac[:, 1], frac[:, 2]
        volume = self._volume
        c000 = volume[iz, iy, ix]
        c100 = volume[iz, iy, ix + 1]
        c010 = volume[iz, iy + 1, ix]
        c110 = volume[iz, iy + 1, ix + 1]
        c001 = volume[iz + 1, iy, ix]
        c101 = volume[iz + 1, iy, ix + 1]
        c011 = volume[iz + 1, iy + 1, ix]
        c111 = volume[iz + 1, iy + 1, ix + 1]
        c00 = c000 * (1 - fx) + c100 * fx
        c10 = c010 * (1 - fx) + c110 * fx
        c01 = c001 * (1 - fx) + c101 * fx
        c11 = c011 * (1 - fx) + c111 * fx
        c0 = c00 * (1 - fy) + c10 * fy
        c1 = c01 * (1 - fy) + c11 * fy
        return c0 * (1 - fz) + c1 * fz

    def render_reference(self, camera: Camera) -> RenderResult:
        """Pre-frontier monolithic sampling loop, kept as the differential
        reference for the engine path (golden-image tests and the volume
        throughput benchmark's seed baseline)."""
        config = self.config
        phases: dict[str, float] = {}
        framebuffer = Framebuffer(camera.width, camera.height)
        features = ObservedFeatures(objects=self.grid.num_cells)

        with Timer() as timer:
            pixel_ids = np.arange(camera.width * camera.height, dtype=np.int64)
            origins, directions = camera.generate_rays(pixel_ids)
            t_near, t_far = self._ray_box_interval(origins, directions)
            active = t_far > t_near
        phases["ray_setup"] = timer.elapsed

        active_ids = np.flatnonzero(active)
        features.active_pixels = int(len(active_ids))
        features.cells_spanned = int(max(self.grid.cell_dims))
        if len(active_ids) == 0:
            return RenderResult(framebuffer, phases, features, technique="volume_structured")

        step = self.grid.bounds.diagonal / config.samples_in_depth
        tf = self.transfer_function

        with Timer() as timer:
            origins = origins[active_ids]
            directions = directions[active_ids]
            near = t_near[active_ids]
            far = t_far[active_ids]
            max_samples = int(np.ceil((far - near).max() / step))
            accum_rgb = np.zeros((len(active_ids), 3))
            accum_alpha = np.zeros(len(active_ids))
            samples_taken = 0
            alive = np.arange(len(active_ids))
            for start in range(0, max_samples, config.sample_chunk):
                if len(alive) == 0:
                    break
                count = min(config.sample_chunk, max_samples - start)
                offsets = (start + np.arange(count) + 0.5) * step
                t = near[alive][:, None] + offsets[None, :]
                inside = t < far[alive][:, None]
                if not np.any(inside):
                    break
                positions = (
                    origins[alive][:, None, :] + t[..., None] * directions[alive][:, None, :]
                ).reshape(-1, 3)
                scalars = self._trilinear_reference(positions).reshape(len(alive), count)
                rgb, alpha = tf.sample(scalars, step_length=step)
                alpha = np.where(inside, alpha, 0.0)
                samples_taken += int(inside.sum())
                # Front-to-back compositing across this slab of samples.
                transparency = np.cumprod(1.0 - alpha, axis=1)
                leading = np.concatenate(
                    [np.ones((len(alive), 1)), transparency[:, :-1]], axis=1
                )
                weights = (1.0 - accum_alpha[alive])[:, None] * leading * alpha
                accum_rgb[alive] += np.einsum("ij,ijk->ik", weights, rgb)
                accum_alpha[alive] = 1.0 - (1.0 - accum_alpha[alive]) * transparency[:, -1]
                # Early ray termination between slabs.
                alive = alive[accum_alpha[alive] < config.early_termination_alpha]
        phases["sampling"] = timer.elapsed
        features.samples_per_ray = samples_taken / max(len(active_ids), 1)

        with Timer() as timer:
            rgba = np.concatenate([accum_rgb, accum_alpha[:, None]], axis=1)
            depth = np.where(accum_alpha > 0.0, near, np.inf)
            framebuffer.write_pixels(active_ids, rgba, depth)
        phases["compositing"] = timer.elapsed
        return RenderResult(framebuffer, phases, features, technique="volume_structured")

    def visibility_depth(self, camera: Camera) -> float:
        """Distance from the camera to the volume center (for visibility ordering)."""
        return camera.visibility_distance(self.grid.bounds)
