"""Structured-grid volume renderer (ray caster).

This is the Chapter V volume renderer: "a ray caster for regular grids".  Each
pixel casts a ray through the uniform grid; samples are taken at regular steps
between the ray's entry and exit points, classified through the transfer
function, and composited front to back with early ray termination.

The performance model (Eq. 5.3) splits the cost into a cell-frequency term
(``c0 * AP * CS`` -- locating and loading cell data) and a sample-frequency
term (``c1 * AP * SPR`` -- interpolation and compositing); the renderer
reports the observed ``AP``, ``SPR``, and ``CS`` values accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dpp.instrument import InstrumentationScope
from repro.geometry.mesh import UniformGrid
from repro.geometry.transforms import Camera
from repro.rendering.framebuffer import Framebuffer
from repro.rendering.result import ObservedFeatures, RenderResult
from repro.rendering.volume.transfer_function import TransferFunction
from repro.util.timing import Timer

__all__ = ["StructuredVolumeConfig", "StructuredVolumeRenderer"]


@dataclass
class StructuredVolumeConfig:
    """Tunable parameters of the structured volume renderer.

    Attributes
    ----------
    samples_in_depth:
        Number of sample steps across the volume diagonal (the study uses
        1000 at full scale; the default here is sized for the reproduction's
        smaller images).
    early_termination_alpha:
        Accumulated opacity at which a ray stops sampling.
    sample_chunk:
        Number of depth samples composited per vectorized slab, bounding
        memory use.
    """

    samples_in_depth: int = 200
    early_termination_alpha: float = 0.98
    sample_chunk: int = 32


@dataclass
class StructuredVolumeRenderer:
    """Ray-casting volume renderer for :class:`~repro.geometry.mesh.UniformGrid` data."""

    grid: UniformGrid
    field_name: str
    transfer_function: TransferFunction | None = None
    config: StructuredVolumeConfig = field(default_factory=StructuredVolumeConfig)

    def __post_init__(self) -> None:
        if self.field_name not in self.grid.point_fields:
            raise KeyError(f"grid has no point field named {self.field_name!r}")
        if self.transfer_function is None:
            values = np.asarray(self.grid.point_fields[self.field_name])
            self.transfer_function = TransferFunction(
                scalar_range=(float(values.min()), float(values.max())),
                unit_distance=max(self.grid.bounds.diagonal / 100.0, 1e-12),
            )
        self._volume = self.grid.point_field_as_volume(self.field_name)

    # -- sampling helpers -----------------------------------------------------------
    def _ray_box_interval(
        self, origins: np.ndarray, directions: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Entry/exit parameters of each ray with the grid bounds (clamped at 0)."""
        bounds = self.grid.bounds
        inv = np.where(np.abs(directions) < 1e-300, 1e300, 1.0 / np.where(directions == 0, 1.0, directions))
        t0 = (bounds.low[None, :] - origins) * inv
        t1 = (bounds.high[None, :] - origins) * inv
        t_near = np.maximum(np.minimum(t0, t1).max(axis=1), 0.0)
        t_far = np.maximum(t0, t1).min(axis=1)
        return t_near, t_far

    def _trilinear(self, positions: np.ndarray) -> np.ndarray:
        """Trilinearly interpolate the point field at world positions."""
        grid = self.grid
        nx, ny, nz = grid.dims
        coords = (positions - grid.origin[None, :]) / grid.spacing[None, :]
        coords[:, 0] = np.clip(coords[:, 0], 0.0, nx - 1.000001)
        coords[:, 1] = np.clip(coords[:, 1], 0.0, ny - 1.000001)
        coords[:, 2] = np.clip(coords[:, 2], 0.0, nz - 1.000001)
        i0 = coords.astype(np.int64)
        frac = coords - i0
        ix, iy, iz = i0[:, 0], i0[:, 1], i0[:, 2]
        fx, fy, fz = frac[:, 0], frac[:, 1], frac[:, 2]
        volume = self._volume
        c000 = volume[iz, iy, ix]
        c100 = volume[iz, iy, ix + 1]
        c010 = volume[iz, iy + 1, ix]
        c110 = volume[iz, iy + 1, ix + 1]
        c001 = volume[iz + 1, iy, ix]
        c101 = volume[iz + 1, iy, ix + 1]
        c011 = volume[iz + 1, iy + 1, ix]
        c111 = volume[iz + 1, iy + 1, ix + 1]
        c00 = c000 * (1 - fx) + c100 * fx
        c10 = c010 * (1 - fx) + c110 * fx
        c01 = c001 * (1 - fx) + c101 * fx
        c11 = c011 * (1 - fx) + c111 * fx
        c0 = c00 * (1 - fy) + c10 * fy
        c1 = c01 * (1 - fy) + c11 * fy
        return c0 * (1 - fz) + c1 * fz

    # -- main entry point -----------------------------------------------------------------
    def render(self, camera: Camera) -> RenderResult:
        """Volume render the grid from ``camera``."""
        config = self.config
        phases: dict[str, float] = {}
        framebuffer = Framebuffer(camera.width, camera.height)
        features = ObservedFeatures(objects=self.grid.num_cells)

        with Timer() as timer, InstrumentationScope("volume.ray_setup"):
            pixel_ids = np.arange(camera.width * camera.height, dtype=np.int64)
            origins, directions = camera.generate_rays(pixel_ids)
            t_near, t_far = self._ray_box_interval(origins, directions)
            active = t_far > t_near
        phases["ray_setup"] = timer.elapsed

        active_ids = np.flatnonzero(active)
        features.active_pixels = int(len(active_ids))
        features.cells_spanned = int(max(self.grid.cell_dims))
        if len(active_ids) == 0:
            return RenderResult(framebuffer, phases, features, technique="volume_structured")

        step = self.grid.bounds.diagonal / config.samples_in_depth
        tf = self.transfer_function

        with Timer() as timer, InstrumentationScope("volume.sampling"):
            origins = origins[active_ids]
            directions = directions[active_ids]
            near = t_near[active_ids]
            far = t_far[active_ids]
            max_samples = int(np.ceil((far - near).max() / step))
            accum_rgb = np.zeros((len(active_ids), 3))
            accum_alpha = np.zeros(len(active_ids))
            samples_taken = 0
            alive = np.arange(len(active_ids))
            for start in range(0, max_samples, config.sample_chunk):
                if len(alive) == 0:
                    break
                count = min(config.sample_chunk, max_samples - start)
                offsets = (start + np.arange(count) + 0.5) * step
                t = near[alive][:, None] + offsets[None, :]
                inside = t < far[alive][:, None]
                if not np.any(inside):
                    break
                positions = (
                    origins[alive][:, None, :] + t[..., None] * directions[alive][:, None, :]
                ).reshape(-1, 3)
                scalars = self._trilinear(positions).reshape(len(alive), count)
                rgb, alpha = tf.sample(scalars, step_length=step)
                alpha = np.where(inside, alpha, 0.0)
                samples_taken += int(inside.sum())
                # Front-to-back compositing across this slab of samples.
                transparency = np.cumprod(1.0 - alpha, axis=1)
                leading = np.concatenate(
                    [np.ones((len(alive), 1)), transparency[:, :-1]], axis=1
                )
                weights = (1.0 - accum_alpha[alive])[:, None] * leading * alpha
                accum_rgb[alive] += np.einsum("ij,ijk->ik", weights, rgb)
                accum_alpha[alive] = 1.0 - (1.0 - accum_alpha[alive]) * transparency[:, -1]
                # Early ray termination between slabs.
                alive = alive[accum_alpha[alive] < config.early_termination_alpha]
        phases["sampling"] = timer.elapsed
        features.samples_per_ray = samples_taken / max(len(active_ids), 1)

        with Timer() as timer, InstrumentationScope("volume.compositing"):
            rgba = np.concatenate([accum_rgb, accum_alpha[:, None]], axis=1)
            depth = np.where(accum_alpha > 0.0, near, np.inf)
            framebuffer.write_pixels(active_ids, rgba, depth)
        phases["compositing"] = timer.elapsed
        return RenderResult(framebuffer, phases, features, technique="volume_structured")

    def visibility_depth(self, camera: Camera) -> float:
        """Distance from the camera to the volume center (for visibility ordering)."""
        return float(np.linalg.norm(self.grid.bounds.center - camera.position))
