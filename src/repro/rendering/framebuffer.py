"""Framebuffers: RGBA color plus depth, with compositing-friendly accessors.

Every local render produces a :class:`Framebuffer`; in a distributed setting
(Chapter V) each MPI task's framebuffer becomes a sub-image handed to the
compositor together with per-pixel depth (surface renderers) or a visibility
order (volume renderers).
"""

from __future__ import annotations

import numpy as np

__all__ = ["Framebuffer"]


class Framebuffer:
    """A ``height x width`` RGBA + depth image.

    Color is stored as float64 in [0, 1] with straight (non-premultiplied)
    alpha; depth is the normalized hit distance with ``inf`` marking
    background pixels.
    """

    def __init__(self, width: int, height: int, background: tuple[float, float, float, float] = (1.0, 1.0, 1.0, 0.0)) -> None:
        if width < 1 or height < 1:
            raise ValueError("framebuffer dimensions must be positive")
        self.width = int(width)
        self.height = int(height)
        self.background = np.asarray(background, dtype=np.float64)
        self.rgba = np.empty((self.height, self.width, 4), dtype=np.float64)
        self.depth = np.empty((self.height, self.width), dtype=np.float64)
        self.clear()

    # -- basic operations -----------------------------------------------------
    def clear(self) -> None:
        """Reset color to the background and depth to infinity."""
        self.rgba[...] = self.background
        self.depth[...] = np.inf

    @property
    def num_pixels(self) -> int:
        return self.width * self.height

    def active_pixels(self) -> int:
        """Number of pixels written by rendering (finite depth or alpha > 0)."""
        return int(np.count_nonzero(np.isfinite(self.depth) | (self.rgba[..., 3] > 0.0)))

    # -- flat pixel-id addressing (row-major, y * width + x) ----------------------
    def write_pixels(self, pixel_ids: np.ndarray, rgba: np.ndarray, depth: np.ndarray | None = None) -> None:
        """Write colors (and optionally depth) at flat pixel indices."""
        pixel_ids = np.asarray(pixel_ids, dtype=np.int64)
        flat_rgba = self.rgba.reshape(-1, 4)
        flat_rgba[pixel_ids] = rgba
        if depth is not None:
            self.depth.reshape(-1)[pixel_ids] = depth

    def read_pixels(self, pixel_ids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Read ``(rgba, depth)`` at flat pixel indices."""
        pixel_ids = np.asarray(pixel_ids, dtype=np.int64)
        return self.rgba.reshape(-1, 4)[pixel_ids], self.depth.reshape(-1)[pixel_ids]

    # -- compositing helpers ---------------------------------------------------------
    def blend_over(self, other: "Framebuffer") -> "Framebuffer":
        """Composite ``self`` over ``other`` using straight-alpha OVER."""
        if (self.width, self.height) != (other.width, other.height):
            raise ValueError("framebuffer dimensions must match for blending")
        result = Framebuffer(self.width, self.height, tuple(other.background))
        alpha_top = self.rgba[..., 3:4]
        result.rgba[..., :3] = self.rgba[..., :3] * alpha_top + other.rgba[..., :3] * (1.0 - alpha_top)
        result.rgba[..., 3] = self.rgba[..., 3] + other.rgba[..., 3] * (1.0 - self.rgba[..., 3])
        result.depth = np.minimum(self.depth, other.depth)
        return result

    def depth_composite(self, other: "Framebuffer") -> "Framebuffer":
        """Per-pixel nearest-depth selection (z-buffer compositing)."""
        if (self.width, self.height) != (other.width, other.height):
            raise ValueError("framebuffer dimensions must match for compositing")
        result = Framebuffer(self.width, self.height, tuple(self.background))
        take_self = self.depth <= other.depth
        result.rgba = np.where(take_self[..., None], self.rgba, other.rgba)
        result.depth = np.where(take_self, self.depth, other.depth)
        return result

    # -- export ---------------------------------------------------------------------
    def to_rgb8(self) -> np.ndarray:
        """8-bit RGB image with the alpha channel composited over the background color."""
        alpha = self.rgba[..., 3:4]
        rgb = self.rgba[..., :3] * alpha + self.background[:3] * (1.0 - alpha)
        return np.clip(rgb * 255.0 + 0.5, 0, 255).astype(np.uint8)

    def copy(self) -> "Framebuffer":
        """Deep copy."""
        duplicate = Framebuffer(self.width, self.height, tuple(self.background))
        duplicate.rgba = self.rgba.copy()
        duplicate.depth = self.depth.copy()
        return duplicate
