"""Barycentric-sampling rasterizer.

The Chapter V study implements rasterization "based on sampling using
barycentric coordinates": every triangle is culled against the view, projected
to screen space, and the pixels inside its screen-space bounding box are
tested with barycentric coordinates; passing pixels fight a depth test.

The performance model (Eq. 5.2) splits the cost into exactly the two stages
implemented here:

* **culling** -- a map over all ``O`` objects classifying them as visible or
  not (``c0 * O``), and
* **rasterization** -- work proportional to the number of visible objects
  multiplied by the average pixel footprint considered per triangle
  (``c1 * VO * PPT``).

The renderer reports the observed ``VO`` and ``PPT`` so the study harness can
fit and validate those terms.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dpp.instrument import InstrumentationScope
from repro.geometry.transforms import Camera
from repro.rendering.framebuffer import Framebuffer
from repro.rendering.result import ObservedFeatures, RenderResult
from repro.rendering.scene import Scene
from repro.util.packing import chunk_ranges, segment_local_indices
from repro.util.timing import Timer

__all__ = ["RasterizerConfig", "Rasterizer"]


@dataclass
class RasterizerConfig:
    """Tunable parameters of the rasterizer.

    Attributes
    ----------
    backface_culling:
        Discard triangles facing away from the camera.  Scientific surfaces
        are usually rendered double-sided, so this defaults to off.
    pair_chunk:
        Maximum number of (triangle, pixel) candidate pairs processed per
        batch, bounding peak memory.
    """

    backface_culling: bool = False
    pair_chunk: int = 2_000_000


@dataclass
class Rasterizer:
    """Object-order renderer over a triangle :class:`~repro.rendering.scene.Scene`."""

    scene: Scene
    config: RasterizerConfig = field(default_factory=RasterizerConfig)

    def render(self, camera: Camera) -> RenderResult:
        """Rasterize the scene from ``camera``."""
        mesh = self.scene.mesh
        phases: dict[str, float] = {}
        framebuffer = Framebuffer(camera.width, camera.height)
        features = ObservedFeatures(objects=mesh.num_triangles)
        if mesh.num_triangles == 0:
            return RenderResult(framebuffer, phases, features, technique="raster")

        # -- culling phase: classify every triangle against the view -------------
        with Timer() as timer, InstrumentationScope("raster.culling"):
            screen, w = camera.world_to_screen(mesh.vertices)
            corner_ids = mesh.triangles
            corner_screen = screen[corner_ids]              # (nt, 3, 3)
            corner_w = w[corner_ids]                        # (nt, 3)

            in_front = np.all(corner_w > 0.0, axis=1)
            lo = corner_screen[..., :2].min(axis=1)
            hi = corner_screen[..., :2].max(axis=1)
            on_screen = (
                (hi[:, 0] >= 0.0)
                & (lo[:, 0] < camera.width)
                & (hi[:, 1] >= 0.0)
                & (lo[:, 1] < camera.height)
            )
            visible = in_front & on_screen
            if self.config.backface_culling:
                edge1 = corner_screen[:, 1, :2] - corner_screen[:, 0, :2]
                edge2 = corner_screen[:, 2, :2] - corner_screen[:, 0, :2]
                signed_area = edge1[:, 0] * edge2[:, 1] - edge1[:, 1] * edge2[:, 0]
                visible &= signed_area <= 0.0
        phases["culling"] = timer.elapsed

        visible_ids = np.flatnonzero(visible)
        features.visible_objects = int(len(visible_ids))
        if len(visible_ids) == 0:
            return RenderResult(framebuffer, phases, features, technique="raster")

        # -- rasterization phase: barycentric sampling of each footprint ------------
        with Timer() as timer, InstrumentationScope("raster.rasterize"):
            pixels_considered, fragments = self._rasterize_visible(
                camera, framebuffer, visible_ids, corner_screen, corner_ids
            )
        phases["rasterize"] = timer.elapsed

        features.pixels_per_triangle = pixels_considered / max(len(visible_ids), 1)
        features.active_pixels = framebuffer.active_pixels()
        phases.setdefault("fragments", 0.0)
        return RenderResult(framebuffer, phases, features, technique="raster")

    def visibility_depth(self, camera: Camera) -> float:
        """Distance from the camera to the scene center (for visibility ordering)."""
        return camera.visibility_distance(self.scene.mesh.bounds)

    # -- internals ---------------------------------------------------------------------
    def _rasterize_visible(
        self,
        camera: Camera,
        framebuffer: Framebuffer,
        visible_ids: np.ndarray,
        corner_screen: np.ndarray,
        corner_ids: np.ndarray,
    ) -> tuple[int, int]:
        """Depth-tested barycentric rasterization of the visible triangles.

        Returns ``(pixels_considered, fragments_written)``.
        """
        width, height = camera.width, camera.height
        vertex_colors = self.scene.vertex_colors()

        tri_screen = corner_screen[visible_ids]             # (nv, 3, 3)
        tri_corners = corner_ids[visible_ids]

        # Per-triangle headlight Lambert factor (double-sided) approximating
        # the basic OpenGL shading the study's rasterizer performs.
        normals = self.scene.mesh.normals()[visible_ids]
        centroids = self.scene.mesh.centroids()[visible_ids]
        to_camera = camera.position[None, :] - centroids
        to_camera /= np.maximum(np.linalg.norm(to_camera, axis=1, keepdims=True), 1e-12)
        lambert = 0.3 + 0.7 * np.abs(np.einsum("ij,ij->i", normals, to_camera))

        # Integer pixel bounding boxes, clipped to the viewport.
        lo = np.floor(tri_screen[..., :2].min(axis=1)).astype(np.int64)
        hi = np.ceil(tri_screen[..., :2].max(axis=1)).astype(np.int64)
        lo[:, 0] = np.clip(lo[:, 0], 0, width - 1)
        lo[:, 1] = np.clip(lo[:, 1], 0, height - 1)
        hi[:, 0] = np.clip(hi[:, 0], 0, width)
        hi[:, 1] = np.clip(hi[:, 1], 0, height)
        box_width = np.maximum(hi[:, 0] - lo[:, 0], 0)
        box_height = np.maximum(hi[:, 1] - lo[:, 1], 0)
        footprint = box_width * box_height
        pixels_considered = int(footprint.sum())

        # Candidate (triangle, pixel) pairs, processed in bounded chunks.
        order = np.flatnonzero(footprint > 0)
        fragments_written = 0
        for start, end in chunk_ranges(footprint[order], self.config.pair_chunk):
            fragments_written += self._rasterize_chunk(
                framebuffer, order[start:end], tri_screen, tri_corners, lo, box_width,
                box_height, vertex_colors, lambert, width,
            )
        return pixels_considered, fragments_written

    def _rasterize_chunk(
        self,
        framebuffer: Framebuffer,
        chunk: np.ndarray,
        tri_screen: np.ndarray,
        tri_corners: np.ndarray,
        lo: np.ndarray,
        box_width: np.ndarray,
        box_height: np.ndarray,
        vertex_colors: np.ndarray,
        lambert: np.ndarray,
        image_width: int,
    ) -> int:
        """Rasterize one chunk of triangles; returns the number of fragments written."""
        widths = box_width[chunk]
        heights = box_height[chunk]
        counts = widths * heights
        if counts.sum() == 0:
            return 0
        # Expand each triangle into its candidate pixel list.
        tri_of_pair = np.repeat(np.arange(len(chunk)), counts)
        local = segment_local_indices(counts)
        px = lo[chunk][tri_of_pair, 0] + (local % np.repeat(widths, counts))
        py = lo[chunk][tri_of_pair, 1] + (local // np.repeat(widths, counts))
        sample = np.column_stack([px + 0.5, py + 0.5])

        tri_ids = chunk[tri_of_pair]
        v0 = tri_screen[tri_ids, 0]
        v1 = tri_screen[tri_ids, 1]
        v2 = tri_screen[tri_ids, 2]

        # 2D barycentric coordinates of the pixel centers.
        d00 = v1[:, :2] - v0[:, :2]
        d01 = v2[:, :2] - v0[:, :2]
        dp = sample - v0[:, :2]
        denom = d00[:, 0] * d01[:, 1] - d00[:, 1] * d01[:, 0]
        safe_denom = np.where(np.abs(denom) < 1e-12, 1.0, denom)
        bary_u = (dp[:, 0] * d01[:, 1] - dp[:, 1] * d01[:, 0]) / safe_denom
        bary_v = (d00[:, 0] * dp[:, 1] - d00[:, 1] * dp[:, 0]) / safe_denom
        bary_w = 1.0 - bary_u - bary_v
        inside = (
            (np.abs(denom) >= 1e-12)
            & (bary_u >= 0.0)
            & (bary_v >= 0.0)
            & (bary_w >= 0.0)
        )
        if not np.any(inside):
            return 0

        depth = bary_w * v0[:, 2] + bary_u * v1[:, 2] + bary_v * v2[:, 2]
        corner = tri_corners[tri_ids]
        colors = (
            bary_w[:, None] * vertex_colors[corner[:, 0]]
            + bary_u[:, None] * vertex_colors[corner[:, 1]]
            + bary_v[:, None] * vertex_colors[corner[:, 2]]
        ) * lambert[tri_ids, None]
        pixel_flat = py * image_width + px

        pixel_flat = pixel_flat[inside]
        depth = depth[inside]
        colors = colors[inside]

        # Depth-test resolution: keep the nearest fragment per pixel.
        order = np.lexsort((depth, pixel_flat))
        pixel_sorted = pixel_flat[order]
        keep = np.ones(len(pixel_sorted), dtype=bool)
        keep[1:] = pixel_sorted[1:] != pixel_sorted[:-1]
        winners = order[keep]

        flat_depth = framebuffer.depth.reshape(-1)
        flat_rgba = framebuffer.rgba.reshape(-1, 4)
        target = pixel_flat[winners]
        closer = depth[winners] < flat_depth[target]
        target = target[closer]
        flat_depth[target] = depth[winners][closer]
        flat_rgba[target, :3] = colors[winners][closer]
        flat_rgba[target, 3] = 1.0
        return int(len(target))
