"""Object-order rasterizer (the third Chapter V rendering technique)."""

from repro.rendering.rasterizer.raster import Rasterizer, RasterizerConfig

__all__ = ["Rasterizer", "RasterizerConfig"]
