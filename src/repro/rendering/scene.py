"""Scene description shared by the surface renderers.

A :class:`Scene` bundles the triangle geometry with the lights and material
parameters used for shading, and with the color table that maps the surface
scalar.  The ray tracer and the rasterizer consume the same scene object so
their images (and the feasibility comparisons built on them, Figure 15) are
directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.triangles import TriangleMesh
from repro.rendering.color import ColorTable

__all__ = ["Light", "Material", "Scene"]


@dataclass
class Light:
    """A point light with an intensity in [0, 1]."""

    position: np.ndarray
    intensity: float = 1.0

    def __post_init__(self) -> None:
        self.position = np.asarray(self.position, dtype=np.float64)
        if self.position.shape != (3,):
            raise ValueError("light position must be a 3-vector")
        if not 0.0 <= self.intensity <= 10.0:
            raise ValueError("light intensity out of range")


@dataclass
class Material:
    """Blinn-Phong material coefficients."""

    ambient: float = 0.25
    diffuse: float = 0.65
    specular: float = 0.2
    shininess: float = 16.0


@dataclass
class Scene:
    """Triangle geometry plus lighting for the surface renderers."""

    mesh: TriangleMesh
    lights: list[Light] = field(default_factory=list)
    material: Material = field(default_factory=Material)
    color_table: ColorTable = field(default_factory=ColorTable)
    scalar_range: tuple[float, float] | None = None

    def __post_init__(self) -> None:
        if not self.lights:
            # Default headlight placed above and diagonal to the geometry.
            bounds = self.mesh.bounds
            offset = np.array([1.0, 1.5, 1.0]) * max(bounds.diagonal, 1.0)
            self.lights = [Light(bounds.center + offset)]
        if self.scalar_range is None and self.mesh.scalars is not None and len(self.mesh.scalars):
            self.scalar_range = (
                float(np.min(self.mesh.scalars)),
                float(np.max(self.mesh.scalars)),
            )

    @property
    def num_triangles(self) -> int:
        return self.mesh.num_triangles

    def vertex_colors(self) -> np.ndarray:
        """Per-vertex RGB colors from the scalar field (flat gray without scalars)."""
        if self.mesh.scalars is None:
            return np.full((self.mesh.num_vertices, 3), 0.7)
        vmin, vmax = self.scalar_range if self.scalar_range else (None, None)
        return self.color_table.map_scalars(self.mesh.scalars, vmin, vmax)
