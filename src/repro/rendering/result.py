"""Render results: framebuffer plus the measurements the performance models need.

Every renderer in :mod:`repro.rendering` returns a :class:`RenderResult`
containing

* the :class:`~repro.rendering.framebuffer.Framebuffer`,
* per-phase wall-clock times (the regression targets), and
* the *observed model input variables* of Section 5.3 -- Objects, Active
  Pixels, Visible Objects, Pixels Per Triangle, Samples Per Ray, Cells
  Spanned -- so the study harness can fit models against observed inputs and
  the mapping of Section 5.8 can be validated against them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.rendering.framebuffer import Framebuffer

__all__ = ["ObservedFeatures", "RenderResult"]


@dataclass
class ObservedFeatures:
    """Observed values of the model input variables for one local render.

    Attributes mirror Section 5.3's variable list.  Variables that do not
    apply to a renderer are left at zero (e.g. ``samples_per_ray`` for the
    ray tracer).
    """

    objects: int = 0
    active_pixels: int = 0
    visible_objects: int = 0
    pixels_per_triangle: float = 0.0
    samples_per_ray: float = 0.0
    cells_spanned: int = 0

    def as_dict(self) -> dict[str, float]:
        """Dictionary keyed by the short names used in the model equations."""
        return {
            "O": float(self.objects),
            "AP": float(self.active_pixels),
            "VO": float(self.visible_objects),
            "PPT": float(self.pixels_per_triangle),
            "SPR": float(self.samples_per_ray),
            "CS": float(self.cells_spanned),
        }


@dataclass
class RenderResult:
    """Output of one local render.

    Attributes
    ----------
    framebuffer:
        The rendered image.
    phase_seconds:
        Wall-clock seconds per algorithm phase (e.g. ``bvh_build``,
        ``trace``, ``shade`` for the ray tracer).
    features:
        Observed model-input variables for this render.
    technique:
        Short name of the renderer (``"raytrace"``, ``"raster"``,
        ``"volume_structured"``, ``"volume_unstructured"``).
    """

    framebuffer: Framebuffer
    phase_seconds: dict[str, float] = field(default_factory=dict)
    features: ObservedFeatures = field(default_factory=ObservedFeatures)
    technique: str = ""

    @property
    def total_seconds(self) -> float:
        """Total rendering time (sum of every phase)."""
        return float(sum(self.phase_seconds.values()))

    def seconds_excluding(self, *phases: str) -> float:
        """Total time with the named phases removed.

        The ray-tracing model separates the one-time BVH build from the
        per-frame cost (Eq. 5.1), so repeated-render analyses exclude the
        ``bvh_build`` phase through this helper.
        """
        return float(
            sum(seconds for name, seconds in self.phase_seconds.items() if name not in phases)
        )
