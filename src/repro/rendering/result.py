"""Render results: framebuffer plus the measurements the performance models need.

Every renderer in :mod:`repro.rendering` returns a :class:`RenderResult`
containing

* the :class:`~repro.rendering.framebuffer.Framebuffer`,
* per-phase wall-clock times (the regression targets), and
* the *observed model input variables* of Section 5.3 -- Objects, Active
  Pixels, Visible Objects, Pixels Per Triangle, Samples Per Ray, Cells
  Spanned -- so the study harness can fit models against observed inputs and
  the mapping of Section 5.8 can be validated against them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.rendering.framebuffer import Framebuffer

__all__ = [
    "ObservedFeatures",
    "RenderResult",
    "PHASE_GROUPS",
    "PHASE_GROUP_ORDER",
]

#: Canonical cross-renderer phase groups, in pipeline order.
PHASE_GROUP_ORDER = ("setup", "sample", "shade", "composite")

#: The standardized phase-name schema: every phase a renderer may report,
#: mapped to its canonical group.  ``RenderResult`` rejects unregistered
#: names, so downstream consumers (the in situ mini-app, the compositing
#: harness, and the modeling corpus) read one schema instead of ad-hoc
#: per-renderer dictionaries; per-family names stay paper-faithful (the
#: unstructured renderer still reports Algorithm 2's phases) but roll up
#: into the same four groups everywhere.
PHASE_GROUPS = {
    # acceleration/locator builds and per-frame set-up
    "bvh_build": "setup",
    "preprocess": "setup",
    "initialization": "setup",
    "ray_setup": "setup",
    "culling": "setup",
    "pass_selection": "setup",
    "screen_space": "setup",
    "sort": "setup",
    # the per-sample / per-fragment hot loop
    "trace": "sample",
    "sampling": "sample",
    "rasterize": "sample",
    "march": "sample",
    "compaction": "sample",
    # shading-only stages (surface renderers)
    "shade_setup": "shade",
    "shade": "shade",
    "ambient_occlusion": "shade",
    "shadows": "shade",
    "reflections": "shade",
    # framebuffer accumulation / blending
    "accumulate": "composite",
    "compositing": "composite",
    "fragments": "composite",
}


def _validate_depth_convention(framebuffer: Framebuffer) -> None:
    """Enforce the one depth convention every renderer family must follow.

    A pixel that received color (alpha > 0) carries a finite, non-negative
    depth; a miss (alpha == 0) carries ``inf``.  Renderers used to disagree
    (``np.inf`` vs ``0.0`` for misses), which silently corrupted z-buffer
    compositing across renderer families.
    """
    alpha = framebuffer.rgba[..., 3]
    depth = framebuffer.depth
    finite = np.isfinite(depth)
    covered = alpha > 0.0
    if np.any(finite & ~covered):
        raise ValueError(
            "depth convention violated: finite depth on an uncovered pixel "
            "(misses must keep depth == inf)"
        )
    if np.any(covered & ~finite):
        raise ValueError(
            "depth convention violated: covered pixel without a finite depth"
        )
    if np.any(finite & (depth < 0.0)):
        raise ValueError(
            "depth convention violated: negative depth (clamp behind-camera "
            "geometry before writing)"
        )


@dataclass
class ObservedFeatures:
    """Observed values of the model input variables for one local render.

    Attributes mirror Section 5.3's variable list.  Variables that do not
    apply to a renderer are left at zero (e.g. ``samples_per_ray`` for the
    ray tracer).
    """

    objects: int = 0
    active_pixels: int = 0
    visible_objects: int = 0
    pixels_per_triangle: float = 0.0
    samples_per_ray: float = 0.0
    cells_spanned: int = 0

    def as_dict(self) -> dict[str, float]:
        """Dictionary keyed by the short names used in the model equations."""
        return {
            "O": float(self.objects),
            "AP": float(self.active_pixels),
            "VO": float(self.visible_objects),
            "PPT": float(self.pixels_per_triangle),
            "SPR": float(self.samples_per_ray),
            "CS": float(self.cells_spanned),
        }


@dataclass
class RenderResult:
    """Output of one local render.

    Attributes
    ----------
    framebuffer:
        The rendered image.
    phase_seconds:
        Wall-clock seconds per algorithm phase (e.g. ``bvh_build``,
        ``trace``, ``shade`` for the ray tracer).
    features:
        Observed model-input variables for this render.
    technique:
        Short name of the renderer (``"raytrace"``, ``"raster"``,
        ``"volume_structured"``, ``"volume_unstructured"``).
    """

    framebuffer: Framebuffer
    phase_seconds: dict[str, float] = field(default_factory=dict)
    features: ObservedFeatures = field(default_factory=ObservedFeatures)
    technique: str = ""

    def __post_init__(self) -> None:
        unknown = sorted(name for name in self.phase_seconds if name not in PHASE_GROUPS)
        if unknown:
            raise ValueError(
                f"unregistered phase names {unknown}; the standardized schema "
                f"accepts {sorted(PHASE_GROUPS)} (extend PHASE_GROUPS to add one)"
            )
        _validate_depth_convention(self.framebuffer)

    @property
    def total_seconds(self) -> float:
        """Total rendering time (sum of every phase)."""
        return float(sum(self.phase_seconds.values()))

    def grouped_seconds(self) -> dict[str, float]:
        """Phase seconds rolled up into the canonical cross-renderer groups.

        Every renderer family reports the same four keys (``setup``,
        ``sample``, ``shade``, ``composite``), so consumers can compare
        techniques without knowing per-family phase names.
        """
        groups = {group: 0.0 for group in PHASE_GROUP_ORDER}
        for name, seconds in self.phase_seconds.items():
            groups[PHASE_GROUPS[name]] += seconds
        return groups

    def seconds_excluding(self, *phases: str) -> float:
        """Total time with the named phases removed.

        The ray-tracing model separates the one-time BVH build from the
        per-frame cost (Eq. 5.1), so repeated-render analyses exclude the
        ``bvh_build`` phase through this helper.
        """
        return float(
            sum(seconds for name, seconds in self.phase_seconds.items() if name not in phases)
        )
