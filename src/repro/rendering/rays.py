"""The shared ray emitter: one camera-ray front-end for every image-order renderer.

Before the frontier refactor each image-order renderer carried its own ray
setup -- the ray tracer's Morton-ordered (optionally super-sampled) generator,
and private ray/bounds interval clips in the structured volume caster and the
connectivity ray-caster baseline (one of which lost the sign of tiny negative
direction components).  :class:`RayEmitter` centralizes all of it on top of
:meth:`repro.geometry.transforms.Camera.generate_rays` and the shared slab
test :func:`repro.geometry.aabb.ray_box_intervals`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.aabb import AABB, ray_box_intervals
from repro.geometry.transforms import Camera
from repro.util.morton import morton_encode_2d

__all__ = ["CameraPath", "RayEmitter"]


@dataclass
class RayEmitter:
    """Generates primary rays for a camera in a renderer-agnostic way.

    Attributes
    ----------
    camera:
        The pinhole camera rays originate from.
    supersample:
        Rays per pixel: 1, or 4 for the study's anti-aliasing configuration
        (jittered sub-pixel positions via a double-resolution camera).
    morton_order:
        Emit rays along a Morton curve of the framebuffer (the ray tracer's
        coherence ordering) instead of row-major pixel order.
    """

    camera: Camera
    supersample: int = 1
    morton_order: bool = False

    def __post_init__(self) -> None:
        if self.supersample not in (1, 4):
            raise ValueError("supersample must be 1 or 4")

    # -- orderings -------------------------------------------------------------
    def _morton_pixel_order(self) -> np.ndarray:
        """Pixel ids sorted along a Morton curve of the framebuffer."""
        camera = self.camera
        pixel_ids = np.arange(camera.width * camera.height, dtype=np.int64)
        px = (pixel_ids % camera.width).astype(np.uint32)
        py = (pixel_ids // camera.width).astype(np.uint32)
        codes = morton_encode_2d(px, py)
        return pixel_ids[np.argsort(codes, kind="stable")]

    # -- emission --------------------------------------------------------------
    def emit(self, pixel_ids: np.ndarray | None = None) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Primary rays; returns ``(pixel_ids, origins, directions)``.

        ``pixel_ids`` restricts emission to specific (row-major) pixels and
        overrides the Morton ordering; with 4x super-sampling each pixel id
        appears four times with jittered sub-pixel positions.
        """
        camera = self.camera
        if self.supersample == 1:
            if pixel_ids is None:
                if self.morton_order:
                    pixel_ids = self._morton_pixel_order()
                else:
                    pixel_ids = np.arange(camera.width * camera.height, dtype=np.int64)
            else:
                pixel_ids = np.asarray(pixel_ids, dtype=np.int64)
            origins, directions = camera.generate_rays(pixel_ids)
            return pixel_ids, origins, directions
        if pixel_ids is not None:
            raise ValueError("explicit pixel_ids are not supported with super-sampling")
        # Four-ray super-sampling: jitter by generating rays on a double-res
        # camera and mapping each fine pixel back to its coarse parent.
        fine = Camera(
            position=camera.position,
            look_at=camera.look_at,
            up=camera.up,
            fov_y_degrees=camera.fov_y_degrees,
            width=camera.width * 2,
            height=camera.height * 2,
            near=camera.near,
            far=camera.far,
        )
        fine_ids = np.arange(fine.width * fine.height, dtype=np.int64)
        fx = fine_ids % fine.width
        fy = fine_ids // fine.width
        parent = (fy // 2) * camera.width + (fx // 2)
        if self.morton_order:
            order = np.argsort(
                morton_encode_2d((fx // 2).astype(np.uint32), (fy // 2).astype(np.uint32)),
                kind="stable",
            )
        else:
            order = np.argsort(parent, kind="stable")
        origins, directions = fine.generate_rays(fine_ids[order])
        return parent[order], origins, directions

    def emit_clipped(
        self, bounds: AABB
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Rays whose parametric interval overlaps ``bounds``.

        Returns ``(pixel_ids, origins, directions, t_near, t_far)`` restricted
        to rays with a non-degenerate span: ``t_near`` is clamped at 0 (rays
        starting inside the box enter immediately) and only rays with
        ``t_far > t_near`` are kept.  This is the shared "ray setup" phase of
        the volume ray casters.
        """
        pixel_ids, origins, directions = self.emit()
        t_near, t_far = ray_box_intervals(origins, directions, bounds.low, bounds.high)
        t_near = np.maximum(t_near, 0.0)
        keep = t_far > t_near
        kept = np.flatnonzero(keep)
        return pixel_ids[kept], origins[kept], directions[kept], t_near[kept], t_far[kept]


@dataclass
class CameraPath:
    """A time-varying camera orbit: one :class:`Camera` (or emitter) per frame.

    The scale-study scenarios render a fly-around rather than a fixed view,
    so the per-rank active-pixel footprint shifts frame to frame (the camera
    sweeps across the decomposition).  The path orbits ``look_at`` in the
    plane orthogonal to ``up`` while bobbing along ``up``; frame ``t`` of
    ``num_frames`` sits at angle ``2*pi*t/num_frames`` plus the phase.

    Attributes
    ----------
    template:
        Camera carrying the shared intrinsics (fov, resolution, clip planes)
        plus the orbit center (``look_at``) and radius (distance from
        ``position`` to ``look_at``).
    num_frames:
        Frames in one full orbit.
    elevation:
        Amplitude of the ``up``-axis bob, as a fraction of the orbit radius.
    phase:
        Starting angle in radians.
    """

    template: Camera
    num_frames: int = 60
    elevation: float = 0.2
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.num_frames < 1:
            raise ValueError("num_frames must be positive")

    def camera_at(self, frame: int) -> Camera:
        """The orbit camera for ``frame`` (wraps modulo ``num_frames``)."""
        template = self.template
        offset = template.position - template.look_at
        radius = float(np.linalg.norm(offset))
        if radius == 0.0:
            raise ValueError("template camera must not sit on its look_at point")
        up = template.up / np.linalg.norm(template.up)
        # Orbit basis: the template's offset projected off `up`, plus the
        # orthogonal in-plane direction.
        planar = offset - offset.dot(up) * up
        if np.linalg.norm(planar) < 1e-12:
            planar = np.array([1.0, 0.0, 0.0]) - up[0] * up
        axis_a = planar / np.linalg.norm(planar)
        axis_b = np.cross(up, axis_a)
        angle = self.phase + 2.0 * np.pi * (frame % self.num_frames) / self.num_frames
        position = template.look_at + radius * (
            np.cos(angle) * axis_a + np.sin(angle) * axis_b
        ) + self.elevation * radius * np.sin(angle) * up
        return Camera(
            position=position,
            look_at=template.look_at,
            up=template.up,
            fov_y_degrees=template.fov_y_degrees,
            width=template.width,
            height=template.height,
            near=template.near,
            far=template.far,
        )

    def emitter_at(self, frame: int, supersample: int = 1, morton_order: bool = False) -> RayEmitter:
        """A :class:`RayEmitter` positioned at ``frame`` of the orbit."""
        return RayEmitter(self.camera_at(frame), supersample=supersample, morton_order=morton_order)
