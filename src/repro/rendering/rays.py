"""The shared ray emitter: one camera-ray front-end for every image-order renderer.

Before the frontier refactor each image-order renderer carried its own ray
setup -- the ray tracer's Morton-ordered (optionally super-sampled) generator,
and private ray/bounds interval clips in the structured volume caster and the
connectivity ray-caster baseline (one of which lost the sign of tiny negative
direction components).  :class:`RayEmitter` centralizes all of it on top of
:meth:`repro.geometry.transforms.Camera.generate_rays` and the shared slab
test :func:`repro.geometry.aabb.ray_box_intervals`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.aabb import AABB, ray_box_intervals
from repro.geometry.transforms import Camera
from repro.util.morton import morton_encode_2d

__all__ = ["RayEmitter"]


@dataclass
class RayEmitter:
    """Generates primary rays for a camera in a renderer-agnostic way.

    Attributes
    ----------
    camera:
        The pinhole camera rays originate from.
    supersample:
        Rays per pixel: 1, or 4 for the study's anti-aliasing configuration
        (jittered sub-pixel positions via a double-resolution camera).
    morton_order:
        Emit rays along a Morton curve of the framebuffer (the ray tracer's
        coherence ordering) instead of row-major pixel order.
    """

    camera: Camera
    supersample: int = 1
    morton_order: bool = False

    def __post_init__(self) -> None:
        if self.supersample not in (1, 4):
            raise ValueError("supersample must be 1 or 4")

    # -- orderings -------------------------------------------------------------
    def _morton_pixel_order(self) -> np.ndarray:
        """Pixel ids sorted along a Morton curve of the framebuffer."""
        camera = self.camera
        pixel_ids = np.arange(camera.width * camera.height, dtype=np.int64)
        px = (pixel_ids % camera.width).astype(np.uint32)
        py = (pixel_ids // camera.width).astype(np.uint32)
        codes = morton_encode_2d(px, py)
        return pixel_ids[np.argsort(codes, kind="stable")]

    # -- emission --------------------------------------------------------------
    def emit(self, pixel_ids: np.ndarray | None = None) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Primary rays; returns ``(pixel_ids, origins, directions)``.

        ``pixel_ids`` restricts emission to specific (row-major) pixels and
        overrides the Morton ordering; with 4x super-sampling each pixel id
        appears four times with jittered sub-pixel positions.
        """
        camera = self.camera
        if self.supersample == 1:
            if pixel_ids is None:
                if self.morton_order:
                    pixel_ids = self._morton_pixel_order()
                else:
                    pixel_ids = np.arange(camera.width * camera.height, dtype=np.int64)
            else:
                pixel_ids = np.asarray(pixel_ids, dtype=np.int64)
            origins, directions = camera.generate_rays(pixel_ids)
            return pixel_ids, origins, directions
        if pixel_ids is not None:
            raise ValueError("explicit pixel_ids are not supported with super-sampling")
        # Four-ray super-sampling: jitter by generating rays on a double-res
        # camera and mapping each fine pixel back to its coarse parent.
        fine = Camera(
            position=camera.position,
            look_at=camera.look_at,
            up=camera.up,
            fov_y_degrees=camera.fov_y_degrees,
            width=camera.width * 2,
            height=camera.height * 2,
            near=camera.near,
            far=camera.far,
        )
        fine_ids = np.arange(fine.width * fine.height, dtype=np.int64)
        fx = fine_ids % fine.width
        fy = fine_ids // fine.width
        parent = (fy // 2) * camera.width + (fx // 2)
        if self.morton_order:
            order = np.argsort(
                morton_encode_2d((fx // 2).astype(np.uint32), (fy // 2).astype(np.uint32)),
                kind="stable",
            )
        else:
            order = np.argsort(parent, kind="stable")
        origins, directions = fine.generate_rays(fine_ids[order])
        return parent[order], origins, directions

    def emit_clipped(
        self, bounds: AABB
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Rays whose parametric interval overlaps ``bounds``.

        Returns ``(pixel_ids, origins, directions, t_near, t_far)`` restricted
        to rays with a non-degenerate span: ``t_near`` is clamped at 0 (rays
        starting inside the box enter immediately) and only rays with
        ``t_far > t_near`` are kept.  This is the shared "ray setup" phase of
        the volume ray casters.
        """
        pixel_ids, origins, directions = self.emit()
        t_near, t_far = ray_box_intervals(origins, directions, bounds.low, bounds.high)
        t_near = np.maximum(t_near, 0.0)
        keep = t_far > t_near
        kept = np.flatnonzero(keep)
        return pixel_ids[kept], origins[kept], directions[kept], t_near[kept], t_far[kept]
