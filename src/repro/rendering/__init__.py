"""Rendering algorithms: ray tracing, rasterization, volume rendering.

Three data-parallel renderers (the Chapter V techniques) plus the Chapter III
unstructured volume renderer and the baseline comparators used throughout the
studies.  All renderers consume :class:`repro.geometry` meshes / scenes and a
:class:`repro.geometry.transforms.Camera`, and implement the
:class:`Renderer` protocol: ``render(camera)`` returns a
:class:`repro.rendering.result.RenderResult` carrying the framebuffer,
per-phase timings (validated against the standardized phase-name schema of
:mod:`repro.rendering.result`), and the observed performance-model input
variables, while ``visibility_depth(camera)`` orders sub-images for sort-last
compositing.  Primary rays for every image-order renderer come from the
shared :class:`repro.rendering.rays.RayEmitter`.
"""

from typing import Protocol, runtime_checkable

from repro.geometry.transforms import Camera
from repro.rendering.color import ColorTable, normalize_scalars
from repro.rendering.framebuffer import Framebuffer
from repro.rendering.rasterizer import Rasterizer, RasterizerConfig
from repro.rendering.rays import RayEmitter
from repro.rendering.raytracer import RayTracer, RayTracerConfig, Workload
from repro.rendering.result import (
    PHASE_GROUP_ORDER,
    PHASE_GROUPS,
    ObservedFeatures,
    RenderResult,
)
from repro.rendering.scene import Light, Material, Scene
from repro.rendering.volume import (
    StructuredVolumeConfig,
    StructuredVolumeRenderer,
    TransferFunction,
    UnstructuredVolumeConfig,
    UnstructuredVolumeRenderer,
)


@runtime_checkable
class Renderer(Protocol):
    """The surface every renderer family presents to the rest of the system.

    ``render`` produces a :class:`RenderResult` (schema-validated phases,
    shared depth convention); ``visibility_depth`` gives the camera-space
    distance used to order sub-images for sort-last OVER compositing.
    """

    def render(self, camera: Camera) -> RenderResult: ...

    def visibility_depth(self, camera: Camera) -> float: ...


__all__ = [
    "ColorTable",
    "Framebuffer",
    "Light",
    "Material",
    "ObservedFeatures",
    "PHASE_GROUPS",
    "PHASE_GROUP_ORDER",
    "Rasterizer",
    "RasterizerConfig",
    "RayEmitter",
    "RayTracer",
    "RayTracerConfig",
    "RenderResult",
    "Renderer",
    "Scene",
    "StructuredVolumeConfig",
    "StructuredVolumeRenderer",
    "TransferFunction",
    "UnstructuredVolumeConfig",
    "UnstructuredVolumeRenderer",
    "Workload",
    "normalize_scalars",
]
