"""Rendering algorithms: ray tracing, rasterization, volume rendering.

Three data-parallel renderers (the Chapter V techniques) plus the Chapter III
unstructured volume renderer and the baseline comparators used throughout the
studies.  All renderers consume :class:`repro.geometry` meshes / scenes and a
:class:`repro.geometry.transforms.Camera`, and return a
:class:`repro.rendering.result.RenderResult` carrying the framebuffer,
per-phase timings, and the observed performance-model input variables.
"""

from repro.rendering.color import ColorTable, normalize_scalars
from repro.rendering.framebuffer import Framebuffer
from repro.rendering.rasterizer import Rasterizer, RasterizerConfig
from repro.rendering.raytracer import RayTracer, RayTracerConfig, Workload
from repro.rendering.result import ObservedFeatures, RenderResult
from repro.rendering.scene import Light, Material, Scene
from repro.rendering.volume import (
    StructuredVolumeConfig,
    StructuredVolumeRenderer,
    TransferFunction,
    UnstructuredVolumeConfig,
    UnstructuredVolumeRenderer,
)

__all__ = [
    "ColorTable",
    "Framebuffer",
    "Light",
    "Material",
    "ObservedFeatures",
    "Rasterizer",
    "RasterizerConfig",
    "RayTracer",
    "RayTracerConfig",
    "RenderResult",
    "Scene",
    "StructuredVolumeConfig",
    "StructuredVolumeRenderer",
    "TransferFunction",
    "UnstructuredVolumeConfig",
    "UnstructuredVolumeRenderer",
    "Workload",
    "normalize_scalars",
]
