"""Synthetic per-phase kernel cost model.

This module is the reproduction's stand-in for running the renderers on GPUs
and other devices that are not physically available (see the substitution
table in DESIGN.md).  Given

* an :class:`~repro.machines.archspec.ArchitectureSpec`,
* a rendering technique, and
* the *observed model-input variables* of a render (objects, active pixels,
  visible objects, pixels per triangle, samples per ray, cells spanned),

it synthesizes per-phase wall-clock times from the same algorithmic-complexity
terms the paper's performance models use, applies the device's fixed kernel
overhead, and perturbs each phase with multiplicative log-normal noise.  The
synthetic corpus therefore has realistic structure (the right dominant terms,
the right device orderings, measurement noise) without pretending to be real
silicon -- exactly what the model-fitting and cross-validation machinery
(Chapter V) needs in order to be exercised end to end.

Crucially the noise means the fitted coefficients are *not* recovered
trivially: the regression sees scattered observations just as it would on
hardware.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machines.archspec import ArchitectureSpec, get_architecture
from repro.rendering.result import ObservedFeatures
from repro.util.rng import default_rng

__all__ = ["synthesize_render_time", "KernelCostModel"]

#: Techniques whose phases the cost model knows how to synthesize.
TECHNIQUES = ("raytrace", "raster", "volume_structured", "volume_unstructured")


def _noise(rng: np.random.Generator, sigma: float) -> float:
    """Multiplicative log-normal noise factor with unit median."""
    return float(np.exp(rng.normal(0.0, sigma)))


def synthesize_render_time(
    architecture: ArchitectureSpec | str,
    technique: str,
    features: ObservedFeatures,
    rng: np.random.Generator | None = None,
    include_build: bool = True,
) -> dict[str, float]:
    """Synthesize per-phase times for one render on one architecture.

    Parameters
    ----------
    architecture:
        Spec or registered name.
    technique:
        ``"raytrace"``, ``"raster"``, ``"volume_structured"``, or
        ``"volume_unstructured"``.
    features:
        Observed (or mapped) model-input variables for the render.
    rng:
        Noise stream; a deterministic default is derived from the
        architecture and technique when omitted.
    include_build:
        Include the one-time acceleration-structure build phase for the ray
        tracer.

    Returns
    -------
    dict
        Phase name to synthesized seconds.
    """
    spec = architecture if isinstance(architecture, ArchitectureSpec) else get_architecture(architecture)
    if technique not in TECHNIQUES:
        raise ValueError(f"unknown technique {technique!r}; choose from {TECHNIQUES}")
    rng = rng if rng is not None else default_rng(None, "costmodel", spec.name, technique)
    overhead = spec.kernel_overhead_seconds
    objects = max(float(features.objects), 1.0)
    active_pixels = float(features.active_pixels)
    phases: dict[str, float] = {}

    if technique == "raytrace":
        if include_build:
            phases["bvh_build"] = (objects / spec.build_rate + overhead) * _noise(rng, spec.noise_sigma)
        traversal_work = active_pixels * np.log2(max(objects, 2.0))
        phases["trace"] = (traversal_work / spec.traversal_rate + overhead) * _noise(rng, spec.noise_sigma)
        phases["shade"] = (active_pixels / spec.shade_rate + overhead) * _noise(rng, spec.noise_sigma)
    elif technique == "raster":
        visible = float(features.visible_objects)
        candidates = visible * max(float(features.pixels_per_triangle), 0.0)
        phases["culling"] = (objects / spec.cull_rate + overhead) * _noise(rng, spec.noise_sigma)
        phases["rasterize"] = (candidates / spec.raster_rate + overhead) * _noise(rng, spec.noise_sigma)
    else:  # structured or unstructured volume rendering
        cell_work = active_pixels * max(float(features.cells_spanned), 1.0)
        sample_work = active_pixels * max(float(features.samples_per_ray), 0.0)
        phases["cell_lookup"] = (cell_work / spec.cell_rate + overhead) * _noise(rng, spec.noise_sigma)
        phases["sampling"] = (sample_work / spec.sample_rate + overhead) * _noise(rng, spec.noise_sigma)
    return phases


@dataclass
class KernelCostModel:
    """Stateful wrapper: one architecture, one reproducible noise stream.

    The study harness uses one :class:`KernelCostModel` per (architecture,
    technique) pair so repeated calls draw successive noise samples from the
    same deterministic stream.
    """

    architecture: ArchitectureSpec | str
    seed: int | None = None

    def __post_init__(self) -> None:
        self.spec = (
            self.architecture
            if isinstance(self.architecture, ArchitectureSpec)
            else get_architecture(self.architecture)
        )
        self._rng = default_rng(self.seed, "kernel-cost", self.spec.name)

    def phases(self, technique: str, features: ObservedFeatures, include_build: bool = True) -> dict[str, float]:
        """Synthesized per-phase seconds for one render."""
        return synthesize_render_time(self.spec, technique, features, self._rng, include_build)

    def total(self, technique: str, features: ObservedFeatures, include_build: bool = True) -> float:
        """Synthesized total seconds for one render."""
        return float(sum(self.phases(technique, features, include_build).values()))

    def frames_per_second(self, technique: str, features: ObservedFeatures, include_build: bool = False) -> float:
        """Convenience: reciprocal of the per-frame time (build excluded by default)."""
        seconds = self.total(technique, features, include_build)
        return 1.0 / max(seconds, 1e-12)
