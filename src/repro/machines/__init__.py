"""Architecture descriptions and the synthetic kernel cost model.

The paper fits architecture-specific coefficients from measurements on real
CPUs and GPUs (LLNL Surface Sandy Bridge + K40m, ORNL Titan K20, plus the
Chapter II/III desktop devices).  That hardware is not available to the
reproduction, so this package supplies the substitution documented in
DESIGN.md:

* :mod:`repro.machines.archspec` -- named architecture specifications with
  throughput parameters (relative compute rate, memory bandwidth, per-kernel
  launch overhead, noise level).
* :mod:`repro.machines.costmodel` -- an analytic per-phase cost synthesizer
  that converts the *observed model-input variables* of a render (objects,
  active pixels, samples, ...) into a plausible wall-clock time for a chosen
  architecture, with multiplicative log-normal noise so the regression and
  cross-validation machinery is exercised realistically.

The host architecture (``"cpu-host"``) is special: its times are real
measurements of the numpy renderers, not synthesized.
"""

from repro.machines.archspec import ArchitectureSpec, get_architecture, list_architectures
from repro.machines.costmodel import KernelCostModel, synthesize_render_time

__all__ = [
    "ArchitectureSpec",
    "KernelCostModel",
    "get_architecture",
    "list_architectures",
    "synthesize_render_time",
]
